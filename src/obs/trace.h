// trace.h - Causal span tracing for the request path.
//
// The metrics registry (registry.h) answers "how many / how long on
// average"; the tracer answers "what happened to THIS request". A trace
// is a tree of spans in the Dapper mold: a 128-bit TraceId names the
// request's whole lifecycle, each span carries a 64-bit SpanId plus its
// parent's SpanId, and context crosses process boundaries inside the
// wire frames that already carry the request (MatchNotification,
// ClaimRequest/Response, Heartbeat, LeaseExpired, MatchReferral,
// ReferralResponse) — so one referral that crosses N pools stitches into
// a single trace when the rings are pulled together (tools/mm_trace,
// wire tag 18 TraceQuery).
//
// Cost model mirrors the registry: starting/finishing a span on a
// disabled tracer is one relaxed atomic load; on an enabled tracer a
// finished span takes one short mutex hold to drop the record into a
// bounded ring (overwritten spans bump a lifetime TraceSpansDropped
// counter). Timestamps are steady-clock seconds since a process-wide
// epoch: durations are exact per process, absolute offsets are only
// comparable between daemons sharing a process (tests, the simulator) —
// mm_trace renders per-hop durations, not cross-host clock math.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace obs {

/// 128-bit trace identifier; zero means "no trace" everywhere.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid() const noexcept { return (hi | lo) != 0; }
  friend bool operator==(const TraceId&, const TraceId&) = default;
};

using SpanId = std::uint64_t;

/// 32 lowercase hex chars, zero-padded ("0000..feed").
std::string traceIdToHex(const TraceId& id);
/// Strict inverse of traceIdToHex: exactly 32 hex chars (either case).
std::optional<TraceId> traceIdFromHex(std::string_view hex);

/// What crosses a process boundary: the trace plus the sender's span,
/// which becomes the receiver's parent. Invalid (zero) context is the
/// wire representation of "tracing off" and propagates as a no-op.
struct TraceContext {
  TraceId trace;
  SpanId span = 0;
  bool valid() const noexcept { return trace.valid(); }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One finished span as stored in the ring and shipped in a
/// TraceQueryResponse. Tags are small key/value annotations (request
/// key, peer pool, verdict reason) — keep them short, they live in a
/// bounded ring and travel in 4 MiB-capped frames.
struct SpanRecord {
  TraceId trace;
  SpanId span = 0;
  SpanId parent = 0;
  std::string name;       ///< operation, e.g. "claim.grant"
  std::string component;  ///< daemon/pool identity, e.g. "collector.east"
  double startSeconds = 0.0;  ///< steadyNowSeconds() at span start
  double durationSeconds = 0.0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Seconds since a process-wide steady epoch (captured on first use).
/// Every tracer in the process shares this timebase.
double steadyNowSeconds();

class Tracer;

/// Move-only live-span handle. Inert (from a disabled/null tracer) it is
/// a pointer-sized no-op; active it finishes into the ring on
/// destruction or finish(), whichever comes first.
class ActiveSpan {
 public:
  ActiveSpan() = default;
  ActiveSpan(ActiveSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        rec_(std::move(other.rec_)) {}
  ActiveSpan& operator=(ActiveSpan&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = std::exchange(other.tracer_, nullptr);
      rec_ = std::move(other.rec_);
    }
    return *this;
  }
  ActiveSpan(const ActiveSpan&) = delete;
  ActiveSpan& operator=(const ActiveSpan&) = delete;
  ~ActiveSpan() { finish(); }

  bool active() const noexcept { return tracer_ != nullptr; }
  /// Context to hand to children / put on the wire; invalid when inert.
  TraceContext context() const noexcept {
    return active() ? TraceContext{rec_.trace, rec_.span} : TraceContext{};
  }
  void tag(std::string key, std::string value) {
    if (active()) rec_.tags.emplace_back(std::move(key), std::move(value));
  }
  /// Records the span (duration = now - start). Idempotent.
  void finish();

 private:
  friend class Tracer;
  ActiveSpan(Tracer* tracer, SpanRecord rec)
      : tracer_(tracer), rec_(std::move(rec)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// The per-daemon span sink. Thread-safe; share one per daemon the way
/// a Registry is shared. A null Tracer* at a call site means "tracing
/// not wired" and every helper below tolerates it.
class Tracer {
 public:
  struct Options {
    /// Ring capacity in finished spans. Oldest spans are overwritten
    /// (and counted as dropped) once full.
    std::size_t capacity = 4096;
    bool enabled = true;
    /// Stamped on every span: the daemon/pool identity mm_trace groups
    /// by ("collector.east", "ra://m1.west").
    std::string component;
    /// ID-stream seed; 0 derives one from the clock and this object.
    std::uint64_t seed = 0;
  };

  Tracer();  ///< default Options, no registry
  explicit Tracer(Options options, Registry* registry = nullptr);

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void setEnabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  const std::string& component() const noexcept { return component_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Starts a root span under a brand-new TraceId.
  ActiveSpan startTrace(std::string_view name);
  /// Starts a child span. An invalid parent context yields an inert span
  /// (never an orphan trace): context must flow from a real origin.
  ActiveSpan startSpan(std::string_view name, const TraceContext& parent);
  /// Records an externally timed span (negotiation phases measured with
  /// their own clocks). Fills component; trusts the rest.
  void record(SpanRecord rec);

  /// Mints a fresh root context (new trace + span id) without opening an
  /// ActiveSpan — for externally timed spans fed through record().
  TraceContext mintContext() noexcept;
  /// Mints a span id alone (an externally timed child of a live trace).
  SpanId mintSpanId() noexcept { return nextId(); }

  /// Lifetime count of spans overwritten by ring wraparound.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Ring contents oldest-first; `limit` == 0 means everything.
  std::vector<SpanRecord> snapshot(std::size_t limit = 0) const;
  /// Every ring span belonging to `id`, oldest-first.
  std::vector<SpanRecord> spansFor(const TraceId& id) const;

 private:
  SpanId nextId() noexcept;

  const std::size_t capacity_;
  const std::string component_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> idState_;
  std::atomic<std::uint64_t> dropped_{0};
  Counter* droppedCounter_ = nullptr;  ///< TraceSpansDropped, if registered

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  ///< slots, written round-robin
  std::size_t head_ = 0;          ///< next write position
  std::size_t size_ = 0;          ///< live records in the ring
};

/// Null-safe helpers: the request path is littered with `Tracer*` that
/// may be unwired (sim configs, benchmarks); these keep call sites flat.
inline ActiveSpan startTrace(Tracer* t, std::string_view name) {
  return (t != nullptr && t->enabled()) ? t->startTrace(name) : ActiveSpan{};
}
inline ActiveSpan startSpan(Tracer* t, std::string_view name,
                            const TraceContext& parent) {
  return (t != nullptr && t->enabled()) ? t->startSpan(name, parent)
                                        : ActiveSpan{};
}

/// Renders spans as Chrome trace-event JSON (the "traceEvents" object
/// form) loadable in Perfetto / chrome://tracing: one complete ("ph":
/// "X") event per span with microsecond timestamps, processes keyed by
/// component with process_name metadata, and trace/span/parent ids plus
/// tags in "args".
std::string toChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace obs
