#include "obs/registry.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace obs {

void Gauge::add(double delta) noexcept {
  // fetch_add on atomic<double> is C++20 but not universally implemented;
  // a CAS loop is portable and the contention here is negligible.
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  std::sort(bounds_.begin(), bounds_.end());
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> +inf
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string Histogram::render() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    os << "le" << bounds_[i] << ':'
       << buckets_[i].load(std::memory_order_relaxed) << ',';
  }
  os << "inf:" << buckets_[bounds_.size()].load(std::memory_order_relaxed);
  return os.str();
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative < rank) continue;
    if (i == bounds_.size()) {
      // Overflow bucket: no finite upper bound to interpolate toward.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    if (counts[i] == 0) return hi;
    const double frac = (rank - prev) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::string Histogram::renderQuantiles() const {
  std::ostringstream os;
  os << "p50=" << quantile(0.50) << ",p95=" << quantile(0.95)
     << ",p99=" << quantile(0.99);
  return os.str();
}

const std::vector<double>& latencyBuckets() {
  static const std::vector<double> kBounds = {
      1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
      1e-2, 5e-2, 1e-1, 5e-1, 1.0,  5.0,  10.0};
  return kBounds;
}

std::string Registry::sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "M");
  return out;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[sanitize(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[sanitize(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[sanitize(name)];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

classad::ClassAd Registry::toClassAd() const {
  classad::ClassAd ad;
  renderInto(ad);
  return ad;
}

void Registry::renderInto(classad::ClassAd& ad) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    ad.set(name, static_cast<std::int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    ad.set(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    ad.set(name + "_Count", static_cast<std::int64_t>(h->count()));
    ad.set(name + "_Sum", h->sum());
    ad.set(name + "_Buckets", h->render());
    if (h->count() > 0) ad.set(name + "_Quantiles", h->renderQuantiles());
  }
}

}  // namespace obs
