#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

namespace obs {
namespace {

// splitmix64: one multiply-shift-xor chain per draw. Statistically fine
// for trace ids (uniqueness, not secrecy) and lock-free on the hot path.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

char hexDigit(std::uint64_t v) noexcept {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void appendHex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hexDigit((v >> shift) & 0xF);
  }
}

}  // namespace

double steadyNowSeconds() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kEpoch)
      .count();
}

std::string traceIdToHex(const TraceId& id) {
  std::string out;
  out.reserve(32);
  appendHex64(out, id.hi);
  appendHex64(out, id.lo);
  return out;
}

std::optional<TraceId> traceIdFromHex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  TraceId id;
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = hex[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return std::nullopt;
    }
    std::uint64_t& word = (i < 16) ? id.hi : id.lo;
    word = (word << 4) | digit;
  }
  return id;
}

void ActiveSpan::finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  rec_.durationSeconds = steadyNowSeconds() - rec_.startSeconds;
  tracer->record(std::move(rec_));
}

Tracer::Tracer() : Tracer(Options{}, nullptr) {}

Tracer::Tracer(Options options, Registry* registry)
    : capacity_(options.capacity == 0 ? 1 : options.capacity),
      component_(std::move(options.component)),
      enabled_(options.enabled),
      idState_(options.seed != 0
                   ? options.seed
                   : mix64(static_cast<std::uint64_t>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch()
                                   .count()) ^
                           std::hash<const void*>{}(this))) {
  if (registry != nullptr) {
    droppedCounter_ = registry->counter("TraceSpansDropped");
  }
  ring_.resize(capacity_);
}

SpanId Tracer::nextId() noexcept {
  // fetch_add keeps draws unique across threads; mix64 decorrelates the
  // sequential counter into id-looking values. Zero is reserved.
  const std::uint64_t raw =
      idState_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  const std::uint64_t id = mix64(raw);
  return id != 0 ? id : 1;
}

TraceContext Tracer::mintContext() noexcept {
  TraceContext ctx;
  ctx.trace.hi = nextId();
  ctx.trace.lo = nextId();
  ctx.span = nextId();
  return ctx;
}

ActiveSpan Tracer::startTrace(std::string_view name) {
  if (!enabled()) return ActiveSpan{};
  SpanRecord rec;
  rec.trace.hi = nextId();
  rec.trace.lo = nextId();
  rec.span = nextId();
  rec.name.assign(name);
  rec.startSeconds = steadyNowSeconds();
  return ActiveSpan{this, std::move(rec)};
}

ActiveSpan Tracer::startSpan(std::string_view name,
                             const TraceContext& parent) {
  if (!enabled() || !parent.valid()) return ActiveSpan{};
  SpanRecord rec;
  rec.trace = parent.trace;
  rec.parent = parent.span;
  rec.span = nextId();
  rec.name.assign(name);
  rec.startSeconds = steadyNowSeconds();
  return ActiveSpan{this, std::move(rec)};
}

void Tracer::record(SpanRecord rec) {
  if (!enabled()) return;
  if (rec.component.empty()) rec.component = component_;
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    overwrote = size_ == capacity_;
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % capacity_;
    if (!overwrote) ++size_;
  }
  if (overwrote) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (droppedCounter_ != nullptr) droppedCounter_->inc();
  }
}

std::vector<SpanRecord> Tracer::snapshot(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = size_;
  if (limit != 0 && limit < n) n = limit;
  std::vector<SpanRecord> out;
  out.reserve(n);
  // Oldest live record sits at head_ - size_ (mod capacity); we emit the
  // most recent `n` of them, still oldest-first.
  const std::size_t start = (head_ + capacity_ - n) % capacity_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::spansFor(const TraceId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    const SpanRecord& rec = ring_[(start + i) % capacity_];
    if (rec.trace == id) out.push_back(rec);
  }
  return out;
}

namespace {

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendJsonNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

void appendHexField(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
  out += buf;
}

}  // namespace

std::string toChromeTraceJson(const std::vector<SpanRecord>& spans) {
  // Stable small pids per component so Perfetto groups spans by daemon.
  std::map<std::string, int> pids;
  for (const SpanRecord& rec : spans) {
    pids.emplace(rec.component, 0);
  }
  int next = 1;
  for (auto& [component, pid] : pids) pid = next++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [component, pid] : pids) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    appendJsonString(out, component.empty() ? "unknown" : component);
    out += "}}";
  }
  for (const SpanRecord& rec : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"name\":";
    appendJsonString(out, rec.name);
    out += ",\"cat\":";
    appendJsonString(out, traceIdToHex(rec.trace));
    out += ",\"pid\":";
    out += std::to_string(pids[rec.component]);
    out += ",\"tid\":1,\"ts\":";
    appendJsonNumber(out, rec.startSeconds * 1e6);
    out += ",\"dur\":";
    appendJsonNumber(out, rec.durationSeconds * 1e6);
    out += ",\"args\":{\"trace\":";
    appendJsonString(out, traceIdToHex(rec.trace));
    out += ",\"span\":";
    appendHexField(out, rec.span);
    out += ",\"parent\":";
    appendHexField(out, rec.parent);
    for (const auto& [key, value] : rec.tags) {
      out += ',';
      appendJsonString(out, key);
      out += ':';
      appendJsonString(out, value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
