// registry.h - Pool-wide observability: a lock-cheap metrics registry.
//
// Every daemon (and the simulated pool, through the same interface) owns
// one Registry. Instruments are created once — name lookup takes a mutex
// — and thereafter updated with single relaxed atomic operations, so the
// hot paths (frame decode, reactor loop, negotiation cycle) pay one
// uncontended atomic add per event. Readers (the Query handler rendering
// a DaemonStatus self-advertisement) take the same creation mutex only to
// walk the instrument table; the values themselves are torn-free atomics.
//
// The rendering target is a classad (toClassAd): the paper's "all
// entities in the system are represented by classads" applied to the
// daemons themselves. Counters render as integers, gauges as reals, and
// a histogram as three attributes: <Name>_Count, <Name>_Sum, and
// <Name>_Buckets (a "le<bound>:<count>" run-length string), so one-way
// matching tools can constrain on any of them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "classad/classad.h"

namespace obs {

/// Monotone event count. All operations are relaxed atomics: totals are
/// exact, but a reader may see counts from different instants — the same
/// weak-consistency contract the advertising protocol already lives with.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (stored requests, open connections).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram. Bucket bounds are immutable after
/// construction (no resize races); each observation is two relaxed adds
/// plus one CAS for the running sum.
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds; an implicit +inf
  /// bucket catches the overflow.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::vector<std::uint64_t> bucketCounts() const;

  /// "le1e-05:3,le0.0001:12,inf:0" — parseable, and compact enough to
  /// live inside a DaemonStatus ad attribute.
  std::string render() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank — the Prometheus histogram_quantile
  /// estimate. Observations in the +inf bucket clamp to the largest
  /// finite bound. Returns NaN when the histogram is empty.
  double quantile(double q) const;

  /// "p50=0.0012,p95=0.031,p99=0.18" — the fixed p50/p95/p99 spread
  /// rendered next to _Buckets so mm_status -stats can show latency
  /// percentiles without client-side bucket math.
  std::string renderQuantiles() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bounds for wall-clock latencies: 1 µs .. 10 s, decade steps
/// with a 1-2-5-ish midpoint — wide enough for both a reactor pass and a
/// 10k-machine negotiation cycle.
const std::vector<double>& latencyBuckets();

class Registry {
 public:
  /// Finds or creates. Returned pointers are stable for the registry's
  /// lifetime. Names are sanitized to classad identifiers (see sanitize);
  /// two raw names that sanitize identically share one instrument.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` applies only on first creation.
  Histogram* histogram(std::string_view name,
                       const std::vector<double>& bounds = latencyBuckets());

  /// Snapshot of every instrument as classad attributes (see header
  /// comment for the encoding). Values are read with relaxed loads; the
  /// snapshot is per-instrument consistent, not cross-instrument.
  classad::ClassAd toClassAd() const;

  /// Folds the snapshot into an existing ad (identity attributes first,
  /// metrics appended).
  void renderInto(classad::ClassAd& ad) const;

  /// Classad-identifier-safe form of `name`: every character outside
  /// [A-Za-z0-9_] becomes '_', and a leading digit gains an 'M' prefix.
  static std::string sanitize(std::string_view name);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
