#include "sim/pool_manager.h"

#include <algorithm>
#include <chrono>

namespace htcsim {

namespace {

double wallSecondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

/// Request-store pool options: the matchmaker's, plus gang detection so
/// the cycle can split co-allocation requests without re-inspecting ads.
matchmaking::engine::PoolOptions requestStoreOptions(
    const matchmaking::MatchmakerConfig& config) {
  matchmaking::engine::PoolOptions options =
      matchmaking::requestPoolOptions(config);
  options.detectGangs = true;
  return options;
}

}  // namespace

PoolManager::PoolManager(Simulator& sim, Transport& net, Metrics& metrics,
                         Config config)
    : sim_(sim),
      net_(net),
      metrics_(metrics),
      config_(std::move(config)),
      protocol_(config_.matchmaker.protocol),
      requests_(config_.adLifetime, requestStoreOptions(config_.matchmaker)),
      resources_(config_.adLifetime,
                 matchmaking::resourcePoolOptions(config_.matchmaker)),
      accountant_(config_.accountant),
      matchmaker_(config_.matchmaker),
      gangMatcher_(config_.gang) {
  for (const auto& [user, group] : config_.accountingGroups) {
    accountant_.setGroup(user, group);
  }
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    cycleHist_ = reg.histogram("NegotiationCycleSeconds");
    adScanHist_ = reg.histogram("PhaseAdScanSeconds");
    fairShareHist_ = reg.histogram("PhaseFairShareSeconds");
    rankHist_ = reg.histogram("PhaseRankSeconds");
    notifyHist_ = reg.histogram("PhaseNotifySeconds");
    matchesLastCycle_ = reg.gauge("MatchesLastCycle");
    unmatchedLastCycle_ = reg.gauge("UnmatchedLastCycle");
    candidatesEvaluated_ = reg.counter("MatchCandidatesEvaluated");
    candidatesPruned_ = reg.counter("MatchCandidatesPruned");
    staticSkips_ = reg.counter("MatchStaticSkips");
    guardsElided_ = reg.counter("MatchGuardsElided");
    pruneRatioLastCycle_ = reg.gauge("MatchPruneRatioLastCycle");
    indexedAds_ = reg.gauge("MatchIndexedAds");
    indexRebuilds_ = reg.gauge("MatchIndexRebuilds");
    policySolveHist_ = reg.histogram("PolicyCycleSolveSeconds");
    policyMatchedPairs_ = reg.gauge("PolicyMatchedPairs");
    policyAggregateRank_ = reg.gauge("PolicyAggregateRank");
    policyAuctionRounds_ = reg.counter("PolicyAuctionRounds");
  }
}

PoolManager::~PoolManager() { stop(); }

void PoolManager::start() {
  if (up_) return;
  up_ = true;
  net_.attach(config_.address, this);
  cycleTimer_.emplace(
      sim_, config_.negotiationInterval, [this] { negotiateNow(); },
      config_.negotiationInterval);
  if (config_.federation.enabled()) {
    federation::FederationConfig fed = config_.federation;
    fed.epoch = ++federationEpoch_;
    federation_.emplace(std::move(fed),
                        static_cast<federation::FederationHost&>(*this), net_,
                        config_.address, config_.registry, config_.tracer);
    federation_->start(sim_.now());
    digestTimer_.emplace(
        sim_, config_.federation.digestInterval,
        [this] {
          if (federation_.has_value()) federation_->pushDigest(sim_.now());
        },
        config_.federation.digestInterval);
  }
}

void PoolManager::stop() {
  up_ = false;
  cycleTimer_.reset();
  digestTimer_.reset();
  federation_.reset();
  net_.detach(config_.address);
}

void PoolManager::crash(Time downFor) {
  if (!up_) return;
  stop();
  // All in-memory state is gone: stored ads, and in stateful mode the
  // allocation table. The accountant's usage history is modeled as
  // persistent (Condor journals it); what distinguishes the designs is
  // the match/allocation state.
  requests_.clear();
  resources_.clear();
  allocationTable_.clear();
  requestTraces_.clear();
  sim_.after(downFor, [this] { start(); });
}

void PoolManager::deliver(const Envelope& env) {
  if (!up_) return;
  if (const auto* ad =
          std::get_if<matchmaking::Advertisement>(&env.payload)) {
    handleAdvertisement(*ad);
  } else if (const auto* inv = std::get_if<AdInvalidate>(&env.payload)) {
    handleInvalidate(*inv);
  } else if (const auto* usage = std::get_if<UsageReport>(&env.payload)) {
    handleUsage(*usage);
  } else if (federation_.has_value()) {
    federation_->deliver(env, sim_.now());
  }
}

void PoolManager::handleAdvertisement(const matchmaking::Advertisement& ad) {
  if (!ad.ad) return;
  const auto validation = ad.isRequest ? protocol_.validateRequest(*ad.ad)
                                       : protocol_.validateResource(*ad.ad);
  if (!validation.accepted) return;  // not included in matchmaking
  const std::string key =
      ad.key.empty() ? protocol_.keyOf(*ad.ad) : ad.key;
  matchmaking::AdStore& store = ad.isRequest ? requests_ : resources_;
  const bool fresh = store.update(key, ad.ad, sim_.now(), ad.sequence);
  // Trace intake: the first sighting of a request key roots the job's
  // trace ("ad.intake"); a matched request re-advertising means its
  // claim died — record "job.requeued" in the same trace (the recover
  // leg of the lifecycle).
  if (fresh && ad.isRequest && config_.tracer != nullptr &&
      config_.tracer->enabled()) {
    auto [it, inserted] = requestTraces_.try_emplace(key);
    RequestTrace& rt = it->second;
    rt.lastSeen = sim_.now();
    if (inserted || !rt.ctx.valid()) {
      obs::ActiveSpan root = config_.tracer->startTrace("ad.intake");
      root.tag("request", key);
      rt.ctx = root.context();
      rt.matched = false;
    } else if (rt.matched) {
      obs::ActiveSpan requeue =
          obs::startSpan(config_.tracer, "job.requeued", rt.ctx);
      requeue.tag("request", key);
      rt.matched = false;
    }
  }
  // Flock-out: every genuinely local resource ad version travels to the
  // peers once (the plane re-checks provenance and policy).
  if (fresh && !ad.isRequest && federation_.has_value() &&
      !federation::FederationPlane::isFlockedKey(key)) {
    federation_->onLocalResourceAd(key, ad.ad, ad.sequence, sim_.now());
  }

  // Stateful-allocator strawman: a resource reporting itself Claimed with
  // no entry in the allocation table is, to this design, an orphan left
  // over from before the crash — it gets reset so the table can become
  // authoritative again. The paper's stateless design has no such table
  // and never does this.
  if (config_.stateful && !ad.isRequest) {
    const auto state = ad.ad->getString("State");
    if (state && *state == "Claimed" &&
        allocationTable_.find(key) == allocationTable_.end()) {
      const std::string contact = protocol_.keyOf(*ad.ad);
      matchmaking::ClaimRelease reset;
      reset.reason = "orphaned-claim";
      net_.send(config_.address, contact, std::move(reset));
      // Re-arm only once per sighting; the RA will re-advertise unclaimed.
      allocationTable_.emplace(key, "");
    }
  }
}

void PoolManager::handleInvalidate(const AdInvalidate& inv) {
  matchmaking::AdStore& store = inv.isRequest ? requests_ : resources_;
  const bool known = store.invalidate(inv.key);
  if (known && !inv.isRequest && federation_.has_value() &&
      !federation::FederationPlane::isFlockedKey(inv.key)) {
    federation_->onLocalResourceInvalidate(inv.key);
  }
}

void PoolManager::handleUsage(const UsageReport& usage) {
  accountant_.recordUsage(usage.user, usage.resourceSeconds, sim_.now());
  metrics_.usageByUser[usage.user] += usage.resourceSeconds;
}

matchmaking::NegotiationStats PoolManager::negotiateNow() {
  matchmaking::NegotiationStats stats;
  if (!up_) return stats;
  ++metrics_.negotiationCycles;
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  // Phase timings are WALL clock even under the discrete-event clock:
  // they measure what the algorithms actually cost on this hardware,
  // which is what the observability plane exists to answer.
  const auto cycleStart = std::chrono::steady_clock::now();
  const double cycleStartTs = tracing ? obs::steadyNowSeconds() : 0.0;
  // Each cycle is its own trace: phase spans hang off one
  // "negotiate.cycle" root, and every match.notify span tags the cycle's
  // trace id — the join between a job's trace and the cycle that
  // matched it.
  const obs::TraceContext cycleCtx =
      tracing ? tracer->mintContext() : obs::TraceContext{};
  requests_.expire(sim_.now());
  resources_.expire(sim_.now());
  // Both stores keep prepared pools in lockstep (ads were prepared,
  // guarded and indexed as they arrived), so the cycle starts with zero
  // per-cycle preparation. Gang (co-allocation) slots were classified at
  // insert time; the pairwise pass skips them, and they are served after
  // it against the leftovers. Entries are copied out up front because
  // the notify loop below invalidates matched requests, mutating the
  // request pool mid-iteration.
  const matchmaking::engine::PreparedPool& requestPool = *requests_.pool();
  const matchmaking::engine::PreparedPool& resourcePool = *resources_.pool();
  std::vector<std::pair<std::string, classad::ClassAdPtr>> gangEntries;
  for (const matchmaking::engine::Slot& slot : requestPool.slots()) {
    if (slot.live && slot.isGang) gangEntries.emplace_back(slot.key, slot.ad());
  }
  const double adScanSeconds = wallSecondsSince(cycleStart);
  // One taken-set over resource slot ids, shared between the pairwise
  // pass and the gang matcher — no post-hoc rescan to reconstruct which
  // resources were consumed.
  std::vector<char> taken(resourcePool.slots().size(), 0);
  const std::vector<matchmaking::Match> matchesFound = matchmaker_.negotiate(
      requestPool, resourcePool, accountant_, sim_.now(), &stats, &taken);
  const auto notifyStart = std::chrono::steady_clock::now();
  const double notifyStartTs = tracing ? obs::steadyNowSeconds() : 0.0;
  for (const matchmaking::Match& m : matchesFound) {
    ++metrics_.matchesIssued;
    const std::uint64_t jobId = static_cast<std::uint64_t>(
        m.request->getInteger("JobId").value_or(0));
    const std::string storeKey =
        m.requestContact + "#" + std::to_string(jobId);
    // The "match.notify" span lives in the JOB's trace (rooted at ad
    // intake) and tags the cycle's trace id; its context rides both
    // notifications so the claim and lease spans downstream stitch into
    // the job's trace.
    obs::ActiveSpan notifySpan;
    if (tracing) {
      notifySpan = tracer->startSpan("match.notify", requestTraceFor(storeKey));
      notifySpan.tag("resource", m.resourceContact);
      notifySpan.tag("cycle", obs::traceIdToHex(cycleCtx.trace));
      if (const auto it = requestTraces_.find(storeKey);
          it != requestTraces_.end()) {
        it->second.matched = true;
      }
    }
    // Matchmaking protocol (Step 3): both parties get each other's ads;
    // the customer additionally gets the resource's ticket.
    matchmaking::MatchNotification toCustomer;
    toCustomer.myAd = m.request;
    toCustomer.peerAd = m.resource;
    toCustomer.peerContact = m.resourceContact;
    toCustomer.ticket = m.ticket;
    toCustomer.trace = notifySpan.context();
    net_.send(config_.address, m.requestContact, std::move(toCustomer));

    matchmaking::MatchNotification toResource;
    toResource.myAd = m.resource;
    toResource.peerAd = m.request;
    toResource.peerContact = m.requestContact;
    toResource.ticket = matchmaking::kNoTicket;
    toResource.trace = notifySpan.context();
    net_.send(config_.address, m.resourceContact, std::move(toResource));

    // Withdraw the matched request until its CA re-advertises (placed
    // jobs retract their own ads; failed claims re-advertise).
    requests_.invalidate(storeKey);

    if (config_.stateful) {
      allocationTable_[m.resourceContact] = m.user;
    }
  }

  if (!gangEntries.empty()) {
    negotiateGangs(gangEntries, resourcePool, taken);
  }
  if (federation_.has_value()) {
    federation::FederationPlane& fed = *federation_;
    fed.purge(sim_.now());
    // Requests still live after the notify/gang passes went unmatched
    // this cycle (matched ones were invalidated above): candidates for
    // cross-pool referral, gated by the peers' schema digests. Each
    // carries its job's trace context so referral spans land in it.
    std::vector<federation::UnmatchedRequest> unmatched;
    for (const matchmaking::engine::Slot& slot : requestPool.slots()) {
      if (!slot.live || slot.isGang) continue;
      federation::UnmatchedRequest entry;
      entry.key = slot.key;
      entry.ad = slot.ad();
      if (tracing) entry.trace = requestTraceFor(slot.key);
      unmatched.push_back(std::move(entry));
    }
    fed.referUnmatched(unmatched, sim_.now());
  }
  if (config_.registry != nullptr) {
    adScanHist_->observe(adScanSeconds);
    fairShareHist_->observe(stats.serviceOrderSeconds);
    rankHist_->observe(stats.scanSeconds);
    notifyHist_->observe(wallSecondsSince(notifyStart));
    cycleHist_->observe(wallSecondsSince(cycleStart));
    matchesLastCycle_->set(static_cast<double>(stats.matches));
    unmatchedLastCycle_->set(static_cast<double>(
        stats.requestsConsidered > stats.matches
            ? stats.requestsConsidered - stats.matches
            : 0));
    candidatesEvaluated_->inc(stats.candidateEvaluations);
    candidatesPruned_->inc(stats.candidatesPruned);
    staticSkips_->inc(stats.staticSkips);
    if (requestPool.guardsElided() > guardsElidedSeen_) {
      guardsElided_->inc(requestPool.guardsElided() - guardsElidedSeen_);
      guardsElidedSeen_ = requestPool.guardsElided();
    }
    const double considered = static_cast<double>(stats.candidatesPruned +
                                                  stats.candidateEvaluations);
    pruneRatioLastCycle_->set(
        considered > 0.0 ? static_cast<double>(stats.candidatesPruned) /
                               considered
                         : 0.0);
    indexedAds_->set(static_cast<double>(resourcePool.liveCount()));
    indexRebuilds_->set(static_cast<double>(resourcePool.rebuilds()));
    policySolveHist_->observe(stats.policySolveSeconds);
    policyMatchedPairs_->set(static_cast<double>(stats.matches));
    policyAggregateRank_->set(stats.aggregateRank);
    policyAuctionRounds_->inc(stats.auctionRounds);
  }
  if (tracing) {
    // Externally timed phase spans under the cycle root. fairshare and
    // scan run inside negotiate(); their starts are reconstructed
    // back-to-back after the ad scan — durations are exact, offsets
    // within the cycle are the best available estimate.
    const double cycleEndTs = obs::steadyNowSeconds();
    const auto phaseSpan = [&](const char* name, double start,
                               double duration) {
      obs::SpanRecord rec;
      rec.trace = cycleCtx.trace;
      rec.parent = cycleCtx.span;
      rec.span = tracer->mintSpanId();
      rec.name = name;
      rec.startSeconds = start;
      rec.durationSeconds = duration;
      tracer->record(std::move(rec));
    };
    double at = cycleStartTs;
    phaseSpan("phase.adscan", at, adScanSeconds);
    at += adScanSeconds;
    phaseSpan("phase.fairshare", at, stats.serviceOrderSeconds);
    at += stats.serviceOrderSeconds;
    phaseSpan("phase.scan", at, stats.scanSeconds);
    phaseSpan("phase.notify", notifyStartTs, cycleEndTs - notifyStartTs);
    obs::SpanRecord root;
    root.trace = cycleCtx.trace;
    root.span = cycleCtx.span;
    root.name = "negotiate.cycle";
    root.startSeconds = cycleStartTs;
    root.durationSeconds = cycleEndTs - cycleStartTs;
    root.tags.emplace_back("matches", std::to_string(stats.matches));
    root.tags.emplace_back("requests",
                           std::to_string(stats.requestsConsidered));
    root.tags.emplace_back("resources",
                           std::to_string(stats.resourcesConsidered));
    tracer->record(std::move(root));
  }
  // Trace bookkeeping ages out with the ads: a request silent for 8 ad
  // lifetimes is gone for good (completed, or its CA died) — if it ever
  // comes back it roots a fresh trace.
  if (!requestTraces_.empty()) {
    const Time ttl = std::max(config_.adLifetime * 8.0, 600.0);
    for (auto it = requestTraces_.begin(); it != requestTraces_.end();) {
      if (it->second.lastSeen + ttl < sim_.now()) {
        it = requestTraces_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return stats;
}

obs::TraceContext PoolManager::requestTraceFor(const std::string& key) {
  if (config_.tracer == nullptr || !config_.tracer->enabled()) return {};
  auto [it, inserted] = requestTraces_.try_emplace(key);
  RequestTrace& rt = it->second;
  rt.lastSeen = sim_.now();
  if (inserted || !rt.ctx.valid()) {
    // A request that reached negotiation without passing intake (tools
    // injecting ads, referral bookkeeping) still gets a root.
    obs::ActiveSpan root = config_.tracer->startTrace("ad.intake");
    root.tag("request", key);
    rt.ctx = root.context();
  }
  return rt.ctx;
}

// --- federation::FederationHost --------------------------------------------

bool PoolManager::storeFlockedAd(const std::string& storeKey,
                                 const classad::ClassAdPtr& ad,
                                 std::uint64_t revision,
                                 matchmaking::Time lifetime) {
  return resources_.update(storeKey, ad, sim_.now(), revision, lifetime);
}

void PoolManager::dropFlockedAd(const std::string& storeKey) {
  resources_.invalidate(storeKey);
}

std::optional<matchmaking::Match> PoolManager::evaluateReferral(
    const classad::ClassAdPtr& request, matchmaking::Time now) {
  resources_.expire(now);
  return matchmaker_.bestMatchFor(request, *resources_.pool(), now);
}

void PoolManager::serveLocalMatch(const matchmaking::Match& match,
                                  const obs::TraceContext& trace) {
  ++metrics_.matchesIssued;
  matchmaking::MatchNotification toResource;
  toResource.myAd = match.resource;
  toResource.peerAd = match.request;
  toResource.peerContact = match.requestContact;
  toResource.ticket = matchmaking::kNoTicket;
  // The serving hop's span context: the RA's claim spans join the
  // origin job's trace through it.
  toResource.trace = trace;
  net_.send(config_.address, match.resourceContact, std::move(toResource));
}

bool PoolManager::completeRemoteMatch(
    const federation::ReferralResponse& response) {
  const matchmaking::StoredAd* stored = requests_.find(response.requestKey);
  if (stored == nullptr || !stored->ad || !response.resourceAd) return false;
  ++metrics_.matchesIssued;
  const std::string requestContact =
      stored->ad->getString(config_.matchmaker.protocol.contact).value_or("");
  // A remote pool served the referral: the customer-side notification
  // gets a "match.notify" span parented on the serving hop's context,
  // keeping the whole cross-pool journey in the job's single trace.
  obs::ActiveSpan notifySpan =
      obs::startSpan(config_.tracer, "match.notify", response.trace);
  notifySpan.tag("resource", response.resourceContact);
  notifySpan.tag("serving_pool", response.servingPool);
  if (const auto it = requestTraces_.find(response.requestKey);
      it != requestTraces_.end()) {
    it->second.matched = true;
    it->second.lastSeen = sim_.now();
  }
  matchmaking::MatchNotification toCustomer;
  toCustomer.myAd = stored->ad;
  toCustomer.peerAd = response.resourceAd;
  toCustomer.peerContact = response.resourceContact;
  toCustomer.ticket = response.ticket;
  toCustomer.trace =
      notifySpan.active() ? notifySpan.context() : response.trace;
  net_.send(config_.address, requestContact, std::move(toCustomer));
  // Withdraw the request until its CA re-advertises, exactly as after a
  // local match. The claim itself runs CA→RA across the pools.
  requests_.invalidate(response.requestKey);
  return true;
}

classad::analysis::Schema PoolManager::localResourceSchema() const {
  std::vector<classad::ClassAdPtr> local;
  for (const matchmaking::StoredAd* entry : resources_.entries()) {
    if (federation::FederationPlane::isFlockedKey(entry->key)) continue;
    local.push_back(entry->ad);
  }
  return classad::analysis::Schema::fromAds(local);
}

classad::analysis::Schema PoolManager::localRequestSchema() const {
  std::vector<classad::ClassAdPtr> local;
  for (const matchmaking::StoredAd* entry : requests_.entries()) {
    local.push_back(entry->ad);
  }
  return classad::analysis::Schema::fromAds(local);
}

std::size_t PoolManager::negotiateGangs(
    const std::vector<std::pair<std::string, classad::ClassAdPtr>>&
        gangEntries,
    const matchmaking::engine::PreparedPool& resources,
    std::vector<char>& taken) {
  std::size_t placed = 0;
  for (const auto& [storeKey, gangAd] : gangEntries) {
    const classad::ClassAd& gang = *gangAd;
    const auto result = gangMatcher_.match(gang, resources, &taken);
    if (!result) continue;
    const std::string gangContact =
        gang.getString(config_.matchmaker.protocol.contact).value_or("");
    // All legs of a placed gang share the gang request's trace; each leg
    // gets its own match.notify span.
    const obs::TraceContext gangCtx = requestTraceFor(storeKey);
    if (const auto it = requestTraces_.find(storeKey);
        it != requestTraces_.end()) {
      it->second.matched = true;
    }
    for (std::size_t leg = 0; leg < result->legs.size(); ++leg) {
      const matchmaking::GangLeg& assigned = result->legs[leg];
      ++metrics_.matchesIssued;
      // The customer's copy of the leg ad is stamped with the gang's
      // store key and the leg index so a gang-aware customer can
      // correlate (and run compensation if a later leg's claim fails).
      classad::ClassAd legAd = *assigned.legAd;
      legAd.set("GangKey", storeKey);
      legAd.set("LegIndex", static_cast<std::int64_t>(leg));
      const std::string resourceContact =
          assigned.resource->getString(config_.matchmaker.protocol.contact)
              .value_or("");
      obs::ActiveSpan legSpan =
          obs::startSpan(config_.tracer, "match.notify", gangCtx);
      legSpan.tag("resource", resourceContact);
      legSpan.tag("leg", std::to_string(leg));
      matchmaking::MatchNotification toCustomer;
      toCustomer.myAd = classad::makeShared(std::move(legAd));
      toCustomer.peerAd = assigned.resource;
      toCustomer.peerContact = resourceContact;
      toCustomer.ticket = assigned.ticket;
      toCustomer.trace = legSpan.context();
      net_.send(config_.address, gangContact, std::move(toCustomer));

      matchmaking::MatchNotification toResource;
      toResource.myAd = assigned.resource;
      toResource.peerAd = assigned.legAd;
      toResource.peerContact = gangContact;
      toResource.trace = legSpan.context();
      net_.send(config_.address, resourceContact, std::move(toResource));
    }
    requests_.invalidate(storeKey);
    ++placed;
  }
  return placed;
}

}  // namespace htcsim
