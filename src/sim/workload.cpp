#include "sim/workload.h"

namespace htcsim {

namespace {

const MachinePoolConfig::Platform& pickPlatform(
    const std::vector<MachinePoolConfig::Platform>& platforms, Rng& rng) {
  double total = 0.0;
  for (const auto& p : platforms) total += p.weight;
  double draw = rng.uniform(0.0, total);
  for (const auto& p : platforms) {
    draw -= p.weight;
    if (draw <= 0.0) return p;
  }
  return platforms.back();
}

}  // namespace

std::vector<MachineSpec> generateMachines(const MachinePoolConfig& config,
                                          Rng& rng) {
  std::vector<MachineSpec> specs;
  specs.reserve(config.count);
  const double policyTotal = config.fracAlwaysAvailable +
                             config.fracClassicIdle + config.fracFigure1;
  for (std::size_t i = 0; i < config.count; ++i) {
    MachineSpec spec;
    spec.name = "node" + std::to_string(i) + ".cs.wisc.edu";
    const auto& platform = pickPlatform(config.platforms, rng);
    spec.arch = platform.arch;
    spec.opSys = platform.opSys;
    spec.memoryMB = config.memoryChoicesMB[rng.below(
        config.memoryChoicesMB.size())];
    spec.mips = rng.range(config.mipsMin, config.mipsMax);
    // KFlops loosely tracks Mips (Figure 1: 104 Mips, 21893 KFlops).
    spec.kflops = static_cast<std::int64_t>(
        static_cast<double>(spec.mips) * rng.uniform(150.0, 250.0));
    spec.diskKB = rng.range(config.diskMinKB, config.diskMaxKB);

    const double policyDraw = rng.uniform(0.0, policyTotal);
    if (policyDraw < config.fracAlwaysAvailable) {
      spec.policy = OwnerPolicy::AlwaysAvailable;
    } else if (policyDraw <
               config.fracAlwaysAvailable + config.fracClassicIdle) {
      spec.policy = OwnerPolicy::ClassicIdle;
    } else {
      spec.policy = OwnerPolicy::Figure1;
    }
    if (spec.policy == OwnerPolicy::AlwaysAvailable) {
      spec.meanOwnerAbsence = 0.0;  // dedicated node, no owner
    } else {
      spec.meanOwnerAbsence = config.meanOwnerAbsence;
      spec.meanOwnerSession = config.meanOwnerSession;
    }
    spec.researchGroup = config.researchGroup;
    spec.friends = config.friends;
    spec.untrusted = config.untrusted;
    specs.push_back(std::move(spec));
  }
  return specs;
}

Job generateJob(const JobWorkloadConfig& config, Rng& rng, std::uint64_t id,
                std::string owner) {
  Job job;
  job.id = id;
  job.owner = std::move(owner);
  job.cmd = "run_sim";
  job.totalWork = rng.heavyTail(config.meanWork, config.workCap);
  job.remainingWork = job.totalWork;
  job.memoryMB =
      config.memoryChoicesMB[rng.below(config.memoryChoicesMB.size())];
  job.diskKB = 15000;
  job.checkpointable = rng.chance(config.fracCheckpointable);
  if (rng.chance(config.fracPlatformConstrained) &&
      !config.platforms.empty()) {
    const auto& platform = pickPlatform(config.platforms, rng);
    job.requiredArch = platform.arch;
    job.requiredOpSys = platform.opSys;
  }
  return job;
}

std::vector<Time> generateArrivals(const JobWorkloadConfig& config, Rng& rng,
                                   Time duration) {
  std::vector<Time> arrivals;
  if (config.jobsPerUserPerHour <= 0.0) return arrivals;
  const double meanGap = 3600.0 / config.jobsPerUserPerHour;
  Time t = rng.exponential(meanGap);
  while (t < duration) {
    arrivals.push_back(t);
    t += rng.exponential(meanGap);
  }
  return arrivals;
}

}  // namespace htcsim
