// machine.h - The simulated workstation: hardware attributes plus the
// owner-activity process that drives opportunistic scheduling.
//
// The paper's motivating policies key on owner presence: "the keyboard
// hasn't been touched for over fifteen minutes and the load average is
// less than 0.1" (Section 1). We model the owner as an on/off renewal
// process (exponentially distributed absences and sessions); while the
// owner is present the keyboard is live and the load average is high.
// Everything the paper's Figure 1 ad publishes — KeyboardIdle, LoadAvg,
// DayTime, State — derives from this model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace htcsim {

/// Owner policy installed on a machine. Section 4: "Resources in the
/// Condor system are represented by Resource-owner Agents (RAs), which are
/// responsible for enforcing the policies stipulated by resource owners."
enum class OwnerPolicy : unsigned char {
  /// Dedicated node: always willing, never preempts for its owner.
  AlwaysAvailable,
  /// The classic Condor policy: run jobs only when the workstation is
  /// idle (KeyboardIdle > 15 min && LoadAvg < 0.3); vacate on owner
  /// return.
  ClassicIdle,
  /// The full Figure 1 policy: research group always, friends when idle,
  /// strangers only at night, never the untrusted, with the tiered Rank.
  Figure1,
};

struct MachineSpec {
  std::string name;
  std::string arch = "INTEL";
  std::string opSys = "SOLARIS251";
  std::int64_t memoryMB = 64;
  std::int64_t diskKB = 323496;
  std::int64_t mips = 104;
  std::int64_t kflops = 21893;

  OwnerPolicy policy = OwnerPolicy::ClassicIdle;
  /// Principals for the Figure1 policy tiers.
  std::vector<std::string> researchGroup;
  std::vector<std::string> friends;
  std::vector<std::string> untrusted;

  /// Owner-activity process: mean seconds between owner sessions and mean
  /// session length. An arrival rate of 0 disables owner activity.
  double meanOwnerAbsence = 3600.0;
  double meanOwnerSession = 600.0;
};

/// Dynamic workstation state. The Machine schedules its own owner
/// arrival/departure events; the ResourceAgent reads the derived
/// attributes when it probes ("An RA periodically probes the resource to
/// determine its current state").
class Machine {
 public:
  Machine(Simulator& sim, MachineSpec spec, Rng rng);

  const MachineSpec& spec() const noexcept { return spec_; }

  bool ownerPresent() const noexcept { return ownerPresent_; }

  /// Seconds since the keyboard was last touched (0 while the owner sits
  /// at the machine).
  double keyboardIdle() const;

  /// Owner-induced load average (jobs run by the HTC system do not count,
  /// matching Condor's non-Condor load average).
  double loadAvg() const noexcept {
    return ownerPresent_ ? sessionLoad_ : 0.02;
  }

  /// Seconds since midnight of the simulated day (Figure 1's DayTime).
  double dayTime() const;

  /// Hook invoked on owner arrival/departure, used by the ResourceAgent
  /// to vacate immediately rather than at the next probe.
  void setOwnerChangeHook(std::function<void(bool ownerPresent)> hook) {
    ownerChangeHook_ = std::move(hook);
  }

  /// Stops scheduling further owner events (machine shutdown).
  void stop();

 private:
  void scheduleNextTransition();

  Simulator& sim_;
  MachineSpec spec_;
  Rng rng_;
  bool ownerPresent_ = false;
  double sessionLoad_ = 0.02;
  Time lastOwnerDeparture_;
  EventId pendingTransition_ = kInvalidEvent;
  std::function<void(bool)> ownerChangeHook_;
  bool stopped_ = false;
};

}  // namespace htcsim
