// federated_scenario.h - Wires N complete HTC pools sharing one simulated
// Network and links their managers into a federation (src/federation):
// peer flocking, schema-digest aggregation and cross-pool referral.
//
// Section 6 of the paper ("the Condor system has been extended to allow
// jobs to 'flock' between pools") motivates this: each pool keeps its own
// manager, its own accounting and its own negotiation cycle, and the
// federation plane moves work between them without any shared state.
// Every component below the managers is the unmodified single-pool code —
// RAs and CAs cannot tell whether their match crossed a pool boundary.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "faults/fault_plan.h"
#include "obs/registry.h"
#include "sim/customer_agent.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/pool_manager.h"
#include "sim/resource_agent.h"
#include "sim/workload.h"

namespace htcsim {

/// How the pool managers are peered.
enum class FederationTopology {
  kMesh,  ///< every manager peers with every other
  kRing,  ///< manager i peers with i-1 and i+1 (mod N)
  kStar,  ///< pool 0 is the hub; leaves peer only with it
};

struct FederatedScenarioConfig {
  std::uint64_t seed = 42;
  Time duration = 4.0 * 3600.0;

  std::size_t pools = 3;
  FederationTopology topology = FederationTopology::kMesh;

  /// Per-pool generators. Machine and user names are prefixed with the
  /// pool name ("pool1.node0.cs.wisc.edu", "pool1.raman") so addresses
  /// stay unique on the shared Network.
  MachinePoolConfig machines;
  JobWorkloadConfig workload;

  /// Pool indices that submit jobs; empty = all pools. A single entry
  /// ({0}) builds the demand-skew shape the referral path exists for:
  /// one overloaded pool, N-1 pools of idle machines.
  std::vector<std::size_t> jobPools;

  Network::Config network;
  /// Template manager config; address, pool name, peers and epoch are
  /// derived per pool from the topology. The federation sub-config's
  /// policy/interval knobs are honoured as given.
  PoolManager::Config manager;
  ResourceAgent::Config resourceAgent;
  CustomerAgent::Config customerAgent;

  /// Manager outages to inject: (pool index, crashAt, downFor).
  std::vector<std::tuple<std::size_t, Time, Time>> managerOutages;

  faults::FaultPlan faults;
};

/// N fully wired pools on one Simulator. Construction builds everything;
/// run() executes the configured duration.
class FederatedScenario {
 public:
  explicit FederatedScenario(FederatedScenarioConfig config);
  ~FederatedScenario();
  FederatedScenario(const FederatedScenario&) = delete;
  FederatedScenario& operator=(const FederatedScenario&) = delete;

  void run();
  void runUntil(Time until);

  const FederatedScenarioConfig& config() const noexcept { return config_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  Simulator& simulator() noexcept { return sim_; }
  Network& network() noexcept { return *net_; }
  obs::Registry& registry() noexcept { return registry_; }

  std::size_t poolCount() const noexcept { return pools_.size(); }
  static std::string poolName(std::size_t i) {
    return "pool" + std::to_string(i);
  }
  PoolManager& manager(std::size_t i) { return *pools_[i].manager; }
  std::vector<std::unique_ptr<ResourceAgent>>& resourceAgents(std::size_t i) {
    return pools_[i].resourceAgents;
  }
  std::vector<std::unique_ptr<CustomerAgent>>& customerAgents(std::size_t i) {
    return pools_[i].customerAgents;
  }
  CustomerAgent* agentFor(const std::string& user);

  /// Sum of idle+running+completed across all CAs in all pools.
  std::size_t totalJobs() const;
  std::size_t totalCompleted() const;

 private:
  struct Pool {
    std::string name;
    std::unique_ptr<PoolManager> manager;
    std::vector<std::unique_ptr<Machine>> machines;
    std::vector<std::unique_ptr<ResourceAgent>> resourceAgents;
    std::vector<std::unique_ptr<CustomerAgent>> customerAgents;
  };

  /// Peer manager addresses of pool `i` under the configured topology.
  std::vector<std::string> peersOf(std::size_t i) const;

  FederatedScenarioConfig config_;
  Simulator sim_;
  Metrics metrics_;
  obs::Registry registry_;
  Rng rng_;
  std::unique_ptr<Network> net_;
  std::vector<Pool> pools_;
};

}  // namespace htcsim
