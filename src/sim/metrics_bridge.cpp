#include "sim/metrics_bridge.h"

namespace htcsim {

void publishMetrics(const Metrics& m, obs::Registry& reg) {
  const auto set = [&reg](const char* name, double v) {
    reg.gauge(name)->set(v);
  };
  set("JobsSubmitted", static_cast<double>(m.jobsSubmitted));
  set("JobsCompleted", static_cast<double>(m.jobsCompleted));
  set("TotalWaitTime", m.totalWaitTime);
  set("TotalTurnaround", m.totalTurnaround);
  set("PreemptionsByOwner", static_cast<double>(m.preemptionsByOwner));
  set("PreemptionsByRank", static_cast<double>(m.preemptionsByRank));
  set("GoodputCpuSeconds", m.goodputCpuSeconds);
  set("BadputCpuSeconds", m.badputCpuSeconds);
  set("NegotiationCycles", static_cast<double>(m.negotiationCycles));
  set("MatchesIssued", static_cast<double>(m.matchesIssued));
  set("ClaimsAccepted", static_cast<double>(m.claimsAccepted));
  set("ClaimsRejected", static_cast<double>(m.claimsRejected));
  set("StaleNotifications", static_cast<double>(m.staleNotifications));
  set("OrphanedClaimResets", static_cast<double>(m.orphanedClaimResets));
  set("ClaimTimeouts", static_cast<double>(m.claimTimeouts));
  set("LeasesGranted", static_cast<double>(m.leasesGranted));
  set("LeasesRenewed", static_cast<double>(m.leasesRenewed));
  set("LeasesExpired", static_cast<double>(m.leasesExpired));
  set("LeaseExpiriesDetected",
      static_cast<double>(m.leaseExpiriesDetected));
  set("LeaseRecoveries", static_cast<double>(m.leaseRecoveries));
  set("HeartbeatsAcked", static_cast<double>(m.heartbeatsAcked));
  set("HeartbeatRttSum", m.heartbeatRttSum);
  set("LeaseLostCpuSecondsEstimate", m.leaseLostCpuSecondsEstimate);
  set("MachineBusySeconds", m.machineBusySeconds);
  set("EventLogSize", static_cast<double>(m.history.size()));
  set("EventLogDropped", static_cast<double>(m.history.dropped()));
}

void publishNetwork(const Network& n, obs::Registry& reg) {
  reg.gauge("NetworkDelivered")->set(static_cast<double>(n.delivered()));
  reg.gauge("NetworkDroppedLoss")->set(static_cast<double>(n.droppedLoss()));
  reg.gauge("NetworkDroppedUnknown")
      ->set(static_cast<double>(n.droppedUnknown()));
  reg.gauge("NetworkDroppedPartition")
      ->set(static_cast<double>(n.droppedPartition()));
}

}  // namespace htcsim
