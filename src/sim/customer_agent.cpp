#include "sim/customer_agent.h"

#include <algorithm>

namespace htcsim {

CustomerAgent::CustomerAgent(Simulator& sim, Transport& net, Metrics& metrics,
                             std::string user, Rng rng, Config config)
    : sim_(sim),
      net_(net),
      metrics_(metrics),
      user_(std::move(user)),
      rng_(rng),
      config_(std::move(config)),
      address_("ca://" + user_) {}

CustomerAgent::~CustomerAgent() { stop(); }

void CustomerAgent::start() {
  if (started_) return;
  started_ = true;
  net_.attach(address_, this);
  adTimer_.emplace(sim_, config_.adInterval, [this] { advertiseIdleJobs(); },
                   rng_.uniform(0.0, config_.adInterval));
}

void CustomerAgent::stop() {
  if (!started_) return;
  started_ = false;
  adTimer_.reset();
  for (auto& [contact, claimLease] : leases_) {
    if (claimLease.timer != kInvalidEvent) sim_.cancel(claimLease.timer);
  }
  leases_.clear();
  net_.detach(address_);
}

void CustomerAgent::kill() {
  // Same silence as ResourceAgent::kill(): no invalidations, no
  // releases, no farewell heartbeats. RAs holding claims for this
  // customer only find out when their leases run dry.
  stop();
}

void CustomerAgent::submit(Job job) {
  job.submitTime = sim_.now();
  job.state = JobState::Idle;
  job.remainingWork = job.totalWork;
  ++metrics_.jobsSubmitted;
  {
    classad::ClassAd event = EventLog::make("submitted", sim_.now());
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job.id));
    event.set("Work", job.totalWork);
    metrics_.history.record(std::move(event));
  }
  jobIndex_[job.id] = jobs_.size();
  jobs_.push_back(std::move(job));
  if (started_) advertiseJob(jobs_.back());
}

std::size_t CustomerAgent::idleJobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const Job& j) {
        return j.state == JobState::Idle || j.state == JobState::Matching;
      }));
}

std::size_t CustomerAgent::runningJobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const Job& j) { return j.state == JobState::Running; }));
}

std::size_t CustomerAgent::completedJobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const Job& j) { return j.done(); }));
}

std::string CustomerAgent::adKey(const Job& job) const {
  return address_ + "#" + std::to_string(job.id);
}

classad::ClassAd CustomerAgent::buildRequestAd(const Job& job) const {
  classad::ClassAd ad;
  ad.set("Type", "Job");
  ad.set("QDate", job.submitTime);
  ad.set("Owner", user_);
  ad.set("Cmd", job.cmd);
  ad.set("JobId", static_cast<std::int64_t>(job.id));
  ad.set("WantRemoteSyscalls", job.wantRemoteSyscalls);
  ad.set("WantCheckpoint", job.checkpointable);
  ad.set("Memory", job.memoryMB);
  ad.set("Disk", job.diskKB);
  ad.set("RemainingWork", job.remainingWork);
  ad.set("ContactAddress", address_);
  // Figure 2's preference: fast floating point, then roomy memory.
  ad.setExpr("Rank", "KFlops/1E3 + other.Memory/32");
  std::string constraint = "other.Type == \"Machine\"";
  if (!job.requiredArch.empty()) {
    constraint += " && Arch == \"" + job.requiredArch + "\"";
  }
  if (!job.requiredOpSys.empty()) {
    constraint += " && OpSys == \"" + job.requiredOpSys + "\"";
  }
  constraint += " && other.Memory >= self.Memory";
  constraint += " && other.Disk >= self.Disk";
  ad.setExpr("Constraint", constraint);
  return ad;
}

void CustomerAgent::advertiseJob(const Job& job) {
  matchmaking::Advertisement adMsg;
  adMsg.ad = classad::makeShared(buildRequestAd(job));
  adMsg.sequence = ++adSequence_;
  adMsg.isRequest = true;
  adMsg.key = adKey(job);
  net_.send(address_, config_.managerAddress, adMsg);
  // Flock: a job starved locally is also advertised to remote pools.
  if (!config_.flockManagers.empty() &&
      sim_.now() - job.submitTime >= config_.flockAfter) {
    for (const std::string& remote : config_.flockManagers) {
      net_.send(address_, remote, adMsg);
    }
  }
}

void CustomerAgent::advertiseIdleJobs() {
  std::size_t sent = 0;
  for (const Job& job : jobs_) {
    if (job.state != JobState::Idle) continue;
    advertiseJob(job);
    if (config_.maxAdsPerCycle != 0 && ++sent >= config_.maxAdsPerCycle) {
      break;
    }
  }
}

void CustomerAgent::invalidateJobAd(const Job& job) {
  net_.send(address_, config_.managerAddress,
            AdInvalidate{adKey(job), /*isRequest=*/true});
  for (const std::string& remote : config_.flockManagers) {
    net_.send(address_, remote, AdInvalidate{adKey(job), /*isRequest=*/true});
  }
}

void CustomerAgent::deliver(const Envelope& env) {
  if (const auto* match =
          std::get_if<matchmaking::MatchNotification>(&env.payload)) {
    handleMatch(*match);
  } else if (const auto* resp =
                 std::get_if<matchmaking::ClaimResponse>(&env.payload)) {
    handleClaimResponse(env, *resp);
  } else if (const auto* rel =
                 std::get_if<matchmaking::ClaimRelease>(&env.payload)) {
    handleRelease(*rel);
  } else if (const auto* hb =
                 std::get_if<matchmaking::Heartbeat>(&env.payload)) {
    handleHeartbeatAck(env, *hb);
  } else if (const auto* expired =
                 std::get_if<matchmaking::LeaseExpired>(&env.payload)) {
    handleLeaseExpired(env, *expired);
  }
}

Job* CustomerAgent::findJob(std::uint64_t id) {
  auto it = jobIndex_.find(id);
  if (it == jobIndex_.end()) return nullptr;
  return &jobs_[it->second];
}

void CustomerAgent::handleMatch(const matchmaking::MatchNotification& match) {
  if (!match.myAd) return;
  const std::uint64_t jobId = static_cast<std::uint64_t>(
      match.myAd->getInteger("JobId").value_or(0));
  Job* job = findJob(jobId);
  if (job == nullptr || job->state != JobState::Idle) {
    // The matchmaker worked from a stale picture (job already placed or
    // finished) — a normal consequence of weak consistency; just drop it.
    ++metrics_.staleNotifications;
    return;
  }
  // Claim the matched resource directly (Step 4, Figure 3). The claim
  // carries the job's CURRENT ad, not the advertised snapshot.
  job->state = JobState::Matching;
  pendingClaims_[match.peerContact] = {jobId, match.ticket, match.trace};
  matchmaking::ClaimRequest claim;
  claim.requestAd = classad::makeShared(buildRequestAd(*job));
  claim.ticket = match.ticket;
  claim.customerContact = address_;
  claim.trace = match.trace;
  net_.send(address_, match.peerContact, std::move(claim));
  if (config_.claimTimeout > 0.0) {
    const std::string contact = match.peerContact;
    sim_.after(config_.claimTimeout, [this, contact, jobId] {
      auto pending = pendingClaims_.find(contact);
      if (pending == pendingClaims_.end() ||
          pending->second.jobId != jobId) {
        return;  // answered (or superseded) in time
      }
      pendingClaims_.erase(pending);
      Job* stuck = findJob(jobId);
      if (stuck != nullptr && stuck->state == JobState::Matching) {
        ++metrics_.claimTimeouts;
        stuck->state = JobState::Idle;
        if (started_) advertiseJob(*stuck);
      }
    });
  }
}

void CustomerAgent::handleClaimResponse(const Envelope& env,
                                        const matchmaking::ClaimResponse& resp) {
  auto it = pendingClaims_.find(env.from);
  if (it == pendingClaims_.end()) return;
  Job* job = findJob(it->second.jobId);
  const matchmaking::Ticket ticket = it->second.ticket;
  const obs::TraceContext claimTrace = it->second.trace;
  pendingClaims_.erase(it);
  if (job == nullptr || job->state != JobState::Matching) return;
  if (!resp.accepted) {
    ++job->claimRejections;
    job->state = JobState::Idle;  // back to matchmaking at the next cycle
    classad::ClassAd event = EventLog::make("claim-rejected", sim_.now());
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Resource", env.from);
    event.set("Reason", resp.reason);
    metrics_.history.record(std::move(event));
    return;
  }
  job->state = JobState::Running;
  job->runningOn = env.from;
  if (job->firstStartTime < 0.0) job->firstStartTime = sim_.now();
  {
    classad::ClassAd event = EventLog::make("started", sim_.now());
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Resource", env.from);
    metrics_.history.record(std::move(event));
  }
  if (job->lostLease) {
    // First successful start after a lease loss: the recovery the lease
    // machinery exists to deliver.
    job->lostLease = false;
    ++metrics_.leaseRecoveries;
    classad::ClassAd event = EventLog::make("lease-recovered", sim_.now());
    event.set("Side", "CA");
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Resource", env.from);
    metrics_.history.record(std::move(event));
  }
  if (resp.leaseDuration > 0.0) {
    // The claim came with a lease: keep it alive with heartbeats and
    // watch for the RA going silent.
    ClaimLease claimLease;
    claimLease.jobId = job->id;
    claimLease.ticket = ticket;
    claimLease.startedAt = sim_.now();
    claimLease.trace = claimTrace;
    claimLease.monitor = lease::HeartbeatMonitor(config_.heartbeat,
                                                 resp.leaseDuration, sim_.now());
    const std::string contact = env.from;
    claimLease.timer = sim_.at(claimLease.monitor.nextDue(),
                               [this, contact] { onHeartbeatDue(contact); });
    dropLease(contact);  // a stale entry must not keep its timer alive
    leases_[contact] = std::move(claimLease);
  }
  // The job is placed: retract its request ad so the matchmaker stops
  // re-matching it ("When the CA finishes using the resource, it
  // relinquishes the claim" — conversely, while it uses one, it is not a
  // customer for another).
  invalidateJobAd(*job);
}

void CustomerAgent::handleRelease(const matchmaking::ClaimRelease& rel) {
  Job* job = findJob(rel.jobId);
  if (job == nullptr || job->state != JobState::Running) return;
  dropLease(job->runningOn);  // clean end of claim: lease is done with
  job->runningOn.clear();
  if (rel.completed) {
    job->state = JobState::Completed;
    job->completionTime = sim_.now();
    job->remainingWork = 0.0;
    ++metrics_.jobsCompleted;
    metrics_.totalWaitTime += job->firstStartTime - job->submitTime;
    metrics_.totalTurnaround += job->completionTime - job->submitTime;
    metrics_.totalWorkCompleted += job->totalWork;
    metrics_.goodputCpuSeconds += rel.cpuSecondsUsed;
    classad::ClassAd event = EventLog::make("completed", sim_.now());
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Work", job->totalWork);
    event.set("Turnaround", job->completionTime - job->submitTime);
    event.set("Evictions", job->evictions);
    metrics_.history.record(std::move(event));
    return;
  }
  // Evicted. Checkpointable jobs resume from where they left off (their
  // work so far is goodput, minus the configured checkpoint cost); the
  // rest restart from scratch (badput).
  ++job->evictions;
  if (job->checkpointable) {
    const double overhead =
        std::min(config_.checkpointOverheadSeconds, rel.cpuSecondsUsed);
    const double preserved = rel.cpuSecondsUsed - overhead;
    job->remainingWork = std::max(0.0, job->remainingWork - preserved);
    metrics_.goodputCpuSeconds += preserved;
    metrics_.badputCpuSeconds += overhead;
  } else {
    metrics_.badputCpuSeconds += rel.cpuSecondsUsed;
  }
  {
    classad::ClassAd event = EventLog::make("evicted", sim_.now());
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Checkpointed", job->checkpointable);
    event.set("CpuSeconds", rel.cpuSecondsUsed);
    event.set("Reason", rel.reason);
    metrics_.history.record(std::move(event));
  }
  job->state = JobState::Idle;
  if (started_) advertiseJob(*job);
}

void CustomerAgent::dropLease(const std::string& contact) {
  auto it = leases_.find(contact);
  if (it == leases_.end()) return;
  if (it->second.timer != kInvalidEvent) sim_.cancel(it->second.timer);
  leases_.erase(it);
}

void CustomerAgent::onHeartbeatDue(const std::string& contact) {
  auto it = leases_.find(contact);
  if (it == leases_.end()) return;
  ClaimLease& claimLease = it->second;
  claimLease.timer = kInvalidEvent;
  const auto action = claimLease.monitor.onDue(sim_.now(), rng_.uniform());
  if (action.declareDead) {
    leaseLost(contact, "missed-heartbeats");
    return;
  }
  if (action.sendBeat) {
    net_.send(address_, contact,
              matchmaking::Heartbeat{claimLease.ticket, claimLease.jobId,
                                     action.sequence, /*ack=*/false,
                                     claimLease.trace});
  }
  claimLease.timer = sim_.at(claimLease.monitor.nextDue(),
                             [this, contact] { onHeartbeatDue(contact); });
}

void CustomerAgent::handleHeartbeatAck(const Envelope& env,
                                       const matchmaking::Heartbeat& hb) {
  if (!hb.ack) return;  // customers only consume acks
  auto it = leases_.find(env.from);
  if (it == leases_.end() || it->second.ticket != hb.ticket) return;
  if (const auto rtt = it->second.monitor.ack(hb.sequence, sim_.now())) {
    ++metrics_.heartbeatsAcked;
    metrics_.heartbeatRttSum += *rtt;
    // The monitor pushed nextDue out to a full interval; move the timer
    // accordingly (the pending one was armed for the retry schedule).
    if (it->second.timer != kInvalidEvent) sim_.cancel(it->second.timer);
    const std::string contact = env.from;
    it->second.timer = sim_.at(it->second.monitor.nextDue(),
                               [this, contact] { onHeartbeatDue(contact); });
  }
}

void CustomerAgent::handleLeaseExpired(const Envelope& env,
                                       const matchmaking::LeaseExpired& notice) {
  auto it = leases_.find(env.from);
  if (it == leases_.end() || it->second.ticket != notice.ticket) return;
  leaseLost(env.from, "lease-expired-notice");
}

void CustomerAgent::leaseLost(const std::string& contact, const char* reason) {
  auto it = leases_.find(contact);
  if (it == leases_.end()) return;
  const std::uint64_t jobId = it->second.jobId;
  const Time startedAt = it->second.startedAt;
  dropLease(contact);
  Job* job = findJob(jobId);
  if (job == nullptr || job->state != JobState::Running ||
      job->runningOn != contact) {
    return;
  }
  ++metrics_.leaseExpiriesDetected;
  // The RA (and whatever work the job did there) is gone; nobody will
  // send the final release that normally accounts the loss, so estimate
  // it from elapsed wall time at reference speed.
  metrics_.leaseLostCpuSecondsEstimate += sim_.now() - startedAt;
  {
    classad::ClassAd event = EventLog::make("lease-expired", sim_.now());
    event.set("Side", "CA");
    event.set("Owner", user_);
    event.set("JobId", static_cast<std::int64_t>(job->id));
    event.set("Resource", contact);
    event.set("Reason", reason);
    metrics_.history.record(std::move(event));
  }
  ++job->evictions;
  job->lostLease = true;
  job->state = JobState::Idle;
  job->runningOn.clear();
  // Checkpointable or not, there is nothing to resume from — the RA
  // died without checkpointing — so remainingWork stays as-is and the
  // job simply re-enters matchmaking.
  if (started_) advertiseJob(*job);
}

}  // namespace htcsim
