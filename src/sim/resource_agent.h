// resource_agent.h - The Resource-owner Agent (RA) of Section 4.
//
// "Resources in the Condor system are represented by Resource-owner Agents
// (RAs), which are responsible for enforcing the policies stipulated by
// resource owners. An RA periodically probes the resource to determine its
// current state, and encapsulates this information in a classad along with
// the owner's usage policy."
//
// The RA owns the full provider side of the protocols: it advertises
// (Step 1), mints the authorization ticket the matchmaker will hand to the
// matched customer, verifies claims against its CURRENT state (Step 4 and
// the weak-consistency design), executes the job, preempts when the owner
// returns or its policy stops holding, and yields to higher-ranked
// customers ("although the workstation is currently busy, it is still
// interested in hearing from higher priority customers").
#pragma once

#include <optional>
#include <string>

#include "classad/classad.h"
#include "matchmaker/claiming.h"
#include "matchmaker/protocol.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/transport.h"

namespace htcsim {

struct ResourceAgentConfig {
  Time adInterval = 60.0;
  Time adLifetime = 180.0;
  std::string managerAddress = "collector";
  matchmaking::ClaimPolicy claimPolicy;
  /// Grace between a policy violation (owner returns, day breaks) and the
  /// actual eviction, seconds (0 = instant vacate). The job keeps running
  /// — and accruing work — through the grace window (Condor's
  /// MaxVacateTime); if the policy recovers within the window (the owner
  /// steps away again), the eviction is cancelled. Rank preemption and
  /// explicit releases are never delayed.
  Time vacateGrace = 0.0;
  /// Lease granted on each accepted claim: the customer must heartbeat
  /// within this window or the claim is torn down unilaterally and the
  /// machine re-advertised. 0 disables leasing (the seed behaviour: a
  /// dead customer wedges the machine until an explicit release).
  Time leaseDuration = 0.0;
  /// Origin pool name. Tickets are salted with it
  /// (matchmaking::namespaceTicket) so RAs in different federated pools
  /// can never mint colliding ticket streams; "" (single-pool) leaves
  /// minting bit-for-bit unchanged.
  std::string pool;
};

class ResourceAgent : public Endpoint {
 public:
  using Config = ResourceAgentConfig;

  ResourceAgent(Simulator& sim, Transport& net, Machine& machine,
                Metrics& metrics, Rng rng, Config config = {});
  ~ResourceAgent() override;

  /// Begins periodic advertisement. Attaches to the network.
  void start();
  void stop();

  /// Process death: detaches without releasing the claim, invalidating
  /// the ad, or reporting usage — the silence a crashed (kill -9'd)
  /// agent leaves behind. Only a lease lets the customer recover from
  /// this. Fault-injection entry point (FaultKind::kKillProcess).
  void kill();

  void deliver(const Envelope& envelope) override;

  const std::string& address() const noexcept { return address_; }
  bool claimed() const noexcept { return claim_.has_value(); }
  const std::string& currentUser() const;

  /// Probes the machine and builds the advertisement as of now — the ad
  /// that would be (or was just) published. Exposed for tests and tools.
  classad::ClassAd buildAd() const;

  /// The ticket currently outstanding (tests).
  matchmaking::Ticket outstandingTicket() const noexcept { return ticket_; }

 private:
  void advertise();
  void handleClaimRequest(const Envelope& env,
                          const matchmaking::ClaimRequest& req);
  void handleRelease(const matchmaking::ClaimRelease& rel);
  void handleHeartbeat(const Envelope& env, const matchmaking::Heartbeat& hb);
  void onLeaseDeadline();
  void recordLeaseEvent(const char* name);
  /// Re-checks the owner policy against the running claim; vacates if it
  /// no longer holds (owner returned, day broke, ...).
  void enforcePolicy(const char* trigger);
  void vacate(const std::string& reason, bool ownerInitiated);
  void finishClaim(double wallSeconds);
  void onJobComplete();
  void mintTicket();

  struct ActiveClaim {
    matchmaking::Ticket ticket = matchmaking::kNoTicket;
    std::string customerContact;
    std::string user;
    std::uint64_t jobId = 0;
    double workAtStart = 0.0;  ///< job's remaining reference CPU-seconds
    Time startedAt = 0.0;
    double resourceRank = 0.0;  ///< machine's Rank of this customer
    classad::ClassAdPtr requestAd;
    EventId completionEvent = kInvalidEvent;
    /// Lease bookkeeping (unused when Config::leaseDuration == 0).
    Time leaseExpiresAt = 0.0;
    Time lastHeartbeatAt = 0.0;
    std::uint64_t leaseRenewals = 0;
    EventId leaseEvent = kInvalidEvent;
    /// Trace context from the ClaimRequest, echoed on release so the
    /// claim's whole lifetime shares one trace (docs/OBSERVABILITY.md).
    obs::TraceContext trace;
  };

  double workDoneSoFar() const;

  /// Pending graceful eviction (kInvalidEvent when none).
  EventId pendingVacate_ = kInvalidEvent;
  bool ownerInitiatedVacate_ = false;

  Simulator& sim_;
  Transport& net_;
  Machine& machine_;
  Metrics& metrics_;
  Rng rng_;
  Config config_;
  std::string address_;
  std::uint64_t adSequence_ = 0;
  matchmaking::Ticket ticket_ = matchmaking::kNoTicket;
  std::optional<ActiveClaim> claim_;
  std::optional<PeriodicTimer> adTimer_;
  classad::ExprPtr constraintExpr_;
  classad::ExprPtr rankExpr_;
  bool started_ = false;
};

}  // namespace htcsim
