// job.h - The unit of customer work in the HTC pool.
//
// Jobs are what Figure 2 advertises: a command with resource requirements
// and preferences. Work is measured in reference CPU-seconds (seconds on a
// 100-MIPS machine), so a 300-MIPS workstation finishes the same job three
// times faster — the heterogeneity that makes Rank expressions like
// Figure 2's `KFlops/1E3 + other.Memory/32` meaningful.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_queue.h"

namespace htcsim {

/// MIPS rating against which Job::totalWork is expressed.
constexpr double kReferenceMips = 100.0;

enum class JobState : unsigned char {
  Idle,      ///< queued, advertised for matchmaking
  Matching,  ///< match received, claim in flight
  Running,   ///< claim established, executing on a machine
  Completed,
};

struct Job {
  std::uint64_t id = 0;
  std::string owner;
  std::string cmd = "run_sim";

  double totalWork = 0.0;      ///< reference CPU-seconds
  double remainingWork = 0.0;  ///< decreases only via checkpoints
  std::int64_t memoryMB = 32;
  std::int64_t diskKB = 10000;
  /// Checkpointable jobs (Figure 2's WantCheckpoint) preserve work across
  /// eviction; others restart from scratch (badput).
  bool checkpointable = true;
  bool wantRemoteSyscalls = true;

  /// Empty string = no requirement on that axis.
  std::string requiredArch;
  std::string requiredOpSys;

  JobState state = JobState::Idle;
  Time submitTime = 0.0;
  Time firstStartTime = -1.0;
  Time completionTime = -1.0;
  int evictions = 0;
  int claimRejections = 0;
  std::string runningOn;  ///< resource contact while Running
  /// Set when the job's claim lease was declared lost (RA dead or
  /// unreachable); cleared — and counted as a lease recovery — when the
  /// job next starts running somewhere.
  bool lostLease = false;

  bool done() const noexcept { return state == JobState::Completed; }
};

}  // namespace htcsim
