// rng.h - Deterministic random number generation for the simulator.
//
// Everything stochastic in the substrate (owner activity, job arrivals,
// message latency) draws from explicitly seeded xoshiro256** streams, so
// every experiment in bench/ is exactly reproducible. Streams are split
// per entity (splitChild) so adding a machine does not perturb the draws
// of existing ones.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace htcsim {

/// splitmix64: seeds the main generator and derives child streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), the simulator's workhorse PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) (n > 0). Uses rejection to stay unbiased.
  std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (inter-arrival times, service times).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Bounded Pareto-ish heavy tail for job sizes: mean roughly `scale`
  /// with occasional large values, capped at `cap`.
  double heavyTail(double scale, double cap) noexcept {
    const double u = uniform();
    const double x = scale * (std::pow(1.0 - u * 0.999, -0.5) - 0.5);
    return x > cap ? cap : x;
  }

  /// Derives an independent child stream (stable under reordering of
  /// sibling draws).
  Rng splitChild(std::uint64_t childId) noexcept {
    std::uint64_t sm = s_[0] ^ (childId * 0xD2B74407B1CE6E93ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stable 64-bit hash of a string (FNV-1a), for seeding per-name streams.
constexpr std::uint64_t hashName(std::string_view name) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace htcsim
