#include "sim/paper_ads.h"

namespace htcsim {

// Transcribed from Figure 1 of the paper. The DayTime comment in the
// figure elides the value; deployed ads carried the probe-time value, so
// we fix a representative mid-day time (13:27:49 = 48469s) — the tests
// exercise other times by overwriting the attribute.
const char* const kFigure1Text = R"([
  Type = "Machine";
  Activity = "Idle";
  DayTime = 48469;          // current time in seconds since midnight
  KeyboardIdle = 1432;      // seconds
  Disk = 323496;            // kbytes
  Memory = 64;              // megabytes
  State = "Unclaimed";
  LoadAvg = 0.042969;
  Mips = 104;
  Arch = "INTEL";
  OpSys = "SOLARIS251";
  KFlops = 21893;
  Name = "leonardo.cs.wisc.edu";
  ResearchGroup = { "raman", "miron", "solomon", "jbasney" };
  Friends = { "tannenba", "wright" };
  Untrusted = { "rival", "riffraff" };
  Rank = member(other.Owner, ResearchGroup) * 10
         + member(other.Owner, Friends);
  Constraint = !member(other.Owner, Untrusted) && Rank >= 10 ? true :
               Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
               DayTime < 8*60*60 || DayTime > 18*60*60;
])";

// Transcribed from Figure 2. Disk requirement and QDate appear in the
// figure with their formatting mangled by the proceedings; we use values
// consistent with the figure's scale (a mid-1997 submit date, 15 MB of
// disk).
const char* const kFigure2Text = R"([
  Type = "Job";
  QDate = 874377421;        // submit time, seconds past 1/1/1970
  CompletionDate = 0;
  Owner = "raman";
  Cmd = "run_sim";
  WantRemoteSyscalls = 1;
  WantCheckpoint = 1;
  Iwd = "/usr/raman/sim2";
  Args = "-Q 17 3200 10";
  Memory = 31;
  Rank = KFlops/1E3 + other.Memory/32;
  Constraint = other.Type == "Machine" && Arch == "INTEL" &&
               OpSys == "SOLARIS251" && Disk >= 15000 &&
               other.Memory >= self.Memory;
])";

const char* const kFigure1IntendedConstraint =
    "!member(other.Owner, Untrusted) &&"
    " (Rank >= 10 ? true :"
    "  Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :"
    "  DayTime < 8*60*60 || DayTime > 18*60*60)";

classad::ClassAd makeFigure1Ad() { return classad::ClassAd::parse(kFigure1Text); }

classad::ClassAd makeFigure1AdIntended() {
  classad::ClassAd ad = makeFigure1Ad();
  ad.setExpr("Constraint", kFigure1IntendedConstraint);
  return ad;
}

classad::ClassAd makeFigure2Ad() { return classad::ClassAd::parse(kFigure2Text); }

}  // namespace htcsim
