#include "sim/event_queue.h"

#include <cassert>

namespace htcsim {

EventId Simulator::at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const EventId id = nextId_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= nextId_) return false;
  // Only mark; the queue entry is discarded lazily. Double-cancel and
  // cancel-after-fire both return false because fired events are removed
  // from the tombstone set when skipped/executed.
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::runUntil(Time until) {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    if (step()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Time period,
                             std::function<void()> fn, Time firstDelay)
    : sim_(&sim), period_(period), fn_(std::move(fn)) {
  arm(firstDelay);
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_->after(delay, [this] {
    fn_();
    if (sim_ != nullptr) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (sim_ != nullptr && pending_ != kInvalidEvent) {
    sim_->cancel(pending_);
  }
  sim_ = nullptr;
  pending_ = kInvalidEvent;
}

}  // namespace htcsim
