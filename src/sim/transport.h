// transport.h - The message transport abstraction shared by the simulated
// network (src/sim/network.h) and the live TCP service layer (src/service).
//
// The paper's daemons exchanged a fixed set of protocol messages over
// TCP/UDP; the reproduction originally modeled that exchange entirely
// in-process. Splitting the interface from the simulation lets the SAME
// agent logic run over either substrate: tests and benches keep the
// deterministic simulator, while the daemons in src/service carry the
// identical Message variants over real sockets (framed by src/wire).
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "federation/messages.h"
#include "matchmaker/protocol.h"

namespace htcsim {

/// Advertiser retracting its ad (clean shutdown / job started elsewhere).
struct AdInvalidate {
  std::string key;
  bool isRequest = false;
};

/// End-of-claim usage report to the pool manager, feeding the fair
/// matching policy's accounting (Section 4).
struct UsageReport {
  std::string user;
  double resourceSeconds = 0.0;
};

using Message =
    std::variant<matchmaking::Advertisement, AdInvalidate,
                 matchmaking::MatchNotification, matchmaking::ClaimRequest,
                 matchmaking::ClaimResponse, matchmaking::ClaimRelease,
                 UsageReport, matchmaking::Heartbeat, matchmaking::LeaseExpired,
                 federation::PeerHello, federation::AdForward,
                 federation::SchemaDigestMsg, federation::MatchReferral,
                 federation::ReferralResponse>;

struct Envelope {
  std::string from;
  std::string to;
  Message payload;
};

/// An addressable agent.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Envelope& envelope) = 0;
};

/// Delivers Messages between named endpoints. Implementations: the
/// simulated Network (latency/loss over a discrete-event clock) and the
/// service layer's socket-backed transports. The contract is
/// deliberately datagram-like — asynchronous, unordered across
/// destinations, unreliable — because that is what the advertising
/// protocol is designed to tolerate.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers `endpoint` at `address`; replaces any previous binding
  /// (an agent restarting reuses its address).
  virtual void attach(std::string address, Endpoint* endpoint) = 0;

  /// Removes a binding (agent death). Messages in flight to it vanish.
  virtual void detach(std::string_view address) = 0;

  /// Sends asynchronously. Returns false if the message was immediately
  /// known to be undeliverable (the sender generally cannot tell — that
  /// is the point; callers needing reliability must retry, as the
  /// periodic advertising protocol naturally does).
  virtual bool send(std::string from, std::string to, Message payload) = 0;
};

}  // namespace htcsim
