#include "sim/resource_agent.h"

#include "classad/match.h"
#include "sim/job.h"

namespace htcsim {

namespace {

/// Policy texts. ClassicIdle is the classic Condor owner policy from the
/// paper's introduction; Figure1 is the verbatim policy of Figure 1.
constexpr const char* kClassicConstraint =
    "other.Type == \"Job\" && LoadAvg < 0.3 && KeyboardIdle > 15*60";
constexpr const char* kFigure1Rank =
    "member(other.Owner, ResearchGroup) * 10 + member(other.Owner, Friends)";
// The prose-faithful form (see paper_ads.h: the verbatim figure's
// precedence lets untrusted users in at night, which Section 4's prose
// explicitly forbids — owners here get the policy the prose describes).
constexpr const char* kFigure1Constraint =
    "!member(other.Owner, Untrusted) &&"
    " (Rank >= 10 ? true :"
    "  Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :"
    "  DayTime < 8*60*60 || DayTime > 18*60*60)";
constexpr const char* kAlwaysConstraint = "other.Type == \"Job\"";

}  // namespace

ResourceAgent::ResourceAgent(Simulator& sim, Transport& net, Machine& machine,
                             Metrics& metrics, Rng rng, Config config)
    : sim_(sim),
      net_(net),
      machine_(machine),
      metrics_(metrics),
      rng_(rng),
      config_(std::move(config)),
      address_("ra://" + machine.spec().name) {
  switch (machine_.spec().policy) {
    case OwnerPolicy::AlwaysAvailable:
      constraintExpr_ = classad::parseExpr(kAlwaysConstraint);
      rankExpr_ = classad::makeLiteral(std::int64_t{0});
      break;
    case OwnerPolicy::ClassicIdle:
      constraintExpr_ = classad::parseExpr(kClassicConstraint);
      rankExpr_ = classad::makeLiteral(std::int64_t{0});
      break;
    case OwnerPolicy::Figure1:
      constraintExpr_ = classad::parseExpr(kFigure1Constraint);
      rankExpr_ = classad::parseExpr(kFigure1Rank);
      break;
  }
  mintTicket();
  machine_.setOwnerChangeHook([this](bool present) {
    if (present) enforcePolicy("owner-arrival");
  });
}

ResourceAgent::~ResourceAgent() { stop(); }

void ResourceAgent::start() {
  if (started_) return;
  started_ = true;
  net_.attach(address_, this);
  // Stagger the first advertisement so a large pool does not advertise in
  // lockstep.
  adTimer_.emplace(sim_, config_.adInterval, [this] { advertise(); },
                   rng_.uniform(0.0, config_.adInterval));
}

void ResourceAgent::stop() {
  if (!started_) return;
  started_ = false;
  adTimer_.reset();
  if (claim_) vacate("agent-shutdown", false);
  net_.detach(address_);
}

void ResourceAgent::kill() {
  if (!started_) return;
  started_ = false;
  adTimer_.reset();
  if (pendingVacate_ != kInvalidEvent) {
    sim_.cancel(pendingVacate_);
    pendingVacate_ = kInvalidEvent;
  }
  if (claim_.has_value()) {
    // The process is gone: no ClaimRelease, no UsageReport, no ad
    // invalidation. The customer's job dies with it; without a lease
    // the CA would consider it Running forever.
    const ActiveClaim& claim = *claim_;
    sim_.cancel(claim.completionEvent);
    if (claim.leaseEvent != kInvalidEvent) sim_.cancel(claim.leaseEvent);
    claim_.reset();
  }
  net_.detach(address_);
}

void ResourceAgent::mintTicket() {
  do {
    ticket_ = matchmaking::namespaceTicket(rng_.next(), config_.pool);
  } while (ticket_ == matchmaking::kNoTicket);
}

const std::string& ResourceAgent::currentUser() const {
  static const std::string kNone;
  return claim_ ? claim_->user : kNone;
}

classad::ClassAd ResourceAgent::buildAd() const {
  const MachineSpec& spec = machine_.spec();
  classad::ClassAd ad;
  ad.set("Type", "Machine");
  ad.set("Name", spec.name);
  ad.set("Machine", spec.name);
  ad.set("Arch", spec.arch);
  ad.set("OpSys", spec.opSys);
  ad.set("Memory", spec.memoryMB);
  ad.set("Disk", spec.diskKB);
  ad.set("Mips", spec.mips);
  ad.set("KFlops", spec.kflops);
  ad.set("ContactAddress", address_);
  ad.set("DayTime", machine_.dayTime());
  ad.set("KeyboardIdle", machine_.keyboardIdle());
  ad.set("LoadAvg", machine_.loadAvg());
  if (claim_.has_value()) {
    const ActiveClaim& claim = *claim_;
    ad.set("State", "Claimed");
    ad.set("Activity", "Busy");
    ad.set("RemoteUser", claim.user);
    // Advertising CurrentRank while claimed invites preemption by
    // customers this machine ranks higher (Section 4).
    ad.set("CurrentRank", claim.resourceRank);
  } else {
    ad.set("State", machine_.ownerPresent() ? "Owner" : "Unclaimed");
    ad.set("Activity", "Idle");
  }
  if (spec.policy == OwnerPolicy::Figure1) {
    ad.set("ResearchGroup", spec.researchGroup);
    ad.set("Friends", spec.friends);
    ad.set("Untrusted", spec.untrusted);
  }
  ad.insert("Rank", rankExpr_);
  ad.insert("Constraint", constraintExpr_);
  ad.set("AuthorizationTicket", matchmaking::ticketToString(ticket_));
  return ad;
}

void ResourceAgent::advertise() {
  enforcePolicy("probe");
  matchmaking::Advertisement adMsg;
  adMsg.ad = classad::makeShared(buildAd());
  adMsg.sequence = ++adSequence_;
  adMsg.isRequest = false;
  adMsg.key = address_;
  net_.send(address_, config_.managerAddress, std::move(adMsg));
}

void ResourceAgent::deliver(const Envelope& env) {
  if (const auto* req = std::get_if<matchmaking::ClaimRequest>(&env.payload)) {
    handleClaimRequest(env, *req);
  } else if (const auto* rel =
                 std::get_if<matchmaking::ClaimRelease>(&env.payload)) {
    handleRelease(*rel);
  } else if (const auto* hb =
                 std::get_if<matchmaking::Heartbeat>(&env.payload)) {
    handleHeartbeat(env, *hb);
  }
}

void ResourceAgent::handleClaimRequest(const Envelope& env,
                                       const matchmaking::ClaimRequest& req) {
  const classad::ClassAd current = buildAd();

  // Claim-time verification against the resource's CURRENT state — the
  // weak-consistency design of Section 3.2. The advertisement the match
  // was made from may be arbitrarily stale; rejection here is a normal
  // outcome, the customer simply goes back to matchmaking.
  matchmaking::ClaimResponse verdict = matchmaking::evaluateClaim(
      current, ticket_, req, config_.claimPolicy);
  verdict.trace = req.trace;
  if (!verdict.accepted) {
    ++metrics_.claimsRejected;
    net_.send(address_, env.from, verdict);
    return;
  }

  // Preemption gate: while claimed, only a customer this machine ranks
  // STRICTLY above the incumbent may displace it (Section 4).
  if (claim_.has_value()) {
    const double newRank = classad::evaluateRank(current, *req.requestAd,
                                                 config_.claimPolicy.attrs);
    if (!(newRank > claim_->resourceRank)) {
      ++metrics_.claimsRejected;
      net_.send(address_, env.from,
                matchmaking::ClaimResponse{
                    false, "claimed by a customer ranked at least as high",
                    0.0, req.trace});
      return;
    }
    ++metrics_.preemptionsByRank;
    vacate("preempted-by-rank", false);
  }

  // Claim established. (evaluateClaim guarantees requestAd is non-null.)
  ActiveClaim claim;
  claim.ticket = ticket_;
  claim.customerContact = req.customerContact;
  claim.user = req.requestAd->getString("Owner").value_or("");
  claim.jobId = static_cast<std::uint64_t>(
      req.requestAd->getInteger("JobId").value_or(0));
  claim.workAtStart = req.requestAd->getNumber("RemainingWork").value_or(0.0);
  claim.startedAt = sim_.now();
  claim.requestAd = req.requestAd;
  claim.resourceRank = classad::evaluateRank(buildAd(), *req.requestAd,
                                             config_.claimPolicy.attrs);
  const double mips = static_cast<double>(machine_.spec().mips);
  const Time duration = claim.workAtStart * kReferenceMips / mips;
  claim.completionEvent = sim_.after(duration, [this] { onJobComplete(); });
  claim.trace = req.trace;
  matchmaking::ClaimResponse response{true, "", config_.leaseDuration,
                                      req.trace};
  if (config_.leaseDuration > 0.0) {
    claim.leaseExpiresAt = sim_.now() + config_.leaseDuration;
    claim.lastHeartbeatAt = sim_.now();
    claim.leaseEvent =
        sim_.after(config_.leaseDuration, [this] { onLeaseDeadline(); });
  }
  claim_ = std::move(claim);
  ++metrics_.claimsAccepted;
  if (config_.leaseDuration > 0.0) {
    ++metrics_.leasesGranted;
    recordLeaseEvent("lease-granted");
  }
  net_.send(address_, env.from, std::move(response));
  // Immediately re-advertise as claimed (with CurrentRank), keeping the
  // matchmaker's picture fresh and inviting higher-ranked customers.
  advertise();
}

void ResourceAgent::handleRelease(const matchmaking::ClaimRelease& rel) {
  if (!claim_.has_value()) return;
  const ActiveClaim& claim = *claim_;
  if (rel.ticket != claim.ticket && rel.ticket != matchmaking::kNoTicket) {
    return;  // stale release for an old claim
  }
  if (rel.reason == "orphaned-claim") {
    // A stateful allocator resynchronizing after a crash kills work the
    // stateless design would have preserved (E2).
    ++metrics_.orphanedClaimResets;
    vacate(rel.reason, false);
    return;
  }
  // Customer-initiated relinquish.
  finishClaim(sim_.now() - claim.startedAt);
}

double ResourceAgent::workDoneSoFar() const {
  if (!claim_.has_value()) return 0.0;
  const double mips = static_cast<double>(machine_.spec().mips);
  return (sim_.now() - claim_->startedAt) * mips / kReferenceMips;
}

void ResourceAgent::enforcePolicy(const char* trigger) {
  (void)trigger;
  if (!claim_.has_value() || !claim_->requestAd) return;
  const ActiveClaim& claim = *claim_;
  // "the request matches the RA's constraints with respect to the updated
  // state": the policy holds for the life of the claim, not only at its
  // establishment. Research-group jobs under Figure1 survive owner
  // arrival (their tier is unconditional); friends' and strangers' do not.
  const classad::ClassAd current = buildAd();
  const auto result = classad::evaluateConstraint(
      current, *claim.requestAd, config_.claimPolicy.attrs);
  if (classad::permitsMatch(result)) {
    // Policy holds (again): cancel any pending graceful eviction — the
    // owner left before the grace ran out.
    if (pendingVacate_ != kInvalidEvent) {
      sim_.cancel(pendingVacate_);
      pendingVacate_ = kInvalidEvent;
    }
    return;
  }
  const bool ownerInitiated = machine_.ownerPresent();
  if (config_.vacateGrace <= 0.0) {
    vacate(ownerInitiated ? "preempted-by-owner" : "policy-violation",
           ownerInitiated);
    return;
  }
  if (pendingVacate_ != kInvalidEvent) return;  // already counting down
  ownerInitiatedVacate_ = ownerInitiated;
  pendingVacate_ = sim_.after(config_.vacateGrace, [this] {
    pendingVacate_ = kInvalidEvent;
    if (!claim_) return;
    vacate(ownerInitiatedVacate_ ? "preempted-by-owner" : "policy-violation",
           ownerInitiatedVacate_);
  });
}

void ResourceAgent::vacate(const std::string& reason, bool ownerInitiated) {
  if (!claim_.has_value()) return;
  ActiveClaim& claim = *claim_;
  if (pendingVacate_ != kInvalidEvent) {
    sim_.cancel(pendingVacate_);
    pendingVacate_ = kInvalidEvent;
  }
  const double wall = sim_.now() - claim.startedAt;
  const double done = workDoneSoFar();
  sim_.cancel(claim.completionEvent);
  if (claim.leaseEvent != kInvalidEvent) sim_.cancel(claim.leaseEvent);
  matchmaking::ClaimRelease rel;
  rel.ticket = claim.ticket;
  rel.reason = reason;
  rel.jobId = claim.jobId;
  rel.cpuSecondsUsed = done;
  rel.completed = false;
  rel.trace = claim.trace;
  net_.send(address_, claim.customerContact, std::move(rel));
  if (ownerInitiated) ++metrics_.preemptionsByOwner;
  // Usage is charged for the wall-clock occupancy regardless of outcome.
  net_.send(address_, config_.managerAddress,
            UsageReport{claim.user, wall});
  metrics_.machineBusySeconds += wall;
  claim_.reset();
  mintTicket();
  if (started_) advertise();
}

void ResourceAgent::finishClaim(double wallSeconds) {
  if (!claim_.has_value()) return;
  ActiveClaim& claim = *claim_;
  // Cancel any still-pending completion (no-op when finishing BECAUSE the
  // completion fired); without this, a customer-initiated release would
  // leave a stale completion event that could fire into a future claim.
  // Likewise a pending graceful eviction must not fire into a new claim.
  sim_.cancel(claim.completionEvent);
  if (claim.leaseEvent != kInvalidEvent) sim_.cancel(claim.leaseEvent);
  if (pendingVacate_ != kInvalidEvent) {
    sim_.cancel(pendingVacate_);
    pendingVacate_ = kInvalidEvent;
  }
  net_.send(address_, config_.managerAddress,
            UsageReport{claim.user, wallSeconds});
  metrics_.machineBusySeconds += wallSeconds;
  claim_.reset();
  mintTicket();
  if (started_) advertise();
}

void ResourceAgent::recordLeaseEvent(const char* name) {
  if (!claim_.has_value()) return;
  const ActiveClaim& claim = *claim_;
  classad::ClassAd event = EventLog::make(name, sim_.now());
  event.set("Side", "RA");
  event.set("Resource", address_);
  event.set("Owner", claim.user);
  event.set("JobId", static_cast<std::int64_t>(claim.jobId));
  event.set("Ticket", matchmaking::ticketToString(claim.ticket));
  event.set("LeaseDuration", config_.leaseDuration);
  metrics_.history.record(std::move(event));
}

void ResourceAgent::handleHeartbeat(const Envelope& env,
                                    const matchmaking::Heartbeat& hb) {
  if (hb.ack) return;  // we only ever receive customer beats
  if (!claim_.has_value() || claim_->ticket != hb.ticket ||
      claim_->leaseEvent == kInvalidEvent) {
    // No such lease here: the claim ended (or never existed). Telling
    // the customer immediately spares it the remaining miss budget.
    net_.send(address_, env.from,
              matchmaking::LeaseExpired{hb.ticket, hb.jobId,
                                        "no active lease for ticket",
                                        hb.trace});
    return;
  }
  // Renew: push the deadline out a full lease from now.
  ActiveClaim& claim = *claim_;
  sim_.cancel(claim.leaseEvent);
  claim.leaseExpiresAt = sim_.now() + config_.leaseDuration;
  claim.lastHeartbeatAt = sim_.now();
  ++claim.leaseRenewals;
  claim.leaseEvent =
      sim_.after(config_.leaseDuration, [this] { onLeaseDeadline(); });
  ++metrics_.leasesRenewed;
  recordLeaseEvent("lease-renewed");
  net_.send(address_, env.from,
            matchmaking::Heartbeat{hb.ticket, hb.jobId, hb.sequence,
                                   /*ack=*/true, hb.trace});
}

void ResourceAgent::onLeaseDeadline() {
  if (!claim_.has_value() || sim_.now() < claim_->leaseExpiresAt) return;
  const ActiveClaim& claim = *claim_;
  // The renewal stream died: the customer is presumed dead (or
  // unreachable, which §3.2's end-to-end stance treats identically).
  // Tear the claim down WITHOUT a ClaimRelease — there is nobody to
  // tell — and put the machine back on the market. The work performed
  // is charged as badput here because the final release that would
  // normally account it will never be sent.
  ++metrics_.leasesExpired;
  recordLeaseEvent("lease-expired");
  const double wall = sim_.now() - claim.startedAt;
  metrics_.badputCpuSeconds += workDoneSoFar();
  sim_.cancel(claim.completionEvent);
  if (pendingVacate_ != kInvalidEvent) {
    sim_.cancel(pendingVacate_);
    pendingVacate_ = kInvalidEvent;
  }
  net_.send(address_, config_.managerAddress,
            UsageReport{claim.user, wall});
  metrics_.machineBusySeconds += wall;
  claim_.reset();
  mintTicket();
  if (started_) advertise();
}

void ResourceAgent::onJobComplete() {
  if (!claim_.has_value()) return;
  const ActiveClaim& claim = *claim_;
  const double wall = sim_.now() - claim.startedAt;
  matchmaking::ClaimRelease rel;
  rel.ticket = claim.ticket;
  rel.reason = "completed";
  rel.jobId = claim.jobId;
  rel.cpuSecondsUsed = claim.workAtStart;
  rel.completed = true;
  rel.trace = claim.trace;
  net_.send(address_, claim.customerContact, std::move(rel));
  finishClaim(wall);
}

}  // namespace htcsim
