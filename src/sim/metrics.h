// metrics.h - Pool-wide instrumentation: the quantities the experiment
// harness reports (throughput, goodput/badput, wait time, preemptions,
// claim rejections, utilization).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "sim/event_log.h"
#include "sim/event_queue.h"

namespace htcsim {

struct Metrics {
  /// Structured per-event history (condor_history style); see
  /// sim/event_log.h. Shared by all agents of a scenario.
  EventLog history;

  // job lifecycle
  std::size_t jobsSubmitted = 0;
  std::size_t jobsCompleted = 0;
  double totalWaitTime = 0.0;        ///< submit -> first execution, completed jobs
  double totalTurnaround = 0.0;      ///< submit -> completion
  double totalWorkCompleted = 0.0;   ///< reference CPU-seconds of finished jobs

  // opportunistic scheduling
  std::size_t preemptionsByOwner = 0;  ///< owner returned, job vacated
  std::size_t preemptionsByRank = 0;   ///< displaced by a better customer
  double goodputCpuSeconds = 0.0;  ///< work preserved (completions + checkpoints)
  double badputCpuSeconds = 0.0;   ///< work lost to eviction without checkpoint

  // matchmaking protocol
  std::size_t negotiationCycles = 0;
  std::size_t matchesIssued = 0;
  std::size_t claimsAccepted = 0;
  std::size_t claimsRejected = 0;   ///< claim-time verification failures
  std::size_t staleNotifications = 0;  ///< match arrived for a job no longer idle
  std::size_t orphanedClaimResets = 0; ///< stateful-manager resync casualties
  std::size_t claimTimeouts = 0;  ///< claim requests abandoned unanswered

  // claim leases (0 on the no-lease ablation baseline)
  std::size_t leasesGranted = 0;   ///< RA accepted a claim with a lease
  std::size_t leasesRenewed = 0;   ///< heartbeats that pushed an expiry out
  std::size_t leasesExpired = 0;   ///< RA-side teardown: renewal stream died
  std::size_t leaseExpiriesDetected = 0;  ///< CA declared the RA dead
  std::size_t leaseRecoveries = 0;  ///< job restarted after losing a lease
  std::size_t heartbeatsAcked = 0;
  double heartbeatRttSum = 0.0;  ///< sum of acked beat round trips
  /// CA-side estimate of CPU-seconds lost with a dead RA (the RA that
  /// would normally account badput is gone, so the customer estimates
  /// from elapsed run time at reference speed).
  double leaseLostCpuSecondsEstimate = 0.0;

  // resource usage
  double machineBusySeconds = 0.0;  ///< sum over machines of claimed time
  std::map<std::string, double> usageByUser;  ///< resource-seconds served

  double meanWaitTime() const {
    return jobsCompleted ? totalWaitTime / static_cast<double>(jobsCompleted)
                         : 0.0;
  }
  double meanTurnaround() const {
    return jobsCompleted
               ? totalTurnaround / static_cast<double>(jobsCompleted)
               : 0.0;
  }
  double goodputFraction() const {
    const double total = goodputCpuSeconds + badputCpuSeconds;
    return total > 0.0 ? goodputCpuSeconds / total : 1.0;
  }
  /// Mean machines busy over `duration` given `machineCount` machines.
  double utilization(double duration, std::size_t machineCount) const {
    return duration > 0.0 && machineCount > 0
               ? machineBusySeconds /
                     (duration * static_cast<double>(machineCount))
               : 0.0;
  }
  /// Completed jobs per simulated hour.
  double throughputPerHour(double duration) const {
    return duration > 0.0
               ? static_cast<double>(jobsCompleted) * 3600.0 / duration
               : 0.0;
  }
};

}  // namespace htcsim
