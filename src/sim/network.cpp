#include "sim/network.h"

#include "faults/fault_plan.h"

namespace htcsim {

void Network::attach(std::string address, Endpoint* endpoint) {
  endpoints_[std::move(address)] = endpoint;
}

void Network::detach(std::string_view address) {
  endpoints_.erase(std::string(address));
}

std::pair<std::string, std::string> Network::pairKey(std::string_view a,
                                                     std::string_view b) {
  if (b < a) std::swap(a, b);
  return {std::string(a), std::string(b)};
}

void Network::partition(std::string_view a, std::string_view b) {
  partitions_.insert(pairKey(a, b));
}

void Network::heal(std::string_view a, std::string_view b) {
  partitions_.erase(pairKey(a, b));
}

void Network::healAll() { partitions_.clear(); }

bool Network::isPartitioned(std::string_view a, std::string_view b) const {
  return partitions_.count(pairKey(a, b)) > 0;
}

bool Network::send(std::string from, std::string to, Message payload) {
  // Partition checks happen at SEND time: a real partitioned link drops
  // the packet at the broken hop, not after a full transit delay.
  if (isPartitioned(from, to) ||
      (faultPlan_ != nullptr && faultPlan_->partitioned(from, to, sim_.now()))) {
    ++droppedPartition_;
    return false;
  }
  if (config_.lossProbability > 0.0 && rng_.chance(config_.lossProbability)) {
    ++droppedLoss_;
    return false;
  }
  Time latency = rng_.uniform(config_.latencyMin, config_.latencyMax);
  if (faultPlan_ != nullptr) {
    if (faultPlan_->shouldDrop(from, to, sim_.now())) {
      ++droppedLoss_;
      return false;
    }
    latency += faultPlan_->extraDelay(from, to, sim_.now());
  }
  // Destination is resolved at DELIVERY time, so a message to an agent
  // that dies in flight is dropped and one to an agent that restarts is
  // delivered to the new incarnation — both realistic.
  Envelope env{std::move(from), std::move(to), std::move(payload)};
  sim_.after(latency, [this, env = std::move(env)]() mutable {
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end() || it->second == nullptr) {
      ++droppedUnknown_;
      return;
    }
    ++delivered_;
    it->second->deliver(env);
  });
  return true;
}

}  // namespace htcsim
