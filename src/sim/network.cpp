#include "sim/network.h"

namespace htcsim {

void Network::attach(std::string address, Endpoint* endpoint) {
  endpoints_[std::move(address)] = endpoint;
}

void Network::detach(std::string_view address) {
  endpoints_.erase(std::string(address));
}

bool Network::send(std::string from, std::string to, Message payload) {
  if (config_.lossProbability > 0.0 && rng_.chance(config_.lossProbability)) {
    ++droppedLoss_;
    return false;
  }
  const Time latency = rng_.uniform(config_.latencyMin, config_.latencyMax);
  // Destination is resolved at DELIVERY time, so a message to an agent
  // that dies in flight is dropped and one to an agent that restarts is
  // delivered to the new incarnation — both realistic.
  Envelope env{std::move(from), std::move(to), std::move(payload)};
  sim_.after(latency, [this, env = std::move(env)]() mutable {
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end() || it->second == nullptr) {
      ++droppedUnknown_;
      return;
    }
    ++delivered_;
    it->second->deliver(env);
  });
  return true;
}

}  // namespace htcsim
