// event_log.h - Structured pool history (the condor_history analogue).
//
// Every job-lifecycle event is recorded AS A CLASSAD — the paper's "all
// entities are represented with classads" taken to its logical end — so
// the history is queried with the same one-way matching engine as
// everything else:
//
//   Query::fromConstraint("Event == \"evicted\" && Owner == \"raman\"")
//       .select(log.events());
//
// Recording is cheap (one small ad per event) and can be disabled for
// large benchmark runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "sim/event_queue.h"

namespace htcsim {

class EventLog {
 public:
  /// Disabled logs drop every record (zero overhead in big sweeps).
  void setEnabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Appends one event ad. Each record carries at least Event, Time, and
  /// whatever the call site adds (Owner, JobId, Resource, Reason, ...).
  void record(classad::ClassAd event) {
    if (!enabled_) return;
    events_.push_back(classad::makeShared(std::move(event)));
  }

  /// Convenience: starts a record with the common envelope.
  static classad::ClassAd make(std::string_view eventName, Time now) {
    classad::ClassAd ad;
    ad.set("Type", "Event");
    ad.set("Event", std::string(eventName));
    ad.set("Time", now);
    return ad;
  }

  std::span<const classad::ClassAdPtr> events() const noexcept {
    return events_;
  }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = true;
  std::vector<classad::ClassAdPtr> events_;
};

}  // namespace htcsim
