// event_log.h - Structured pool history (the condor_history analogue).
//
// Every job-lifecycle event is recorded AS A CLASSAD — the paper's "all
// entities are represented with classads" taken to its logical end — so
// the history is queried with the same one-way matching engine as
// everything else:
//
//   Query::fromConstraint("Event == \"evicted\" && Owner == \"raman\"")
//       .select(log.events());
//
// Recording is cheap (one small ad per event) and can be disabled for
// large benchmark runs. History is BOUNDED: a configurable cap (default
// one million events) turns the log into a ring — when full, the oldest
// block of events is evicted and counted in dropped(), so a long-running
// live pool cannot grow its history without bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "sim/event_queue.h"

namespace htcsim {

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1'000'000;

  /// Disabled logs drop every record (zero overhead in big sweeps).
  void setEnabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Caps the history. Shrinking below the current size evicts the
  /// oldest events immediately (they count as dropped).
  void setCapacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    if (events_.size() > capacity_) evictOldest(events_.size() - capacity_);
  }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Events evicted by the ring cap since construction (never reset by
  /// clear(): the counter records lifetime loss, the condition an
  /// operator alerts on).
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Appends one event ad. Each record carries at least Event, Time, and
  /// whatever the call site adds (Owner, JobId, Resource, Reason, ...).
  /// At capacity, the oldest ~1/8 of the ring is evicted in one block —
  /// amortized O(1) per record while keeping events() contiguous for the
  /// span-based query engine.
  void record(classad::ClassAd event) {
    if (!enabled_) return;
    if (events_.size() >= capacity_) {
      evictOldest(std::max<std::size_t>(1, capacity_ / 8));
    }
    events_.push_back(classad::makeShared(std::move(event)));
  }

  /// Convenience: starts a record with the common envelope.
  static classad::ClassAd make(std::string_view eventName, Time now) {
    classad::ClassAd ad;
    ad.set("Type", "Event");
    ad.set("Event", std::string(eventName));
    ad.set("Time", now);
    return ad;
  }

  std::span<const classad::ClassAdPtr> events() const noexcept {
    return events_;
  }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  void evictOldest(std::size_t n) {
    n = std::min(n, events_.size());
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(n));
    dropped_ += n;
  }

  bool enabled_ = true;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::vector<classad::ClassAdPtr> events_;
};

}  // namespace htcsim
