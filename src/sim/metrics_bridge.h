// metrics_bridge.h - Publishes the simulator's Metrics struct (and the
// simulated Network's drop counters) into an obs::Registry, so simulated
// and live pools report through one schema: the attribute names a
// DaemonStatus ad carries are identical whether the numbers came from a
// discrete-event run or a TCP daemon, and `mm_status -stats` constraints
// written against one work against the other.
#pragma once

#include "obs/registry.h"
#include "sim/metrics.h"
#include "sim/network.h"

namespace htcsim {

/// Snapshots `metrics` into gauges on `registry` (idempotent; call as
/// often as a fresh view is needed — each field is one relaxed store).
void publishMetrics(const Metrics& metrics, obs::Registry& registry);

/// Surfaces the simulated transport's delivery/drop split
/// (droppedLoss vs droppedUnknown — noise vs outage).
void publishNetwork(const Network& network, obs::Registry& registry);

}  // namespace htcsim
