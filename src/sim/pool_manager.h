// pool_manager.h - The Condor pool manager of Section 4: collector of
// advertisements plus periodic negotiator.
//
// "RAs and CAs periodically send classads to a Condor pool manager,
// describing the resources and job queues respectively. ... Periodically,
// the pool manager enters a negotiation cycle. ... When the pool manager
// determines that two classads match, it invokes the matchmaking protocol
// to contact the matched principals at the contact addresses specified in
// their classads and send them each other's classads. The manager also
// gives the CA the authorization ticket supplied by the RA."
//
// The manager is STATELESS with respect to matches (Section 3's
// end-to-end design): it remembers advertisements (soft state that
// repopulates by itself) and usage accounting, nothing about who is
// serving whom. crash() models a failure: everything is dropped; recovery
// is automatic as ads flow back in. The `stateful` flag turns on the E2
// strawman — a conventional allocator whose allocation table IS
// authoritative, so a resource found claimed without a table entry after
// a crash is "orphaned" and gets reset.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "federation/plane.h"
#include "matchmaker/ad_store.h"
#include "matchmaker/advertising.h"
#include "matchmaker/gangmatch.h"
#include "matchmaker/matchmaker.h"
#include "matchmaker/priority.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/transport.h"

namespace htcsim {

struct PoolManagerConfig {
  std::string address = "collector";
  Time negotiationInterval = 60.0;
  Time adLifetime = 180.0;
  matchmaking::MatchmakerConfig matchmaker;
  matchmaking::Accountant::Config accountant;
  matchmaking::GangMatchConfig gang;
  /// Accounting-group assignments (user -> group) installed into the
  /// accountant at startup; see MatchmakerConfig::groupFairShare.
  std::vector<std::pair<std::string, std::string>> accountingGroups;
  /// E2 strawman: behave like a conventional stateful allocator.
  bool stateful = false;
  /// Federation plane (src/federation): peer flocking, schema digest
  /// aggregation and cross-pool referral. Disabled unless a pool name
  /// and at least one peer/parent are configured.
  federation::FederationConfig federation;
  /// Observability plane (optional, not owned). When set, every
  /// negotiation cycle publishes per-phase latency histograms (ad-scan,
  /// fair-share, rank/scan, notify) and per-cycle match/reject gauges.
  /// Null costs nothing on the hot path beyond one pointer test.
  obs::Registry* registry = nullptr;
  /// Causal tracing plane (optional, not owned; docs/OBSERVABILITY.md).
  /// When set and enabled, the manager roots one trace per stored
  /// request ("ad.intake"), emits "match.notify" spans whose context
  /// rides both MatchNotifications (so claims and leases stitch into the
  /// job's trace), records per-cycle negotiation phase spans under a
  /// separate cycle trace, and threads context through the federation
  /// plane's referrals.
  obs::Tracer* tracer = nullptr;
};

class PoolManager : public Endpoint, private federation::FederationHost {
 public:
  using Config = PoolManagerConfig;

  PoolManager(Simulator& sim, Transport& net, Metrics& metrics,
              Config config = {});
  ~PoolManager() override;

  void start();
  void stop();

  /// Simulated failure: the manager process dies, losing ALL in-memory
  /// state (ad stores, and — in stateful mode — the allocation table),
  /// and restarts after `downFor` seconds.
  void crash(Time downFor);

  bool up() const noexcept { return up_; }

  void deliver(const Envelope& envelope) override;

  /// Runs one negotiation cycle immediately (tests and tools).
  matchmaking::NegotiationStats negotiateNow();

  const matchmaking::Accountant& accountant() const noexcept {
    return accountant_;
  }
  std::size_t storedRequests() const noexcept { return requests_.size(); }
  std::size_t storedResources() const noexcept { return resources_.size(); }
  /// Live ads as of the last expiry — the Query protocol's data source.
  std::vector<classad::ClassAdPtr> snapshotRequests() const {
    return requests_.snapshot();
  }
  std::vector<classad::ClassAdPtr> snapshotResources() const {
    return resources_.snapshot();
  }
  const std::string& address() const noexcept { return config_.address; }

  /// The federation plane, when configured and the manager is up.
  const federation::FederationPlane* federation() const noexcept {
    return federation_.has_value() ? &*federation_ : nullptr;
  }
  /// Immediate digest push (tests and tools; normally timer-driven).
  void pushDigestNow() {
    if (federation_.has_value()) federation_->pushDigest(sim_.now());
  }

 private:
  void handleAdvertisement(const matchmaking::Advertisement& ad);
  void handleInvalidate(const AdInvalidate& inv);
  void handleUsage(const UsageReport& usage);
  /// Serves gang (co-allocation) requests against the resources left
  /// unmatched this cycle (`taken` is the slot-indexed set the pairwise
  /// pass already consumed); sends one notification per leg to the gang's
  /// contact. Entries are (store key, gang ad) copies, because placing a
  /// gang invalidates its request — which mutates the request pool.
  /// Returns the number of gangs placed.
  std::size_t negotiateGangs(
      const std::vector<std::pair<std::string, classad::ClassAdPtr>>&
          gangEntries,
      const matchmaking::engine::PreparedPool& resources,
      std::vector<char>& taken);

  // federation::FederationHost — the plane's view of this matchmaker.
  bool storeFlockedAd(const std::string& storeKey,
                      const classad::ClassAdPtr& ad, std::uint64_t revision,
                      matchmaking::Time lifetime) override;
  void dropFlockedAd(const std::string& storeKey) override;
  std::optional<matchmaking::Match> evaluateReferral(
      const classad::ClassAdPtr& request, matchmaking::Time now) override;
  void serveLocalMatch(const matchmaking::Match& match,
                       const obs::TraceContext& trace) override;
  bool completeRemoteMatch(
      const federation::ReferralResponse& response) override;
  classad::analysis::Schema localResourceSchema() const override;
  classad::analysis::Schema localRequestSchema() const override;

  /// Per-request trace bookkeeping (tracing only): the job's trace
  /// context, rooted by "ad.intake" on first sight of the store key.
  /// `matched` marks a notified request, so a later re-advertisement
  /// records "job.requeued" (the claim failed, was evicted, or its lease
  /// lapsed). Entries are pruned by lastSeen TTL each cycle.
  struct RequestTrace {
    obs::TraceContext ctx;
    Time lastSeen = 0.0;
    bool matched = false;
  };
  /// Looks up (or roots) the trace for a request store key, refreshing
  /// its lastSeen stamp. Returns an invalid context when tracing is off.
  obs::TraceContext requestTraceFor(const std::string& key);

  Simulator& sim_;
  Transport& net_;
  Metrics& metrics_;
  Config config_;
  matchmaking::AdvertisingProtocol protocol_;
  matchmaking::AdStore requests_;
  matchmaking::AdStore resources_;
  matchmaking::Accountant accountant_;
  matchmaking::Matchmaker matchmaker_;
  matchmaking::GangMatcher gangMatcher_;
  /// Stateful mode only: resource key -> user it was allocated to.
  std::unordered_map<std::string, std::string> allocationTable_;
  /// Tracing only: request store key -> the job's trace.
  std::unordered_map<std::string, RequestTrace> requestTraces_;
  std::optional<PeriodicTimer> cycleTimer_;
  std::optional<federation::FederationPlane> federation_;
  std::optional<PeriodicTimer> digestTimer_;
  /// Restart counter stamped into PeerHello (bumped on every start()).
  std::uint64_t federationEpoch_ = 0;
  bool up_ = false;

  // Observability instruments (null when config_.registry is null).
  obs::Histogram* cycleHist_ = nullptr;
  obs::Histogram* adScanHist_ = nullptr;
  obs::Histogram* fairShareHist_ = nullptr;
  obs::Histogram* rankHist_ = nullptr;
  obs::Histogram* notifyHist_ = nullptr;
  obs::Gauge* matchesLastCycle_ = nullptr;
  obs::Gauge* unmatchedLastCycle_ = nullptr;
  // MatchEngine instrumentation: cumulative evaluation/prune counters,
  // plus per-cycle prune ratio and the resource pool's index state. All
  // of these flow into the DaemonStatus self-ad (mm_status -stats).
  obs::Counter* candidatesEvaluated_ = nullptr;
  obs::Counter* candidatesPruned_ = nullptr;
  obs::Counter* staticSkips_ = nullptr;
  obs::Gauge* pruneRatioLastCycle_ = nullptr;
  obs::Gauge* indexedAds_ = nullptr;
  obs::Gauge* indexRebuilds_ = nullptr;
  // Prover-backed guard elision (cumulative over the request pool's guard
  // derivations; published as a counter by delta each cycle).
  obs::Counter* guardsElided_ = nullptr;
  std::size_t guardsElidedSeen_ = 0;
  // Negotiation-policy plane (src/matchmaker/policy): the active policy's
  // decide() wall time, its per-cycle outcome (pairs, summed request
  // rank), and the cumulative auction bid count (0 unless --policy
  // auction). All flow into the DaemonStatus self-ad.
  obs::Histogram* policySolveHist_ = nullptr;
  obs::Gauge* policyMatchedPairs_ = nullptr;
  obs::Gauge* policyAggregateRank_ = nullptr;
  obs::Counter* policyAuctionRounds_ = nullptr;
};

}  // namespace htcsim
