#include "sim/scenario.h"

#include "sim/metrics_bridge.h"

namespace htcsim {

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  net_ = std::make_unique<Network>(sim_, rng_.splitChild(hashName("net")),
                                   config_.network);

  PoolManager::Config managerConfig = config_.manager;
  manager_ = std::make_unique<PoolManager>(sim_, *net_, metrics_,
                                           managerConfig);
  manager_->start();

  // Machines and their RAs.
  Rng machineRng = rng_.splitChild(hashName("machines"));
  std::vector<MachineSpec> specs =
      generateMachines(config_.machines, machineRng);
  machines_.reserve(specs.size());
  resourceAgents_.reserve(specs.size());
  for (MachineSpec& spec : specs) {
    const std::uint64_t nameSeed = hashName(spec.name);
    machines_.push_back(std::make_unique<Machine>(
        sim_, std::move(spec), machineRng.splitChild(nameSeed)));
    ResourceAgent::Config raConfig = config_.resourceAgent;
    raConfig.managerAddress = config_.manager.address;
    resourceAgents_.push_back(std::make_unique<ResourceAgent>(
        sim_, *net_, *machines_.back(), metrics_,
        machineRng.splitChild(nameSeed ^ 0x5A5AULL), raConfig));
    resourceAgents_.back()->start();
  }

  // Users, their CAs, and their job streams.
  Rng jobRng = rng_.splitChild(hashName("jobs"));
  std::uint64_t nextJobId = 1;
  for (const std::string& user : config_.workload.users) {
    CustomerAgent::Config caConfig = config_.customerAgent;
    caConfig.managerAddress = config_.manager.address;
    customerAgents_.push_back(std::make_unique<CustomerAgent>(
        sim_, *net_, metrics_, user, jobRng.splitChild(hashName(user)),
        caConfig));
    CustomerAgent* ca = customerAgents_.back().get();
    ca->start();
    Rng userRng = jobRng.splitChild(hashName(user) ^ 0xA5A5ULL);
    const std::vector<Time> arrivals =
        generateArrivals(config_.workload, userRng, config_.duration);
    for (const Time when : arrivals) {
      Job job = generateJob(config_.workload, userRng, nextJobId++, user);
      sim_.at(when, [ca, job = std::move(job)] { ca->submit(job); });
    }
  }

  // Injected manager outages (E2).
  for (const auto& [crashAt, downFor] : config_.managerOutages) {
    const Time d = downFor;
    sim_.at(crashAt, [this, d] { manager_->crash(d); });
  }

  // Fault injection: the Network consults the plan's partition/loss/
  // delay rules on every send; kill rules are scheduled here against
  // the agent addresses they name.
  if (!config_.faults.empty()) {
    net_->setFaultPlan(&config_.faults);
    for (const faults::FaultRule& rule : config_.faults.killSchedule()) {
      sim_.at(rule.at, [this, target = rule.a] {
        for (auto& ra : resourceAgents_) {
          if (ra->address() == target) {
            ra->kill();
            return;
          }
        }
        for (auto& ca : customerAgents_) {
          if (ca->address() == target) {
            ca->kill();
            return;
          }
        }
      });
    }
  }
}

Scenario::~Scenario() = default;

void Scenario::run() { runUntil(config_.duration); }

void Scenario::publishInto(obs::Registry& registry) const {
  publishMetrics(metrics_, registry);
  publishNetwork(*net_, registry);
}

void Scenario::runUntil(Time until) { sim_.runUntil(until); }

CustomerAgent* Scenario::agentFor(const std::string& user) {
  for (auto& ca : customerAgents_) {
    if (ca->user() == user) return ca.get();
  }
  return nullptr;
}

std::size_t Scenario::totalJobs() const {
  std::size_t n = 0;
  for (const auto& ca : customerAgents_) n += ca->jobs().size();
  return n;
}

}  // namespace htcsim
