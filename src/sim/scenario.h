// scenario.h - Wires a complete HTC pool: machines + RAs, users + CAs, the
// pool manager, and the network, then runs the discrete-event simulation.
// This is the top-level entry point the examples and the experiment
// benches drive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "obs/registry.h"
#include "sim/customer_agent.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/pool_manager.h"
#include "sim/resource_agent.h"
#include "sim/workload.h"

namespace htcsim {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  Time duration = 4.0 * 3600.0;

  MachinePoolConfig machines;
  JobWorkloadConfig workload;

  Network::Config network;
  PoolManager::Config manager;
  ResourceAgent::Config resourceAgent;
  CustomerAgent::Config customerAgent;

  /// Manager outages to inject: (crashAt, downFor) pairs (E2).
  std::vector<std::pair<Time, Time>> managerOutages;

  /// Deterministic chaos: kill rules silence the named agent ("ra://m"
  /// or "ca://user") at their times; partition/loss/delay rules are
  /// consulted by the Network on every send. Leave empty for a
  /// fault-free run.
  faults::FaultPlan faults;
};

/// A fully wired pool. Construction builds everything; run() executes the
/// configured duration. Component accessors expose the internals to tests
/// and domain examples.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the simulation through config.duration (idempotent extension:
  /// call runUntil for finer control).
  void run();
  void runUntil(Time until);

  const ScenarioConfig& config() const noexcept { return config_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  Simulator& simulator() noexcept { return sim_; }
  Network& network() noexcept { return *net_; }
  PoolManager& manager() noexcept { return *manager_; }

  std::vector<std::unique_ptr<ResourceAgent>>& resourceAgents() noexcept {
    return resourceAgents_;
  }
  std::vector<std::unique_ptr<CustomerAgent>>& customerAgents() noexcept {
    return customerAgents_;
  }
  CustomerAgent* agentFor(const std::string& user);

  std::size_t machineCount() const noexcept { return machines_.size(); }

  /// Sum of idle+running+completed across all CAs (tests).
  std::size_t totalJobs() const;

  /// Snapshots the run's Metrics and the simulated Network's
  /// delivered/dropped split into `registry` — the simulated pool
  /// reporting through the same DaemonStatus schema as the live daemons
  /// (see sim/metrics_bridge.h).
  void publishInto(obs::Registry& registry) const;

 private:
  ScenarioConfig config_;
  Simulator sim_;
  Metrics metrics_;
  Rng rng_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<PoolManager> manager_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<ResourceAgent>> resourceAgents_;
  std::vector<std::unique_ptr<CustomerAgent>> customerAgents_;
};

}  // namespace htcsim
