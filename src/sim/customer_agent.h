// customer_agent.h - The Customer Agent (CA) of Section 4.
//
// "Customers of Condor are represented by Customer Agents (CAs), which
// maintain per-customer queues of submitted jobs, represented as lists of
// classads." The CA advertises one request ad per idle job (Figure 2
// style), receives match notifications, runs the claiming protocol against
// the matched resource (presenting the RA's authorization ticket), and
// handles completion and eviction — resuming checkpointable jobs from
// their checkpoint and restarting the rest.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "classad/classad.h"
#include "lease/heartbeat.h"
#include "matchmaker/protocol.h"
#include "sim/event_queue.h"
#include "sim/job.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/transport.h"

namespace htcsim {

struct CustomerAgentConfig {
  Time adInterval = 60.0;
  Time adLifetime = 180.0;
  std::string managerAddress = "collector";
  /// Cap on request ads advertised per cycle (0 = all idle jobs).
  std::size_t maxAdsPerCycle = 0;
  /// Flocking (the paper's reference [3], "A Worldwide Flock of
  /// Condors"): additional pool managers to advertise a job to once it
  /// has sat idle locally for `flockAfter` seconds. Matches from remote
  /// pools claim exactly like local ones — the protocols don't care
  /// which matchmaker made the introduction.
  std::vector<std::string> flockManagers;
  Time flockAfter = 300.0;
  /// Cost of taking a checkpoint on eviction, in reference CPU-seconds:
  /// that much of the claim's work is lost to the checkpoint itself
  /// (counted as badput). 0 models free checkpoints (the default, and
  /// the paper-era approximation); the E6 ablation can charge for them.
  double checkpointOverheadSeconds = 0.0;
  /// Heartbeat behaviour for leased claims (interval derives from the
  /// lease the RA grants unless pinned; see lease/heartbeat.h). Only
  /// consulted when a ClaimResponse carries a non-zero leaseDuration.
  lease::MonitorConfig heartbeat;
  /// How long a claim request may sit unanswered before the job goes
  /// back to matchmaking (the matched RA may have died between
  /// advertising and claiming). 0 disables — a claim to a silent peer
  /// then wedges the job in Matching forever.
  Time claimTimeout = 120.0;
};

class CustomerAgent : public Endpoint {
 public:
  using Config = CustomerAgentConfig;

  CustomerAgent(Simulator& sim, Transport& net, Metrics& metrics,
                std::string user, Rng rng, Config config = {});
  ~CustomerAgent() override;

  void start();
  void stop();

  /// Process death: detaches without invalidating ads or releasing
  /// claims — the silence a crashed agent leaves behind. Leased RAs
  /// recover by expiry; without leases their machines stay wedged.
  /// Fault-injection entry point (FaultKind::kKillProcess).
  void kill();

  /// Enqueues a job (sets submit time to now) and advertises it promptly.
  void submit(Job job);

  void deliver(const Envelope& envelope) override;

  const std::string& address() const noexcept { return address_; }
  const std::string& user() const noexcept { return user_; }

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  std::size_t idleJobs() const;
  std::size_t runningJobs() const;
  std::size_t completedJobs() const;

  /// Builds the Figure 2-style request ad for a job, reflecting its
  /// CURRENT remaining work. Exposed for tests and tools.
  classad::ClassAd buildRequestAd(const Job& job) const;

 private:
  void advertiseIdleJobs();
  void advertiseJob(const Job& job);
  void invalidateJobAd(const Job& job);
  void handleMatch(const matchmaking::MatchNotification& match);
  void handleClaimResponse(const Envelope& env,
                           const matchmaking::ClaimResponse& resp);
  void handleRelease(const matchmaking::ClaimRelease& rel);
  void handleHeartbeatAck(const Envelope& env,
                          const matchmaking::Heartbeat& hb);
  void handleLeaseExpired(const Envelope& env,
                          const matchmaking::LeaseExpired& notice);
  void onHeartbeatDue(const std::string& contact);
  /// Declares the claim at `contact` dead and requeues its job.
  void leaseLost(const std::string& contact, const char* reason);
  void dropLease(const std::string& contact);
  Job* findJob(std::uint64_t id);
  std::string adKey(const Job& job) const;

  /// One leased, running claim as seen from the customer side.
  struct ClaimLease {
    std::uint64_t jobId = 0;
    matchmaking::Ticket ticket = matchmaking::kNoTicket;
    lease::HeartbeatMonitor monitor;
    EventId timer = kInvalidEvent;
    Time startedAt = 0.0;
    obs::TraceContext trace;  ///< stamped on renewal heartbeats
  };

  /// A claim request in flight at one resource.
  struct PendingClaim {
    std::uint64_t jobId = 0;
    matchmaking::Ticket ticket = matchmaking::kNoTicket;
    /// From the MatchNotification; rides the ClaimRequest and the lease.
    obs::TraceContext trace;
  };

  Simulator& sim_;
  Transport& net_;
  Metrics& metrics_;
  std::string user_;
  Rng rng_;
  Config config_;
  std::string address_;
  std::vector<Job> jobs_;
  std::unordered_map<std::uint64_t, std::size_t> jobIndex_;
  std::uint64_t adSequence_ = 0;
  /// Job whose claim request is in flight, keyed by resource contact (a
  /// CA may have several claims outstanding at distinct resources); the
  /// ticket presented and trace context are kept for the lease that may
  /// follow.
  std::unordered_map<std::string, PendingClaim> pendingClaims_;
  /// Live leases keyed by resource contact.
  std::unordered_map<std::string, ClaimLease> leases_;
  std::optional<PeriodicTimer> adTimer_;
  bool started_ = false;
};

}  // namespace htcsim
