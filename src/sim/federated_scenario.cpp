#include "sim/federated_scenario.h"

#include <algorithm>

namespace htcsim {

namespace {

/// Prefixes every principal name a pool generator knows about so two
/// pools never share an address or a policy identity on the one Network.
std::string prefixed(const std::string& pool, const std::string& name) {
  return pool + "." + name;
}

void prefixAll(const std::string& pool, std::vector<std::string>& names) {
  for (std::string& n : names) n = prefixed(pool, n);
}

}  // namespace

std::vector<std::string> FederatedScenario::peersOf(std::size_t i) const {
  const std::size_t n = config_.pools;
  std::vector<std::string> peers;
  const auto address = [](std::size_t p) {
    return "collector." + poolName(p);
  };
  switch (config_.topology) {
    case FederationTopology::kMesh:
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) peers.push_back(address(j));
      }
      break;
    case FederationTopology::kRing: {
      if (n <= 1) break;
      const std::size_t prev = (i + n - 1) % n;
      const std::size_t next = (i + 1) % n;
      peers.push_back(address(next));
      if (prev != next) peers.push_back(address(prev));
      break;
    }
    case FederationTopology::kStar:
      if (i == 0) {
        for (std::size_t j = 1; j < n; ++j) peers.push_back(address(j));
      } else {
        peers.push_back(address(0));
      }
      break;
  }
  return peers;
}

FederatedScenario::FederatedScenario(FederatedScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.pools == 0) config_.pools = 1;
  net_ = std::make_unique<Network>(sim_, rng_.splitChild(hashName("net")),
                                   config_.network);

  pools_.reserve(config_.pools);
  std::uint64_t nextJobId = 1;
  for (std::size_t i = 0; i < config_.pools; ++i) {
    Pool pool;
    pool.name = poolName(i);
    const std::string managerAddress = "collector." + pool.name;

    PoolManager::Config mgrConfig = config_.manager;
    mgrConfig.address = managerAddress;
    mgrConfig.federation.pool = pool.name;
    mgrConfig.federation.peers = peersOf(i);
    if (mgrConfig.registry == nullptr) mgrConfig.registry = &registry_;
    pool.manager =
        std::make_unique<PoolManager>(sim_, *net_, metrics_, mgrConfig);
    pool.manager->start();

    // Machines and their RAs. Policy principals are prefixed along with
    // the submitting users, so a pool's Figure-1 machines recognise their
    // own research group — and treat a referred foreign job as the
    // stranger it is.
    MachinePoolConfig machineConfig = config_.machines;
    prefixAll(pool.name, machineConfig.researchGroup);
    prefixAll(pool.name, machineConfig.friends);
    prefixAll(pool.name, machineConfig.untrusted);
    Rng machineRng = rng_.splitChild(hashName(pool.name + "/machines"));
    std::vector<MachineSpec> specs = generateMachines(machineConfig, machineRng);
    pool.machines.reserve(specs.size());
    pool.resourceAgents.reserve(specs.size());
    for (MachineSpec& spec : specs) {
      spec.name = prefixed(pool.name, spec.name);
      const std::uint64_t nameSeed = hashName(spec.name);
      pool.machines.push_back(std::make_unique<Machine>(
          sim_, std::move(spec), machineRng.splitChild(nameSeed)));
      ResourceAgent::Config raConfig = config_.resourceAgent;
      raConfig.managerAddress = managerAddress;
      raConfig.pool = pool.name;
      pool.resourceAgents.push_back(std::make_unique<ResourceAgent>(
          sim_, *net_, *pool.machines.back(), metrics_,
          machineRng.splitChild(nameSeed ^ 0x5A5AULL), raConfig));
      pool.resourceAgents.back()->start();
    }

    // Users, their CAs, and their job streams (only in the job pools).
    const bool submitsJobs =
        config_.jobPools.empty() ||
        std::find(config_.jobPools.begin(), config_.jobPools.end(), i) !=
            config_.jobPools.end();
    if (submitsJobs) {
      Rng jobRng = rng_.splitChild(hashName(pool.name + "/jobs"));
      for (const std::string& bareUser : config_.workload.users) {
        const std::string user = prefixed(pool.name, bareUser);
        CustomerAgent::Config caConfig = config_.customerAgent;
        caConfig.managerAddress = managerAddress;
        pool.customerAgents.push_back(std::make_unique<CustomerAgent>(
            sim_, *net_, metrics_, user, jobRng.splitChild(hashName(user)),
            caConfig));
        CustomerAgent* ca = pool.customerAgents.back().get();
        ca->start();
        Rng userRng = jobRng.splitChild(hashName(user) ^ 0xA5A5ULL);
        const std::vector<Time> arrivals =
            generateArrivals(config_.workload, userRng, config_.duration);
        for (const Time when : arrivals) {
          Job job =
              generateJob(config_.workload, userRng, nextJobId++, user);
          sim_.at(when, [ca, job = std::move(job)] { ca->submit(job); });
        }
      }
    }

    pools_.push_back(std::move(pool));
  }

  for (const auto& [poolIdx, crashAt, downFor] : config_.managerOutages) {
    if (poolIdx >= pools_.size()) continue;
    PoolManager* mgr = pools_[poolIdx].manager.get();
    const Time d = downFor;
    sim_.at(crashAt, [mgr, d] { mgr->crash(d); });
  }

  if (!config_.faults.empty()) {
    net_->setFaultPlan(&config_.faults);
    for (const faults::FaultRule& rule : config_.faults.killSchedule()) {
      sim_.at(rule.at, [this, target = rule.a] {
        for (Pool& pool : pools_) {
          for (auto& ra : pool.resourceAgents) {
            if (ra->address() == target) {
              ra->kill();
              return;
            }
          }
          for (auto& ca : pool.customerAgents) {
            if (ca->address() == target) {
              ca->kill();
              return;
            }
          }
        }
      });
    }
  }
}

FederatedScenario::~FederatedScenario() = default;

void FederatedScenario::run() { runUntil(config_.duration); }

void FederatedScenario::runUntil(Time until) { sim_.runUntil(until); }

CustomerAgent* FederatedScenario::agentFor(const std::string& user) {
  for (Pool& pool : pools_) {
    for (auto& ca : pool.customerAgents) {
      if (ca->user() == user) return ca.get();
    }
  }
  return nullptr;
}

std::size_t FederatedScenario::totalJobs() const {
  std::size_t n = 0;
  for (const Pool& pool : pools_) {
    for (const auto& ca : pool.customerAgents) n += ca->jobs().size();
  }
  return n;
}

std::size_t FederatedScenario::totalCompleted() const {
  std::size_t n = 0;
  for (const Pool& pool : pools_) {
    for (const auto& ca : pool.customerAgents) {
      for (const auto& job : ca->jobs()) {
        if (job.done()) ++n;
      }
    }
  }
  return n;
}

}  // namespace htcsim
