#include "sim/machine.h"

#include <cmath>

namespace htcsim {

Machine::Machine(Simulator& sim, MachineSpec spec, Rng rng)
    : sim_(sim), spec_(std::move(spec)), rng_(rng) {
  // Start owner-absent with a random amount of idle time already accrued,
  // so a freshly started pool is not artificially synchronized.
  lastOwnerDeparture_ =
      sim_.now() - rng_.uniform(0.0, spec_.meanOwnerAbsence * 0.5);
  scheduleNextTransition();
}

double Machine::keyboardIdle() const {
  if (ownerPresent_) return 0.0;
  return sim_.now() - lastOwnerDeparture_;
}

double Machine::dayTime() const {
  return std::fmod(sim_.now(), 86400.0);
}

void Machine::scheduleNextTransition() {
  if (stopped_ || spec_.meanOwnerAbsence <= 0.0) return;
  const double delay = ownerPresent_
                           ? rng_.exponential(spec_.meanOwnerSession)
                           : rng_.exponential(spec_.meanOwnerAbsence);
  pendingTransition_ = sim_.after(delay, [this] {
    ownerPresent_ = !ownerPresent_;
    if (ownerPresent_) {
      sessionLoad_ = rng_.uniform(0.4, 1.5);
    } else {
      lastOwnerDeparture_ = sim_.now();
    }
    if (ownerChangeHook_) ownerChangeHook_(ownerPresent_);
    scheduleNextTransition();
  });
}

void Machine::stop() {
  stopped_ = true;
  if (pendingTransition_ != kInvalidEvent) {
    sim_.cancel(pendingTransition_);
    pendingTransition_ = kInvalidEvent;
  }
}

}  // namespace htcsim
