// network.h - Simulated message network between agents.
//
// Stands in for the paper's TCP/UDP daemon-to-daemon messaging (see
// DESIGN.md substitutions; src/service provides the live-socket
// counterpart behind the same Transport interface). Delivery is
// asynchronous with configurable latency and loss: the staleness and
// reordering this produces is exactly what the framework's
// weak-consistency design (Section 3.2) must tolerate, and what
// bench_e3_weak_consistency measures.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/transport.h"

namespace faults {
class FaultPlan;
}

namespace htcsim {

struct NetworkConfig {
  Time latencyMin = 0.001;  ///< seconds
  Time latencyMax = 0.005;
  double lossProbability = 0.0;  ///< dropped silently (UDP-style ads)
};

class Network : public Transport {
 public:
  using Config = NetworkConfig;

  Network(Simulator& sim, Rng rng, Config config = {})
      : sim_(sim), rng_(rng), config_(config) {}

  void attach(std::string address, Endpoint* endpoint) override;
  void detach(std::string_view address) override;
  bool send(std::string from, std::string to, Message payload) override;

  /// Severs a<->b: traffic in either direction is dropped at send time
  /// until heal(a, b). Pairs are unordered; repeated partitions of the
  /// same pair are idempotent. Models a network partition, which the
  /// paper's weak-consistency design must survive (ads expire, leases
  /// fire) rather than prevent.
  void partition(std::string_view a, std::string_view b);
  void heal(std::string_view a, std::string_view b);
  void healAll();
  bool isPartitioned(std::string_view a, std::string_view b) const;

  /// Injects a seeded fault plan consulted on every send: its loss
  /// rules count into droppedLoss(), partition windows into
  /// droppedPartition(), delay rules stretch latency. Non-owning; pass
  /// nullptr to remove. The plan's clock is sim time.
  void setFaultPlan(faults::FaultPlan* plan) noexcept { faultPlan_ = plan; }

  /// Messages delivered so far (instrumentation).
  std::size_t delivered() const noexcept { return delivered_; }
  /// All messages lost, for any reason.
  std::size_t dropped() const noexcept {
    return droppedLoss_ + droppedUnknown_ + droppedPartition_;
  }
  /// Lost to random (configured) loss — noise the protocols absorb.
  std::size_t droppedLoss() const noexcept { return droppedLoss_; }
  /// Lost because the destination was unbound at delivery time — an
  /// outage (agent dead, manager crashed). E2/E3 distinguish this from
  /// noise when attributing recovery behavior.
  std::size_t droppedUnknown() const noexcept { return droppedUnknown_; }
  /// Lost to an active partition (manual or fault-plan rule).
  std::size_t droppedPartition() const noexcept { return droppedPartition_; }

  Simulator& simulator() noexcept { return sim_; }
  const Config& config() const noexcept { return config_; }

 private:
  static std::pair<std::string, std::string> pairKey(std::string_view a,
                                                     std::string_view b);

  Simulator& sim_;
  Rng rng_;
  Config config_;
  std::unordered_map<std::string, Endpoint*> endpoints_;
  std::set<std::pair<std::string, std::string>> partitions_;
  faults::FaultPlan* faultPlan_ = nullptr;
  std::size_t delivered_ = 0;
  std::size_t droppedLoss_ = 0;
  std::size_t droppedUnknown_ = 0;
  std::size_t droppedPartition_ = 0;
};

}  // namespace htcsim
