// network.h - Simulated message network between agents.
//
// Stands in for the paper's TCP/UDP daemon-to-daemon messaging (see
// DESIGN.md substitutions). Delivery is asynchronous with configurable
// latency and loss: the staleness and reordering this produces is exactly
// what the framework's weak-consistency design (Section 3.2) must
// tolerate, and what bench_e3_weak_consistency measures.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>

#include "matchmaker/protocol.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace htcsim {

/// Advertiser retracting its ad (clean shutdown / job started elsewhere).
struct AdInvalidate {
  std::string key;
  bool isRequest = false;
};

/// End-of-claim usage report to the pool manager, feeding the fair
/// matching policy's accounting (Section 4).
struct UsageReport {
  std::string user;
  double resourceSeconds = 0.0;
};

using Message =
    std::variant<matchmaking::Advertisement, AdInvalidate,
                 matchmaking::MatchNotification, matchmaking::ClaimRequest,
                 matchmaking::ClaimResponse, matchmaking::ClaimRelease,
                 UsageReport>;

struct Envelope {
  std::string from;
  std::string to;
  Message payload;
};

/// An addressable agent.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Envelope& envelope) = 0;
};

struct NetworkConfig {
  Time latencyMin = 0.001;  ///< seconds
  Time latencyMax = 0.005;
  double lossProbability = 0.0;  ///< dropped silently (UDP-style ads)
};

class Network {
 public:
  using Config = NetworkConfig;

  Network(Simulator& sim, Rng rng, Config config = {})
      : sim_(sim), rng_(rng), config_(config) {}

  /// Registers `endpoint` at `address`; replaces any previous binding
  /// (an agent restarting reuses its address).
  void attach(std::string address, Endpoint* endpoint);

  /// Removes a binding (agent death). Messages in flight to it vanish.
  void detach(std::string_view address);

  /// Sends asynchronously. Returns false if the message was lost or the
  /// destination is currently unknown (the sender cannot tell — that is
  /// the point; callers needing reliability must retry, as the periodic
  /// advertising protocol naturally does).
  bool send(std::string from, std::string to, Message payload);

  /// Messages delivered so far (instrumentation).
  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }

  Simulator& simulator() noexcept { return sim_; }
  const Config& config() const noexcept { return config_; }

 private:
  Simulator& sim_;
  Rng rng_;
  Config config_;
  std::unordered_map<std::string, Endpoint*> endpoints_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace htcsim
