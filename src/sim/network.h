// network.h - Simulated message network between agents.
//
// Stands in for the paper's TCP/UDP daemon-to-daemon messaging (see
// DESIGN.md substitutions; src/service provides the live-socket
// counterpart behind the same Transport interface). Delivery is
// asynchronous with configurable latency and loss: the staleness and
// reordering this produces is exactly what the framework's
// weak-consistency design (Section 3.2) must tolerate, and what
// bench_e3_weak_consistency measures.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/transport.h"

namespace htcsim {

struct NetworkConfig {
  Time latencyMin = 0.001;  ///< seconds
  Time latencyMax = 0.005;
  double lossProbability = 0.0;  ///< dropped silently (UDP-style ads)
};

class Network : public Transport {
 public:
  using Config = NetworkConfig;

  Network(Simulator& sim, Rng rng, Config config = {})
      : sim_(sim), rng_(rng), config_(config) {}

  void attach(std::string address, Endpoint* endpoint) override;
  void detach(std::string_view address) override;
  bool send(std::string from, std::string to, Message payload) override;

  /// Messages delivered so far (instrumentation).
  std::size_t delivered() const noexcept { return delivered_; }
  /// All messages lost, for any reason.
  std::size_t dropped() const noexcept {
    return droppedLoss_ + droppedUnknown_;
  }
  /// Lost to random (configured) loss — noise the protocols absorb.
  std::size_t droppedLoss() const noexcept { return droppedLoss_; }
  /// Lost because the destination was unbound at delivery time — an
  /// outage (agent dead, manager crashed). E2/E3 distinguish this from
  /// noise when attributing recovery behavior.
  std::size_t droppedUnknown() const noexcept { return droppedUnknown_; }

  Simulator& simulator() noexcept { return sim_; }
  const Config& config() const noexcept { return config_; }

 private:
  Simulator& sim_;
  Rng rng_;
  Config config_;
  std::unordered_map<std::string, Endpoint*> endpoints_;
  std::size_t delivered_ = 0;
  std::size_t droppedLoss_ = 0;
  std::size_t droppedUnknown_ = 0;
};

}  // namespace htcsim
