// event_queue.h - Discrete-event simulation core.
//
// A conventional event-list simulator: events are (time, sequence,
// callback) triples executed in time order, with FIFO ordering among
// simultaneous events (the sequence number) so runs are deterministic.
// Cancellation is tombstone-based: cancel() marks the id; the event is
// skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace htcsim {

using Time = double;

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now). Returns an id
  /// usable with cancel().
  EventId at(Time when, std::function<void()> fn);

  /// Schedules `fn` after a delay (>= 0).
  EventId after(Time delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains or the clock passes `until`. Events at
  /// exactly `until` are executed. Returns the number of events run.
  std::size_t runUntil(Time until);

  /// Runs a single event; false if the queue is empty.
  bool step();

  std::size_t pendingEvents() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  std::size_t eventsExecuted() const noexcept { return executed_; }

 private:
  struct Event {
    Time when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among ties
    }
  };

  Time now_ = 0.0;
  EventId nextId_ = 1;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// A repeating timer built on Simulator, used by agents for periodic
/// advertisement and probing. Destroying the handle (or calling stop())
/// halts the cycle.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(Simulator& sim, Time period, std::function<void()> fn,
                Time firstDelay = 0.0);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const noexcept { return sim_ != nullptr; }

 private:
  void arm(Time delay);
  Simulator* sim_ = nullptr;
  Time period_ = 0.0;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace htcsim
