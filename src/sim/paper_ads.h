// paper_ads.h - The verbatim classads of the paper's Figures 1 and 2,
// reproduced as fixtures for tests, benchmarks, and examples.
#pragma once

#include "classad/classad.h"

namespace htcsim {

/// The exact text of Figure 1 (the leonardo.cs.wisc.edu workstation ad).
extern const char* const kFigure1Text;

/// The exact text of Figure 2 (raman's run_sim job ad).
extern const char* const kFigure2Text;

/// Parses Figure 1. (Throws on failure — the paper_figures test guards it.)
classad::ClassAd makeFigure1Ad();

/// REPRODUCTION FINDING: parsed with C operator precedence (`&&` binds
/// tighter than `?:` — the precedence both this library and deployed
/// classad implementations use), Figure 1's Constraint groups as
///   (!member(untrusted) && Rank >= 10) ? true : <friend/night tiers>
/// so an untrusted user falls through to the stranger tier and IS allowed
/// at night — contradicting Section 4's prose ("the workstation is never
/// willing to run applications submitted by users rival and riffraff").
/// This variant carries the prose-faithful constraint
///   !member(untrusted) && (Rank >= 10 ? true : ...)
/// which the simulator's Figure1 owner policy uses. Both forms are tested
/// side by side in tests/classad/paper_figures_test.cpp.
classad::ClassAd makeFigure1AdIntended();

/// The prose-faithful constraint text used by makeFigure1AdIntended().
extern const char* const kFigure1IntendedConstraint;

/// Parses Figure 2.
classad::ClassAd makeFigure2Ad();

}  // namespace htcsim
