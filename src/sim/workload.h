// workload.h - Synthetic workload and pool generators.
//
// The paper evaluated on the live UW-Madison Condor pool; these generators
// are its synthetic stand-in (see DESIGN.md substitutions): heterogeneous
// machines with a mix of owner policies, and per-user Poisson job streams
// with heavy-tailed service demands — the standard shape of HTC workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/job.h"
#include "sim/machine.h"
#include "sim/rng.h"

namespace htcsim {

struct MachinePoolConfig {
  std::size_t count = 100;

  struct Platform {
    std::string arch;
    std::string opSys;
    double weight = 1.0;
  };
  /// Architecture/OS mix; weights are relative.
  std::vector<Platform> platforms = {
      {"INTEL", "SOLARIS251", 0.45},
      {"INTEL", "LINUX", 0.25},
      {"SPARC", "SOLARIS251", 0.30},
  };
  std::vector<std::int64_t> memoryChoicesMB = {32, 64, 128, 256};
  std::int64_t mipsMin = 50;
  std::int64_t mipsMax = 400;
  std::int64_t diskMinKB = 50000;
  std::int64_t diskMaxKB = 2000000;

  /// Owner-policy mix (normalized internally).
  double fracAlwaysAvailable = 0.10;
  double fracClassicIdle = 0.60;
  double fracFigure1 = 0.30;

  /// Owner-activity process (0 absence rate = owners never appear).
  double meanOwnerAbsence = 3600.0;
  double meanOwnerSession = 600.0;

  /// Principals for Figure1-policy machines (the paper's cast).
  std::vector<std::string> researchGroup = {"raman", "miron", "solomon",
                                            "jbasney"};
  std::vector<std::string> friends = {"tannenba", "wright"};
  std::vector<std::string> untrusted = {"rival", "riffraff"};
};

/// Deterministically generates `config.count` machine specs.
std::vector<MachineSpec> generateMachines(const MachinePoolConfig& config,
                                          Rng& rng);

struct JobWorkloadConfig {
  /// Submitting users. The default cast spans the Figure 1 tiers:
  /// research group, friend, stranger, untrusted.
  std::vector<std::string> users = {"raman", "miron", "tannenba", "alice",
                                    "rival"};
  /// Poisson arrival rate per user.
  double jobsPerUserPerHour = 30.0;
  /// Service demand in reference CPU-seconds: heavy-tailed around the
  /// mean, capped.
  double meanWork = 900.0;
  double workCap = 4.0 * 3600.0;
  std::vector<std::int64_t> memoryChoicesMB = {16, 31, 64, 128};
  /// Fraction of jobs pinned to a specific platform (Figure 2 pins
  /// INTEL/SOLARIS251); the rest run anywhere big enough.
  double fracPlatformConstrained = 0.6;
  /// Platforms constrained jobs pin to (defaults to the pool's).
  std::vector<MachinePoolConfig::Platform> platforms = {
      {"INTEL", "SOLARIS251", 0.45},
      {"INTEL", "LINUX", 0.25},
      {"SPARC", "SOLARIS251", 0.30},
  };
  double fracCheckpointable = 0.8;
};

/// Draws one job (without submit time; the scenario stamps it).
Job generateJob(const JobWorkloadConfig& config, Rng& rng, std::uint64_t id,
                std::string owner);

/// Arrival times for one user over [0, duration), Poisson with the
/// configured rate.
std::vector<Time> generateArrivals(const JobWorkloadConfig& config, Rng& rng,
                                   Time duration);

}  // namespace htcsim
