// Provider-side claim-lease table.
//
// The resource agent grants a lease when it accepts a claim; the
// customer renews it with heartbeats.  If the renewal stream stops,
// reapExpired() returns the dead leases so the owner can tear the
// claim down and re-advertise.  Time is a plain double in seconds so
// the same table serves the discrete-event simulator (sim time) and
// the live daemons (wall seconds since daemon start).  Per §3.2 of the
// paper, leases live only at the endpoints — the matchmaker never sees
// this table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lease {

using Ticket = std::uint64_t;

struct Lease {
  Ticket ticket = 0;
  std::uint64_t jobId = 0;
  std::string peer;  // customer contact address
  double durationSeconds = 0.0;
  double grantedAt = 0.0;
  double renewedAt = 0.0;  // last heartbeat (== grantedAt until renewed)
  std::uint64_t renewals = 0;

  double expiresAt() const { return renewedAt + durationSeconds; }
};

class LeaseTable {
 public:
  // Records a fresh lease.  A duplicate ticket replaces the old entry
  // (tickets rotate per claim, so this only happens if a caller reuses
  // one, and last-grant-wins is the safe interpretation).
  const Lease& grant(Ticket ticket, std::uint64_t jobId, std::string peer,
                     double now, double durationSeconds);

  // Heartbeat renewal: pushes the expiry out to now + duration.
  // Returns false for an unknown (never granted or already reaped)
  // ticket — the caller should answer with LeaseExpired.
  bool renew(Ticket ticket, double now);

  // Voluntary teardown (claim released/completed).  Returns false if
  // the ticket was not present.
  bool release(Ticket ticket);

  const Lease* find(Ticket ticket) const;

  // Removes and returns every lease whose expiry has passed.
  std::vector<Lease> reapExpired(double now);

  // Earliest expiry among live leases, for scheduling the next check.
  std::optional<double> nextExpiry() const;

  std::size_t size() const { return leases_.size(); }
  bool empty() const { return leases_.empty(); }

  // Lifetime counters (monotonic, survive reap/release).
  std::uint64_t granted() const { return granted_; }
  std::uint64_t renewed() const { return renewed_; }
  std::uint64_t expired() const { return expired_; }
  std::uint64_t released() const { return released_; }

 private:
  std::unordered_map<Ticket, Lease> leases_;
  std::uint64_t granted_ = 0;
  std::uint64_t renewed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace lease
