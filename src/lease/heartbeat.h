// Customer-side heartbeat monitor for one claimed resource.
//
// Drives the renewal stream that keeps a claim lease alive and decides
// when the resource owner is dead.  The monitor is a passive state
// machine: the owner (sim customer agent or live customer_agentd)
// schedules a callback for nextDue() and calls onDue(); the monitor
// says whether to send another beat or give up.  Missed beats retry on
// a bounded exponential backoff before the peer is declared dead, per
// the failure-detection discipline the paper's weak-consistency story
// (§3) requires at the endpoints.
#pragma once

#include <cstdint>
#include <optional>

#include "lease/backoff.h"

namespace lease {

struct MonitorConfig {
  // Heartbeat period.  0 means "derive from the granted lease": the
  // endpoints use leaseDuration * intervalFraction.
  double intervalSeconds = 0.0;
  double intervalFraction = 1.0 / 3.0;
  // Consecutive unacked beats tolerated before the peer is dead.
  int maxMisses = 3;
  // Pacing of the re-sends after a miss.
  BackoffConfig retry;

  double intervalFor(double leaseDurationSeconds) const {
    if (intervalSeconds > 0.0) return intervalSeconds;
    return leaseDurationSeconds * intervalFraction;
  }
};

class HeartbeatMonitor {
 public:
  HeartbeatMonitor() = default;
  // `now` seeds the first due time (now + interval: the claim was just
  // granted, so the lease is fresh).
  HeartbeatMonitor(MonitorConfig config, double leaseDurationSeconds,
                   double now);

  double nextDue() const { return nextDue_; }
  int misses() const { return misses_; }
  bool dead() const { return dead_; }

  struct Action {
    bool sendBeat = false;
    bool declareDead = false;
    std::uint64_t sequence = 0;
  };

  // Called when nextDue() passes.  An unacked outstanding beat counts
  // as a miss; once misses reach maxMisses the peer is declared dead.
  // Otherwise a new beat (fresh sequence number) should be sent, with
  // the next deadline backed off if we are already retrying.
  // `unitRandom` in [0, 1) jitters the retry delay deterministically.
  Action onDue(double now, double unitRandom);

  // An ack for `sequence` arrived.  Returns the round-trip time if it
  // matches the outstanding beat (resetting the miss counter), nullopt
  // for stale or duplicate acks.
  std::optional<double> ack(std::uint64_t sequence, double now);

 private:
  MonitorConfig config_;
  double interval_ = 0.0;
  double nextDue_ = 0.0;
  double sentAt_ = 0.0;
  std::uint64_t sequence_ = 0;
  bool outstanding_ = false;
  int misses_ = 0;
  bool dead_ = false;
};

}  // namespace lease
