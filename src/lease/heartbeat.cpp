#include "lease/heartbeat.h"

namespace lease {

HeartbeatMonitor::HeartbeatMonitor(MonitorConfig config,
                                   double leaseDurationSeconds, double now)
    : config_(config),
      interval_(config.intervalFor(leaseDurationSeconds)),
      nextDue_(now + config.intervalFor(leaseDurationSeconds)) {}

HeartbeatMonitor::Action HeartbeatMonitor::onDue(double now,
                                                 double unitRandom) {
  Action action;
  if (dead_) {
    action.declareDead = true;
    return action;
  }
  if (outstanding_) {
    ++misses_;
    if (misses_ >= config_.maxMisses) {
      dead_ = true;
      action.declareDead = true;
      return action;
    }
  }
  outstanding_ = true;
  sentAt_ = now;
  action.sendBeat = true;
  action.sequence = ++sequence_;
  // Retries after a miss probe faster than the steady-state interval
  // but back off so a slow peer is not flooded.
  nextDue_ = now + (misses_ > 0
                        ? backoffDelay(config_.retry, misses_ - 1, unitRandom)
                        : interval_);
  return action;
}

std::optional<double> HeartbeatMonitor::ack(std::uint64_t sequence,
                                            double now) {
  // Death is terminal: once the owner has been told to requeue, a
  // straggler ack must not resurrect the claim.
  if (dead_ || !outstanding_ || sequence != sequence_) return std::nullopt;
  outstanding_ = false;
  misses_ = 0;
  nextDue_ = now + interval_;
  return now - sentAt_;
}

}  // namespace lease
