#include "lease/lease_table.h"

#include <utility>

namespace lease {

const Lease& LeaseTable::grant(Ticket ticket, std::uint64_t jobId,
                               std::string peer, double now,
                               double durationSeconds) {
  Lease lease;
  lease.ticket = ticket;
  lease.jobId = jobId;
  lease.peer = std::move(peer);
  lease.durationSeconds = durationSeconds;
  lease.grantedAt = now;
  lease.renewedAt = now;
  ++granted_;
  return leases_.insert_or_assign(ticket, std::move(lease)).first->second;
}

bool LeaseTable::renew(Ticket ticket, double now) {
  auto it = leases_.find(ticket);
  if (it == leases_.end()) return false;
  it->second.renewedAt = now;
  ++it->second.renewals;
  ++renewed_;
  return true;
}

bool LeaseTable::release(Ticket ticket) {
  if (leases_.erase(ticket) == 0) return false;
  ++released_;
  return true;
}

const Lease* LeaseTable::find(Ticket ticket) const {
  auto it = leases_.find(ticket);
  return it == leases_.end() ? nullptr : &it->second;
}

std::vector<Lease> LeaseTable::reapExpired(double now) {
  std::vector<Lease> dead;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expiresAt() <= now) {
      dead.push_back(std::move(it->second));
      it = leases_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
  return dead;
}

std::optional<double> LeaseTable::nextExpiry() const {
  std::optional<double> earliest;
  for (const auto& [ticket, lease] : leases_) {
    const double at = lease.expiresAt();
    if (!earliest || at < *earliest) earliest = at;
  }
  return earliest;
}

}  // namespace lease
