// Bounded exponential backoff with deterministic jitter.
//
// Used wherever an endpoint retries against a peer that may be dead:
// heartbeat re-sends before declaring a lease lost, and daemon
// reconnect attempts to the matchmaker.  The caller supplies the unit
// random draw so schedules stay reproducible under a seeded Rng (sim
// and chaos tests) while live daemons can feed wall-clock entropy.
#pragma once

namespace lease {

struct BackoffConfig {
  double initialSeconds = 0.5;  // delay after the first failure
  double multiplier = 2.0;      // growth factor per consecutive failure
  double maxSeconds = 30.0;     // cap on the uncapped exponential
  double jitter = 0.2;          // +/- fraction of the delay randomized
};

// Delay before retry number `attempt` (0-based: attempt 0 follows the
// first failure).  `unitRandom` must lie in [0, 1); the jittered delay
// spans [base * (1 - jitter), base * (1 + jitter)) and never drops
// below 1ms so schedulers cannot busy-spin.
double backoffDelay(const BackoffConfig& config, int attempt,
                    double unitRandom);

}  // namespace lease
