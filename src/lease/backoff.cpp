#include "lease/backoff.h"

#include <algorithm>
#include <cmath>

namespace lease {

double backoffDelay(const BackoffConfig& config, int attempt,
                    double unitRandom) {
  double base = config.initialSeconds;
  for (int i = 0; i < attempt && base < config.maxSeconds; ++i) {
    base *= config.multiplier;
  }
  base = std::min(base, config.maxSeconds);
  const double spread = 2.0 * unitRandom - 1.0;  // [-1, 1)
  const double jittered = base * (1.0 + config.jitter * spread);
  return std::max(jittered, 1e-3);
}

}  // namespace lease
