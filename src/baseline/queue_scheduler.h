// queue_scheduler.h - The conventional queue-based resource manager of
// Section 2, implemented as the comparison baseline (E5).
//
// "Systems such as NQE, PBS, LSF and LoadLeveler process user submitted
// jobs by finding resources that have been identified either explicitly
// through a job control language, or implicitly by submitting the job to a
// particular queue that is associated with a set of resources. Customers of
// the system have to identify a specific queue to submit to a priori, which
// then fixes the set of resources that may be used, and hinders dynamic
// qualitative resource discovery."
//
// Faithfully to that model, this scheduler:
//  * partitions machines into queues by platform at SETUP time (the
//    administrator "anticipates the services that will be requested");
//  * routes each job to exactly one queue a priori; the job can never use
//    machines of another queue, idle or not;
//  * is centralized and STATEFUL: its dispatch table is the source of
//    truth (crash() loses it, killing the running work — E2's contrast);
//  * has no vocabulary for owner policies: it either ignores
//    distributively-owned machines entirely (dedicated mode) or uses them
//    obliviously and disturbs their owners (greedy mode);
//  * has no Rank: within a queue, placement is first-fit.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/job.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/workload.h"

namespace baseline {

using htcsim::Job;
using htcsim::JobState;
using htcsim::Machine;
using htcsim::MachineSpec;
using htcsim::Metrics;
using htcsim::Rng;
using htcsim::Simulator;
using htcsim::Time;

struct QueueSchedulerConfig {
  Time dispatchInterval = 60.0;
  /// Dedicated mode (false): only machines without owner activity
  /// (AlwaysAvailable) are enrolled — the conventional safe deployment.
  /// Greedy mode (true): all machines are enrolled; jobs are killed (no
  /// checkpoint support) when an owner returns, and owners are disturbed
  /// whenever their machine is busy on their return.
  bool useSharedMachines = false;
};

/// Metrics specific to the baseline's pathologies, alongside the common
/// htcsim::Metrics.
struct BaselineExtraMetrics {
  std::size_t ownerDisturbances = 0;  ///< owner returned to a busy machine
  std::size_t unroutableJobs = 0;     ///< no queue serves the job's needs
  std::size_t jobsKilledByCrash = 0;
};

class QueueScheduler {
 public:
  QueueScheduler(Simulator& sim, std::vector<MachineSpec> specs,
                 Metrics& metrics, Rng rng, QueueSchedulerConfig config = {});
  ~QueueScheduler();
  QueueScheduler(const QueueScheduler&) = delete;
  QueueScheduler& operator=(const QueueScheduler&) = delete;

  void start();

  /// Routes the job to its queue (a priori, by platform requirement).
  /// Jobs no queue can serve are recorded unroutable and dropped — in the
  /// real systems they'd bounce at submit time with an error.
  void submit(Job job);

  /// Centralized-allocator failure: the dispatch table is lost; all
  /// running jobs die; queued jobs survive (the era's systems journaled
  /// queues but not executions). Dispatch resumes after `downFor`.
  void crash(Time downFor);

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  const BaselineExtraMetrics& extra() const noexcept { return extra_; }
  std::size_t queueCount() const noexcept { return queues_.size(); }
  std::size_t machineCount() const noexcept { return machines_.size(); }

  /// Runs one dispatch pass now (tests).
  void dispatchNow();

 private:
  struct Execution {
    std::size_t jobIndex = 0;
    Time startedAt = 0.0;
    htcsim::EventId completionEvent = htcsim::kInvalidEvent;
  };
  struct MachineSlot {
    std::unique_ptr<Machine> machine;
    std::optional<Execution> running;
    std::size_t queue = 0;
  };
  struct Queue {
    std::string name;  // "INTEL/SOLARIS251"
    std::string arch;
    std::string opSys;
    std::vector<std::size_t> machines;
    std::deque<std::size_t> waiting;  // job indices, FIFO
  };

  void dispatchQueue(Queue& queue);
  void startJob(std::size_t machineIdx, std::size_t jobIdx);
  void completeJob(std::size_t machineIdx);
  void evictJob(std::size_t machineIdx, bool byOwner);
  std::size_t routeQueue(const Job& job) const;

  Simulator& sim_;
  Metrics& metrics_;
  Rng rng_;
  QueueSchedulerConfig config_;
  std::vector<MachineSlot> machines_;
  std::vector<Queue> queues_;
  std::vector<Job> jobs_;
  BaselineExtraMetrics extra_;
  std::optional<htcsim::PeriodicTimer> dispatchTimer_;
  bool up_ = true;
  bool started_ = false;
};

}  // namespace baseline
