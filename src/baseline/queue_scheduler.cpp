#include "baseline/queue_scheduler.h"

#include <algorithm>
#include <limits>

namespace baseline {

namespace {
constexpr std::size_t kNoQueue = std::numeric_limits<std::size_t>::max();
}

QueueScheduler::QueueScheduler(Simulator& sim, std::vector<MachineSpec> specs,
                               Metrics& metrics, Rng rng,
                               QueueSchedulerConfig config)
    : sim_(sim), metrics_(metrics), rng_(rng), config_(config) {
  // Setup-time partitioning: one queue per platform present in the pool
  // (the administrator's anticipation of demand).
  auto queueFor = [this](const std::string& arch,
                         const std::string& opSys) -> std::size_t {
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if (queues_[q].arch == arch && queues_[q].opSys == opSys) return q;
    }
    Queue queue;
    queue.name = arch + "/" + opSys;
    queue.arch = arch;
    queue.opSys = opSys;
    queues_.push_back(std::move(queue));
    return queues_.size() - 1;
  };

  for (MachineSpec& spec : specs) {
    const bool dedicated = spec.policy == htcsim::OwnerPolicy::AlwaysAvailable;
    if (!dedicated && !config_.useSharedMachines) continue;  // not enrolled
    const std::size_t q = queueFor(spec.arch, spec.opSys);
    MachineSlot slot;
    slot.queue = q;
    const std::uint64_t seed = htcsim::hashName(spec.name);
    slot.machine = std::make_unique<Machine>(sim_, std::move(spec),
                                             rng_.splitChild(seed));
    const std::size_t idx = machines_.size();
    slot.machine->setOwnerChangeHook([this, idx](bool present) {
      if (!present) return;
      MachineSlot& s = machines_[idx];
      if (s.running) {
        ++extra_.ownerDisturbances;
        evictJob(idx, /*byOwner=*/true);
      }
    });
    queues_[q].machines.push_back(idx);
    machines_.push_back(std::move(slot));
  }
}

QueueScheduler::~QueueScheduler() { dispatchTimer_.reset(); }

void QueueScheduler::start() {
  if (started_) return;
  started_ = true;
  dispatchTimer_.emplace(
      sim_, config_.dispatchInterval,
      [this] {
        if (up_) dispatchNow();
      },
      config_.dispatchInterval);
}

std::size_t QueueScheduler::routeQueue(const Job& job) const {
  if (!job.requiredArch.empty() || !job.requiredOpSys.empty()) {
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if ((job.requiredArch.empty() || queues_[q].arch == job.requiredArch) &&
          (job.requiredOpSys.empty() ||
           queues_[q].opSys == job.requiredOpSys)) {
        return q;
      }
    }
    return kNoQueue;
  }
  // Unconstrained job: the user must still pick ONE queue a priori. The
  // conventional choice is the biggest one — and the job then cannot use
  // idle machines of any other queue (the discovery penalty of Section 2).
  std::size_t best = kNoQueue;
  std::size_t bestSize = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (queues_[q].machines.size() > bestSize) {
      best = q;
      bestSize = queues_[q].machines.size();
    }
  }
  return best;
}

void QueueScheduler::submit(Job job) {
  job.submitTime = sim_.now();
  job.state = JobState::Idle;
  job.remainingWork = job.totalWork;
  ++metrics_.jobsSubmitted;
  const std::size_t q = routeQueue(job);
  const std::size_t idx = jobs_.size();
  jobs_.push_back(std::move(job));
  if (q == kNoQueue) {
    ++extra_.unroutableJobs;
    return;
  }
  queues_[q].waiting.push_back(idx);
}

void QueueScheduler::dispatchNow() {
  for (Queue& queue : queues_) dispatchQueue(queue);
}

void QueueScheduler::dispatchQueue(Queue& queue) {
  // FCFS with first-fit placement; a head-of-line job that fits no free
  // machine blocks the queue (the era's default; no backfilling).
  while (!queue.waiting.empty()) {
    const std::size_t jobIdx = queue.waiting.front();
    Job& job = jobs_[jobIdx];
    if (job.state != JobState::Idle) {
      queue.waiting.pop_front();
      continue;
    }
    std::size_t chosen = kNoQueue;
    for (const std::size_t m : queue.machines) {
      const MachineSlot& slot = machines_[m];
      if (slot.running) continue;
      if (!config_.useSharedMachines && slot.machine->ownerPresent()) continue;
      const MachineSpec& spec = slot.machine->spec();
      if (spec.memoryMB < job.memoryMB || spec.diskKB < job.diskKB) continue;
      chosen = m;
      break;  // first fit; no Rank
    }
    if (chosen == kNoQueue) return;  // head-of-line blocking
    queue.waiting.pop_front();
    startJob(chosen, jobIdx);
  }
}

void QueueScheduler::startJob(std::size_t machineIdx, std::size_t jobIdx) {
  MachineSlot& slot = machines_[machineIdx];
  Job& job = jobs_[jobIdx];
  job.state = JobState::Running;
  job.runningOn = slot.machine->spec().name;
  if (job.firstStartTime < 0.0) job.firstStartTime = sim_.now();
  Execution exec;
  exec.jobIndex = jobIdx;
  exec.startedAt = sim_.now();
  const double mips = static_cast<double>(slot.machine->spec().mips);
  const Time duration = job.remainingWork * htcsim::kReferenceMips / mips;
  exec.completionEvent =
      sim_.after(duration, [this, machineIdx] { completeJob(machineIdx); });
  slot.running = exec;
}

void QueueScheduler::completeJob(std::size_t machineIdx) {
  MachineSlot& slot = machines_[machineIdx];
  if (!slot.running.has_value()) return;
  const Execution exec = *slot.running;
  Job& job = jobs_[exec.jobIndex];
  const double wall = sim_.now() - exec.startedAt;
  metrics_.machineBusySeconds += wall;
  metrics_.goodputCpuSeconds += job.remainingWork;
  job.remainingWork = 0.0;
  job.state = JobState::Completed;
  job.completionTime = sim_.now();
  ++metrics_.jobsCompleted;
  metrics_.totalWaitTime += job.firstStartTime - job.submitTime;
  metrics_.totalTurnaround += job.completionTime - job.submitTime;
  metrics_.totalWorkCompleted += job.totalWork;
  metrics_.usageByUser[job.owner] += wall;
  slot.running.reset();
}

void QueueScheduler::evictJob(std::size_t machineIdx, bool byOwner) {
  MachineSlot& slot = machines_[machineIdx];
  if (!slot.running.has_value()) return;
  const Execution exec = *slot.running;
  const std::size_t jobIdx = exec.jobIndex;
  Job& job = jobs_[jobIdx];
  sim_.cancel(exec.completionEvent);
  const double wall = sim_.now() - exec.startedAt;
  const double mips = static_cast<double>(slot.machine->spec().mips);
  const double done = wall * mips / htcsim::kReferenceMips;
  metrics_.machineBusySeconds += wall;
  metrics_.usageByUser[job.owner] += wall;
  // No checkpointing in the conventional system: the work is lost.
  metrics_.badputCpuSeconds += done;
  ++job.evictions;
  if (byOwner) ++metrics_.preemptionsByOwner;
  job.state = JobState::Idle;
  job.runningOn.clear();
  slot.running.reset();
  // Requeue at the BACK (the job re-enters the queue and starts over).
  queues_[slot.queue].waiting.push_back(jobIdx);
}

void QueueScheduler::crash(Time downFor) {
  if (!up_) return;
  up_ = false;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].running) {
      ++extra_.jobsKilledByCrash;
      evictJob(m, /*byOwner=*/false);
    }
  }
  sim_.after(downFor, [this] { up_ = true; });
}

}  // namespace baseline
