// frame.h - Versioned, length-prefixed binary framing for the live wire
// protocol (src/service).
//
// Every daemon-to-daemon message travels as one frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic      "MMWP" (0x4D 0x4D 0x57 0x50)
//        4     1  version    protocol version (currently 1)
//        5     1  type       message type tag (see codec.h)
//        6     2  reserved   must be zero in version 1
//        8     4  length     payload byte count, big-endian
//       12     4  checksum   CRC-32 (IEEE) of the payload, big-endian
//       16     n  payload    type-specific body (codec.h)
//
// The decoder is incremental (feed arbitrary byte chunks, pop whole
// frames) and strict: bad magic, unsupported version, nonzero reserved
// bits, a length above kMaxPayload, or a checksum mismatch poison the
// stream — the only safe recovery on a byte stream whose framing has
// been lost is to drop the connection. The length field is validated
// BEFORE any payload buffering, so a hostile header cannot cause a
// large allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace obs {
class Counter;
}  // namespace obs

namespace wire {

inline constexpr unsigned char kMagic[4] = {'M', 'M', 'W', 'P'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Hard cap on payload size. Classad payloads are a few KiB; anything
/// near this limit is a corrupt length or an attack, not traffic.
inline constexpr std::size_t kMaxPayload = 4u << 20;  // 4 MiB

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the frame checksum.
std::uint32_t crc32(std::string_view data) noexcept;

struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Renders one complete frame (header + payload) onto `out`.
/// `payload.size()` must be <= kMaxPayload (checked; throws
/// std::length_error otherwise — an encoder-side program error).
void encodeFrame(std::uint8_t type, std::string_view payload,
                 std::string& out);

/// Convenience form returning the rendered frame.
std::string encodeFrame(std::uint8_t type, std::string_view payload);

enum class DecodeStatus {
  kNeedMore,  ///< no complete frame buffered yet
  kFrame,     ///< a frame was produced
  kError,     ///< stream poisoned; discard the connection
};

/// Incremental frame parser for one byte stream (one connection).
class FrameDecoder {
 public:
  /// Buffers `data`. No-op once the stream is poisoned.
  void append(std::string_view data);

  /// Extracts the next complete frame into `out`. On kError, `error()`
  /// describes the fault and every later call returns kError again.
  DecodeStatus next(Frame& out);

  bool poisoned() const noexcept { return poisoned_; }
  const std::string& error() const noexcept { return error_; }

  /// Attaches observability counters (any may be null): bytes fed to
  /// append(), whole frames produced, and poisoning faults. Counters are
  /// registry-owned atomics, so instrumentation adds one relaxed atomic
  /// op per event on the decode path.
  void instrument(obs::Counter* bytesIn, obs::Counter* framesIn,
                  obs::Counter* decodeErrors) noexcept {
    bytesIn_ = bytesIn;
    framesIn_ = framesIn;
    decodeErrors_ = decodeErrors;
  }

  /// Bytes currently buffered (bounded by kHeaderSize + kMaxPayload +
  /// one read chunk, since headers are validated before payloads are
  /// awaited).
  std::size_t buffered() const noexcept { return buffer_.size() - start_; }

 private:
  DecodeStatus fail(std::string message);

  std::string buffer_;
  std::size_t start_ = 0;  ///< consumed prefix, compacted lazily
  bool poisoned_ = false;
  std::string error_;
  obs::Counter* bytesIn_ = nullptr;
  obs::Counter* framesIn_ = nullptr;
  obs::Counter* decodeErrors_ = nullptr;
};

}  // namespace wire
