// codec.h - Binary payload codec for every protocol message.
//
// The wire form of an htcsim::Envelope is one frame (frame.h) whose type
// tag selects the Message alternative and whose payload is a flat,
// big-endian binary record: strings are u32-length-prefixed bytes, and
// classads travel in the canonical JSON interchange form of
// src/classad/json.* (so non-C++ peers can produce and consume them).
//
// Decoding is strict: a payload must parse exactly — short fields,
// trailing bytes, absent-but-required ads, and malformed classad JSON
// all reject the frame. Rejection never throws; it reports through the
// optional/error-string interface so daemons can drop a bad peer
// without unwinding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/transport.h"
#include "wire/frame.h"
#include "wire/tags.h"

namespace wire {

/// Frame type tags now live in the registry (wire/tags.h); this alias
/// keeps the historical name every call site uses. kEnvelope-kind tags
/// map 1:1 onto the htcsim::Message variant alternatives; kHello is the
/// connection handshake; kQuery/kQueryResponse are the observability
/// Query protocol (one-way matching over the pool's ads, Section 4's
/// status/queue browsing tools taken live).
using MsgType = FrameTag;

/// First frame on every connection, both directions. Carries the version
/// range the peer speaks (the frame header pins the version actually in
/// use — a peer seeing an unacceptable range closes) and the sender's
/// transport address, which the matchmaker uses to route pushes
/// (MatchNotification) back over this connection.
struct Hello {
  std::uint8_t minVersion = kProtocolVersion;
  std::uint8_t maxVersion = kProtocolVersion;
  std::string address;
};

std::string encodeHello(const Hello& hello);
std::optional<Hello> decodeHello(const Frame& frame, std::string* error);

/// Renders `env` as one complete frame (header + payload).
std::string encodeEnvelope(const htcsim::Envelope& env);

/// Decodes a typed frame back into an envelope. Returns nullopt (and
/// fills `error`) on any malformed payload or a non-message frame type.
std::optional<htcsim::Envelope> decodeEnvelope(const Frame& frame,
                                               std::string* error);

/// A client's ad-store query (mm_status, monitoring): a classad
/// constraint expression evaluated against each stored ad with the
/// one-way Query engine. The constraint travels as TEXT — parse errors
/// are a semantic fault answered with an error QueryResponse, never a
/// framing fault that would poison the connection.
struct PoolQuery {
  /// Classad expression; empty matches every ad in scope.
  std::string constraint;
  /// Attribute names to project; empty returns full ads.
  std::vector<std::string> projection;
  /// "" = everything the matchmaker stores; "machines" = resource ads,
  /// "jobs" = request ads, "daemons" = DaemonStatus self-ads.
  std::string scope;
};

std::string encodePoolQuery(const PoolQuery& query);
std::optional<PoolQuery> decodePoolQuery(const Frame& frame,
                                         std::string* error);

/// The matchmaker's answer: the matching ads, or ok=false with a
/// human-readable error (bad constraint / oversize result). An error
/// response leaves the connection healthy for the next query.
struct PoolQueryResponse {
  bool ok = true;
  std::string error;
  std::vector<classad::ClassAdPtr> ads;
};

std::string encodePoolQueryResponse(const PoolQueryResponse& response);
std::optional<PoolQueryResponse> decodePoolQueryResponse(const Frame& frame,
                                                         std::string* error);

/// Pulls recent spans from a daemon's trace ring (tag 18; mm_trace).
/// Like PoolQuery this is a read-only observability request, and it is
/// handled even more leniently: ANY malformed TraceQuery — binary
/// truncation included — is answered with ok=false rather than closing
/// the connection, so a monitoring bug can never sever a live peering.
struct TraceQuery {
  /// 32-hex-char TraceId filter; empty = the most recent spans of every
  /// trace in the ring.
  std::string traceId;
  /// Max spans in the response; 0 = the daemon's default cap.
  std::uint32_t limit = 0;
};

std::string encodeTraceQuery(const TraceQuery& query);
std::optional<TraceQuery> decodeTraceQuery(const Frame& frame,
                                           std::string* error);

/// The daemon's answer (tag 19): its component name and the matching
/// span records, oldest first. ok=false carries a human-readable error
/// and leaves the connection healthy.
struct TraceQueryResponse {
  bool ok = true;
  std::string error;
  std::string component;
  std::vector<obs::SpanRecord> spans;
};

std::string encodeTraceQueryResponse(const TraceQueryResponse& response);
std::optional<TraceQueryResponse> decodeTraceQueryResponse(
    const Frame& frame, std::string* error);

}  // namespace wire
