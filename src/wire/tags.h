// tags.h - The single registry of wire frame type tags.
//
// Every frame tag the protocol speaks is declared HERE, once, with its
// dispatch kind and human-readable name. Before this registry existed,
// tags 9/10/11/12 were magic numbers at call sites and in PROTOCOL.md;
// codec.cpp, matchmakerd's frame dispatch, and the docs each carried a
// private copy of the tag space and drifted independently. Now:
//
//   - codec.cpp derives its envelope-tag predicate from the registry and
//     static_asserts that the htcsim::Message variant has exactly one
//     alternative per kEnvelope tag;
//   - tests/wire/tags_test.cpp round-trips every registered tag through
//     the real encoder and checks the decoder agrees with the registry
//     about which tags are envelopes;
//   - PROTOCOL.md's tag table mirrors kFrameTagRegistry line for line.
//
// Adding a frame means adding one enumerator and one registry row; a
// missing codec case then fails the static_assert or the registry test
// instead of shipping a silent dispatch hole.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wire {

/// Frame type tags (byte 5 of the frame header, frame.h). Values are wire
/// protocol — never renumber, only append.
enum class FrameTag : std::uint8_t {
  kHello = 1,             ///< connection handshake (both directions)
  kAdvertisement = 2,     ///< advertising protocol, Step 1 Figure 3
  kAdInvalidate = 3,      ///< advertiser retracts its ad
  kMatchNotification = 4, ///< matchmaking protocol, Step 3 Figure 3
  kClaimRequest = 5,      ///< claiming protocol, Step 4 Figure 3
  kClaimResponse = 6,
  kClaimRelease = 7,
  kUsageReport = 8,       ///< accounting feedback to the matchmaker
  kQuery = 9,             ///< observability query (mm_status)
  kQueryResponse = 10,
  kHeartbeat = 11,        ///< claim-lease renewal (end-to-end)
  kLeaseExpired = 12,
  // --- federation plane (multi-matchmaker peering) -----------------------
  kPeerHello = 13,        ///< matchmaker-to-matchmaker identification
  kAdForward = 14,        ///< flocked resource ad (origin-pool stamped)
  kSchemaDigest = 15,     ///< periodic pool-schema digest push
  kMatchReferral = 16,    ///< unmatched request referred to a peer
  kReferralResponse = 17, ///< the peer's verdict back to the origin
  // --- tracing plane (causal spans, docs/OBSERVABILITY.md) ---------------
  kTraceQuery = 18,       ///< pull recent spans from a daemon's ring
  kTraceQueryResponse = 19,
};

/// How a tag's payload is dispatched.
enum class FrameKind : std::uint8_t {
  kHandshake,  ///< connection-scoped, dedicated codec (Hello)
  kEnvelope,   ///< an htcsim::Envelope carrying one Message alternative
  kQuery,      ///< the observability query protocol, dedicated codecs
};

struct FrameTagInfo {
  FrameTag tag;
  FrameKind kind;
  std::string_view name;
};

/// The registry: one row per tag the protocol has ever assigned, in tag
/// order. PROTOCOL.md's "Type tags" table mirrors this array.
inline constexpr std::array<FrameTagInfo, 19> kFrameTagRegistry = {{
    {FrameTag::kHello, FrameKind::kHandshake, "Hello"},
    {FrameTag::kAdvertisement, FrameKind::kEnvelope, "Advertisement"},
    {FrameTag::kAdInvalidate, FrameKind::kEnvelope, "AdInvalidate"},
    {FrameTag::kMatchNotification, FrameKind::kEnvelope, "MatchNotification"},
    {FrameTag::kClaimRequest, FrameKind::kEnvelope, "ClaimRequest"},
    {FrameTag::kClaimResponse, FrameKind::kEnvelope, "ClaimResponse"},
    {FrameTag::kClaimRelease, FrameKind::kEnvelope, "ClaimRelease"},
    {FrameTag::kUsageReport, FrameKind::kEnvelope, "UsageReport"},
    {FrameTag::kQuery, FrameKind::kQuery, "Query"},
    {FrameTag::kQueryResponse, FrameKind::kQuery, "QueryResponse"},
    {FrameTag::kHeartbeat, FrameKind::kEnvelope, "Heartbeat"},
    {FrameTag::kLeaseExpired, FrameKind::kEnvelope, "LeaseExpired"},
    {FrameTag::kPeerHello, FrameKind::kEnvelope, "PeerHello"},
    {FrameTag::kAdForward, FrameKind::kEnvelope, "AdForward"},
    {FrameTag::kSchemaDigest, FrameKind::kEnvelope, "SchemaDigest"},
    {FrameTag::kMatchReferral, FrameKind::kEnvelope, "MatchReferral"},
    {FrameTag::kReferralResponse, FrameKind::kEnvelope, "ReferralResponse"},
    {FrameTag::kTraceQuery, FrameKind::kQuery, "TraceQuery"},
    {FrameTag::kTraceQueryResponse, FrameKind::kQuery, "TraceQueryResponse"},
}};

/// Registry row for a raw header byte; nullptr for unassigned tags.
constexpr const FrameTagInfo* frameTagInfo(std::uint8_t raw) noexcept {
  for (const FrameTagInfo& info : kFrameTagRegistry) {
    if (static_cast<std::uint8_t>(info.tag) == raw) return &info;
  }
  return nullptr;
}

constexpr bool isEnvelopeTag(std::uint8_t raw) noexcept {
  const FrameTagInfo* info = frameTagInfo(raw);
  return info != nullptr && info->kind == FrameKind::kEnvelope;
}

constexpr std::string_view frameTagName(std::uint8_t raw) noexcept {
  const FrameTagInfo* info = frameTagInfo(raw);
  return info != nullptr ? info->name : std::string_view{"unassigned"};
}

/// Number of kEnvelope rows; codec.cpp pins the htcsim::Message variant
/// to exactly this many alternatives.
inline constexpr std::size_t kEnvelopeTagCount = [] {
  std::size_t n = 0;
  for (const FrameTagInfo& info : kFrameTagRegistry) {
    if (info.kind == FrameKind::kEnvelope) ++n;
  }
  return n;
}();

// The tag space is dense from 1 and registered in order — a registry row
// out of place (or a duplicate tag) fails right here.
static_assert([] {
  std::uint8_t expected = 1;
  for (const FrameTagInfo& info : kFrameTagRegistry) {
    if (static_cast<std::uint8_t>(info.tag) != expected++) return false;
  }
  return true;
}(), "frame tag registry must be dense and in tag order");

}  // namespace wire
