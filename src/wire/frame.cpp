#include "wire/frame.h"

#include <array>
#include <stdexcept>

#include "obs/registry.h"

namespace wire {

namespace {

constexpr std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = makeCrcTable();

void putU32(std::string& out, std::uint32_t v) {
  out += static_cast<char>((v >> 24) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}

std::uint32_t readU32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encodeFrame(std::uint8_t type, std::string_view payload,
                 std::string& out) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("wire: payload exceeds kMaxPayload");
  }
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.append(reinterpret_cast<const char*>(kMagic), 4);
  out += static_cast<char>(kProtocolVersion);
  out += static_cast<char>(type);
  out += '\0';
  out += '\0';
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU32(out, crc32(payload));
  out.append(payload);
}

std::string encodeFrame(std::uint8_t type, std::string_view payload) {
  std::string out;
  encodeFrame(type, payload, out);
  return out;
}

void FrameDecoder::append(std::string_view data) {
  if (poisoned_) return;
  if (bytesIn_ != nullptr) bytesIn_->inc(data.size());
  // Compact once the consumed prefix dominates, keeping the buffer from
  // creeping upward across many frames.
  if (start_ > 0 && start_ >= buffer_.size() / 2) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  buffer_.append(data);
}

DecodeStatus FrameDecoder::fail(std::string message) {
  if (decodeErrors_ != nullptr) decodeErrors_->inc();
  poisoned_ = true;
  error_ = std::move(message);
  buffer_.clear();
  start_ = 0;
  return DecodeStatus::kError;
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned_) return DecodeStatus::kError;
  const std::size_t available = buffer_.size() - start_;
  if (available < kHeaderSize) return DecodeStatus::kNeedMore;
  const char* h = buffer_.data() + start_;
  // Validate the header as soon as it is complete — BEFORE waiting for
  // (or buffering) any payload, so a forged length cannot make us hold
  // gigabytes.
  for (int i = 0; i < 4; ++i) {
    if (static_cast<unsigned char>(h[i]) != kMagic[i]) {
      return fail("bad magic");
    }
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kProtocolVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  if (h[6] != 0 || h[7] != 0) return fail("nonzero reserved bits");
  const std::uint32_t length = readU32(h + 8);
  if (length > kMaxPayload) {
    return fail("frame length " + std::to_string(length) + " exceeds cap");
  }
  if (available < kHeaderSize + length) return DecodeStatus::kNeedMore;
  const std::uint32_t expected = readU32(h + 12);
  const std::string_view payload(h + kHeaderSize, length);
  if (crc32(payload) != expected) return fail("checksum mismatch");
  out.type = static_cast<std::uint8_t>(h[5]);
  out.payload.assign(payload);
  if (framesIn_ != nullptr) framesIn_->inc();
  start_ += kHeaderSize + length;
  if (start_ == buffer_.size()) {
    buffer_.clear();
    start_ = 0;
  }
  return DecodeStatus::kFrame;
}

}  // namespace wire
