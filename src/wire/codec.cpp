#include "wire/codec.h"

#include <bit>

#include "classad/json.h"

namespace wire {

namespace {

// ---------------------------------------------------------------------------
// Flat binary writer / reader (big-endian, length-prefixed strings)
// ---------------------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_ += static_cast<char>(v); }
  void u32(std::uint32_t v) {
    out_ += static_cast<char>((v >> 24) & 0xFF);
    out_ += static_cast<char>((v >> 16) & 0xFF);
    out_ += static_cast<char>((v >> 8) & 0xFF);
    out_ += static_cast<char>(v & 0xFF);
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  /// A possibly-absent classad: presence byte + JSON interchange form.
  void ad(const classad::ClassAdPtr& a) {
    boolean(a != nullptr);
    if (a) str(classad::toJson(*a));
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_++]);
    }
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (ok_ && v > 1) fail("bad boolean");
    return v == 1;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_) return {};
    if (n > data_.size() - pos_) {
      fail("string length overruns payload");
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  classad::ClassAdPtr ad() {
    if (!boolean()) return nullptr;
    const std::string json = str();
    if (!ok_) return nullptr;
    std::string parseError;
    auto parsed = classad::tryAdFromJson(json, &parseError);
    if (!parsed) {
      fail("bad classad payload: " + parseError);
      return nullptr;
    }
    return classad::makeShared(std::move(*parsed));
  }

  /// Decoding must consume the payload exactly; leftovers mean the peer
  /// and we disagree about the schema.
  bool finish() {
    if (ok_ && pos_ != data_.size()) fail("trailing bytes in payload");
    return ok_;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_) return false;
    if (data_.size() - pos_ < n) {
      fail("payload truncated");
      return false;
    }
    return true;
  }
  void fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Per-message bodies
// ---------------------------------------------------------------------------

// TraceContext travels as presence byte + three u64s. The all-zero
// (invalid) context is encoded as absent, so a message produced with
// tracing off costs one byte on the wire.
void writeTraceContext(Writer& w, const obs::TraceContext& ctx) {
  w.boolean(ctx.valid());
  if (ctx.valid()) {
    w.u64(ctx.trace.hi);
    w.u64(ctx.trace.lo);
    w.u64(ctx.span);
  }
}

obs::TraceContext readTraceContext(Reader& r) {
  obs::TraceContext ctx;
  if (r.boolean()) {
    ctx.trace.hi = r.u64();
    ctx.trace.lo = r.u64();
    ctx.span = r.u64();
  }
  return ctx;
}

void writeDigest(Writer& w, const federation::SchemaDigest& d) {
  w.str(d.pool);
  w.u64(d.version);
  w.u64(d.adCount);
  w.u32(static_cast<std::uint32_t>(d.attrs.size()));
  for (const federation::DigestAttr& a : d.attrs) {
    w.str(a.name);
    w.str(a.spelling);
    w.u64(a.definedIn);
    w.u8(a.typeMask);
    w.f64(a.lo);
    w.f64(a.hi);
    w.boolean(a.loOpen);
    w.boolean(a.hiOpen);
    w.boolean(a.canTrue);
    w.boolean(a.canFalse);
    w.boolean(a.anyString);
    w.u32(static_cast<std::uint32_t>(a.strings.size()));
    for (const std::string& s : a.strings) w.str(s);
  }
}

federation::SchemaDigest readDigest(Reader& r) {
  federation::SchemaDigest d;
  d.pool = r.str();
  d.version = r.u64();
  d.adCount = r.u64();
  const std::uint32_t attrCount = r.u32();
  for (std::uint32_t i = 0; i < attrCount && r.ok(); ++i) {
    federation::DigestAttr a;
    a.name = r.str();
    a.spelling = r.str();
    a.definedIn = r.u64();
    a.typeMask = r.u8();
    a.lo = r.f64();
    a.hi = r.f64();
    a.loOpen = r.boolean();
    a.hiOpen = r.boolean();
    a.canTrue = r.boolean();
    a.canFalse = r.boolean();
    a.anyString = r.boolean();
    const std::uint32_t stringCount = r.u32();
    for (std::uint32_t k = 0; k < stringCount && r.ok(); ++k) {
      a.strings.push_back(r.str());
    }
    d.attrs.push_back(std::move(a));
  }
  return d;
}

struct BodyEncoder {
  Writer& w;
  MsgType operator()(const matchmaking::Advertisement& m) const {
    w.ad(m.ad);
    w.u64(m.sequence);
    w.boolean(m.isRequest);
    w.str(m.key);
    return MsgType::kAdvertisement;
  }
  MsgType operator()(const htcsim::AdInvalidate& m) const {
    w.str(m.key);
    w.boolean(m.isRequest);
    return MsgType::kAdInvalidate;
  }
  MsgType operator()(const matchmaking::MatchNotification& m) const {
    w.ad(m.myAd);
    w.ad(m.peerAd);
    w.str(m.peerContact);
    w.u64(m.ticket);
    writeTraceContext(w, m.trace);
    return MsgType::kMatchNotification;
  }
  MsgType operator()(const matchmaking::ClaimRequest& m) const {
    w.ad(m.requestAd);
    w.u64(m.ticket);
    w.str(m.customerContact);
    writeTraceContext(w, m.trace);
    return MsgType::kClaimRequest;
  }
  MsgType operator()(const matchmaking::ClaimResponse& m) const {
    w.boolean(m.accepted);
    w.str(m.reason);
    w.f64(m.leaseDuration);
    writeTraceContext(w, m.trace);
    return MsgType::kClaimResponse;
  }
  MsgType operator()(const matchmaking::ClaimRelease& m) const {
    w.u64(m.ticket);
    w.str(m.reason);
    w.u64(m.jobId);
    w.f64(m.cpuSecondsUsed);
    w.boolean(m.completed);
    writeTraceContext(w, m.trace);
    return MsgType::kClaimRelease;
  }
  MsgType operator()(const htcsim::UsageReport& m) const {
    w.str(m.user);
    w.f64(m.resourceSeconds);
    return MsgType::kUsageReport;
  }
  MsgType operator()(const matchmaking::Heartbeat& m) const {
    w.u64(m.ticket);
    w.u64(m.jobId);
    w.u64(m.sequence);
    w.boolean(m.ack);
    writeTraceContext(w, m.trace);
    return MsgType::kHeartbeat;
  }
  MsgType operator()(const matchmaking::LeaseExpired& m) const {
    w.u64(m.ticket);
    w.u64(m.jobId);
    w.str(m.reason);
    writeTraceContext(w, m.trace);
    return MsgType::kLeaseExpired;
  }
  MsgType operator()(const federation::PeerHello& m) const {
    w.str(m.pool);
    w.str(m.address);
    w.u64(m.epoch);
    return MsgType::kPeerHello;
  }
  MsgType operator()(const federation::AdForward& m) const {
    w.ad(m.ad);
    w.str(m.originPool);
    w.str(m.key);
    w.u64(m.revision);
    w.boolean(m.retract);
    return MsgType::kAdForward;
  }
  MsgType operator()(const federation::SchemaDigestMsg& m) const {
    writeDigest(w, m.digest);
    w.boolean(m.demand.has_value());
    if (m.demand.has_value()) writeDigest(w, *m.demand);
    return MsgType::kSchemaDigest;
  }
  MsgType operator()(const federation::MatchReferral& m) const {
    w.ad(m.requestAd);
    w.str(m.originPool);
    w.str(m.originAddress);
    w.str(m.requestKey);
    w.u64(m.referralId);
    w.u32(m.hopsLeft);
    w.u32(static_cast<std::uint32_t>(m.visited.size()));
    for (const std::string& pool : m.visited) w.str(pool);
    writeTraceContext(w, m.trace);
    return MsgType::kMatchReferral;
  }
  MsgType operator()(const federation::ReferralResponse& m) const {
    w.u64(m.referralId);
    w.str(m.requestKey);
    w.boolean(m.matched);
    w.str(m.servingPool);
    w.u32(m.hops);
    w.ad(m.resourceAd);
    w.str(m.resourceContact);
    w.u64(m.ticket);
    writeTraceContext(w, m.trace);
    return MsgType::kReferralResponse;
  }
};

bool decodeBody(MsgType type, Reader& r, htcsim::Message& out) {
  switch (type) {
    case MsgType::kAdvertisement: {
      matchmaking::Advertisement m;
      m.ad = r.ad();
      m.sequence = r.u64();
      m.isRequest = r.boolean();
      m.key = r.str();
      out = std::move(m);
      return true;
    }
    case MsgType::kAdInvalidate: {
      htcsim::AdInvalidate m;
      m.key = r.str();
      m.isRequest = r.boolean();
      out = std::move(m);
      return true;
    }
    case MsgType::kMatchNotification: {
      matchmaking::MatchNotification m;
      m.myAd = r.ad();
      m.peerAd = r.ad();
      m.peerContact = r.str();
      m.ticket = r.u64();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kClaimRequest: {
      matchmaking::ClaimRequest m;
      m.requestAd = r.ad();
      m.ticket = r.u64();
      m.customerContact = r.str();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kClaimResponse: {
      matchmaking::ClaimResponse m;
      m.accepted = r.boolean();
      m.reason = r.str();
      m.leaseDuration = r.f64();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kClaimRelease: {
      matchmaking::ClaimRelease m;
      m.ticket = r.u64();
      m.reason = r.str();
      m.jobId = r.u64();
      m.cpuSecondsUsed = r.f64();
      m.completed = r.boolean();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kUsageReport: {
      htcsim::UsageReport m;
      m.user = r.str();
      m.resourceSeconds = r.f64();
      out = std::move(m);
      return true;
    }
    case MsgType::kHeartbeat: {
      matchmaking::Heartbeat m;
      m.ticket = r.u64();
      m.jobId = r.u64();
      m.sequence = r.u64();
      m.ack = r.boolean();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kLeaseExpired: {
      matchmaking::LeaseExpired m;
      m.ticket = r.u64();
      m.jobId = r.u64();
      m.reason = r.str();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kPeerHello: {
      federation::PeerHello m;
      m.pool = r.str();
      m.address = r.str();
      m.epoch = r.u64();
      out = std::move(m);
      return true;
    }
    case MsgType::kAdForward: {
      federation::AdForward m;
      m.ad = r.ad();
      m.originPool = r.str();
      m.key = r.str();
      m.revision = r.u64();
      m.retract = r.boolean();
      out = std::move(m);
      return true;
    }
    case MsgType::kSchemaDigest: {
      federation::SchemaDigestMsg m;
      m.digest = readDigest(r);
      if (r.boolean()) m.demand = readDigest(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kMatchReferral: {
      federation::MatchReferral m;
      m.requestAd = r.ad();
      m.originPool = r.str();
      m.originAddress = r.str();
      m.requestKey = r.str();
      m.referralId = r.u64();
      m.hopsLeft = r.u32();
      const std::uint32_t visitedCount = r.u32();
      for (std::uint32_t i = 0; i < visitedCount && r.ok(); ++i) {
        m.visited.push_back(r.str());
      }
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kReferralResponse: {
      federation::ReferralResponse m;
      m.referralId = r.u64();
      m.requestKey = r.str();
      m.matched = r.boolean();
      m.servingPool = r.str();
      m.hops = r.u32();
      m.resourceAd = r.ad();
      m.resourceContact = r.str();
      m.ticket = r.u64();
      m.trace = readTraceContext(r);
      out = std::move(m);
      return true;
    }
    case MsgType::kHello:
    case MsgType::kQuery:
    case MsgType::kQueryResponse:
    case MsgType::kTraceQuery:
    case MsgType::kTraceQueryResponse:
      // Not envelope payloads; these have their own codecs.
      return false;
  }
  return false;
}

// The registry (wire/tags.h) and the transport's Message variant must
// agree alternative-for-tag; a frame added to one but not the other
// fails to compile right here.
static_assert(std::variant_size_v<htcsim::Message> == kEnvelopeTagCount,
              "htcsim::Message and the kEnvelope rows of kFrameTagRegistry "
              "must stay 1:1");

}  // namespace

std::string encodeHello(const Hello& hello) {
  Writer w;
  w.u8(hello.minVersion);
  w.u8(hello.maxVersion);
  w.str(hello.address);
  return encodeFrame(static_cast<std::uint8_t>(MsgType::kHello), w.take());
}

std::optional<Hello> decodeHello(const Frame& frame, std::string* error) {
  if (frame.type != static_cast<std::uint8_t>(MsgType::kHello)) {
    if (error) *error = "not a hello frame";
    return std::nullopt;
  }
  Reader r(frame.payload);
  Hello hello;
  hello.minVersion = r.u8();
  hello.maxVersion = r.u8();
  hello.address = r.str();
  if (!r.finish()) {
    if (error) *error = r.error();
    return std::nullopt;
  }
  if (hello.minVersion > hello.maxVersion) {
    if (error) *error = "inverted version range";
    return std::nullopt;
  }
  return hello;
}

std::string encodePoolQuery(const PoolQuery& query) {
  Writer w;
  w.str(query.constraint);
  w.str(query.scope);
  w.u32(static_cast<std::uint32_t>(query.projection.size()));
  for (const std::string& attr : query.projection) w.str(attr);
  return encodeFrame(static_cast<std::uint8_t>(MsgType::kQuery), w.take());
}

std::optional<PoolQuery> decodePoolQuery(const Frame& frame,
                                         std::string* error) {
  if (frame.type != static_cast<std::uint8_t>(MsgType::kQuery)) {
    if (error) *error = "not a query frame";
    return std::nullopt;
  }
  Reader r(frame.payload);
  PoolQuery query;
  query.constraint = r.str();
  query.scope = r.str();
  const std::uint32_t n = r.u32();
  // A hostile count cannot force an allocation: each element must be
  // backed by payload bytes, so the loop bails on the first short read.
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    query.projection.push_back(r.str());
  }
  if (!r.finish()) {
    if (error) *error = r.error();
    return std::nullopt;
  }
  return query;
}

std::string encodePoolQueryResponse(const PoolQueryResponse& response) {
  Writer w;
  w.boolean(response.ok);
  w.str(response.error);
  w.u32(static_cast<std::uint32_t>(response.ads.size()));
  for (const classad::ClassAdPtr& ad : response.ads) w.ad(ad);
  return encodeFrame(static_cast<std::uint8_t>(MsgType::kQueryResponse),
                     w.take());
}

std::optional<PoolQueryResponse> decodePoolQueryResponse(const Frame& frame,
                                                         std::string* error) {
  if (frame.type != static_cast<std::uint8_t>(MsgType::kQueryResponse)) {
    if (error) *error = "not a query-response frame";
    return std::nullopt;
  }
  Reader r(frame.payload);
  PoolQueryResponse response;
  response.ok = r.boolean();
  response.error = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    classad::ClassAdPtr ad = r.ad();
    if (r.ok() && ad == nullptr) {
      // Absent ads are legal in match notifications but meaningless in a
      // query result; reject rather than silently shrink the answer.
      if (error) *error = "absent ad in query response";
      return std::nullopt;
    }
    response.ads.push_back(std::move(ad));
  }
  if (!r.finish()) {
    if (error) *error = r.error();
    return std::nullopt;
  }
  return response;
}

std::string encodeTraceQuery(const TraceQuery& query) {
  Writer w;
  w.str(query.traceId);
  w.u32(query.limit);
  return encodeFrame(static_cast<std::uint8_t>(MsgType::kTraceQuery),
                     w.take());
}

std::optional<TraceQuery> decodeTraceQuery(const Frame& frame,
                                           std::string* error) {
  if (frame.type != static_cast<std::uint8_t>(MsgType::kTraceQuery)) {
    if (error) *error = "not a trace-query frame";
    return std::nullopt;
  }
  Reader r(frame.payload);
  TraceQuery query;
  query.traceId = r.str();
  query.limit = r.u32();
  if (!r.finish()) {
    if (error) *error = r.error();
    return std::nullopt;
  }
  return query;
}

std::string encodeTraceQueryResponse(const TraceQueryResponse& response) {
  Writer w;
  w.boolean(response.ok);
  w.str(response.error);
  w.str(response.component);
  w.u32(static_cast<std::uint32_t>(response.spans.size()));
  for (const obs::SpanRecord& s : response.spans) {
    w.u64(s.trace.hi);
    w.u64(s.trace.lo);
    w.u64(s.span);
    w.u64(s.parent);
    w.str(s.name);
    w.str(s.component);
    w.f64(s.startSeconds);
    w.f64(s.durationSeconds);
    w.u32(static_cast<std::uint32_t>(s.tags.size()));
    for (const auto& [key, value] : s.tags) {
      w.str(key);
      w.str(value);
    }
  }
  return encodeFrame(static_cast<std::uint8_t>(MsgType::kTraceQueryResponse),
                     w.take());
}

std::optional<TraceQueryResponse> decodeTraceQueryResponse(
    const Frame& frame, std::string* error) {
  if (frame.type != static_cast<std::uint8_t>(MsgType::kTraceQueryResponse)) {
    if (error) *error = "not a trace-query-response frame";
    return std::nullopt;
  }
  Reader r(frame.payload);
  TraceQueryResponse response;
  response.ok = r.boolean();
  response.error = r.str();
  response.component = r.str();
  const std::uint32_t n = r.u32();
  // As with PoolQuery: every element needs backing bytes, so a hostile
  // count bails on the first short read instead of pre-allocating.
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::SpanRecord s;
    s.trace.hi = r.u64();
    s.trace.lo = r.u64();
    s.span = r.u64();
    s.parent = r.u64();
    s.name = r.str();
    s.component = r.str();
    s.startSeconds = r.f64();
    s.durationSeconds = r.f64();
    const std::uint32_t tagCount = r.u32();
    for (std::uint32_t k = 0; k < tagCount && r.ok(); ++k) {
      std::string key = r.str();
      std::string value = r.str();
      s.tags.emplace_back(std::move(key), std::move(value));
    }
    response.spans.push_back(std::move(s));
  }
  if (!r.finish()) {
    if (error) *error = r.error();
    return std::nullopt;
  }
  return response;
}

std::string encodeEnvelope(const htcsim::Envelope& env) {
  Writer w;
  w.str(env.from);
  w.str(env.to);
  const MsgType type = std::visit(BodyEncoder{w}, env.payload);
  return encodeFrame(static_cast<std::uint8_t>(type), w.take());
}

std::optional<htcsim::Envelope> decodeEnvelope(const Frame& frame,
                                               std::string* error) {
  Reader r(frame.payload);
  htcsim::Envelope env;
  env.from = r.str();
  env.to = r.str();
  if (!isEnvelopeTag(frame.type)) {
    if (error) {
      *error = "unknown frame type " + std::to_string(frame.type);
    }
    return std::nullopt;
  }
  if (!decodeBody(static_cast<MsgType>(frame.type), r, env.payload) ||
      !r.finish()) {
    if (error) {
      *error = r.error().empty() ? "malformed payload" : r.error();
    }
    return std::nullopt;
  }
  return env;
}

}  // namespace wire
