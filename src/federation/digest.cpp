#include "federation/digest.h"

#include <algorithm>
#include <utility>

#include "classad/analysis/absint.h"
#include "classad/analysis/domain.h"
#include "classad/match.h"
#include "classad/value.h"

namespace federation {

namespace {

using classad::ValueType;
using classad::analysis::AbstractValue;
using classad::analysis::Interval;

constexpr ValueType kAllTypes[] = {
    ValueType::Undefined, ValueType::Error,  ValueType::Boolean,
    ValueType::Integer,   ValueType::Real,   ValueType::String,
    ValueType::List,      ValueType::Record,
};

/// Lattice value -> flat row components (the inverse of rowDomain).
void extract(const AbstractValue& v, DigestAttr& out) {
  out.typeMask = 0;
  for (ValueType t : kAllTypes) {
    if (v.types().has(t)) {
      out.typeMask |= static_cast<std::uint8_t>(
          1u << static_cast<unsigned>(t));
    }
  }
  const Interval& r = v.range();
  out.lo = r.lo;
  out.hi = r.hi;
  out.loOpen = r.loOpen;
  out.hiOpen = r.hiOpen;
  out.canTrue = v.mayBeTrue();
  out.canFalse = v.mayBeFalse();
  const auto& strs = v.strings();
  out.anyString = v.mayBeString() && !strs.has_value();
  out.strings = (v.mayBeString() && strs.has_value())
                    ? *strs
                    : std::vector<std::string>{};
}

/// Flat row -> lattice value. Each component is rebuilt with its factory
/// and joined; join is componentwise, so the result carries exactly the
/// components extract() read.
AbstractValue rowDomain(const DigestAttr& a) {
  const auto has = [&](ValueType t) {
    return (a.typeMask & (1u << static_cast<unsigned>(t))) != 0;
  };
  AbstractValue v = AbstractValue::bottom();
  if (has(ValueType::Undefined)) v = v.join(AbstractValue::undefined());
  if (has(ValueType::Error)) v = v.join(AbstractValue::error());
  if (has(ValueType::Boolean)) {
    v = v.join(AbstractValue::boolean(a.canTrue, a.canFalse));
  }
  if (has(ValueType::Integer) || has(ValueType::Real)) {
    v = v.join(AbstractValue::number(
        Interval{a.lo, a.hi, a.loOpen, a.hiOpen}, has(ValueType::Integer),
        has(ValueType::Real)));
  }
  if (has(ValueType::String)) {
    v = v.join(a.anyString ? AbstractValue::anyString()
                           : AbstractValue::stringSet(a.strings));
  }
  if (has(ValueType::List)) v = v.join(AbstractValue::ofType(ValueType::List));
  if (has(ValueType::Record)) {
    v = v.join(AbstractValue::ofType(ValueType::Record));
  }
  return v;
}

}  // namespace

SchemaDigest digestOf(const classad::analysis::Schema& schema) {
  SchemaDigest d;
  d.adCount = schema.adCount();
  d.attrs.reserve(schema.attributeCount());
  for (const classad::analysis::AttrInfo* info : schema.sorted()) {
    DigestAttr row;
    row.name = classad::toLowerCopy(info->spelling);
    row.spelling = info->spelling;
    row.definedIn = info->definedIn;
    extract(info->domain, row);
    d.attrs.push_back(std::move(row));
  }
  return d;
}

classad::analysis::Schema schemaOf(const SchemaDigest& digest) {
  classad::analysis::Schema schema;
  for (const DigestAttr& row : digest.attrs) {
    schema.insert(row.name, row.spelling,
                  static_cast<std::size_t>(row.definedIn), rowDomain(row));
  }
  schema.setAdCount(static_cast<std::size_t>(digest.adCount));
  return schema;
}

SchemaDigest joinDigests(const SchemaDigest& a, const SchemaDigest& b) {
  SchemaDigest out;
  out.pool = a.pool;
  out.version = std::max(a.version, b.version);
  out.adCount = a.adCount + b.adCount;
  // Both inputs are sorted by name; merge, joining rows through the real
  // lattice so widening (e.g. the finite-string cap) matches the
  // analyzer's own join exactly.
  std::size_t i = 0, j = 0;
  while (i < a.attrs.size() || j < b.attrs.size()) {
    const bool takeA =
        j >= b.attrs.size() ||
        (i < a.attrs.size() && a.attrs[i].name < b.attrs[j].name);
    const bool takeBoth = i < a.attrs.size() && j < b.attrs.size() &&
                          a.attrs[i].name == b.attrs[j].name;
    if (takeBoth) {
      DigestAttr row = a.attrs[i];
      row.definedIn += b.attrs[j].definedIn;
      extract(rowDomain(a.attrs[i]).join(rowDomain(b.attrs[j])), row);
      out.attrs.push_back(std::move(row));
      ++i, ++j;
    } else if (takeA) {
      out.attrs.push_back(a.attrs[i++]);
    } else {
      out.attrs.push_back(b.attrs[j++]);
    }
  }
  return out;
}

bool admits(const SchemaDigest& digest, const classad::ClassAd& request,
            bool exactValues) {
  if (digest.adCount == 0) return false;
  const classad::ExprPtr* constraint = classad::findConstraintExpr(request);
  if (constraint == nullptr) return true;  // no requirement: any pool serves
  const classad::analysis::Schema schema = schemaOf(digest);
  classad::analysis::AnalysisEnv env;
  env.self = &request;
  env.otherSchema = &schema;
  env.exactSchemaValues = exactValues;
  return classad::analysis::abstractEval(**constraint, env)
      .canSatisfyConstraint();
}

}  // namespace federation
