// plane.h - The federation plane: one matchmaker's view of its peers.
//
// Layered ON TOP of the single-pool matchmaker (the host), the plane
// implements the three federation mechanisms of docs/FEDERATION.md:
//
//   1. Ad flocking: locally accepted resource ads are forwarded to peer
//      matchmakers under a configurable policy, stamped with origin-pool
//      provenance, deduplicated by (origin, key, revision);
//   2. Hierarchical schema aggregation: the pool's schema digest
//      (federation/digest.h) is pushed to every neighbor periodically —
//      joined with the other neighbors' digests, so one push vouches for
//      everything reachable through this matchmaker;
//   3. Cross-pool match referral: requests the local engine could not
//      serve are referred to peers whose aggregated digest admits them,
//      with a hop limit and visited-pool loop detection. A successful
//      referral comes back as an ordinary MatchNotification and the
//      claim runs CA→RA directly — the claim/lease plane is untouched.
//
// The plane is substrate-agnostic: it speaks htcsim::Transport, so the
// same code federates simulated PoolManagers sharing one Network and
// live matchmakerds over framed TCP. It keeps no thread of its own —
// the host calls in (deliver, pushDigest, referUnmatched) and supplies
// the clock, exactly like the rest of the matchmaker stack.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "classad/analysis/schema.h"
#include "classad/classad.h"
#include "classad/prepared.h"
#include "classad/query.h"
#include "federation/digest.h"
#include "federation/messages.h"
#include "matchmaker/matchmaker.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/transport.h"

namespace federation {

using Time = matchmaking::Time;

/// When does a locally accepted resource ad travel to peers?
enum class FlockPolicy {
  kOnDemand,  ///< never proactively; peers see the pool via digest+referral
  kAll,       ///< every accepted resource ad
  kFiltered,  ///< only ads matching `flockConstraint`
  /// Digest-targeted: the ad flocks to a peer unless the implication
  /// prover (classad/analysis/implies.h) PROVES its admissibility
  /// constraint unsatisfiable within that peer's demand digest — i.e.
  /// no request the peer has could ever match it. Missing or empty
  /// demand digests fail open (the ad flocks), so the policy only ever
  /// removes provably wasted traffic. A non-empty `flockConstraint` is
  /// honored as an additional static filter.
  kDigest,
};

/// Provenance attributes stamped into the flocked copy of an ad.
inline constexpr std::string_view kOriginPoolAttr = "OriginPool";
inline constexpr std::string_view kFlockRevisionAttr = "FlockRevision";

struct FederationConfig {
  /// This matchmaker's pool name (globally unique). Empty disables the
  /// plane entirely.
  std::string pool;
  /// Lateral peers (transport addresses): flocking + digest + referral.
  std::vector<std::string> peers;
  /// Upward collectors: digest push + referral, but never flocking —
  /// a parent aggregates reachability, it does not mirror ads.
  std::vector<std::string> parents;
  FlockPolicy flockPolicy = FlockPolicy::kAll;
  /// kFiltered only: a classad constraint evaluated one-way against each
  /// resource ad; only matching ads flock.
  std::string flockConstraint;
  /// Lifetime of a flocked ad at the RECEIVER. Deliberately shorter than
  /// a local ad lifetime: when an origin pool dies, its ads age out of
  /// every peer without any retraction traffic.
  Time flockedAdLifetime = 120.0;
  /// Seconds between schema digest pushes.
  Time digestInterval = 60.0;
  /// A neighbor digest older than this is ignored for referral gating
  /// and aggregation (the neighbor is presumed dead or partitioned).
  Time digestTtl = 180.0;
  /// Fold fresh neighbor digests into each push (minus the recipient's
  /// own contribution), so a digest advertises the whole subtree/mesh
  /// reachable through this matchmaker.
  bool aggregateDigests = true;
  /// Maximum inter-pool hops a referral may traverse, the origin's send
  /// included. 1 = direct peers only.
  std::uint32_t maxReferralHops = 3;
  /// Minimum spacing between referrals of the SAME request key.
  Time referralCooldown = 60.0;
  /// Outstanding referral state older than this is dropped; a matched
  /// response arriving later counts as stale.
  Time referralTimeout = 240.0;
  /// Restart counter stamped into PeerHello, letting peers detect that
  /// this matchmaker came back empty.
  std::uint64_t epoch = 0;

  bool enabled() const noexcept {
    return !pool.empty() && (!peers.empty() || !parents.empty());
  }
};

/// What the plane needs from its matchmaker. PoolManager implements this
/// against its ad stores and engine; tests implement it directly.
class FederationHost {
 public:
  virtual ~FederationHost() = default;

  /// Files (or refreshes) a flocked ad under `storeKey` with the given
  /// revision and lifetime. Returns false iff the update was stale —
  /// the (origin, key, revision) dedup.
  virtual bool storeFlockedAd(const std::string& storeKey,
                              const classad::ClassAdPtr& ad,
                              std::uint64_t revision, Time lifetime) = 0;
  /// Retracts a flocked ad; unknown keys are a no-op.
  virtual void dropFlockedAd(const std::string& storeKey) = 0;
  /// Engine-backed one-shot evaluation of a referred request against the
  /// local resource pool.
  virtual std::optional<matchmaking::Match> evaluateReferral(
      const classad::ClassAdPtr& request, Time now) = 0;
  /// A referral this matchmaker served: emit the resource-side
  /// MatchNotification so the RA expects the foreign customer's claim.
  /// `trace` is the serving hop's span context (invalid when tracing is
  /// off); it rides the notification so the RA's spans stitch into the
  /// origin's trace.
  virtual void serveLocalMatch(const matchmaking::Match& match,
                               const obs::TraceContext& trace) = 0;
  /// A referral a REMOTE pool served for us: emit the customer-side
  /// MatchNotification and withdraw the request ad. Returns false when
  /// the request is no longer stored (matched or expired meanwhile).
  virtual bool completeRemoteMatch(const ReferralResponse& response) = 0;
  /// Schema fold of the LOCAL (non-flocked) resource ads.
  virtual classad::analysis::Schema localResourceSchema() const = 0;
  /// Schema fold of the stored REQUEST ads — the pool's demand envelope,
  /// pushed alongside the resource digest so peers can target flocking
  /// (FlockPolicy::kDigest). The default (an empty schema) advertises no
  /// demand information; peers then fail open and flock everything.
  virtual classad::analysis::Schema localRequestSchema() const { return {}; }
};

/// One request the local engine left unmatched, as handed to
/// referUnmatched: the store key, the request ad, and the request's
/// trace context (invalid when tracing is off) so referral spans parent
/// on the job's own trace.
struct UnmatchedRequest {
  std::string key;
  classad::ClassAdPtr ad;
  obs::TraceContext trace;
};

class FederationPlane {
 public:
  FederationPlane(FederationConfig config, FederationHost& host,
                  htcsim::Transport& net, std::string selfAddress,
                  obs::Registry* registry, obs::Tracer* tracer = nullptr);

  const FederationConfig& config() const noexcept { return config_; }

  /// Store key a flocked ad is filed under; namespaced by origin pool so
  /// two pools' ads (and two pools' identically named machines) can
  /// never collide in the receiver's store.
  static std::string flockedKey(std::string_view originPool,
                                std::string_view originKey);
  static bool isFlockedKey(std::string_view storeKey) noexcept;

  /// Greets every configured neighbor (PeerHello).
  void start(Time now);

  /// Dispatches a federation envelope. Returns false when the payload is
  /// not a federation message (the host falls through to its own
  /// handlers).
  bool deliver(const htcsim::Envelope& env, Time now);

  /// Periodic digest push to every neighbor (the host's timer).
  void pushDigest(Time now);

  /// Flock-out hook: a locally accepted, genuinely local resource ad.
  /// `now` gates digest freshness under FlockPolicy::kDigest.
  void onLocalResourceAd(const std::string& key,
                         const classad::ClassAdPtr& ad,
                         std::uint64_t sequence, Time now);
  /// Retraction hook for a local resource ad.
  void onLocalResourceInvalidate(const std::string& key);

  /// End-of-cycle hook: requests the local engine left unmatched. Each
  /// is referred to every neighbor whose fresh digest admits it, subject
  /// to the per-key cooldown.
  void referUnmatched(const std::vector<UnmatchedRequest>& unmatched,
                      Time now);

  /// Housekeeping: expires outstanding referrals and referral cooldowns.
  void purge(Time now);

  // --- introspection (tools, the "peers" query scope, tests) ------------
  std::size_t knownPeers() const noexcept { return peers_.size(); }
  /// One "FederationPeer" classad per known neighbor.
  std::vector<classad::ClassAdPtr> peerStatusAds(Time now) const;
  std::size_t outstandingReferrals() const noexcept {
    return outstanding_.size();
  }

 private:
  struct PeerState {
    std::string pool;  ///< learned from PeerHello / digest; may be empty
    std::uint64_t epoch = 0;
    std::uint64_t answeredEpoch = std::uint64_t(-1);
    bool configured = false;    ///< in config.peers or config.parents
    bool flockTarget = false;   ///< in config.peers (lateral)
    std::optional<SchemaDigest> digest;
    /// Demand-side digest (the peer's request-schema fold), delivered
    /// alongside `digest` and stamped by the same `digestAt`.
    std::optional<SchemaDigest> demand;
    /// Lazily reconstructed analysis schema of `demand`, invalidated by
    /// version so one reconstruction serves every flock decision until
    /// the peer pushes a newer digest.
    std::optional<classad::analysis::Schema> demandSchema;
    std::uint64_t demandSchemaVersion = 0;
    Time digestAt = 0;
    bool hasDigest(Time now, Time ttl) const noexcept {
      return digest.has_value() && digestAt + ttl >= now;
    }
    bool hasDemand(Time now, Time ttl) const noexcept {
      return demand.has_value() && demand->adCount > 0 &&
             digestAt + ttl >= now;
    }
  };

  struct OutstandingReferral {
    std::string requestKey;
    Time sentAt = 0;
  };

  /// Per-key flock gating cache: everything derivable from one ad
  /// revision — the prepared (flattened) form, the kFiltered constraint
  /// verdict, and the per-peer prover verdicts — is computed once per
  /// (key, sequence) instead of once per flock pass. Entries reset when
  /// the key re-advertises with a new sequence, drop on invalidation,
  /// and age out in purge().
  struct FlockGate {
    std::uint64_t sequence = 0;
    classad::PreparedAd prepared;
    std::optional<bool> filterPass;  ///< flockQuery_ verdict, memoized
    /// kDigest: peer address -> (demand digest version judged, veto?).
    /// A newer demand digest re-judges; an unchanged one never does.
    std::unordered_map<std::string, std::pair<std::uint64_t, bool>>
        peerVeto;
    Time lastSeen = 0;
  };

  void onPeerHello(const std::string& from, const PeerHello& hello);
  void onDigest(const std::string& from, const SchemaDigestMsg& msg,
                Time now);
  void onAdForward(const AdForward& msg);
  void onReferral(const std::string& from, const MatchReferral& msg,
                  Time now);
  void onReferralResponse(const ReferralResponse& msg);
  void send(const std::string& to, htcsim::Message message);
  PeerState& peer(const std::string& address);
  /// kDigest gate: true iff the prover PROVES the gated ad's constraint
  /// unsatisfiable within `state`'s fresh demand digest. Fail-open on
  /// missing/stale/empty demand and on Unknown verdicts.
  bool flockVetoed(const std::string& addr, PeerState& state,
                   FlockGate& gate, Time now);
  bool rememberReferral(const std::string& originPool, std::uint64_t id);
  void answerReferral(const MatchReferral& referral, bool matched,
                      const matchmaking::Match* match,
                      const obs::TraceContext& hopContext);

  FederationConfig config_;
  FederationHost& host_;
  htcsim::Transport& net_;
  std::string selfAddress_;
  obs::Tracer* tracer_ = nullptr;  ///< null = tracing not wired

  /// Neighbor address -> state. Ordered so peerStatusAds and digest
  /// aggregation are deterministic.
  std::map<std::string, PeerState> peers_;
  std::optional<classad::Query> flockQuery_;  ///< kFiltered / kDigest
  std::unordered_map<std::string, FlockGate> flockGates_;
  std::uint64_t digestVersion_ = 0;
  std::uint64_t nextReferralId_ = 1;
  std::unordered_map<std::uint64_t, OutstandingReferral> outstanding_;
  std::unordered_map<std::string, Time> lastReferredAt_;
  /// Referrals already seen, by "originPool#id" — the loop/duplicate
  /// guard. FIFO-bounded.
  std::unordered_set<std::string> seenReferrals_;
  std::deque<std::string> seenOrder_;
  static constexpr std::size_t kSeenLimit = 4096;

  // Observability (null when no registry).
  obs::Counter* adsFlockedOut_ = nullptr;
  obs::Counter* flocksVetoed_ = nullptr;
  obs::Counter* adsFlockedIn_ = nullptr;
  obs::Counter* flockDuplicates_ = nullptr;
  obs::Counter* flockRetractions_ = nullptr;
  obs::Counter* digestsSent_ = nullptr;
  obs::Counter* digestsReceived_ = nullptr;
  obs::Counter* digestsStale_ = nullptr;
  obs::Counter* referralsSent_ = nullptr;
  obs::Counter* referralsReceived_ = nullptr;
  obs::Counter* referralsForwarded_ = nullptr;
  obs::Counter* referralsServed_ = nullptr;
  obs::Counter* referralMatches_ = nullptr;
  obs::Counter* referralFailures_ = nullptr;
  obs::Counter* referralLoopsDropped_ = nullptr;
  obs::Counter* referralsStale_ = nullptr;
  obs::Counter* referralsVetoed_ = nullptr;
  obs::Counter* referralsExpired_ = nullptr;
  obs::Histogram* referralHops_ = nullptr;
  obs::Gauge* peersKnown_ = nullptr;
};

}  // namespace federation
