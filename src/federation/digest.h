// digest.h - The pool-schema digest: the schema fold of
// src/classad/analysis/schema.* flattened into a small, serializable
// record that one matchmaker pushes to its peers.
//
// The digest is the federation plane's answer to "could that pool ever
// satisfy this request?" without shipping the request or any ads. A peer
// reconstructs the abstract per-attribute domains (schemaOf) and runs the
// abstract interpreter over the request's constraint with the candidate
// frame answered from the digest. Soundness is inherited from the
// analyzer's contract: every concrete value an ad in the fold defines is
// contained in the folded AbstractValue, so reconstruction + abstractEval
// never false-negatives against the digested snapshot (property-tested in
// tests/federation/digest_test.cpp). Staleness is handled by periodic
// re-push, not by the lattice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classad/analysis/schema.h"
#include "classad/classad.h"

namespace federation {

/// One attribute row: the wire-flat form of classad::analysis::AttrInfo.
/// The AbstractValue lattice components are spelled out field by field so
/// the record can travel (and be joined) without private access.
struct DigestAttr {
  std::string name;            ///< lowered attribute name (the fold key)
  std::string spelling;        ///< original case of the first occurrence
  std::uint64_t definedIn = 0; ///< ads defining the attribute
  std::uint8_t typeMask = 0;   ///< bit i = ValueType(i) reachable
  // Numeric interval (meaningful when Integer/Real bits are set).
  double lo = 0.0;
  double hi = 0.0;
  bool loOpen = false;
  bool hiOpen = false;
  // Reachable boolean constants (meaningful when the Boolean bit is set).
  bool canTrue = false;
  bool canFalse = false;
  // String domain: anyString = unconstrained; otherwise the finite set.
  bool anyString = false;
  std::vector<std::string> strings;
};

/// A pool's schema, flattened. `pool` names the origin matchmaker;
/// `version` increases with every push so receivers can drop stale or
/// reordered digests.
struct SchemaDigest {
  std::string pool;
  std::uint64_t version = 0;
  std::uint64_t adCount = 0;
  std::vector<DigestAttr> attrs;  ///< sorted by `name`
};

/// Flattens a folded schema (attrs sorted by lowered name).
SchemaDigest digestOf(const classad::analysis::Schema& schema);

/// Reconstructs the schema a digest describes. Exact inverse of digestOf
/// on the lattice components the analyzer reads.
classad::analysis::Schema schemaOf(const SchemaDigest& digest);

/// Pointwise join: attribute domains joined (types united, intervals
/// hulled, string sets united — widening to anyString past the lattice's
/// finite-set cap), definedIn and adCount summed. Used for hierarchical
/// aggregation: a parent pushes the join of its own digest and its
/// children's so one row can vouch for a whole subtree.
SchemaDigest joinDigests(const SchemaDigest& a, const SchemaDigest& b);

/// Could the digested pool EVER satisfy `request`'s constraint? A request
/// without a constraint is admitted by any non-empty pool; an empty
/// digest (adCount 0) admits nothing. `exactValues` treats the digested
/// value domains as exhaustive — correct here, because the digest IS a
/// closed snapshot and refresh handles drift (contrast Schema::domainOf's
/// open-world default for lint).
bool admits(const SchemaDigest& digest, const classad::ClassAd& request,
            bool exactValues = true);

}  // namespace federation
