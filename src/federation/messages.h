// messages.h - Matchmaker-to-matchmaker messages of the federation plane.
//
// These five structs join the htcsim::Message variant (sim/transport.h),
// so they travel over BOTH substrates unchanged: the simulated Network in
// tests/benches and the framed TCP wire between live matchmakerds
// (tags 13..17, wire/tags.h). Everything else in the protocol — claiming,
// leases, heartbeats — is deliberately untouched by federation: a match
// referred across pools comes back as an ordinary MatchNotification, and
// the CA claims the remote RA directly, end to end, exactly as within one
// pool.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "federation/digest.h"
#include "matchmaker/protocol.h"
#include "obs/trace.h"

namespace federation {

/// First federation message on a peering, both directions: names the
/// sending pool and its transport address. `epoch` increments on every
/// restart of the sender, letting a peer discard pre-restart state
/// (digests, flocked ads) from a matchmaker that came back empty.
struct PeerHello {
  std::string pool;
  std::string address;
  std::uint64_t epoch = 0;
};

/// A resource ad flocked to a peer. The ad copy carries provenance
/// attributes (OriginPool / FlockRevision) stamped by the sender; `key`
/// is the ORIGIN's store key, so (originPool, key, revision) identifies
/// one version of one ad globally and makes redelivery idempotent.
/// `retract=true` withdraws the ad (origin saw an invalidate); peers also
/// expire flocked ads on their own shorter lifetime, so a dead origin's
/// ads age out without a retraction.
struct AdForward {
  classad::ClassAdPtr ad;  ///< null when retract
  std::string originPool;
  std::string key;
  std::uint64_t revision = 0;
  bool retract = false;
};

/// Periodic pool-schema digest push (hierarchical schema aggregation).
/// The digest names its pool and carries a monotone version; receivers
/// keep only the newest per pool.
struct SchemaDigestMsg {
  SchemaDigest digest;
  /// Demand-side companion: the fold of the sender's OWN stored request
  /// ads. Never aggregated across neighbors — flocked ads travel exactly
  /// one hop, so only the direct peer's own demand can consume them.
  /// Absent when the sender has no stored requests; receivers then fail
  /// open (FlockPolicy::kDigest flocks everything).
  std::optional<SchemaDigest> demand;
};

/// An unmatched request referred to a peer whose digest admits it.
/// `visited` lists pool names already traversed (loop detection);
/// `hopsLeft` bounds further forwarding. Responses go straight back to
/// `originAddress`, not hop by hop.
struct MatchReferral {
  classad::ClassAdPtr requestAd;
  std::string originPool;
  std::string originAddress;
  std::string requestKey;  ///< origin's store key for the request ad
  std::uint64_t referralId = 0;
  std::uint32_t hopsLeft = 0;
  std::vector<std::string> visited;
  /// The origin's referral.send span; each hop parents its span on the
  /// context it received and forwards its own (docs/OBSERVABILITY.md).
  obs::TraceContext trace;
};

/// The serving (or failing) matchmaker's verdict, sent directly to the
/// referral's origin. On a match it carries everything the origin needs
/// to emit the customer-side MatchNotification: the resource ad, its
/// contact, and the authorization ticket.
struct ReferralResponse {
  std::uint64_t referralId = 0;
  std::string requestKey;
  bool matched = false;
  std::string servingPool;  ///< responder's pool name
  std::uint32_t hops = 0;   ///< pools traversed when the verdict was made
  classad::ClassAdPtr resourceAd;  ///< null unless matched
  std::string resourceContact;
  matchmaking::Ticket ticket = matchmaking::kNoTicket;
  obs::TraceContext trace;  ///< the serving pool's span (origin's parent)
};

}  // namespace federation
