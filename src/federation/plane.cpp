#include "federation/plane.h"

#include <algorithm>
#include <utility>

#include "classad/analysis/implies.h"

namespace federation {

namespace {

/// Hop buckets for the referral histogram: a referral traverses a small
/// integer number of pools.
const std::vector<double>& hopBuckets() {
  static const std::vector<double> buckets = {1.0, 2.0, 3.0, 4.0,
                                              6.0, 8.0, 12.0};
  return buckets;
}

void bump(obs::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}

}  // namespace

FederationPlane::FederationPlane(FederationConfig config,
                                 FederationHost& host, htcsim::Transport& net,
                                 std::string selfAddress,
                                 obs::Registry* registry,
                                 obs::Tracer* tracer)
    : config_(std::move(config)),
      host_(host),
      net_(net),
      selfAddress_(std::move(selfAddress)),
      tracer_(tracer) {
  for (const std::string& addr : config_.peers) {
    PeerState& p = peers_[addr];
    p.configured = true;
    p.flockTarget = true;
  }
  for (const std::string& addr : config_.parents) {
    peers_[addr].configured = true;  // flockTarget stays false
  }
  // A parent listed as a peer too keeps its flock eligibility.
  if ((config_.flockPolicy == FlockPolicy::kFiltered ||
       config_.flockPolicy == FlockPolicy::kDigest) &&
      !config_.flockConstraint.empty()) {
    flockQuery_ = classad::Query::fromConstraint(config_.flockConstraint);
  }
  if (registry != nullptr) {
    obs::Registry& reg = *registry;
    adsFlockedOut_ = reg.counter("FedAdsFlockedOut");
    flocksVetoed_ = reg.counter("FedFlocksDigestVetoed");
    adsFlockedIn_ = reg.counter("FedAdsFlockedIn");
    flockDuplicates_ = reg.counter("FedFlockDuplicatesDropped");
    flockRetractions_ = reg.counter("FedFlockRetractions");
    digestsSent_ = reg.counter("FedDigestsSent");
    digestsReceived_ = reg.counter("FedDigestsReceived");
    digestsStale_ = reg.counter("FedDigestsStaleDropped");
    referralsSent_ = reg.counter("FedReferralsSent");
    referralsReceived_ = reg.counter("FedReferralsReceived");
    referralsForwarded_ = reg.counter("FedReferralsForwarded");
    referralsServed_ = reg.counter("FedReferralsServed");
    referralMatches_ = reg.counter("FedReferralMatches");
    referralFailures_ = reg.counter("FedReferralFailures");
    referralLoopsDropped_ = reg.counter("FedReferralLoopsDropped");
    referralsStale_ = reg.counter("FedReferralsStale");
    referralsVetoed_ = reg.counter("FedReferralsDigestVetoed");
    referralsExpired_ = reg.counter("FedReferralsExpired");
    referralHops_ = reg.histogram("FedReferralHops", hopBuckets());
    peersKnown_ = reg.gauge("FedPeersKnown");
    peersKnown_->set(static_cast<double>(peers_.size()));
  }
}

std::string FederationPlane::flockedKey(std::string_view originPool,
                                        std::string_view originKey) {
  std::string key = "fed/";
  key += originPool;
  key += '/';
  key += originKey;
  return key;
}

bool FederationPlane::isFlockedKey(std::string_view storeKey) noexcept {
  return storeKey.rfind("fed/", 0) == 0;
}

void FederationPlane::start(Time /*now*/) {
  PeerHello hello;
  hello.pool = config_.pool;
  hello.address = selfAddress_;
  hello.epoch = config_.epoch;
  for (const auto& [addr, state] : peers_) {
    if (state.configured) send(addr, hello);
  }
}

bool FederationPlane::deliver(const htcsim::Envelope& env, Time now) {
  if (const auto* hello = std::get_if<PeerHello>(&env.payload)) {
    onPeerHello(env.from, *hello);
  } else if (const auto* digest =
                 std::get_if<SchemaDigestMsg>(&env.payload)) {
    onDigest(env.from, *digest, now);
  } else if (const auto* fwd = std::get_if<AdForward>(&env.payload)) {
    onAdForward(*fwd);
  } else if (const auto* ref = std::get_if<MatchReferral>(&env.payload)) {
    onReferral(env.from, *ref, now);
  } else if (const auto* resp =
                 std::get_if<ReferralResponse>(&env.payload)) {
    onReferralResponse(*resp);
  } else {
    return false;
  }
  return true;
}

void FederationPlane::onPeerHello(const std::string& from,
                                  const PeerHello& hello) {
  // Self-echo (misconfiguration) is ignored outright.
  if (hello.pool == config_.pool) return;
  PeerState& p = peer(hello.address.empty() ? from : hello.address);
  p.pool = hello.pool;
  if (hello.epoch > p.epoch) {
    // The peer restarted: whatever digest we held describes its previous
    // life. Its flocked ads age out on their own lifetime.
    p.digest.reset();
    p.demand.reset();
    p.demandSchema.reset();
  }
  p.epoch = hello.epoch;
  // Answer each (peer, epoch) once, so both sides learn pool names no
  // matter who dialed whom, without an echo storm.
  if (p.answeredEpoch != hello.epoch) {
    p.answeredEpoch = hello.epoch;
    PeerHello reply;
    reply.pool = config_.pool;
    reply.address = selfAddress_;
    reply.epoch = config_.epoch;
    send(hello.address.empty() ? from : hello.address, reply);
  }
  if (peersKnown_ != nullptr) {
    peersKnown_->set(static_cast<double>(peers_.size()));
  }
}

void FederationPlane::onDigest(const std::string& from,
                               const SchemaDigestMsg& msg, Time now) {
  if (msg.digest.pool == config_.pool) return;  // self-echo
  PeerState& p = peer(from);
  if (p.digest.has_value() && p.digest->pool == msg.digest.pool &&
      msg.digest.version <= p.digest->version) {
    bump(digestsStale_);
    return;
  }
  p.pool = msg.digest.pool;
  p.digest = msg.digest;
  p.demand = msg.demand;
  p.demandSchema.reset();
  p.digestAt = now;
  bump(digestsReceived_);
  if (peersKnown_ != nullptr) {
    peersKnown_->set(static_cast<double>(peers_.size()));
  }
}

void FederationPlane::onAdForward(const AdForward& msg) {
  if (msg.originPool == config_.pool) return;  // our own ad reflected back
  const std::string storeKey = flockedKey(msg.originPool, msg.key);
  if (msg.retract) {
    host_.dropFlockedAd(storeKey);
    bump(flockRetractions_);
    return;
  }
  if (!msg.ad) return;
  if (host_.storeFlockedAd(storeKey, msg.ad, msg.revision,
                           config_.flockedAdLifetime)) {
    bump(adsFlockedIn_);
  } else {
    bump(flockDuplicates_);  // (origin, key, revision) already seen
  }
}

void FederationPlane::onReferral(const std::string& from,
                                 const MatchReferral& msg, Time now) {
  bump(referralsReceived_);
  // One span per receiving hop, parented on the context the referral
  // arrived with — so a referral crossing N pools shows N hop spans in
  // the origin job's trace. Inert when tracing is off at this pool or
  // the origin sent no context.
  obs::ActiveSpan hop = obs::startSpan(tracer_, "referral.hop", msg.trace);
  hop.tag("pool", config_.pool);
  hop.tag("request", msg.requestKey);
  const bool looped =
      std::find(msg.visited.begin(), msg.visited.end(), config_.pool) !=
      msg.visited.end();
  if (looped || !rememberReferral(msg.originPool, msg.referralId)) {
    bump(referralLoopsDropped_);
    hop.tag("verdict", "loop-dropped");
    return;
  }
  if (!msg.requestAd) return;
  if (auto match = host_.evaluateReferral(msg.requestAd, now)) {
    hop.tag("verdict", "served");
    host_.serveLocalMatch(*match, hop.context());
    bump(referralsServed_);
    answerReferral(msg, true, &*match, hop.context());
    return;
  }
  // No local candidate. Forward while hops remain, to neighbors whose
  // digest admits the request and which the referral has not visited.
  std::size_t forwarded = 0;
  if (msg.hopsLeft > 0) {
    MatchReferral onward = msg;
    onward.hopsLeft = msg.hopsLeft - 1;
    onward.visited.push_back(config_.pool);
    // The onward referral carries this hop's span as parent; a pool with
    // tracing off passes the incoming context through untouched so
    // downstream hops still stitch.
    if (hop.active()) onward.trace = hop.context();
    for (const auto& [addr, state] : peers_) {
      if (addr == from || addr == msg.originAddress) continue;
      if (!state.digest.has_value() ||
          !state.hasDigest(now, config_.digestTtl)) {
        continue;
      }
      if (std::find(onward.visited.begin(), onward.visited.end(),
                    state.pool) != onward.visited.end()) {
        continue;
      }
      if (!admits(*state.digest, *msg.requestAd)) continue;
      send(addr, onward);
      ++forwarded;
    }
  }
  if (forwarded > 0) {
    bump(referralsForwarded_, forwarded);
    hop.tag("verdict", "forwarded");
  } else {
    hop.tag("verdict", "failed");
    answerReferral(msg, false, nullptr, hop.context());
  }
}

void FederationPlane::answerReferral(const MatchReferral& referral,
                                     bool matched,
                                     const matchmaking::Match* match,
                                     const obs::TraceContext& hopContext) {
  ReferralResponse resp;
  resp.referralId = referral.referralId;
  resp.requestKey = referral.requestKey;
  resp.matched = matched;
  resp.servingPool = config_.pool;
  resp.hops = static_cast<std::uint32_t>(referral.visited.size());
  // The origin parents its referral.complete span on this: the serving
  // hop's span when traced here, else the incoming context unchanged.
  resp.trace = hopContext.valid() ? hopContext : referral.trace;
  if (matched && match != nullptr) {
    resp.resourceAd = match->resource;
    resp.resourceContact = match->resourceContact;
    resp.ticket = match->ticket;
  }
  send(referral.originAddress, std::move(resp));
}

void FederationPlane::onReferralResponse(const ReferralResponse& msg) {
  const auto it = outstanding_.find(msg.referralId);
  if (it == outstanding_.end()) {
    bump(referralsStale_);
    return;
  }
  obs::ActiveSpan done =
      obs::startSpan(tracer_, "referral.complete", msg.trace);
  done.tag("serving_pool", msg.servingPool);
  if (!msg.matched) {
    done.tag("outcome", "failed");
    bump(referralFailures_);
    return;  // other branches of the referral may still answer
  }
  if (referralHops_ != nullptr) {
    referralHops_->observe(static_cast<double>(msg.hops));
  }
  if (host_.completeRemoteMatch(msg)) {
    done.tag("outcome", "matched");
    bump(referralMatches_);
  } else {
    done.tag("outcome", "stale");
    bump(referralsStale_);  // request resolved locally in the meantime
  }
  outstanding_.erase(it);
}

void FederationPlane::pushDigest(Time now) {
  SchemaDigest own = digestOf(host_.localResourceSchema());
  own.pool = config_.pool;
  own.version = ++digestVersion_;
  // Demand companion: the fold of OUR stored requests. Deliberately not
  // aggregated — flocked ads travel one hop, so only this pool's own
  // demand can consume what a peer flocks here. An empty fold is sent as
  // absent: "no demand information", not "demand is provably empty", so
  // peers fail open rather than vetoing everything.
  std::optional<SchemaDigest> demand;
  if (SchemaDigest d = digestOf(host_.localRequestSchema()); d.adCount > 0) {
    d.pool = config_.pool;
    d.version = own.version;
    demand = std::move(d);
  }
  for (const auto& [addr, state] : peers_) {
    SchemaDigest out = own;
    if (config_.aggregateDigests) {
      // Vouch for everything reachable through us — except what the
      // recipient itself contributed, so its own ads are not reflected
      // back as foreign reachability.
      for (const auto& [otherAddr, other] : peers_) {
        if (otherAddr == addr) continue;
        if (!other.hasDigest(now, config_.digestTtl)) continue;
        if (!state.pool.empty() && other.digest->pool == state.pool) {
          continue;
        }
        out = joinDigests(out, *other.digest);
      }
      out.version = own.version;
      out.pool = config_.pool;
    }
    SchemaDigestMsg msg;
    msg.digest = std::move(out);
    msg.demand = demand;
    send(addr, std::move(msg));
    bump(digestsSent_);
  }
}

void FederationPlane::onLocalResourceAd(const std::string& key,
                                        const classad::ClassAdPtr& ad,
                                        std::uint64_t sequence, Time now) {
  if (config_.flockPolicy == FlockPolicy::kOnDemand || !ad) return;
  // A copy that already carries foreign provenance must never re-flock —
  // one forwarding hop only; transitive reachability is the digest's job.
  if (const auto origin = ad->getString(std::string(kOriginPoolAttr));
      origin && *origin != config_.pool) {
    return;
  }
  FlockGate& gate = flockGates_[key];
  if (gate.sequence != sequence || !gate.prepared.valid()) {
    gate = FlockGate{};
    gate.sequence = sequence;
    gate.prepared = classad::PreparedAd::prepare(ad);
  }
  gate.lastSeen = now;
  if (flockQuery_.has_value()) {
    const classad::Query& filter = *flockQuery_;
    if (!gate.filterPass.has_value()) gate.filterPass = filter.matches(*ad);
    if (!gate.filterPass.value_or(true)) return;
  }
  // The stamped copy is built lazily: under kDigest every peer may veto,
  // in which case the pass costs no ad copy at all.
  AdForward fwd;
  fwd.originPool = config_.pool;
  fwd.key = key;
  fwd.revision = sequence;
  for (auto& [addr, state] : peers_) {
    if (!state.flockTarget) continue;
    if (config_.flockPolicy == FlockPolicy::kDigest &&
        flockVetoed(addr, state, gate, now)) {
      bump(flocksVetoed_);
      continue;
    }
    if (!fwd.ad) {
      classad::ClassAd stamped = *ad;
      stamped.set(std::string(kOriginPoolAttr), config_.pool);
      stamped.set(std::string(kFlockRevisionAttr),
                  static_cast<std::int64_t>(sequence));
      fwd.ad = classad::makeShared(std::move(stamped));
    }
    send(addr, fwd);
    bump(adsFlockedOut_);
  }
}

bool FederationPlane::flockVetoed(const std::string& addr, PeerState& state,
                                  FlockGate& gate, Time now) {
  // Fail open: only a FRESH, non-empty demand digest may suppress a
  // flock, and only on a Proven verdict — Unknown flocks.
  if (!state.demand.has_value() ||
      !state.hasDemand(now, config_.digestTtl)) {
    return false;
  }
  const SchemaDigest& demand = *state.demand;
  if (!gate.prepared.hasConstraint()) return false;  // admits anyone
  const std::uint64_t version = demand.version;
  if (const auto it = gate.peerVeto.find(addr);
      it != gate.peerVeto.end() && it->second.first == version) {
    return it->second.second;
  }
  if (!state.demandSchema.has_value() ||
      state.demandSchemaVersion != version) {
    state.demandSchema = schemaOf(demand);
    state.demandSchemaVersion = version;
  }
  const classad::analysis::Schema& demandSchema = *state.demandSchema;
  classad::analysis::ImpliesOptions opts;
  opts.otherSchema = &demandSchema;
  // The demand digest is a closed snapshot of the peer's stored requests;
  // periodic re-push handles drift, exactly as with referral admission.
  opts.exactSchemaValues = true;
  opts.maxWitnessTrials = 0;  // Proven-or-flock; never hunt for witnesses
  const bool veto = classad::analysis::unsatisfiable(
                        gate.prepared.ad().get(), gate.prepared.constraint(),
                        opts)
                        .proven();
  gate.peerVeto[addr] = {version, veto};
  return veto;
}

void FederationPlane::onLocalResourceInvalidate(const std::string& key) {
  flockGates_.erase(key);
  if (config_.flockPolicy == FlockPolicy::kOnDemand) return;
  AdForward retract;
  retract.originPool = config_.pool;
  retract.key = key;
  retract.retract = true;
  for (const auto& [addr, state] : peers_) {
    if (!state.flockTarget) continue;
    send(addr, retract);
  }
}

void FederationPlane::referUnmatched(
    const std::vector<UnmatchedRequest>& unmatched, Time now) {
  for (const UnmatchedRequest& req : unmatched) {
    if (!req.ad) continue;
    if (const auto it = lastReferredAt_.find(req.key);
        it != lastReferredAt_.end() &&
        it->second + config_.referralCooldown > now) {
      continue;
    }
    std::vector<const std::string*> targets;
    for (const auto& [addr, state] : peers_) {
      if (!state.digest.has_value() ||
          !state.hasDigest(now, config_.digestTtl)) {
        continue;
      }
      if (!admits(*state.digest, *req.ad)) continue;
      targets.push_back(&addr);
    }
    if (targets.empty()) {
      bump(referralsVetoed_);
      continue;
    }
    MatchReferral referral;
    referral.requestAd = req.ad;
    referral.originPool = config_.pool;
    referral.originAddress = selfAddress_;
    referral.requestKey = req.key;
    referral.referralId = nextReferralId_++;
    referral.hopsLeft = config_.maxReferralHops > 0
                            ? config_.maxReferralHops - 1
                            : 0;
    referral.visited = {config_.pool};
    // The referral carries a "referral.send" span parented on the job's
    // own trace; every hop downstream parents on what it receives.
    obs::ActiveSpan sendSpan =
        obs::startSpan(tracer_, "referral.send", req.trace);
    sendSpan.tag("request", req.key);
    sendSpan.tag("targets", std::to_string(targets.size()));
    referral.trace = sendSpan.active() ? sendSpan.context() : req.trace;
    outstanding_[referral.referralId] = {req.key, now};
    lastReferredAt_[req.key] = now;
    for (const std::string* addr : targets) {
      send(*addr, referral);
    }
    bump(referralsSent_);
  }
}

void FederationPlane::purge(Time now) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.sentAt + config_.referralTimeout < now) {
      bump(referralsExpired_);
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
  const Time keepCooldowns =
      std::max(config_.referralCooldown * 4.0, config_.referralTimeout);
  for (auto it = lastReferredAt_.begin(); it != lastReferredAt_.end();) {
    if (it->second + keepCooldowns < now) {
      it = lastReferredAt_.erase(it);
    } else {
      ++it;
    }
  }
  // Flock gates whose key stopped re-advertising (expiry without a clean
  // invalidate) age out on the digest TTL — far longer than any
  // advertising interval, far shorter than forever.
  for (auto it = flockGates_.begin(); it != flockGates_.end();) {
    if (it->second.lastSeen + config_.digestTtl < now) {
      it = flockGates_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<classad::ClassAdPtr> FederationPlane::peerStatusAds(
    Time now) const {
  std::vector<classad::ClassAdPtr> ads;
  ads.reserve(peers_.size());
  for (const auto& [addr, state] : peers_) {
    classad::ClassAd ad;
    ad.set("Type", "FederationPeer");
    ad.set("Name", addr);
    ad.set("Pool", state.pool);
    ad.set("HomePool", config_.pool);
    ad.set("Configured", state.configured);
    ad.set("FlockTarget", state.flockTarget);
    ad.set("PeerEpoch", static_cast<std::int64_t>(state.epoch));
    ad.set("HasDigest", state.hasDigest(now, config_.digestTtl));
    ad.set("HasDemand", state.hasDemand(now, config_.digestTtl));
    if (state.digest.has_value()) {
      const SchemaDigest& digest = *state.digest;
      ad.set("DigestVersion", static_cast<std::int64_t>(digest.version));
      ad.set("DigestAds", static_cast<std::int64_t>(digest.adCount));
      ad.set("DigestAttrs", static_cast<std::int64_t>(digest.attrs.size()));
      ad.set("DigestAgeSeconds", now - state.digestAt);
    }
    ads.push_back(classad::makeShared(std::move(ad)));
  }
  return ads;
}

void FederationPlane::send(const std::string& to, htcsim::Message message) {
  net_.send(selfAddress_, to, std::move(message));
}

FederationPlane::PeerState& FederationPlane::peer(
    const std::string& address) {
  return peers_[address];
}

bool FederationPlane::rememberReferral(const std::string& originPool,
                                       std::uint64_t id) {
  std::string key = originPool;
  key += '#';
  key += std::to_string(id);
  if (!seenReferrals_.insert(key).second) return false;
  seenOrder_.push_back(std::move(key));
  while (seenOrder_.size() > kSeenLimit) {
    seenReferrals_.erase(seenOrder_.front());
    seenOrder_.pop_front();
  }
  return true;
}

}  // namespace federation
