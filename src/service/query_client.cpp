#include "service/query_client.h"

#include <chrono>
#include <optional>
#include <utility>

#include "service/reactor.h"

namespace service {

PoolQueryResult queryPool(const std::string& host, std::uint16_t port,
                          const PoolQueryOptions& opts) {
  PoolQueryResult result;
  Reactor reactor;
  std::string error;
  Connection* conn = reactor.dial(host, port, &error);
  if (conn == nullptr) {
    result.error = "dial failed: " + error;
    return result;
  }
  // An empty Hello address keeps the matchmaker from registering this
  // connection as an agent peer — queries are read-only observers.
  conn->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, std::string()}));
  wire::PoolQuery query;
  query.constraint = opts.constraint;
  query.projection = opts.projection;
  query.scope = opts.scope;
  conn->queue(wire::encodePoolQuery(query));

  std::optional<wire::PoolQueryResponse> response;
  bool closed = false;
  reactor.onFrame = [&](Connection&, const wire::Frame& frame) {
    if (frame.type !=
        static_cast<std::uint8_t>(wire::MsgType::kQueryResponse)) {
      return;  // e.g. the matchmaker's Hello reply
    }
    std::string decodeError;
    if (auto decoded = wire::decodePoolQueryResponse(frame, &decodeError)) {
      response = std::move(*decoded);
    } else {
      response = wire::PoolQueryResponse{};
      response->ok = false;
      response->error = "malformed response: " + decodeError;
    }
  };
  reactor.onClose = [&](Connection&) { closed = true; };

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts.timeoutSeconds));
  while (!response && !closed &&
         std::chrono::steady_clock::now() < deadline) {
    reactor.pollOnce(20);
  }
  if (!response) {
    result.error = closed ? "connection closed before response"
                          : "timed out waiting for response";
    return result;
  }
  result.ok = response->ok;
  result.error = std::move(response->error);
  result.ads = std::move(response->ads);
  return result;
}

TraceQueryResult queryTraces(const std::string& host, std::uint16_t port,
                             const TraceQueryOptions& opts) {
  TraceQueryResult result;
  Reactor reactor;
  std::string error;
  Connection* conn = reactor.dial(host, port, &error);
  if (conn == nullptr) {
    result.error = "dial failed: " + error;
    return result;
  }
  conn->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, std::string()}));
  conn->queue(wire::encodeTraceQuery({opts.traceId, opts.limit}));

  std::optional<wire::TraceQueryResponse> response;
  bool closed = false;
  reactor.onFrame = [&](Connection&, const wire::Frame& frame) {
    if (frame.type !=
        static_cast<std::uint8_t>(wire::MsgType::kTraceQueryResponse)) {
      return;
    }
    std::string decodeError;
    if (auto decoded = wire::decodeTraceQueryResponse(frame, &decodeError)) {
      response = std::move(*decoded);
    } else {
      response = wire::TraceQueryResponse{};
      response->ok = false;
      response->error = "malformed response: " + decodeError;
    }
  };
  reactor.onClose = [&](Connection&) { closed = true; };

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts.timeoutSeconds));
  while (!response && !closed &&
         std::chrono::steady_clock::now() < deadline) {
    reactor.pollOnce(20);
  }
  if (!response) {
    result.error = closed ? "connection closed before response"
                          : "timed out waiting for response";
    return result;
  }
  result.ok = response->ok;
  result.error = std::move(response->error);
  result.component = std::move(response->component);
  result.spans = std::move(response->spans);
  return result;
}

}  // namespace service
