// socket.h - Minimal POSIX TCP helpers for the service daemons.
//
// Everything is nonblocking and IPv4; the daemons poll. Transport
// addresses on the wire use the form "tcp://<host>:<port>" so a
// classad's ContactAddress can name a live socket endpoint the same way
// the simulator's logical "ra://name" names an in-process one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace service {

/// Renders "tcp://host:port".
std::string makeTcpAddress(const std::string& host, std::uint16_t port);

/// Parses "tcp://host:port". Returns false on any other shape.
bool parseTcpAddress(std::string_view address, std::string* host,
                     std::uint16_t* port);

/// Creates a nonblocking listening socket bound to `host`:`port`
/// (port 0 = ephemeral). Returns the fd, or -1 with `error` filled.
int listenTcp(const std::string& host, std::uint16_t port,
              std::string* error);

/// The port a bound socket actually landed on (for port 0 binds).
std::uint16_t localPort(int fd);

/// Starts a nonblocking connect. Returns the fd (connection may still
/// be in progress — wait for writability), or -1 with `error` filled.
int connectTcp(const std::string& host, std::uint16_t port,
               std::string* error);

/// Accepts one pending connection as a nonblocking fd; -1 if none.
int acceptOne(int listenFd);

/// Checks the outcome of an in-progress connect after the fd polled
/// writable. Returns 0 on success, the errno otherwise.
int connectResult(int fd);

void closeFd(int fd) noexcept;

}  // namespace service
