#include "service/resource_agentd.h"

#include "matchmaker/protocol.h"
#include "service/socket.h"
#include "sim/transport.h"
#include "wire/codec.h"

namespace service {

namespace {
constexpr int kPollMs = 20;
}  // namespace

ResourceAgentDaemon::ResourceAgentDaemon(Config config)
    : config_(std::move(config)),
      tracer_(obs::Tracer::Options{config_.traceCapacity, config_.tracing,
                                   "ra://" + config_.name, 0},
              &registry_),
      rng_(config_.ticketSeed != 0 ? config_.ticketSeed
                                   : htcsim::hashName(config_.name)) {
  mintTicket();
}

ResourceAgentDaemon::~ResourceAgentDaemon() { stop(); }

void ResourceAgentDaemon::mintTicket() {
  do {
    ticket_ = matchmaking::namespaceTicket(rng_.next(), config_.pool);
  } while (ticket_ == matchmaking::kNoTicket);
}

std::string ResourceAgentDaemon::contactAddress() const {
  return makeTcpAddress(config_.host, port_);
}

classad::ClassAd ResourceAgentDaemon::buildAd() const {
  std::lock_guard<std::mutex> lock(stateMu_);
  classad::ClassAd ad;
  ad.set("Type", "Machine");
  ad.set("Name", config_.name);
  ad.set("Machine", config_.name);
  ad.set("Arch", config_.arch);
  ad.set("OpSys", config_.opSys);
  ad.set("Memory", config_.memoryMB);
  ad.set("Disk", config_.diskKB);
  ad.set("Mips", config_.mips);
  ad.set("KFlops", config_.kflops);
  ad.set("ContactAddress", contactAddress());
  if (claim_.has_value()) {
    const std::string user = claim_->user;
    ad.set("State", "Claimed");
    ad.set("Activity", "Busy");
    ad.set("RemoteUser", user);
  } else {
    ad.set("State", "Unclaimed");
    ad.set("Activity", "Idle");
  }
  ad.setExpr("Rank", config_.rank);
  ad.setExpr("Constraint", config_.constraint);
  ad.set("AuthorizationTicket", matchmaking::ticketToString(ticket_));
  return ad;
}

double ResourceAgentDaemon::nowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool ResourceAgentDaemon::start(std::string* error) {
  if (running_.load()) return true;
  start_ = std::chrono::steady_clock::now();
  reactor_ = std::make_unique<Reactor>();
  if (!reactor_->listen(config_.host, config_.listenPort, error)) {
    reactor_.reset();
    return false;
  }
  port_ = reactor_->port();
  reactor_->instrument(&registry_);
  if (config_.sendTap) reactor_->setSendTap(config_.sendTap);

  mmConn_ = reactor_->dial(config_.matchmakerHost, config_.matchmakerPort,
                           error);
  if (mmConn_ == nullptr) {
    reactor_.reset();
    return false;
  }
  mmConn_->peerAddress = "collector";
  mmConn_->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, contactAddress()}));

  reactor_->onFrame = [this](Connection& conn, const wire::Frame& frame) {
    handleFrame(conn, frame);
  };
  reactor_->onClose = [this](Connection& conn) {
    if (&conn == mmConn_) {
      // Reconnect with backoff from the run loop; the soft-state ad
      // store repopulates itself once we're back.
      mmConn_ = nullptr;
      nextReconnectAt_ =
          nowSeconds() + lease::backoffDelay(config_.reconnectBackoff,
                                             reconnectAttempts_++,
                                             rng_.uniform());
      return;
    }
    std::lock_guard<std::mutex> lock(stateMu_);
    if (claim_.has_value() && claim_->conn == &conn) {
      // The customer died mid-claim; the resource simply becomes free
      // again (its next ad shows Unclaimed with a fresh ticket).
      const matchmaking::Ticket ticket = claim_->ticket;
      leases_.release(ticket);
      claim_.reset();
      claimed_.store(false);
      mintTicket();
    }
  };

  stopFlag_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ResourceAgentDaemon::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    mmConn_ = nullptr;
    reactor_.reset();  // also reaps a hardKill()'d reactor's sockets
    frozen_.store(false);
    return;
  }
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  mmConn_ = nullptr;
  reactor_.reset();
}

void ResourceAgentDaemon::hardKill() {
  if (!running_.exchange(false)) return;
  frozen_.store(true);
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  // Deliberately keep reactor_ (and every open socket) alive: peers
  // must observe silence, not a close.
}

void ResourceAgentDaemon::maybeReconnect() {
  if (mmConn_ != nullptr || nowSeconds() < nextReconnectAt_) return;
  mmConn_ = reactor_->dial(config_.matchmakerHost, config_.matchmakerPort,
                           nullptr);
  nextReconnectAt_ =
      nowSeconds() + lease::backoffDelay(config_.reconnectBackoff,
                                         reconnectAttempts_++, rng_.uniform());
  if (mmConn_ == nullptr) return;
  ++reconnects_;
  mmConn_->peerAddress = "collector";
  mmConn_->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, contactAddress()}));
  advertise();  // repopulate the soft-state store immediately
}

void ResourceAgentDaemon::run() {
  advertise();  // announce immediately; the interval only paces refreshes
  while (!stopFlag_.load()) {
    reactor_->pollOnce(kPollMs);
    maybeReconnect();
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - lastAd_).count() >=
        config_.adIntervalSeconds) {
      advertise();
    }
    bool complete = false;
    bool leaseDied = false;
    Connection* deadCustomer = nullptr;
    obs::TraceContext deadTrace;
    {
      std::lock_guard<std::mutex> lock(stateMu_);
      if (claim_.has_value()) {
        const ActiveClaim& claim = *claim_;
        complete = config_.serviceSeconds > 0.0 &&
                   std::chrono::duration<double>(now - claim.startedAt)
                           .count() >= config_.serviceSeconds;
        if (config_.leaseSeconds > 0.0) {
          for (const lease::Lease& dead :
               leases_.reapExpired(nowSeconds())) {
            if (dead.ticket == claim.ticket) {
              leaseDied = true;
              deadCustomer = claim.conn;
              deadTrace = claim.trace;
            }
          }
        }
      }
    }
    if (leaseDied) {
      // The renewal stream died: tear the claim down unilaterally and
      // offer the machine back to the pool. The customer is presumed
      // dead; if it is merely slow its next heartbeat gets a
      // LeaseExpired notice over the still-open connection.
      ++leaseExpiries_;
      obs::ActiveSpan expireSpan =
          obs::startSpan(&tracer_, "lease.expire", deadTrace);
      expireSpan.tag("reason", "missed-heartbeats");
      finishClaim(/*completed=*/false, "lease-expired");
      if (deadCustomer != nullptr && !deadCustomer->closed()) {
        deadCustomer->close();
      }
    } else if (complete) {
      finishClaim(/*completed=*/true, "completed");
    }
  }
}

void ResourceAgentDaemon::advertise() {
  if (mmConn_ == nullptr || mmConn_->closed()) return;
  matchmaking::Advertisement ad;
  ad.ad = classad::makeShared(buildAd());
  ad.sequence = ++adSequence_;
  ad.isRequest = false;
  ad.key = contactAddress();
  mmConn_->queue(wire::encodeEnvelope(
      {contactAddress(), "collector", std::move(ad)}));
  lastAd_ = std::chrono::steady_clock::now();
  ++adsSent_;
  // Ride the same advertising cadence with a DaemonStatus self-ad: the
  // agent's own health, as a classad, in the same soft-state store.
  matchmaking::Advertisement status;
  status.ad = classad::makeShared(buildSelfAd());
  status.sequence = adSequence_;
  status.isRequest = false;
  status.key = contactAddress();
  mmConn_->queue(wire::encodeEnvelope(
      {contactAddress(), "collector", std::move(status)}));
}

classad::ClassAd ResourceAgentDaemon::buildSelfAd() {
  registry_.gauge("ClaimsAccepted")
      ->set(static_cast<double>(accepted_.load()));
  registry_.gauge("ClaimsRejected")
      ->set(static_cast<double>(rejectedClaims_.load()));
  registry_.gauge("CompletionsSent")
      ->set(static_cast<double>(completions_.load()));
  registry_.gauge("AdsSent")->set(static_cast<double>(adsSent_.load()));
  registry_.gauge("Claimed")->set(claimed_.load() ? 1.0 : 0.0);
  classad::ClassAd ad;
  ad.set("MyType", "DaemonStatus");
  ad.set("Type", "DaemonStatus");
  ad.set("DaemonType", "ResourceAgent");
  ad.set("Name", config_.name);
  ad.set("Address", contactAddress());
  registry_.gauge("MatchmakerReconnects")
      ->set(static_cast<double>(reconnects_.load()));
  {
    // Lease plane: lifetime counters always; per-lease detail while a
    // leased claim is active, so `mm_status -claims` can list live
    // claims (with age/TTL) straight from the soft-state store.
    std::lock_guard<std::mutex> lock(stateMu_);
    registry_.gauge("LeasesGranted")
        ->set(static_cast<double>(leases_.granted()));
    registry_.gauge("LeasesRenewed")
        ->set(static_cast<double>(leases_.renewed()));
    registry_.gauge("LeasesExpired")
        ->set(static_cast<double>(leases_.expired()));
    const lease::Lease* live =
        claim_ ? leases_.find(claim_->ticket) : nullptr;
    if (live != nullptr) {
      const double now = nowSeconds();
      ad.set("LeaseTicket", matchmaking::ticketToString(live->ticket));
      ad.set("LeaseJobId", static_cast<std::int64_t>(live->jobId));
      ad.set("LeaseCustomer", live->peer);
      ad.set("LeaseDuration", live->durationSeconds);
      ad.set("LeaseAgeSeconds", now - live->grantedAt);
      ad.set("LeaseRemainingSeconds", live->expiresAt() - now);
      ad.set("LastHeartbeatAgeSeconds", now - live->renewedAt);
      ad.set("LeaseRenewals", static_cast<std::int64_t>(live->renewals));
    }
  }
  registry_.renderInto(ad);
  return ad;
}

void ResourceAgentDaemon::handleFrame(Connection& conn,
                                      const wire::Frame& frame) {
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kHello)) {
    // The matchmaker's hello reply, or a customer introducing itself on
    // a claim connection; either way note the peer and move on.
    std::string error;
    if (const auto hello = wire::decodeHello(frame, &error)) {
      if (conn.peerAddress.empty()) conn.peerAddress = hello->address;
    } else {
      conn.close();
    }
    return;
  }
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kTraceQuery)) {
    handleTraceQuery(conn, frame);
    return;
  }
  std::string error;
  const auto env = wire::decodeEnvelope(frame, &error);
  if (!env) {
    conn.close();
    return;
  }
  if (const auto* req =
          std::get_if<matchmaking::ClaimRequest>(&env->payload)) {
    handleClaimRequest(conn, *req);
  } else if (const auto* hb =
                 std::get_if<matchmaking::Heartbeat>(&env->payload)) {
    handleHeartbeat(conn, *hb);
  } else if (const auto* rel =
                 std::get_if<matchmaking::ClaimRelease>(&env->payload)) {
    bool mine = false;
    {
      std::lock_guard<std::mutex> lock(stateMu_);
      mine = claim_ && (rel->ticket == claim_->ticket ||
                        rel->ticket == matchmaking::kNoTicket);
    }
    if (mine) finishClaim(/*completed=*/false, "released-by-customer");
  }
  // MatchNotification for the resource side is informational here: the
  // claim arrives on its own merits and is verified against current
  // state, so the thin adapter does not need to act on the hint.
}

void ResourceAgentDaemon::handleClaimRequest(
    Connection& conn, const matchmaking::ClaimRequest& req) {
  const classad::ClassAd current = buildAd();
  matchmaking::Ticket outstanding;
  bool alreadyClaimed;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    outstanding = ticket_;
    alreadyClaimed = claim_.has_value();
  }
  matchmaking::ClaimResponse verdict;
  if (alreadyClaimed) {
    verdict = {false, "already claimed", 0.0, req.trace};
  } else {
    verdict = matchmaking::evaluateClaim(current, outstanding, req,
                                         config_.claimPolicy);
    verdict.trace = req.trace;  // echo: the CA keeps the job's trace
  }
  if (verdict.accepted) verdict.leaseDuration = config_.leaseSeconds;
  // The verdict span joins the origin job's trace through the context
  // the ClaimRequest carried across the CA→RA connection.
  obs::ActiveSpan claimSpan = obs::startSpan(
      &tracer_, verdict.accepted ? "claim.grant" : "claim.reject", req.trace);
  claimSpan.tag("customer", req.customerContact);
  if (!verdict.accepted) claimSpan.tag("reason", verdict.reason);
  conn.queue(wire::encodeEnvelope(
      {contactAddress(), req.customerContact, verdict}));
  if (!verdict.accepted) {
    ++rejectedClaims_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    ActiveClaim claim;
    claim.ticket = ticket_;
    claim.conn = &conn;
    claim.user = req.requestAd->getString("Owner").value_or("");
    claim.jobId = static_cast<std::uint64_t>(
        req.requestAd->getInteger("JobId").value_or(0));
    claim.startedAt = std::chrono::steady_clock::now();
    claim.trace = req.trace;
    if (config_.leaseSeconds > 0.0) {
      leases_.grant(claim.ticket, claim.jobId, req.customerContact,
                    nowSeconds(), config_.leaseSeconds);
      obs::ActiveSpan leaseSpan =
          obs::startSpan(&tracer_, "lease.grant", req.trace);
      leaseSpan.tag("duration_s", std::to_string(config_.leaseSeconds));
      leaseSpan.tag("job", std::to_string(claim.jobId));
    }
    claim_ = std::move(claim);
  }
  claimed_.store(true);
  ++accepted_;
  advertise();  // immediately re-advertise as Claimed
}

void ResourceAgentDaemon::handleHeartbeat(Connection& conn,
                                          const matchmaking::Heartbeat& hb) {
  if (hb.ack) return;  // we only originate acks
  bool renewed = false;
  std::uint64_t jobId = hb.jobId;
  obs::TraceContext claimTrace;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    if (claim_.has_value() && claim_->ticket == hb.ticket) {
      const std::uint64_t claimJobId = claim_->jobId;
      const obs::TraceContext trace = claim_->trace;
      if (leases_.renew(hb.ticket, nowSeconds())) {
        renewed = true;
        jobId = claimJobId;
        claimTrace = trace;
      }
    }
  }
  if (renewed) {
    // The renewal span parents on the claim's context (falling back to
    // the beat's own, for leases granted before the customer restarted).
    obs::ActiveSpan renewSpan = obs::startSpan(
        &tracer_, "lease.renew", claimTrace.valid() ? claimTrace : hb.trace);
    renewSpan.tag("job", std::to_string(jobId));
    matchmaking::Heartbeat ack = hb;  // the copy keeps hb's trace context
    ack.ack = true;
    conn.queue(wire::encodeEnvelope(
        {contactAddress(), conn.peerAddress, std::move(ack)}));
  } else {
    // Stale or unknown ticket: the claim this beat belongs to is gone
    // (expired, released, or superseded). Tell the customer so it can
    // requeue without waiting out its own miss budget.
    conn.queue(wire::encodeEnvelope(
        {contactAddress(), conn.peerAddress,
         matchmaking::LeaseExpired{hb.ticket, jobId,
                                   "no active lease for ticket", hb.trace}}));
  }
}

// Serves wire tag 18 over the RA's span ring so mm_trace can pull the
// claim/lease legs of a trace straight from the resource. Like the
// matchmaker's handler, malformed queries are answered ok=false and
// NEVER close the connection — a broken tracing tool must not tear down
// the claim link it shares.
void ResourceAgentDaemon::handleTraceQuery(Connection& conn,
                                           const wire::Frame& frame) {
  registry_.counter("TraceQueriesServed")->inc();
  wire::TraceQueryResponse resp;
  resp.component = tracer_.component();
  std::string error;
  const auto query = wire::decodeTraceQuery(frame, &error);
  if (!query) {
    resp.ok = false;
    resp.error = "malformed trace query: " + error;
    conn.queue(wire::encodeTraceQueryResponse(resp));
    return;
  }
  if (query->traceId.empty()) {
    resp.spans = tracer_.snapshot(query->limit);
  } else if (const auto id = obs::traceIdFromHex(query->traceId)) {
    resp.spans = tracer_.spansFor(*id);
  } else {
    resp.ok = false;
    resp.error = "bad trace id (want 32 hex chars): " + query->traceId;
  }
  conn.queue(wire::encodeTraceQueryResponse(resp));
}

void ResourceAgentDaemon::finishClaim(bool completed,
                                      const std::string& reason) {
  Connection* customer = nullptr;
  matchmaking::ClaimRelease release;
  htcsim::UsageReport usage;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    if (!claim_.has_value()) return;
    const ActiveClaim& claim = *claim_;
    customer = claim.conn;
    release.ticket = claim.ticket;
    release.reason = reason;
    release.jobId = claim.jobId;
    release.trace = claim.trace;
    release.cpuSecondsUsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      claim.startedAt)
            .count();
    release.completed = completed;
    usage.user = claim.user;
    usage.resourceSeconds = release.cpuSecondsUsed;
    leases_.release(release.ticket);  // no-op if it expired or never leased
    claim_.reset();
    mintTicket();
  }
  {
    obs::ActiveSpan releaseSpan =
        obs::startSpan(&tracer_, "claim.release", release.trace);
    releaseSpan.tag("reason", reason);
    releaseSpan.tag("completed", completed ? "true" : "false");
  }
  claimed_.store(false);
  if (completed && customer != nullptr && !customer->closed()) {
    ++completions_;
    customer->queue(wire::encodeEnvelope(
        {contactAddress(), customer->peerAddress, std::move(release)}));
  }
  if (mmConn_ != nullptr && !mmConn_->closed()) {
    mmConn_->queue(wire::encodeEnvelope(
        {contactAddress(), "collector", std::move(usage)}));
  }
  advertise();  // fresh ticket, Unclaimed state
}

}  // namespace service
