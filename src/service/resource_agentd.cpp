#include "service/resource_agentd.h"

#include "matchmaker/protocol.h"
#include "service/socket.h"
#include "sim/transport.h"
#include "wire/codec.h"

namespace service {

namespace {
constexpr int kPollMs = 20;
}  // namespace

ResourceAgentDaemon::ResourceAgentDaemon(Config config)
    : config_(std::move(config)),
      rng_(config_.ticketSeed != 0 ? config_.ticketSeed
                                   : htcsim::hashName(config_.name)) {
  mintTicket();
}

ResourceAgentDaemon::~ResourceAgentDaemon() { stop(); }

void ResourceAgentDaemon::mintTicket() {
  do {
    ticket_ = rng_.next();
  } while (ticket_ == matchmaking::kNoTicket);
}

std::string ResourceAgentDaemon::contactAddress() const {
  return makeTcpAddress(config_.host, port_);
}

classad::ClassAd ResourceAgentDaemon::buildAd() const {
  std::lock_guard<std::mutex> lock(stateMu_);
  classad::ClassAd ad;
  ad.set("Type", "Machine");
  ad.set("Name", config_.name);
  ad.set("Machine", config_.name);
  ad.set("Arch", config_.arch);
  ad.set("OpSys", config_.opSys);
  ad.set("Memory", config_.memoryMB);
  ad.set("Disk", config_.diskKB);
  ad.set("Mips", config_.mips);
  ad.set("KFlops", config_.kflops);
  ad.set("ContactAddress", contactAddress());
  if (claim_) {
    ad.set("State", "Claimed");
    ad.set("Activity", "Busy");
    ad.set("RemoteUser", claim_->user);
  } else {
    ad.set("State", "Unclaimed");
    ad.set("Activity", "Idle");
  }
  ad.setExpr("Rank", config_.rank);
  ad.setExpr("Constraint", config_.constraint);
  ad.set("AuthorizationTicket", matchmaking::ticketToString(ticket_));
  return ad;
}

bool ResourceAgentDaemon::start(std::string* error) {
  if (running_.load()) return true;
  reactor_ = std::make_unique<Reactor>();
  if (!reactor_->listen(config_.host, config_.listenPort, error)) {
    reactor_.reset();
    return false;
  }
  port_ = reactor_->port();
  reactor_->instrument(&registry_);

  mmConn_ = reactor_->dial(config_.matchmakerHost, config_.matchmakerPort,
                           error);
  if (mmConn_ == nullptr) {
    reactor_.reset();
    return false;
  }
  mmConn_->peerAddress = "collector";
  mmConn_->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, contactAddress()}));

  reactor_->onFrame = [this](Connection& conn, const wire::Frame& frame) {
    handleFrame(conn, frame);
  };
  reactor_->onClose = [this](Connection& conn) {
    if (&conn == mmConn_) mmConn_ = nullptr;
    std::lock_guard<std::mutex> lock(stateMu_);
    if (claim_ && claim_->conn == &conn) {
      // The customer died mid-claim; the resource simply becomes free
      // again (its next ad shows Unclaimed with a fresh ticket).
      claim_.reset();
      claimed_.store(false);
      mintTicket();
    }
  };

  stopFlag_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ResourceAgentDaemon::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  mmConn_ = nullptr;
  reactor_.reset();
}

void ResourceAgentDaemon::run() {
  advertise();  // announce immediately; the interval only paces refreshes
  while (!stopFlag_.load()) {
    reactor_->pollOnce(kPollMs);
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - lastAd_).count() >=
        config_.adIntervalSeconds) {
      advertise();
    }
    bool complete = false;
    {
      std::lock_guard<std::mutex> lock(stateMu_);
      complete = claim_ && config_.serviceSeconds > 0.0 &&
                 std::chrono::duration<double>(now - claim_->startedAt)
                         .count() >= config_.serviceSeconds;
    }
    if (complete) finishClaim(/*completed=*/true, "completed");
  }
}

void ResourceAgentDaemon::advertise() {
  if (mmConn_ == nullptr || mmConn_->closed()) return;
  matchmaking::Advertisement ad;
  ad.ad = classad::makeShared(buildAd());
  ad.sequence = ++adSequence_;
  ad.isRequest = false;
  ad.key = contactAddress();
  mmConn_->queue(wire::encodeEnvelope(
      {contactAddress(), "collector", std::move(ad)}));
  lastAd_ = std::chrono::steady_clock::now();
  ++adsSent_;
  // Ride the same advertising cadence with a DaemonStatus self-ad: the
  // agent's own health, as a classad, in the same soft-state store.
  matchmaking::Advertisement status;
  status.ad = classad::makeShared(buildSelfAd());
  status.sequence = adSequence_;
  status.isRequest = false;
  status.key = contactAddress();
  mmConn_->queue(wire::encodeEnvelope(
      {contactAddress(), "collector", std::move(status)}));
}

classad::ClassAd ResourceAgentDaemon::buildSelfAd() {
  registry_.gauge("ClaimsAccepted")
      ->set(static_cast<double>(accepted_.load()));
  registry_.gauge("ClaimsRejected")
      ->set(static_cast<double>(rejectedClaims_.load()));
  registry_.gauge("CompletionsSent")
      ->set(static_cast<double>(completions_.load()));
  registry_.gauge("AdsSent")->set(static_cast<double>(adsSent_.load()));
  registry_.gauge("Claimed")->set(claimed_.load() ? 1.0 : 0.0);
  classad::ClassAd ad;
  ad.set("MyType", "DaemonStatus");
  ad.set("Type", "DaemonStatus");
  ad.set("DaemonType", "ResourceAgent");
  ad.set("Name", config_.name);
  ad.set("Address", contactAddress());
  registry_.renderInto(ad);
  return ad;
}

void ResourceAgentDaemon::handleFrame(Connection& conn,
                                      const wire::Frame& frame) {
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kHello)) {
    // The matchmaker's hello reply, or a customer introducing itself on
    // a claim connection; either way note the peer and move on.
    std::string error;
    if (const auto hello = wire::decodeHello(frame, &error)) {
      if (conn.peerAddress.empty()) conn.peerAddress = hello->address;
    } else {
      conn.close();
    }
    return;
  }
  std::string error;
  const auto env = wire::decodeEnvelope(frame, &error);
  if (!env) {
    conn.close();
    return;
  }
  if (const auto* req =
          std::get_if<matchmaking::ClaimRequest>(&env->payload)) {
    handleClaimRequest(conn, *req);
  } else if (const auto* rel =
                 std::get_if<matchmaking::ClaimRelease>(&env->payload)) {
    bool mine = false;
    {
      std::lock_guard<std::mutex> lock(stateMu_);
      mine = claim_ && (rel->ticket == claim_->ticket ||
                        rel->ticket == matchmaking::kNoTicket);
    }
    if (mine) finishClaim(/*completed=*/false, "released-by-customer");
  }
  // MatchNotification for the resource side is informational here: the
  // claim arrives on its own merits and is verified against current
  // state, so the thin adapter does not need to act on the hint.
}

void ResourceAgentDaemon::handleClaimRequest(
    Connection& conn, const matchmaking::ClaimRequest& req) {
  const classad::ClassAd current = buildAd();
  matchmaking::Ticket outstanding;
  bool alreadyClaimed;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    outstanding = ticket_;
    alreadyClaimed = claim_.has_value();
  }
  matchmaking::ClaimResponse verdict;
  if (alreadyClaimed) {
    verdict = {false, "already claimed"};
  } else {
    verdict = matchmaking::evaluateClaim(current, outstanding, req,
                                         config_.claimPolicy);
  }
  conn.queue(wire::encodeEnvelope(
      {contactAddress(), req.customerContact, verdict}));
  if (!verdict.accepted) {
    ++rejectedClaims_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    ActiveClaim claim;
    claim.ticket = ticket_;
    claim.conn = &conn;
    claim.user = req.requestAd->getString("Owner").value_or("");
    claim.jobId = static_cast<std::uint64_t>(
        req.requestAd->getInteger("JobId").value_or(0));
    claim.startedAt = std::chrono::steady_clock::now();
    claim_ = std::move(claim);
  }
  claimed_.store(true);
  ++accepted_;
  advertise();  // immediately re-advertise as Claimed
}

void ResourceAgentDaemon::finishClaim(bool completed,
                                      const std::string& reason) {
  Connection* customer = nullptr;
  matchmaking::ClaimRelease release;
  htcsim::UsageReport usage;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    if (!claim_) return;
    customer = claim_->conn;
    release.ticket = claim_->ticket;
    release.reason = reason;
    release.jobId = claim_->jobId;
    release.cpuSecondsUsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      claim_->startedAt)
            .count();
    release.completed = completed;
    usage.user = claim_->user;
    usage.resourceSeconds = release.cpuSecondsUsed;
    claim_.reset();
    mintTicket();
  }
  claimed_.store(false);
  if (completed && customer != nullptr && !customer->closed()) {
    ++completions_;
    customer->queue(wire::encodeEnvelope(
        {contactAddress(), customer->peerAddress, std::move(release)}));
  }
  if (mmConn_ != nullptr && !mmConn_->closed()) {
    mmConn_->queue(wire::encodeEnvelope(
        {contactAddress(), "collector", std::move(usage)}));
  }
  advertise();  // fresh ticket, Unclaimed state
}

}  // namespace service
