// reactor.h - poll(2) event loop shared by the three daemons.
//
// Owns an optional listening socket, any number of framed connections,
// and a self-pipe for cross-thread wakeup. One pollOnce() call
// multiplexes accept/read/write across everything and hands decoded
// frames (and lifecycle events) to the owner's callbacks. The reactor
// itself is single-threaded — only wake() may be called from outside
// the loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "service/connection.h"
#include "wire/frame.h"

namespace service {

class Reactor {
 public:
  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds a listening socket (port 0 = ephemeral; see port()).
  bool listen(const std::string& host, std::uint16_t port,
              std::string* error);
  std::uint16_t port() const noexcept { return port_; }

  /// Starts a nonblocking dial. The returned connection is owned by the
  /// reactor and may still be connecting; queue frames immediately —
  /// they flush once the connect completes. Returns nullptr on
  /// immediate failure.
  Connection* dial(const std::string& host, std::uint16_t targetPort,
                   std::string* error);

  /// One poll iteration: accepts, reads (dispatching every complete
  /// frame through onFrame), flushes writes, reaps dead connections
  /// (through onClose). Blocks at most `timeoutMs`.
  void pollOnce(int timeoutMs);

  /// Thread-safe: interrupts a concurrent pollOnce.
  void wake();

  /// Attaches the daemon's metrics registry. Every current and future
  /// connection's frame decoder and outbound queue report byte/frame/
  /// error counters; pollOnce records its processing latency (time spent
  /// working, not blocked in poll) in ReactorLoopSeconds and mirrors the
  /// open-connection count. Call before the service loop starts.
  void instrument(obs::Registry* registry);

  /// Marks a connection for reaping at the end of the iteration.
  void scheduleClose(Connection* conn) { conn->close(); }

  /// Installs a fault-injection send tap on every current and future
  /// connection (see Connection::sendTap). Pass an empty function to
  /// remove. Call from the loop thread (or before it starts).
  void setSendTap(std::function<bool(const Connection&, std::string_view)> tap);

  std::size_t connectionCount() const noexcept { return conns_.size(); }

  /// A complete frame arrived. Malformed framing closes the connection
  /// after this callback sees nothing (the decoder poisons itself).
  std::function<void(Connection&, const wire::Frame&)> onFrame;
  /// An inbound connection was accepted.
  std::function<void(Connection&)> onAccept;
  /// Fires just before a dead connection is destroyed.
  std::function<void(Connection&)> onClose;

 private:
  void drainConnection(Connection& conn);
  void reap();
  void instrumentConnection(Connection& conn);

  std::function<bool(const Connection&, std::string_view)> sendTap_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;

  // Observability (all null until instrument()).
  obs::Counter* bytesIn_ = nullptr;
  obs::Counter* framesIn_ = nullptr;
  obs::Counter* decodeErrors_ = nullptr;
  obs::Counter* framesOut_ = nullptr;
  obs::Counter* bytesOut_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Gauge* open_ = nullptr;
  obs::Histogram* loopHist_ = nullptr;
};

}  // namespace service
