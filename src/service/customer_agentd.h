// customer_agentd.h - Live customer agent endpoint (the paper's CA as a
// TCP daemon).
//
// Maintains a queue of job classads, advertises the idle ones to the
// matchmaker over one outbound connection, and — on each
// MatchNotification — dials the matched resource's ContactAddress
// DIRECTLY and runs the claiming protocol over that private connection
// (presenting the relayed authorization ticket). Rejected claims put
// the job back to Idle for the next negotiation cycle; accepted claims
// retract the job's ad; the resource's ClaimRelease on the same
// connection finishes or requeues it. The matchmaker never sees claim
// traffic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "classad/classad.h"
#include "lease/backoff.h"
#include "lease/heartbeat.h"
#include "matchmaker/protocol.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/reactor.h"
#include "sim/rng.h"

namespace service {

struct JobSpec {
  std::uint64_t id = 0;
  double work = 1.0;  ///< reference CPU-seconds (advertised RemainingWork)
  std::int64_t memoryMB = 32;
  std::int64_t diskKB = 10000;
  std::string cmd = "job";
};

struct CustomerAgentDaemonConfig {
  std::string owner = "user";
  std::string matchmakerHost = "127.0.0.1";
  std::uint16_t matchmakerPort = 0;
  double adIntervalSeconds = 5.0;
  /// Job-side requirement; other.* refers to the machine ad.
  std::string constraint = "other.Type == \"Machine\""
                           " && other.Memory >= self.Memory";
  std::string rank = "KFlops/1E3 + other.Memory/32";
  std::vector<JobSpec> jobs;
  /// Heartbeat behaviour for leased claims; only consulted when a
  /// ClaimResponse carries a non-zero leaseDuration (see
  /// lease/heartbeat.h — the interval derives from the lease).
  lease::MonitorConfig heartbeat;
  /// Seconds a claim request may sit unanswered before the job goes
  /// back to matchmaking (the matched RA may be dead). 0 disables.
  double claimTimeoutSeconds = 10.0;
  /// Backoff between matchmaker reconnect attempts.
  lease::BackoffConfig reconnectBackoff;
  /// Fault-injection hook installed on every connection at start()
  /// (see Connection::sendTap): return false to drop the frame on the
  /// floor. The tap runs on the daemon's loop thread.
  std::function<bool(const Connection&, std::string_view)> sendTap;
};

class CustomerAgentDaemon {
 public:
  using Config = CustomerAgentDaemonConfig;

  explicit CustomerAgentDaemon(Config config = {});
  ~CustomerAgentDaemon();

  bool start(std::string* error = nullptr);
  void stop();

  /// Freezes the daemon without closing its sockets (peers see pure
  /// silence, no FIN/RST) — the failure the RA-side lease recovers
  /// from. stop() or destruction still cleans up.
  void hardKill();

  /// Logical transport address ("ca://<owner>") registered with the
  /// matchmaker; match notifications are pushed to it.
  const std::string& address() const noexcept { return address_; }

  std::size_t idleJobs() const;
  std::size_t runningJobs() const;
  std::size_t completedJobs() const noexcept { return completed_.load(); }
  std::size_t matchesReceived() const noexcept { return matches_.load(); }
  std::size_t claimsRejected() const noexcept { return rejected_.load(); }
  std::size_t adsSent() const noexcept { return adsSent_.load(); }
  /// Claims this CA declared dead (missed heartbeats, LeaseExpired
  /// notice, or a leased claim's connection dropping).
  std::size_t leaseExpiries() const noexcept { return leaseExpiries_.load(); }
  std::size_t heartbeatsAcked() const noexcept { return beatsAcked_.load(); }
  std::size_t claimTimeouts() const noexcept { return claimTimeouts_.load(); }
  std::size_t matchmakerReconnects() const noexcept {
    return reconnects_.load();
  }

  /// The request ad a job would advertise now (tests/tools).
  classad::ClassAd buildRequestAd(const JobSpec& job) const;

  /// The daemon's metrics registry (see src/obs).
  obs::Registry& registry() noexcept { return registry_; }

 private:
  enum class JobState { kIdle, kClaiming, kRunning, kDone };
  struct JobEntry {
    JobSpec spec;
    JobState state = JobState::kIdle;
    Connection* claimConn = nullptr;
    matchmaking::Ticket ticket = matchmaking::kNoTicket;
    /// Heartbeat monitor for the leased claim (engaged only when the
    /// RA granted a lease); its clock is nowSeconds().
    std::optional<lease::HeartbeatMonitor> monitor;
    double claimStartedAt = 0.0;  ///< nowSeconds() at claim dispatch
    /// From the MatchNotification; stamped on the ClaimRequest and every
    /// renewal heartbeat so the claim/lease spans at the RA stitch into
    /// the job's trace (docs/OBSERVABILITY.md). The CA originates no
    /// spans of its own — it is propagation-only.
    obs::TraceContext trace;
  };

  void run();
  void handleFrame(Connection& conn, const wire::Frame& frame);
  void advertiseIdleJobs();
  classad::ClassAd buildSelfAd();
  void invalidateJobAd(const JobSpec& job);
  /// Drives claim timeouts and due heartbeats; called once per loop.
  void serviceClaims();
  void maybeReconnect();
  double nowSeconds() const;
  JobEntry* jobById(std::uint64_t id);
  JobEntry* jobOnConnection(const Connection* conn);
  std::string adKey(const JobSpec& job) const;

  Config config_;
  std::string address_;
  obs::Registry registry_;  ///< must outlive reactor_
  htcsim::Rng rng_;

  std::unique_ptr<Reactor> reactor_;
  Connection* mmConn_ = nullptr;
  std::uint64_t adSequence_ = 0;
  std::chrono::steady_clock::time_point lastAd_{};
  std::chrono::steady_clock::time_point start_{};
  double nextReconnectAt_ = 0.0;
  std::uint32_t reconnectAttempts_ = 0;

  mutable std::mutex jobsMu_;
  std::vector<JobEntry> jobs_;

  std::thread thread_;
  std::atomic<bool> stopFlag_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> frozen_{false};

  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> matches_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> adsSent_{0};
  std::atomic<std::size_t> leaseExpiries_{0};
  std::atomic<std::size_t> beatsAcked_{0};
  std::atomic<std::size_t> claimTimeouts_{0};
  std::atomic<std::size_t> reconnects_{0};
};

}  // namespace service
