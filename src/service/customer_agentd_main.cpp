// customer_agentd - live customer agent endpoint.
//
//   customer_agentd --owner USER [--matchmaker-port N] [--jobs N]
//                   [--work SECONDS] [--heartbeat SECONDS]
//
// Submits N jobs, advertises them, claims matched resources directly,
// and exits once all jobs complete.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "service/customer_agentd.h"

namespace {
std::atomic<bool> gStop{false};
void onSignal(int) { gStop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  service::CustomerAgentDaemonConfig config;
  config.matchmakerPort = 9618;
  std::size_t jobCount = 1;
  double work = 1.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--owner") == 0) {
      config.owner = value();
    } else if (std::strcmp(arg, "--matchmaker-port") == 0) {
      config.matchmakerPort = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobCount = static_cast<std::size_t>(std::atoll(value()));
    } else if (std::strcmp(arg, "--work") == 0) {
      work = std::atof(value());
    } else if (std::strcmp(arg, "--heartbeat") == 0) {
      // Pins the heartbeat period (default: a third of the granted lease).
      config.heartbeat.intervalSeconds = std::atof(value());
    } else {
      std::fprintf(stderr,
                   "usage: customer_agentd --owner USER"
                   " [--matchmaker-port N] [--jobs N] [--work SECONDS]"
                   " [--heartbeat SECONDS]\n");
      return 2;
    }
  }
  for (std::size_t i = 0; i < jobCount; ++i) {
    service::JobSpec job;
    job.id = i + 1;
    job.work = work;
    config.jobs.push_back(job);
  }

  service::CustomerAgentDaemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "customer_agentd: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("customer_agentd: %s advertising %zu job(s)\n",
              config.owner.c_str(), jobCount);
  while (!gStop.load() && daemon.completedJobs() < jobCount) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("customer_agentd: idle=%zu running=%zu done=%zu\n",
                daemon.idleJobs(), daemon.runningJobs(),
                daemon.completedJobs());
    std::fflush(stdout);
  }
  daemon.stop();
  return 0;
}
