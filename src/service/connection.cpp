#include "service/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/registry.h"
#include "service/socket.h"

namespace service {

Connection::Connection(int fd, bool connecting)
    : fd_(fd), connecting_(connecting) {}

Connection::~Connection() { close(); }

void Connection::close() noexcept {
  if (closed_) return;
  closed_ = true;
  closeFd(fd_);
  fd_ = -1;
}

void Connection::queue(std::string_view bytes) {
  if (closed_) return;
  if (sendTap && !sendTap(*this, bytes)) return;  // injected fault: frame lost
  if (framesOut_ != nullptr) framesOut_->inc();
  if (bytesOut_ != nullptr) bytesOut_->inc(bytes.size());
  // Compact the flushed prefix before it dominates the buffer.
  if (outPos_ > 0 && outPos_ >= out_.size() / 2) {
    out_.erase(0, outPos_);
    outPos_ = 0;
  }
  out_.append(bytes);
}

bool Connection::onReadable() {
  if (closed_) return false;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.append(std::string_view(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool Connection::onWritable() {
  if (closed_) return false;
  if (connecting_) {
    if (connectResult(fd_) != 0) return false;
    connecting_ = false;
  }
  while (outPos_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + outPos_, out_.size() - outPos_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      outPos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  out_.clear();
  outPos_ = 0;
  return true;
}

}  // namespace service
