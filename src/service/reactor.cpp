#include "service/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "service/socket.h"

namespace service {

Reactor::Reactor() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
    // The drain loop must not block on an empty pipe.
    ::fcntl(wakeRead_, F_SETFL,
            ::fcntl(wakeRead_, F_GETFL, 0) | O_NONBLOCK);
  }
}

Reactor::~Reactor() {
  conns_.clear();
  closeFd(listenFd_);
  closeFd(wakeRead_);
  closeFd(wakeWrite_);
}

bool Reactor::listen(const std::string& host, std::uint16_t port,
                     std::string* error) {
  listenFd_ = listenTcp(host, port, error);
  if (listenFd_ < 0) return false;
  port_ = localPort(listenFd_);
  return true;
}

Connection* Reactor::dial(const std::string& host, std::uint16_t targetPort,
                          std::string* error) {
  const int fd = connectTcp(host, targetPort, error);
  if (fd < 0) return nullptr;
  conns_.push_back(std::make_unique<Connection>(fd, /*connecting=*/true));
  instrumentConnection(*conns_.back());
  return conns_.back().get();
}

void Reactor::instrument(obs::Registry* registry) {
  if (registry == nullptr) return;
  bytesIn_ = registry->counter("BytesIn");
  framesIn_ = registry->counter("FramesIn");
  decodeErrors_ = registry->counter("DecodeErrors");
  framesOut_ = registry->counter("FramesOut");
  bytesOut_ = registry->counter("BytesOut");
  accepted_ = registry->counter("ConnectionsAccepted");
  open_ = registry->gauge("ConnectionsOpen");
  loopHist_ = registry->histogram("ReactorLoopSeconds");
  for (const auto& conn : conns_) instrumentConnection(*conn);
}

void Reactor::instrumentConnection(Connection& conn) {
  conn.sendTap = sendTap_;
  if (framesIn_ == nullptr) return;
  conn.decoder().instrument(bytesIn_, framesIn_, decodeErrors_);
  conn.instrument(framesOut_, bytesOut_);
}

void Reactor::setSendTap(
    std::function<bool(const Connection&, std::string_view)> tap) {
  sendTap_ = std::move(tap);
  for (const auto& conn : conns_) conn->sendTap = sendTap_;
}

void Reactor::wake() {
  if (wakeWrite_ >= 0) {
    const char b = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wakeWrite_, &b, 1);
  }
}

void Reactor::drainConnection(Connection& conn) {
  wire::Frame frame;
  for (;;) {
    switch (conn.decoder().next(frame)) {
      case wire::DecodeStatus::kFrame:
        if (onFrame) onFrame(conn, frame);
        if (conn.closed()) return;
        continue;
      case wire::DecodeStatus::kNeedMore:
        return;
      case wire::DecodeStatus::kError:
        conn.close();  // framing lost; nothing salvageable
        return;
    }
  }
}

void Reactor::pollOnce(int timeoutMs) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 2);
  const std::size_t wakeIdx = fds.size();
  if (wakeRead_ >= 0) fds.push_back({wakeRead_, POLLIN, 0});
  const std::size_t listenIdx = fds.size();
  if (listenFd_ >= 0) fds.push_back({listenFd_, POLLIN, 0});
  const std::size_t connBase = fds.size();
  for (const auto& conn : conns_) {
    short events = POLLIN;
    if (conn->wantsWrite()) events |= POLLOUT;
    fds.push_back({conn->fd(), events, 0});
  }

  const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
  // Latency is measured from here: the blocking wait inside poll is
  // idle time, not work, and would swamp the histogram.
  const auto workStart = std::chrono::steady_clock::now();
  if (ready <= 0) {
    reap();
    if (open_ != nullptr) open_->set(static_cast<double>(conns_.size()));
    return;
  }

  if (wakeRead_ >= 0 && (fds[wakeIdx].revents & POLLIN)) {
    char buf[64];
    while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
    }
  }

  if (listenFd_ >= 0 && (fds[listenIdx].revents & POLLIN)) {
    for (;;) {
      const int fd = acceptOne(listenFd_);
      if (fd < 0) break;
      conns_.push_back(std::make_unique<Connection>(fd, /*connecting=*/false));
      instrumentConnection(*conns_.back());
      if (accepted_ != nullptr) accepted_->inc();
      if (onAccept) onAccept(*conns_.back());
    }
  }

  // Snapshot: callbacks may dial new connections mid-iteration; those
  // join the poll set next time around.
  const std::size_t existing = std::min(conns_.size(), fds.size() - connBase);
  for (std::size_t i = 0; i < existing; ++i) {
    Connection& conn = *conns_[i];
    const short revents = fds[connBase + i].revents;
    if (conn.closed() || revents == 0) continue;
    if (revents & (POLLOUT | POLLERR | POLLHUP)) {
      // Writability also completes pending connects; errors surface
      // through connectResult/send.
      if (!conn.onWritable() && !(revents & POLLIN)) {
        conn.close();
        continue;
      }
    }
    if (revents & POLLIN) {
      const bool alive = conn.onReadable();
      drainConnection(conn);  // deliver what arrived even at EOF
      if (!alive) conn.close();
    }
  }
  reap();
  if (loopHist_ != nullptr) {
    loopHist_->observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - workStart)
                           .count());
  }
  if (open_ != nullptr) open_->set(static_cast<double>(conns_.size()));
}

void Reactor::reap() {
  for (std::size_t i = 0; i < conns_.size();) {
    if (conns_[i]->closed()) {
      if (onClose) onClose(*conns_[i]);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

}  // namespace service
