// matchmakerd - networked matchmaker daemon (collector + negotiator).
//
//   matchmakerd [--port N] [--interval SECONDS] [--ad-lifetime SECONDS]
//
// Serves the advertise/match path of the framework over TCP; see
// docs/PROTOCOL.md "Wire format" and the README quickstart.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "service/matchmakerd.h"

namespace {
std::atomic<bool> gStop{false};
void onSignal(int) { gStop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  service::MatchmakerDaemonConfig config;
  config.port = 9618;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--port") == 0) {
      config.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (std::strcmp(arg, "--interval") == 0) {
      config.negotiationInterval = std::atof(value());
    } else if (std::strcmp(arg, "--ad-lifetime") == 0) {
      config.adLifetime = std::atof(value());
    } else {
      std::fprintf(stderr,
                   "usage: matchmakerd [--port N] [--interval SECONDS]"
                   " [--ad-lifetime SECONDS]\n");
      return 2;
    }
  }

  service::MatchmakerDaemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "matchmakerd: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("matchmakerd: listening on port %u, negotiating every %gs\n",
              daemon.port(), config.negotiationInterval);
  while (!gStop.load()) {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    std::printf(
        "matchmakerd: peers=%zu resources=%zu requests=%zu cycles=%zu"
        " matches=%zu\n",
        daemon.peersConnected(), daemon.storedResources(),
        daemon.storedRequests(), daemon.negotiationCycles(),
        daemon.matchesIssued());
    std::fflush(stdout);
  }
  daemon.stop();
  return 0;
}
