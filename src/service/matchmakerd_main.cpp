// matchmakerd - networked matchmaker daemon (collector + negotiator).
//
//   matchmakerd [--port N] [--interval SECONDS] [--ad-lifetime SECONDS]
//              [--policy greedy|assignment|auction]
//              [--pool NAME] [--peer NAME=HOST:PORT]...
//              [--flock all|on-demand|digest|filtered=EXPR]
//
// Serves the advertise/match path of the framework over TCP; see
// docs/PROTOCOL.md "Wire format" and the README quickstart. --pool
// names this matchmaker's pool and enables the federation plane
// (docs/FEDERATION.md); each --peer adds a lateral matchmaker to dial.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/matchmakerd.h"

namespace {
std::atomic<bool> gStop{false};
void onSignal(int) { gStop.store(true); }

/// "NAME=HOST:PORT" or "NAME=PORT" (host defaults to loopback).
bool parsePeer(const std::string& spec,
               service::MatchmakerDaemonConfig::FederationPeer* peer) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return false;
  }
  peer->address = "collector." + spec.substr(0, eq);
  std::string endpoint = spec.substr(eq + 1);
  const auto colon = endpoint.rfind(':');
  if (colon != std::string::npos) {
    peer->host = endpoint.substr(0, colon);
    endpoint = endpoint.substr(colon + 1);
  }
  const int port = std::atoi(endpoint.c_str());
  if (port <= 0 || port > 65535) return false;
  peer->port = static_cast<std::uint16_t>(port);
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  service::MatchmakerDaemonConfig config;
  config.port = 9618;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--port") == 0) {
      config.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (std::strcmp(arg, "--interval") == 0) {
      config.negotiationInterval = std::atof(value());
    } else if (std::strcmp(arg, "--ad-lifetime") == 0) {
      config.adLifetime = std::atof(value());
    } else if (std::strcmp(arg, "--pool") == 0) {
      config.federation.pool = value();
      config.address = "collector." + config.federation.pool;
    } else if (std::strcmp(arg, "--peer") == 0) {
      service::MatchmakerDaemonConfig::FederationPeer peer;
      if (!parsePeer(value(), &peer)) {
        std::fprintf(stderr, "matchmakerd: --peer wants NAME=HOST:PORT\n");
        return 2;
      }
      config.federationPeers.push_back(peer);
    } else if (std::strcmp(arg, "--policy") == 0) {
      const std::string name = value();
      const auto kind = matchmaking::policy::parsePolicyName(name);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "matchmakerd: --policy wants greedy, assignment, or"
                     " auction (got \"%s\")\n",
                     name.c_str());
        return 2;
      }
      config.matchmaker.negotiationPolicy = *kind;
    } else if (std::strcmp(arg, "--flock") == 0) {
      const std::string policy = value();
      if (policy == "all") {
        config.federation.flockPolicy = federation::FlockPolicy::kAll;
      } else if (policy == "on-demand") {
        config.federation.flockPolicy = federation::FlockPolicy::kOnDemand;
      } else if (policy.rfind("filtered=", 0) == 0) {
        config.federation.flockPolicy = federation::FlockPolicy::kFiltered;
        config.federation.flockConstraint =
            policy.substr(std::strlen("filtered="));
      } else if (policy == "digest") {
        config.federation.flockPolicy = federation::FlockPolicy::kDigest;
      } else {
        std::fprintf(stderr,
                     "matchmakerd: --flock wants all, on-demand, digest,"
                     " or filtered=EXPR\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: matchmakerd [--port N] [--interval SECONDS]"
                   " [--ad-lifetime SECONDS]"
                   " [--policy greedy|assignment|auction] [--pool NAME]"
                   " [--peer NAME=HOST:PORT]..."
                   " [--flock all|on-demand|digest|filtered=EXPR]\n");
      return 2;
    }
  }

  service::MatchmakerDaemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "matchmakerd: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (config.federation.pool.empty()) {
    std::printf("matchmakerd: listening on port %u, negotiating every %gs\n",
                daemon.port(), config.negotiationInterval);
  } else {
    std::printf(
        "matchmakerd: pool %s listening on port %u, negotiating every %gs,"
        " %zu federation peer(s)\n",
        config.federation.pool.c_str(), daemon.port(),
        config.negotiationInterval, config.federationPeers.size());
  }
  while (!gStop.load()) {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    std::printf(
        "matchmakerd: peers=%zu resources=%zu requests=%zu cycles=%zu"
        " matches=%zu",
        daemon.peersConnected(), daemon.storedResources(),
        daemon.storedRequests(), daemon.negotiationCycles(),
        daemon.matchesIssued());
    if (!config.federation.pool.empty()) {
      std::printf(" fedLinks=%zu", daemon.federationLinksUp());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  daemon.stop();
  return 0;
}
