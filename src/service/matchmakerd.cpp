#include "service/matchmakerd.h"

#include <chrono>
#include <unordered_map>

#include "wire/codec.h"

namespace service {

namespace {
constexpr int kPollMs = 20;
}  // namespace

// Routes PoolManager sends: local endpoints (the manager itself) deliver
// synchronously; remote addresses resolve to the connection whose Hello
// registered them, UDP-style — an unregistered destination is silently
// dropped, exactly like the simulated Network's unknown-destination path.
class MatchmakerDaemon::ServerTransport : public htcsim::Transport {
 public:
  void attach(std::string addr, htcsim::Endpoint* endpoint) override {
    local_[std::move(addr)] = endpoint;
  }
  void detach(std::string_view addr) override {
    local_.erase(std::string(addr));
  }
  bool send(std::string from, std::string to,
            htcsim::Message payload) override {
    if (auto it = local_.find(to); it != local_.end()) {
      it->second->deliver({std::move(from), std::move(to),
                           std::move(payload)});
      return true;
    }
    auto it = remote_.find(to);
    if (it == remote_.end() || it->second->closed()) return false;
    it->second->queue(wire::encodeEnvelope(
        {std::move(from), std::move(to), std::move(payload)}));
    return true;
  }

  void registerPeer(const std::string& addr, Connection* conn) {
    remote_[addr] = conn;
  }
  void unregisterPeer(const Connection* conn) {
    for (auto it = remote_.begin(); it != remote_.end();) {
      if (it->second == conn) {
        it = remote_.erase(it);
      } else {
        ++it;
      }
    }
  }
  htcsim::Endpoint* localEndpoint(const std::string& addr) const {
    auto it = local_.find(addr);
    return it == local_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::string, htcsim::Endpoint*> local_;
  std::unordered_map<std::string, Connection*> remote_;
};

MatchmakerDaemon::MatchmakerDaemon(Config config)
    : config_(std::move(config)) {}

MatchmakerDaemon::~MatchmakerDaemon() { stop(); }

bool MatchmakerDaemon::start(std::string* error) {
  if (running_.load()) return true;
  reactor_ = std::make_unique<Reactor>();
  if (!reactor_->listen(config_.host, config_.port, error)) {
    reactor_.reset();
    return false;
  }
  port_ = reactor_->port();

  transport_ = std::make_unique<ServerTransport>();
  htcsim::PoolManagerConfig pmConfig;
  pmConfig.address = address_;
  pmConfig.negotiationInterval = config_.negotiationInterval;
  pmConfig.adLifetime = config_.adLifetime;
  pmConfig.matchmaker = config_.matchmaker;
  pmConfig.accountant = config_.accountant;
  pool_ = std::make_unique<htcsim::PoolManager>(sim_, *transport_, metrics_,
                                                std::move(pmConfig));

  reactor_->onFrame = [this](Connection& conn, const wire::Frame& frame) {
    handleFrame(conn, frame);
  };
  reactor_->onClose = [this](Connection& conn) {
    // A poisoned decoder means the peer sent bytes that were never a
    // valid frame; count it with the schema-level rejections.
    if (conn.decoder().poisoned()) ++rejected_;
    transport_->unregisterPeer(&conn);
    if (!conn.peerAddress.empty()) --peers_;
  };

  stopFlag_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void MatchmakerDaemon::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  pool_.reset();
  reactor_.reset();
  transport_.reset();
}

void MatchmakerDaemon::run() {
  pool_->start();
  const auto epoch = std::chrono::steady_clock::now();
  while (!stopFlag_.load()) {
    reactor_->pollOnce(kPollMs);
    // Slave the discrete-event clock to wall time: the PoolManager's
    // negotiation timer and ad expiry run exactly as in simulation,
    // just against real seconds.
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - epoch;
    sim_.runUntil(elapsed.count());
    refreshMirrors();
  }
  pool_->stop();
}

void MatchmakerDaemon::handleFrame(Connection& conn,
                                   const wire::Frame& frame) {
  ++frames_;
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kHello)) {
    std::string error;
    const auto hello = wire::decodeHello(frame, &error);
    if (!hello || hello->minVersion > wire::kProtocolVersion ||
        hello->maxVersion < wire::kProtocolVersion) {
      ++rejected_;
      conn.close();
      return;
    }
    if (conn.peerAddress.empty() && !hello->address.empty()) {
      conn.peerAddress = hello->address;
      transport_->registerPeer(hello->address, &conn);
      ++peers_;
      // Answer with our own hello so the peer can verify the version
      // and learn the collector's logical address.
      conn.queue(wire::encodeHello(
          {wire::kProtocolVersion, wire::kProtocolVersion, address_}));
    }
    return;
  }
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kClaimRequest) ||
      frame.type == static_cast<std::uint8_t>(wire::MsgType::kClaimResponse)) {
    // Claiming is CA→RA only; the matchmaker refuses to relay it.
    ++claimFrames_;
    ++rejected_;
    return;
  }
  std::string error;
  auto env = wire::decodeEnvelope(frame, &error);
  if (!env) {
    ++rejected_;
    conn.close();  // schema disagreement; nothing downstream is safe
    return;
  }
  htcsim::Endpoint* target = transport_->localEndpoint(env->to);
  if (target == nullptr) {
    ++rejected_;
    return;
  }
  target->deliver(*env);
}

void MatchmakerDaemon::refreshMirrors() {
  storedRequests_.store(pool_->storedRequests());
  storedResources_.store(pool_->storedResources());
  cycles_.store(metrics_.negotiationCycles);
  matches_.store(metrics_.matchesIssued);
  std::lock_guard<std::mutex> lock(usageMu_);
  usageMirror_ = metrics_.usageByUser;
}

std::map<std::string, double> MatchmakerDaemon::usageByUser() const {
  std::lock_guard<std::mutex> lock(usageMu_);
  return usageMirror_;
}

}  // namespace service
