#include "service/matchmakerd.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <variant>

#include "classad/query.h"
#include "matchmaker/engine/engine.h"
#include "sim/metrics_bridge.h"
#include "wire/codec.h"

namespace service {

namespace {
constexpr int kPollMs = 20;
}  // namespace

// Routes PoolManager sends: local endpoints (the manager itself) deliver
// synchronously; remote addresses resolve to the connection whose Hello
// registered them, UDP-style — an unregistered destination is silently
// dropped, exactly like the simulated Network's unknown-destination path.
class MatchmakerDaemon::ServerTransport : public htcsim::Transport {
 public:
  void attach(std::string addr, htcsim::Endpoint* endpoint) override {
    local_[std::move(addr)] = endpoint;
  }
  void detach(std::string_view addr) override {
    local_.erase(std::string(addr));
  }
  bool send(std::string from, std::string to,
            htcsim::Message payload) override {
    if (auto it = local_.find(to); it != local_.end()) {
      it->second->deliver({std::move(from), std::move(to),
                           std::move(payload)});
      return true;
    }
    auto it = remote_.find(to);
    if (it == remote_.end() || it->second->closed()) return false;
    it->second->queue(wire::encodeEnvelope(
        {std::move(from), std::move(to), std::move(payload)}));
    return true;
  }

  void registerPeer(const std::string& addr, Connection* conn) {
    remote_[addr] = conn;
  }
  void unregisterPeer(const Connection* conn) {
    for (auto it = remote_.begin(); it != remote_.end();) {
      if (it->second == conn) {
        it = remote_.erase(it);
      } else {
        ++it;
      }
    }
  }
  htcsim::Endpoint* localEndpoint(const std::string& addr) const {
    auto it = local_.find(addr);
    return it == local_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::string, htcsim::Endpoint*> local_;
  std::unordered_map<std::string, Connection*> remote_;
};

MatchmakerDaemon::MatchmakerDaemon(Config config)
    : config_(std::move(config)),
      address_(config_.address.empty() ? "collector" : config_.address),
      peerRng_(htcsim::hashName(address_) | 1),
      tracer_(obs::Tracer::Options{config_.traceCapacity, config_.tracing,
                                   address_, 0},
              &registry_),
      daemonAds_(config_.adLifetime) {}

MatchmakerDaemon::~MatchmakerDaemon() { stop(); }

bool MatchmakerDaemon::start(std::string* error) {
  if (running_.load()) return true;
  reactor_ = std::make_unique<Reactor>();
  if (!reactor_->listen(config_.host, config_.port, error)) {
    reactor_.reset();
    return false;
  }
  port_ = reactor_->port();
  reactor_->instrument(&registry_);

  transport_ = std::make_unique<ServerTransport>();
  htcsim::PoolManagerConfig pmConfig;
  pmConfig.address = address_;
  pmConfig.negotiationInterval = config_.negotiationInterval;
  pmConfig.adLifetime = config_.adLifetime;
  pmConfig.matchmaker = config_.matchmaker;
  pmConfig.accountant = config_.accountant;
  pmConfig.registry = &registry_;
  pmConfig.tracer = &tracer_;
  pmConfig.federation = config_.federation;
  // Every dialled peer is a federation neighbor; keep any addresses the
  // caller listed directly (inbound-only links).
  peerLinks_.clear();
  for (const Config::FederationPeer& peer : config_.federationPeers) {
    if (peer.address.empty()) continue;
    peerLinks_.push_back(PeerLink{peer, nullptr, 0.0, 0});
    auto& known = pmConfig.federation.peers;
    if (std::find(known.begin(), known.end(), peer.address) == known.end()) {
      known.push_back(peer.address);
    }
  }
  pool_ = std::make_unique<htcsim::PoolManager>(sim_, *transport_, metrics_,
                                                std::move(pmConfig));

  reactor_->onFrame = [this](Connection& conn, const wire::Frame& frame) {
    handleFrame(conn, frame);
  };
  reactor_->onClose = [this](Connection& conn) {
    // A poisoned decoder means the peer sent bytes that were never a
    // valid frame; count it with the schema-level rejections.
    if (conn.decoder().poisoned()) ++rejected_;
    transport_->unregisterPeer(&conn);
    if (!conn.peerAddress.empty()) --peers_;
    for (PeerLink& link : peerLinks_) {
      if (link.conn == &conn) {
        // Redial with backoff from the run loop; the federation plane's
        // soft state (digests, flocked ads) repopulates by itself.
        link.conn = nullptr;
        link.nextAttemptAt =
            sim_.now() + lease::backoffDelay(config_.peerReconnectBackoff,
                                             link.attempts++,
                                             peerRng_.uniform());
        federationLinksUp_.store(countLiveLinks());
      }
    }
  };

  stopFlag_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void MatchmakerDaemon::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  pool_.reset();
  reactor_.reset();
  transport_.reset();
  peerLinks_.clear();
  federationLinksUp_.store(0);
}

void MatchmakerDaemon::hardKill() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  killed_.store(true);
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  // Destroying the reactor closes every socket abruptly — peers see a
  // dropped connection, not a farewell. All soft state dies with us.
  reactor_.reset();
  pool_.reset();
  transport_.reset();
  peerLinks_.clear();
  federationLinksUp_.store(0);
}

void MatchmakerDaemon::run() {
  pool_->start();
  // Agent daemons address the matchmaker by the bare logical name
  // "collector"; a federated daemon attaches its pool under a
  // pool-qualified address, so alias the bare name to the same endpoint.
  if (address_ != "collector") transport_->attach("collector", pool_.get());
  const auto epoch = std::chrono::steady_clock::now();
  maybeDialPeers(0.0);
  while (!stopFlag_.load()) {
    reactor_->pollOnce(kPollMs);
    // Slave the discrete-event clock to wall time: the PoolManager's
    // negotiation timer and ad expiry run exactly as in simulation,
    // just against real seconds.
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - epoch;
    sim_.runUntil(elapsed.count());
    maybeDialPeers(elapsed.count());
    refreshMirrors();
  }
  // hardKill() models process death: the PoolManager never gets to say
  // goodbye (its federation plane's PeerHellos simply stop).
  if (!killed_.load()) pool_->stop();
}

std::size_t MatchmakerDaemon::countLiveLinks() const {
  std::size_t n = 0;
  for (const PeerLink& link : peerLinks_) {
    if (link.conn != nullptr) ++n;
  }
  return n;
}

void MatchmakerDaemon::maybeDialPeers(double now) {
  for (PeerLink& link : peerLinks_) {
    if (link.conn != nullptr || now < link.nextAttemptAt) continue;
    link.nextAttemptAt =
        now + lease::backoffDelay(config_.peerReconnectBackoff,
                                  link.attempts++, peerRng_.uniform());
    link.conn = reactor_->dial(link.endpoint.host, link.endpoint.port,
                               nullptr);
    if (link.conn == nullptr) continue;
    // Route envelopes for the peer's logical address over this link and
    // introduce ourselves so the remote daemon registers the reverse
    // direction on ITS end of the same connection.
    link.conn->peerAddress = link.endpoint.address;
    transport_->registerPeer(link.endpoint.address, link.conn);
    ++peers_;
    link.conn->queue(wire::encodeHello(
        {wire::kProtocolVersion, wire::kProtocolVersion, address_}));
    federationLinksUp_.store(countLiveLinks());
    // The plane (re)announces itself over the fresh link; digests follow
    // on the timer.
    pool_->pushDigestNow();
  }
}

void MatchmakerDaemon::handleFrame(Connection& conn,
                                   const wire::Frame& frame) {
  ++frames_;
  if (conn.peerFrameCounter != nullptr) conn.peerFrameCounter->inc();
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kHello)) {
    std::string error;
    const auto hello = wire::decodeHello(frame, &error);
    if (!hello || hello->minVersion > wire::kProtocolVersion ||
        hello->maxVersion < wire::kProtocolVersion) {
      ++rejected_;
      conn.close();
      return;
    }
    if (conn.peerAddress.empty() && !hello->address.empty()) {
      conn.peerAddress = hello->address;
      transport_->registerPeer(hello->address, &conn);
      conn.peerFrameCounter =
          registry_.counter("PeerFrames_" + hello->address);
      ++peers_;
      // Answer with our own hello so the peer can verify the version
      // and learn the collector's logical address.
      conn.queue(wire::encodeHello(
          {wire::kProtocolVersion, wire::kProtocolVersion, address_}));
    }
    // A hello on a dialled federation link confirms the connect landed:
    // reset its backoff so the next outage redials promptly.
    for (PeerLink& link : peerLinks_) {
      if (link.conn == &conn) link.attempts = 0;
    }
    return;
  }
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kQuery)) {
    handleQuery(conn, frame);
    return;
  }
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kTraceQuery)) {
    handleTraceQuery(conn, frame);
    return;
  }
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kClaimRequest) ||
      frame.type == static_cast<std::uint8_t>(wire::MsgType::kClaimResponse) ||
      frame.type == static_cast<std::uint8_t>(wire::MsgType::kHeartbeat) ||
      frame.type == static_cast<std::uint8_t>(wire::MsgType::kLeaseExpired)) {
    // Claiming — and the lease lifecycle that rides on it — is CA→RA
    // only; the matchmaker refuses to relay it and holds no lease state.
    ++claimFrames_;
    ++rejected_;
    return;
  }
  std::string error;
  auto env = wire::decodeEnvelope(frame, &error);
  if (!env) {
    ++rejected_;
    conn.close();  // schema disagreement; nothing downstream is safe
    return;
  }
  // DaemonStatus self-advertisements bypass the PoolManager (which
  // validates machine/job ads) and land in their own soft-state store,
  // same expiry discipline as everything else.
  if (auto* adv = std::get_if<matchmaking::Advertisement>(&env->payload);
      adv != nullptr && adv->ad != nullptr) {
    if (adv->ad->getString("MyType").value_or("") == "DaemonStatus") {
      daemonAds_.update("daemon:" + adv->key, adv->ad, sim_.now(),
                        adv->sequence);
      return;
    }
    // Machine/job ads are linted at the advertising boundary; findings
    // are attached to the ad itself so Query clients can see them.
    lintIncomingAd(*adv);
  }
  htcsim::Endpoint* target = transport_->localEndpoint(env->to);
  if (target == nullptr) {
    ++rejected_;
    return;
  }
  target->deliver(*env);
}

void MatchmakerDaemon::handleQuery(Connection& conn,
                                   const wire::Frame& frame) {
  std::string error;
  const auto query = wire::decodePoolQuery(frame, &error);
  if (!query) {
    // Binary-malformed payload: schema disagreement, same treatment as
    // a bad envelope.
    ++rejected_;
    conn.close();
    return;
  }
  ++queries_;
  registry_.counter("QueriesServed")->inc();

  wire::PoolQueryResponse resp;
  classad::Query evaluator = classad::Query::all();
  if (!query->constraint.empty()) {
    try {
      evaluator = classad::Query::fromConstraint(query->constraint);
    } catch (const classad::ParseError& e) {
      // A bad constraint is the caller's mistake, not a protocol
      // violation: report it and keep the connection healthy.
      registry_.counter("QueryErrors")->inc();
      resp.ok = false;
      resp.error = std::string("constraint parse error: ") + e.what();
      conn.queue(wire::encodePoolQueryResponse(resp));
      return;
    }
  }

  std::vector<classad::ClassAdPtr> pool;
  const auto gather = [&pool](std::vector<classad::ClassAdPtr> ads) {
    for (auto& ad : ads) pool.push_back(std::move(ad));
  };
  const bool all = query->scope.empty();
  if (all || query->scope == "machines") gather(pool_->snapshotResources());
  if (all || query->scope == "jobs") gather(pool_->snapshotRequests());
  if (all || query->scope == "daemons") {
    gather(daemonAds_.snapshot());
    pool.push_back(buildSelfAd());
  }
  if (all || query->scope == "peers") {
    if (const federation::FederationPlane* fed = pool_->federation()) {
      gather(fed->peerStatusAds(sim_.now()));
    }
  }

  resp.ads =
      matchmaking::engine::filterAds(pool, evaluator, query->projection);

  try {
    conn.queue(wire::encodePoolQueryResponse(resp));
  } catch (const std::length_error&) {
    registry_.counter("QueryErrors")->inc();
    wire::PoolQueryResponse tooBig;
    tooBig.ok = false;
    tooBig.error = "result too large for one frame; narrow the constraint";
    conn.queue(wire::encodePoolQueryResponse(tooBig));
  }
}

// Serves wire tag 18 over the daemon's span ring. Deliberately MORE
// lenient than the rest of the protocol: even a binary-malformed query
// is answered ok=false instead of closing the connection — the tracing
// plane must never take down a live matchmaking link.
void MatchmakerDaemon::handleTraceQuery(Connection& conn,
                                        const wire::Frame& frame) {
  ++queries_;
  registry_.counter("TraceQueriesServed")->inc();
  wire::TraceQueryResponse resp;
  resp.component = address_;
  std::string error;
  const auto query = wire::decodeTraceQuery(frame, &error);
  if (!query) {
    registry_.counter("TraceQueryErrors")->inc();
    resp.ok = false;
    resp.error = "malformed trace query: " + error;
    conn.queue(wire::encodeTraceQueryResponse(resp));
    return;
  }
  if (query->traceId.empty()) {
    resp.spans = tracer_.snapshot(query->limit);
  } else if (const auto id = obs::traceIdFromHex(query->traceId)) {
    resp.spans = tracer_.spansFor(*id);
  } else {
    registry_.counter("TraceQueryErrors")->inc();
    resp.ok = false;
    resp.error = "bad trace id (want 32 hex chars): " + query->traceId;
  }
  try {
    conn.queue(wire::encodeTraceQueryResponse(resp));
  } catch (const std::length_error&) {
    registry_.counter("TraceQueryErrors")->inc();
    wire::TraceQueryResponse tooBig;
    tooBig.ok = false;
    tooBig.component = address_;
    tooBig.error = "trace result too large for one frame; pass a trace id";
    conn.queue(wire::encodeTraceQueryResponse(tooBig));
  }
}

// Static-analysis gate at the advertising boundary. Every machine/job ad
// is linted against a schema folded from the OPPOSITE side of the pool
// (job ads reference machine attributes and vice versa); findings never
// reject the ad — the advertising protocol already decides admission —
// but they are counted and attached to the ad as LintWarnings /
// LintErrors / LintFindings, so `mm_status -query` surfaces them.
void MatchmakerDaemon::lintIncomingAd(matchmaking::Advertisement& adv) {
  namespace ca = classad::analysis;
  registry_.counter("AdsLinted")->inc();

  const std::string type = adv.ad->getString("Type").value_or("");
  SchemaCache* cache = nullptr;
  std::size_t stored = 0;
  if (type == "Job") {
    cache = &machineSchema_;
    stored = pool_->storedResources();
  } else if (type == "Machine") {
    cache = &jobSchema_;
    stored = pool_->storedRequests();
  }
  if (cache != nullptr && cache->builtFrom != stored) {
    cache->schema = ca::Schema::fromAds(
        type == "Job" ? pool_->snapshotResources() : pool_->snapshotRequests());
    cache->builtFrom = stored;
  }

  ca::LintOptions opts;
  if (cache != nullptr && !cache->schema.empty()) opts.otherSchema = &cache->schema;
  const ca::LintReport report = ca::lintAd(*adv.ad, opts);
  if (report.empty()) return;
  registry_.counter("LintWarnings")->inc(report.warnings());
  registry_.counter("LintErrors")->inc(report.errors());

  classad::ClassAd annotated = *adv.ad;
  annotated.set("LintWarnings", static_cast<std::int64_t>(report.warnings()));
  annotated.set("LintErrors", static_cast<std::int64_t>(report.errors()));
  std::vector<std::string> lines;
  lines.reserve(report.findings.size());
  for (const ca::LintFinding& f : report.findings) lines.push_back(f.toString());
  annotated.set("LintFindings", lines);
  adv.ad = classad::makeShared(std::move(annotated));
}

classad::ClassAdPtr MatchmakerDaemon::buildSelfAd() {
  classad::ClassAd ad;
  ad.set("MyType", "DaemonStatus");
  ad.set("Type", "DaemonStatus");
  ad.set("DaemonType", "Matchmaker");
  ad.set("Name", address_);
  ad.set("Address", address_);
  ad.set("NegotiationPolicy",
         std::string(matchmaking::policy::policyName(
             config_.matchmaker.negotiationPolicy)));
  if (!config_.federation.pool.empty()) {
    ad.set("Pool", config_.federation.pool);
    ad.set("FederationLinksUp",
           static_cast<std::int64_t>(federationLinksUp_.load()));
  }
  registry_.renderInto(ad);
  return classad::makeShared(std::move(ad));
}

void MatchmakerDaemon::refreshMirrors() {
  daemonAds_.expire(sim_.now());
  storedRequests_.store(pool_->storedRequests());
  storedResources_.store(pool_->storedResources());
  cycles_.store(metrics_.negotiationCycles);
  matches_.store(metrics_.matchesIssued);
  // Logical state mirrored into the registry so the DaemonStatus self-ad
  // and `mm_status -stats` see it; hot-path instruments (frame counters,
  // phase histograms) update continuously and need no mirroring.
  registry_.gauge("StoredRequests")
      ->set(static_cast<double>(pool_->storedRequests()));
  registry_.gauge("StoredResources")
      ->set(static_cast<double>(pool_->storedResources()));
  registry_.gauge("PeersConnected")->set(static_cast<double>(peers_.load()));
  registry_.gauge("FramesReceived")->set(static_cast<double>(frames_.load()));
  registry_.gauge("ClaimFramesSeen")
      ->set(static_cast<double>(claimFrames_.load()));
  registry_.gauge("RejectedFrames")
      ->set(static_cast<double>(rejected_.load()));
  registry_.gauge("DaemonAdsStored")
      ->set(static_cast<double>(daemonAds_.size()));
  htcsim::publishMetrics(metrics_, registry_);
  std::lock_guard<std::mutex> lock(usageMu_);
  usageMirror_ = metrics_.usageByUser;
}

std::map<std::string, double> MatchmakerDaemon::usageByUser() const {
  std::lock_guard<std::mutex> lock(usageMu_);
  return usageMirror_;
}

}  // namespace service
