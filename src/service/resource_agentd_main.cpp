// resource_agentd - live resource-owner agent endpoint.
//
//   resource_agentd --name NAME [--port N] [--matchmaker-port N]
//                   [--memory MB] [--service SECONDS] [--lease SECONDS]
//                   [--pool NAME]
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "service/resource_agentd.h"

namespace {
std::atomic<bool> gStop{false};
void onSignal(int) { gStop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  service::ResourceAgentDaemonConfig config;
  config.matchmakerPort = 9618;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--name") == 0) {
      config.name = value();
    } else if (std::strcmp(arg, "--port") == 0) {
      config.listenPort = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (std::strcmp(arg, "--matchmaker-port") == 0) {
      config.matchmakerPort = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (std::strcmp(arg, "--memory") == 0) {
      config.memoryMB = std::atoll(value());
    } else if (std::strcmp(arg, "--service") == 0) {
      config.serviceSeconds = std::atof(value());
    } else if (std::strcmp(arg, "--lease") == 0) {
      config.leaseSeconds = std::atof(value());
    } else if (std::strcmp(arg, "--pool") == 0) {
      config.pool = value();
    } else {
      std::fprintf(stderr,
                   "usage: resource_agentd --name NAME [--port N]"
                   " [--matchmaker-port N] [--memory MB]"
                   " [--service SECONDS] [--lease SECONDS]"
                   " [--pool NAME]\n");
      return 2;
    }
  }

  service::ResourceAgentDaemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "resource_agentd: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("resource_agentd: %s claims at %s\n", config.name.c_str(),
              daemon.contactAddress().c_str());
  while (!gStop.load()) {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    std::printf("resource_agentd: %s state=%s accepted=%zu rejected=%zu\n",
                config.name.c_str(),
                daemon.claimed() ? "Claimed" : "Unclaimed",
                daemon.claimsAccepted(), daemon.claimsRejected());
    std::fflush(stdout);
  }
  daemon.stop();
  return 0;
}
