// resource_agentd.h - Live resource-owner agent endpoint (the paper's RA
// as a TCP daemon).
//
// Thin by design: the full opportunistic machine model stays in the
// simulator; this adapter owns exactly the RA's protocol surface.
// It advertises a machine classad (with its claim-listener's
// "tcp://host:port" as ContactAddress and a freshly minted
// AuthorizationTicket) to the matchmaker over an outbound connection,
// and accepts claims on its own listening socket so the claiming
// protocol runs DIRECTLY CA→RA — the matchmaker is not on the path.
// Claim verification reuses matchmaking::evaluateClaim against the ad
// as of NOW, preserving the weak-consistency design.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "classad/classad.h"
#include "lease/backoff.h"
#include "lease/lease_table.h"
#include "matchmaker/claiming.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/reactor.h"
#include "sim/rng.h"

namespace service {

struct ResourceAgentDaemonConfig {
  std::string name = "machine";
  std::string arch = "INTEL";
  std::string opSys = "LINUX";
  std::int64_t memoryMB = 64;
  std::int64_t diskKB = 30000;
  std::int64_t mips = 100;
  std::int64_t kflops = 25000;
  /// Owner policy / preference, classad expression texts.
  std::string constraint = "other.Type == \"Job\"";
  std::string rank = "0";

  std::string host = "127.0.0.1";
  std::uint16_t listenPort = 0;  ///< claim endpoint; 0 = ephemeral
  std::string matchmakerHost = "127.0.0.1";
  std::uint16_t matchmakerPort = 0;

  double adIntervalSeconds = 5.0;  ///< wall-clock advertisement period
  /// Wall-clock seconds a claim runs before the RA reports completion
  /// (a stand-in service time; 0 = serve until the customer releases).
  double serviceSeconds = 0.5;
  std::uint64_t ticketSeed = 0;  ///< 0 = derived from the name
  /// Origin pool name; tickets are salted with it
  /// (matchmaking::namespaceTicket) so federated pools never mint
  /// colliding ticket streams. "" = single-pool, minting unchanged.
  std::string pool;
  matchmaking::ClaimPolicy claimPolicy;
  /// Lease granted with each accepted claim: the customer must
  /// heartbeat within this window or the claim is torn down and the
  /// machine re-advertised. 0 disables leasing (a silently dead
  /// customer then wedges the machine until its connection drops).
  double leaseSeconds = 0.0;
  /// Backoff between matchmaker reconnect attempts after the outbound
  /// connection drops.
  lease::BackoffConfig reconnectBackoff;
  /// Fault-injection hook installed on every connection at start()
  /// (see Connection::sendTap): return false to drop the frame on the
  /// floor. The tap runs on the daemon's loop thread.
  std::function<bool(const Connection&, std::string_view)> sendTap;
  /// Causal tracing plane (docs/OBSERVABILITY.md): claim.grant/reject
  /// and lease.grant/renew/expire spans, stitched to the origin job's
  /// trace by the context the ClaimRequest carried. The claim listener
  /// also answers TraceQuery (tag 18) so mm_trace can pull these spans.
  bool tracing = true;
  std::size_t traceCapacity = 1024;
};

class ResourceAgentDaemon {
 public:
  using Config = ResourceAgentDaemonConfig;

  explicit ResourceAgentDaemon(Config config = {});
  ~ResourceAgentDaemon();

  bool start(std::string* error = nullptr);
  void stop();

  /// Freezes the daemon without closing its sockets: the loop thread
  /// exits but every connection stays open, so peers see pure silence
  /// (no FIN/RST) — a powered-off machine or a partitioned rack, the
  /// failure mode only lease expiry can recover from. The object stays
  /// valid; stop() or destruction still cleans up.
  void hardKill();

  std::uint16_t port() const noexcept { return port_; }
  /// The dialable contact address advertised in the machine ad.
  std::string contactAddress() const;

  bool claimed() const noexcept { return claimed_.load(); }
  std::size_t claimsAccepted() const noexcept { return accepted_.load(); }
  std::size_t claimsRejected() const noexcept { return rejectedClaims_.load(); }
  std::size_t completionsSent() const noexcept { return completions_.load(); }
  std::size_t adsSent() const noexcept { return adsSent_.load(); }
  std::size_t leaseExpiries() const noexcept { return leaseExpiries_.load(); }
  std::size_t matchmakerReconnects() const noexcept {
    return reconnects_.load();
  }

  /// The machine ad as it would be advertised now (tests/tools).
  classad::ClassAd buildAd() const;

  /// The daemon's metrics registry (see src/obs).
  obs::Registry& registry() noexcept { return registry_; }

  /// The daemon's span ring (claim/lease lifecycle spans; also served
  /// over the wire via TraceQuery on the claim listener).
  obs::Tracer& tracer() noexcept { return tracer_; }

 private:
  struct ActiveClaim {
    matchmaking::Ticket ticket = matchmaking::kNoTicket;
    Connection* conn = nullptr;
    std::string user;
    std::uint64_t jobId = 0;
    std::chrono::steady_clock::time_point startedAt;
    /// From the ClaimRequest; parents every lease span and is echoed on
    /// the release so the claim's whole lifetime shares one trace.
    obs::TraceContext trace;
  };

  void run();
  void handleFrame(Connection& conn, const wire::Frame& frame);
  void handleClaimRequest(Connection& conn,
                          const matchmaking::ClaimRequest& req);
  void handleHeartbeat(Connection& conn, const matchmaking::Heartbeat& hb);
  void handleTraceQuery(Connection& conn, const wire::Frame& frame);
  void advertise();
  classad::ClassAd buildSelfAd();
  void finishClaim(bool completed, const std::string& reason);
  void mintTicket();
  void maybeReconnect();
  /// Wall-clock seconds since start() — the lease table's clock.
  double nowSeconds() const;

  Config config_;
  std::uint16_t port_ = 0;
  obs::Registry registry_;  ///< must outlive reactor_
  obs::Tracer tracer_;
  htcsim::Rng rng_;
  mutable std::mutex stateMu_;  ///< guards ticket_/claim_ vs buildAd()

  std::unique_ptr<Reactor> reactor_;
  Connection* mmConn_ = nullptr;
  matchmaking::Ticket ticket_ = matchmaking::kNoTicket;
  std::optional<ActiveClaim> claim_;
  /// At most one entry (the active claim's lease), but the table owns
  /// all grant/renew/expire bookkeeping and counters. Guarded by
  /// stateMu_; its clock is nowSeconds().
  lease::LeaseTable leases_;
  std::uint64_t adSequence_ = 0;
  std::chrono::steady_clock::time_point lastAd_{};
  std::chrono::steady_clock::time_point start_{};
  double nextReconnectAt_ = 0.0;
  std::uint32_t reconnectAttempts_ = 0;

  std::thread thread_;
  std::atomic<bool> stopFlag_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> frozen_{false};

  std::atomic<bool> claimed_{false};
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> rejectedClaims_{0};
  std::atomic<std::size_t> completions_{0};
  std::atomic<std::size_t> adsSent_{0};
  std::atomic<std::size_t> leaseExpiries_{0};
  std::atomic<std::size_t> reconnects_{0};
};

}  // namespace service
