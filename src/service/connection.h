// connection.h - One framed, nonblocking TCP connection.
//
// Pairs a socket with a wire::FrameDecoder for inbound bytes and a
// buffered outbound queue, so callers deal only in whole frames.
// Close-worthy conditions (EOF, socket error, poisoned framing) mark
// the connection closed; the owning Reactor reaps it.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "wire/frame.h"

namespace obs {
class Counter;
}  // namespace obs

namespace service {

class Connection {
 public:
  /// Takes ownership of `fd`. `connecting` marks an in-progress
  /// nonblocking connect (completed on first writability).
  Connection(int fd, bool connecting);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const noexcept { return fd_; }
  bool closed() const noexcept { return closed_; }
  bool connecting() const noexcept { return connecting_; }
  /// True while there are queued bytes to flush (or the connect is
  /// still pending, which also polls via POLLOUT).
  bool wantsWrite() const noexcept {
    return !closed_ && (connecting_ || outPos_ < out_.size());
  }

  /// Queues `bytes` (a rendered frame) for transmission.
  void queue(std::string_view bytes);

  /// Drains readable bytes into the frame decoder. Returns false on
  /// EOF or a socket error (connection should be reaped).
  bool onReadable();

  /// Completes a pending connect and/or flushes queued bytes. Returns
  /// false on error.
  bool onWritable();

  wire::FrameDecoder& decoder() noexcept { return decoder_; }

  /// Attaches outbound observability counters (either may be null):
  /// whole frames queued and bytes queued. Inbound counting lives on the
  /// decoder (FrameDecoder::instrument).
  void instrument(obs::Counter* framesOut, obs::Counter* bytesOut) noexcept {
    framesOut_ = framesOut;
    bytesOut_ = bytesOut;
  }

  void close() noexcept;

  /// The transport address the peer registered in its Hello (server
  /// side), or the address this connection was dialed for (client
  /// side). Empty until known.
  std::string peerAddress;

  /// Optional per-peer inbound frame counter, installed by the owning
  /// daemon once the peer identifies itself (not owned).
  obs::Counter* peerFrameCounter = nullptr;

  /// Fault-injection tap: when set, queue() offers every frame to it
  /// first; returning false drops the frame silently — the live
  /// counterpart of the simulator's partition/loss rules (frames vanish
  /// on the wire, the socket stays healthy). Installed by
  /// Reactor::setSendTap on every current and future connection.
  std::function<bool(const Connection&, std::string_view)> sendTap;

 private:
  int fd_;
  bool connecting_;
  bool closed_ = false;
  std::string out_;
  std::size_t outPos_ = 0;
  wire::FrameDecoder decoder_;
  obs::Counter* framesOut_ = nullptr;
  obs::Counter* bytesOut_ = nullptr;
};

}  // namespace service
