// query_client.h - Blocking client side of the Query protocol.
//
// One call = one short-lived connection: dial the matchmaker, say
// Hello, send a PoolQuery, wait for the PoolQueryResponse. This is the
// library entry point behind the mm_status tool and the integration
// tests; it owns a private Reactor so it can be used from any thread
// without touching a daemon's event loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "wire/codec.h"

namespace service {

struct PoolQueryOptions {
  /// Classad constraint expression evaluated against each stored ad
  /// (empty = match everything).
  std::string constraint;
  /// Attribute names to project each result down to (empty = full ads).
  std::vector<std::string> projection;
  /// "" (everything), "machines", "jobs", or "daemons".
  std::string scope;
  double timeoutSeconds = 10.0;
};

struct PoolQueryResult {
  bool ok = false;
  std::string error;  ///< transport or constraint failure when !ok
  std::vector<classad::ClassAdPtr> ads;
};

/// Runs one query against the matchmaker at host:port. Blocks up to
/// opts.timeoutSeconds; never throws.
PoolQueryResult queryPool(const std::string& host, std::uint16_t port,
                          const PoolQueryOptions& opts = {});

}  // namespace service
