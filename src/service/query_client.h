// query_client.h - Blocking client side of the Query protocol.
//
// One call = one short-lived connection: dial the matchmaker, say
// Hello, send a PoolQuery, wait for the PoolQueryResponse. This is the
// library entry point behind the mm_status tool and the integration
// tests; it owns a private Reactor so it can be used from any thread
// without touching a daemon's event loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "obs/trace.h"
#include "wire/codec.h"

namespace service {

struct PoolQueryOptions {
  /// Classad constraint expression evaluated against each stored ad
  /// (empty = match everything).
  std::string constraint;
  /// Attribute names to project each result down to (empty = full ads).
  std::vector<std::string> projection;
  /// "" (everything), "machines", "jobs", or "daemons".
  std::string scope;
  double timeoutSeconds = 10.0;
};

struct PoolQueryResult {
  bool ok = false;
  std::string error;  ///< transport or constraint failure when !ok
  std::vector<classad::ClassAdPtr> ads;
};

/// Runs one query against the matchmaker at host:port. Blocks up to
/// opts.timeoutSeconds; never throws.
PoolQueryResult queryPool(const std::string& host, std::uint16_t port,
                          const PoolQueryOptions& opts = {});

struct TraceQueryOptions {
  /// 32-hex-char trace id to pull spans for; empty = recent spans.
  std::string traceId;
  /// Most-recent span cap when traceId is empty (0 = the daemon's whole
  /// ring).
  std::uint32_t limit = 0;
  double timeoutSeconds = 10.0;
};

struct TraceQueryResult {
  bool ok = false;
  std::string error;      ///< transport or query failure when !ok
  std::string component;  ///< the answering daemon's identity
  std::vector<obs::SpanRecord> spans;
};

/// Runs one TraceQuery (wire tag 18) against the daemon at host:port —
/// a matchmakerd or a resource_agentd claim listener; both serve the
/// tracing plane. Blocks up to opts.timeoutSeconds; never throws.
TraceQueryResult queryTraces(const std::string& host, std::uint16_t port,
                             const TraceQueryOptions& opts = {});

}  // namespace service
