// matchmakerd.h - The networked matchmaker: the paper's pool manager
// (collector + negotiator) serving real TCP traffic.
//
// Hosts the UNMODIFIED htcsim::PoolManager — ad stores, negotiation
// cycles, fair-share accounting, gang matching — behind sockets, by
// giving it a Transport whose send() routes to connected peers and a
// Simulator clock slaved to wall time (so its PeriodicTimer drives real
// negotiation cycles). Agents connect, identify themselves with a
// Hello frame, and stream Advertisement/AdInvalidate/UsageReport frames
// in (fire-and-forget, mirroring the UDP-style ad path); the daemon
// pushes MatchNotification frames back over the registered connections.
//
// The daemon is matchmaking-only by construction: claim traffic
// arriving here is counted and dropped, never forwarded — the claiming
// protocol is strictly CA→RA (end-to-end verification, Section 3.2),
// and the loopback integration test asserts claimFramesSeen() == 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "classad/analysis/lint.h"
#include "classad/analysis/schema.h"
#include "federation/plane.h"
#include "lease/backoff.h"
#include "matchmaker/ad_store.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/reactor.h"
#include "sim/pool_manager.h"
#include "sim/rng.h"
#include "sim/transport.h"

namespace service {

struct MatchmakerDaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
  /// Logical transport address of this matchmaker. Must be unique across
  /// a federation (each peer routes envelopes by it); the single-pool
  /// default matches what every agent dials.
  std::string address = "collector";
  /// Wall-clock seconds between negotiation cycles / until ads expire.
  double negotiationInterval = 5.0;
  double adLifetime = 60.0;
  matchmaking::MatchmakerConfig matchmaker;
  matchmaking::Accountant::Config accountant;

  /// A peer matchmaker's TCP location plus its logical address (what its
  /// own `address` is set to). The daemon dials it, registers the
  /// connection under that logical address, and keeps redialling with
  /// backoff whenever it drops — same discipline as an RA's matchmaker
  /// link.
  struct FederationPeer {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string address;
  };
  /// Federation plane knobs (src/federation): pool name, flocking
  /// policy, digest cadence, referral limits. `federation.peers` is
  /// derived from `federationPeers` below; only set it directly for
  /// peers that dial US (inbound-only links need no dialer).
  federation::FederationConfig federation;
  std::vector<FederationPeer> federationPeers;
  lease::BackoffConfig peerReconnectBackoff;
  /// Causal tracing plane (docs/OBSERVABILITY.md). Off, every span site
  /// costs one relaxed atomic load; the TraceQuery endpoint stays up
  /// either way (it just returns nothing).
  bool tracing = true;
  /// Finished-span ring capacity (oldest overwritten; see
  /// TraceSpansDropped).
  std::size_t traceCapacity = 4096;
};

class MatchmakerDaemon {
 public:
  using Config = MatchmakerDaemonConfig;

  explicit MatchmakerDaemon(Config config = {});
  ~MatchmakerDaemon();

  /// Binds the listener and spawns the service thread.
  bool start(std::string* error = nullptr);
  void stop();

  /// Process death: tears the service thread and every socket down
  /// abruptly — no graceful PoolManager stop, no goodbye to peers. What
  /// `kill -9` leaves behind. Peers observe a dropped connection and
  /// fall back to reconnect backoff; their flocked copies of this pool's
  /// ads simply age out. Chaos-test entry point.
  void hardKill();

  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }

  /// Logical transport address of the matchmaker endpoint ("collector").
  const std::string& address() const noexcept { return address_; }

  // Thread-safe instrumentation (mirrors refreshed every loop pass).
  std::size_t storedRequests() const noexcept { return storedRequests_.load(); }
  std::size_t storedResources() const noexcept {
    return storedResources_.load();
  }
  std::size_t negotiationCycles() const noexcept { return cycles_.load(); }
  std::size_t matchesIssued() const noexcept { return matches_.load(); }
  std::size_t framesReceived() const noexcept { return frames_.load(); }
  /// Claim-protocol frames that (wrongly) reached the matchmaker.
  std::size_t claimFramesSeen() const noexcept { return claimFrames_.load(); }
  std::size_t rejectedFrames() const noexcept { return rejected_.load(); }
  std::size_t peersConnected() const noexcept { return peers_.load(); }
  std::size_t queriesServed() const noexcept { return queries_.load(); }
  /// Dialled federation peer links currently connected.
  std::size_t federationLinksUp() const noexcept {
    return federationLinksUp_.load();
  }

  /// Usage totals the accountant has recorded, by user.
  std::map<std::string, double> usageByUser() const;

  /// The daemon's metrics registry (thread-safe instruments; see
  /// src/obs). Hot-path counters are written by the service thread, the
  /// negotiation histograms by PoolManager, and logical gauges are
  /// mirrored every loop pass.
  obs::Registry& registry() noexcept { return registry_; }

  /// The daemon's span ring (thread-safe; also served over the wire via
  /// TraceQuery, tag 18).
  obs::Tracer& tracer() noexcept { return tracer_; }

 private:
  class ServerTransport;

  void run();
  void maybeDialPeers(double now);
  std::size_t countLiveLinks() const;
  void handleFrame(Connection& conn, const wire::Frame& frame);
  void handleQuery(Connection& conn, const wire::Frame& frame);
  void handleTraceQuery(Connection& conn, const wire::Frame& frame);
  void lintIncomingAd(matchmaking::Advertisement& adv);
  classad::ClassAdPtr buildSelfAd();
  void refreshMirrors();

  Config config_;
  std::string address_ = "collector";
  std::uint16_t port_ = 0;

  /// Outbound federation links (service thread only). `conn` is owned by
  /// the reactor; this only tracks liveness for the redial loop.
  struct PeerLink {
    Config::FederationPeer endpoint;
    Connection* conn = nullptr;
    double nextAttemptAt = 0.0;
    int attempts = 0;
  };
  std::vector<PeerLink> peerLinks_;
  htcsim::Rng peerRng_{1};

  // Shared instruments; must outlive pool_/reactor_, which hold
  // pointers into it.
  obs::Registry registry_;
  obs::Tracer tracer_;

  // Service-thread-only state (created in start(), driven in run()).
  htcsim::Simulator sim_;
  htcsim::Metrics metrics_;
  std::unique_ptr<ServerTransport> transport_;
  std::unique_ptr<htcsim::PoolManager> pool_;
  std::unique_ptr<Reactor> reactor_;
  /// DaemonStatus self-advertisements from connected agents, keyed
  /// "daemon:<address>". Service-thread only — PoolManager never sees
  /// these (it validates machine/job ads); queries read them directly.
  matchmaking::AdStore daemonAds_;

  /// Pool schemas the static analyzer lints incoming ads against: a job
  /// ad is checked against what the stored machine ads collectively
  /// advertise, and vice versa. Folding the schema is O(pool), so each
  /// side is cached and only re-folded when the stored count changes
  /// (soft state: adds and expirations both move the count). Service
  /// thread only.
  struct SchemaCache {
    classad::analysis::Schema schema;
    std::size_t builtFrom = static_cast<std::size_t>(-1);
  };
  SchemaCache machineSchema_;  ///< folded from stored resource ads
  SchemaCache jobSchema_;      ///< folded from stored request ads

  std::thread thread_;
  std::atomic<bool> stopFlag_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> killed_{false};
  std::atomic<std::size_t> federationLinksUp_{0};

  std::atomic<std::size_t> storedRequests_{0};
  std::atomic<std::size_t> storedResources_{0};
  std::atomic<std::size_t> cycles_{0};
  std::atomic<std::size_t> matches_{0};
  std::atomic<std::size_t> frames_{0};
  std::atomic<std::size_t> claimFrames_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> peers_{0};
  std::atomic<std::size_t> queries_{0};

  mutable std::mutex usageMu_;
  std::map<std::string, double> usageMirror_;
};

}  // namespace service
