#include "service/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace service {

namespace {

constexpr std::string_view kScheme = "tcp://";

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void setNoDelay(int fd) {
  // The protocols are request/response over small frames; Nagle only
  // adds latency here.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool fillAddr(const std::string& host, std::uint16_t port,
              sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

std::string makeTcpAddress(const std::string& host, std::uint16_t port) {
  return std::string(kScheme) + host + ":" + std::to_string(port);
}

bool parseTcpAddress(std::string_view address, std::string* host,
                     std::uint16_t* port) {
  if (address.substr(0, kScheme.size()) != kScheme) return false;
  address.remove_prefix(kScheme.size());
  const std::size_t colon = address.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view portText = address.substr(colon + 1);
  unsigned parsed = 0;
  const auto res = std::from_chars(portText.data(),
                                   portText.data() + portText.size(), parsed);
  if (res.ec != std::errc() || res.ptr != portText.data() + portText.size() ||
      parsed == 0 || parsed > 65535) {
    return false;
  }
  *host = std::string(address.substr(0, colon));
  *port = static_cast<std::uint16_t>(parsed);
  return true;
}

int listenTcp(const std::string& host, std::uint16_t port,
              std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!fillAddr(host, port, &addr)) {
    if (error) *error = "bad listen host " + host;
    closeFd(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    closeFd(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    closeFd(fd);
    return -1;
  }
  if (!setNonBlocking(fd)) {
    if (error) *error = "could not set listener nonblocking";
    closeFd(fd);
    return -1;
  }
  return fd;
}

std::uint16_t localPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connectTcp(const std::string& host, std::uint16_t port,
               std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (!setNonBlocking(fd)) {
    if (error) *error = "could not set socket nonblocking";
    closeFd(fd);
    return -1;
  }
  setNoDelay(fd);
  sockaddr_in addr;
  if (!fillAddr(host, port, &addr)) {
    if (error) *error = "bad connect host " + host;
    closeFd(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    closeFd(fd);
    return -1;
  }
  return fd;
}

int acceptOne(int listenFd) {
  const int fd = ::accept(listenFd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!setNonBlocking(fd)) {
    closeFd(fd);
    return -1;
  }
  setNoDelay(fd);
  return fd;
}

int connectResult(int fd) {
  int soError = 0;
  socklen_t len = sizeof(soError);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0) {
    return errno != 0 ? errno : EIO;
  }
  return soError;
}

void closeFd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace service
