#include "service/customer_agentd.h"

#include <algorithm>

#include "matchmaker/protocol.h"
#include "service/socket.h"
#include "sim/transport.h"
#include "wire/codec.h"

namespace service {

namespace {
constexpr int kPollMs = 20;
}  // namespace

CustomerAgentDaemon::CustomerAgentDaemon(Config config)
    : config_(std::move(config)),
      address_("ca://" + config_.owner),
      rng_(htcsim::hashName(config_.owner)) {
  for (const JobSpec& spec : config_.jobs) {
    JobEntry entry;
    entry.spec = spec;
    jobs_.push_back(std::move(entry));
  }
}

double CustomerAgentDaemon::nowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

CustomerAgentDaemon::~CustomerAgentDaemon() { stop(); }

std::string CustomerAgentDaemon::adKey(const JobSpec& job) const {
  return address_ + "#" + std::to_string(job.id);
}

classad::ClassAd CustomerAgentDaemon::buildRequestAd(const JobSpec& job) const {
  classad::ClassAd ad;
  ad.set("Type", "Job");
  ad.set("Owner", config_.owner);
  ad.set("Cmd", job.cmd);
  ad.set("JobId", static_cast<std::int64_t>(job.id));
  ad.set("Memory", job.memoryMB);
  ad.set("Disk", job.diskKB);
  ad.set("RemainingWork", job.work);
  ad.set("ContactAddress", address_);
  ad.setExpr("Rank", config_.rank);
  ad.setExpr("Constraint", config_.constraint);
  return ad;
}

bool CustomerAgentDaemon::start(std::string* error) {
  if (running_.load()) return true;
  start_ = std::chrono::steady_clock::now();
  reactor_ = std::make_unique<Reactor>();
  reactor_->instrument(&registry_);
  if (config_.sendTap) reactor_->setSendTap(config_.sendTap);
  mmConn_ = reactor_->dial(config_.matchmakerHost, config_.matchmakerPort,
                           error);
  if (mmConn_ == nullptr) {
    reactor_.reset();
    return false;
  }
  mmConn_->peerAddress = "collector";
  mmConn_->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, address_}));

  reactor_->onFrame = [this](Connection& conn, const wire::Frame& frame) {
    handleFrame(conn, frame);
  };
  reactor_->onClose = [this](Connection& conn) {
    if (&conn == mmConn_) {
      mmConn_ = nullptr;
      nextReconnectAt_ =
          nowSeconds() + lease::backoffDelay(config_.reconnectBackoff,
                                             reconnectAttempts_++,
                                             rng_.uniform());
      return;
    }
    std::lock_guard<std::mutex> lock(jobsMu_);
    for (JobEntry& job : jobs_) {
      if (job.claimConn == &conn) {
        job.claimConn = nullptr;
        // The resource vanished mid-claim; requeue unless finished. A
        // leased running claim dying this way is a lease loss — same
        // recovery, faster detection than the miss budget.
        if (job.state == JobState::kRunning && job.monitor) {
          ++leaseExpiries_;
        }
        job.monitor.reset();
        if (job.state != JobState::kDone) job.state = JobState::kIdle;
      }
    }
  };

  stopFlag_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void CustomerAgentDaemon::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    mmConn_ = nullptr;
    reactor_.reset();  // also reaps a hardKill()'d reactor's sockets
    frozen_.store(false);
    return;
  }
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  mmConn_ = nullptr;
  reactor_.reset();
}

void CustomerAgentDaemon::hardKill() {
  if (!running_.exchange(false)) return;
  frozen_.store(true);
  stopFlag_.store(true);
  if (reactor_) reactor_->wake();
  if (thread_.joinable()) thread_.join();
  // reactor_ (and every open socket) stays alive: peers must observe
  // silence, not a close — only the RA's lease recovers the machine.
}

void CustomerAgentDaemon::maybeReconnect() {
  if (mmConn_ != nullptr || nowSeconds() < nextReconnectAt_) return;
  mmConn_ = reactor_->dial(config_.matchmakerHost, config_.matchmakerPort,
                           nullptr);
  nextReconnectAt_ =
      nowSeconds() + lease::backoffDelay(config_.reconnectBackoff,
                                         reconnectAttempts_++, rng_.uniform());
  if (mmConn_ == nullptr) return;
  ++reconnects_;
  mmConn_->peerAddress = "collector";
  mmConn_->queue(wire::encodeHello(
      {wire::kProtocolVersion, wire::kProtocolVersion, address_}));
  advertiseIdleJobs();  // repopulate the soft-state store immediately
}

void CustomerAgentDaemon::run() {
  advertiseIdleJobs();
  while (!stopFlag_.load()) {
    reactor_->pollOnce(kPollMs);
    maybeReconnect();
    serviceClaims();
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lastAd_)
            .count() >= config_.adIntervalSeconds) {
      advertiseIdleJobs();
    }
  }
}

void CustomerAgentDaemon::serviceClaims() {
  const double now = nowSeconds();
  std::lock_guard<std::mutex> lock(jobsMu_);
  for (JobEntry& job : jobs_) {
    if (job.state == JobState::kClaiming &&
        config_.claimTimeoutSeconds > 0.0 &&
        now - job.claimStartedAt >= config_.claimTimeoutSeconds) {
      // The matched RA never answered (dead between advertising and
      // claiming); give up and rematch.
      ++claimTimeouts_;
      if (job.claimConn != nullptr) job.claimConn->close();
      job.claimConn = nullptr;
      job.state = JobState::kIdle;
      continue;
    }
    if (job.state != JobState::kRunning || !job.monitor.has_value()) continue;
    lease::HeartbeatMonitor& monitor = *job.monitor;
    if (now < monitor.nextDue()) continue;
    const lease::HeartbeatMonitor::Action action =
        monitor.onDue(now, rng_.uniform());
    if (action.declareDead) {
      // Miss budget exhausted: the RA is gone. Requeue; the dead
      // claim's work is lost (the job restarts elsewhere).
      ++leaseExpiries_;
      if (job.claimConn != nullptr) job.claimConn->close();
      job.claimConn = nullptr;
      job.monitor.reset();
      job.state = JobState::kIdle;
      continue;
    }
    if (action.sendBeat && job.claimConn != nullptr &&
        !job.claimConn->closed()) {
      job.claimConn->queue(wire::encodeEnvelope(
          {address_, job.claimConn->peerAddress,
           matchmaking::Heartbeat{job.ticket, job.spec.id, action.sequence,
                                  /*ack=*/false, job.trace}}));
    }
  }
}

void CustomerAgentDaemon::advertiseIdleJobs() {
  lastAd_ = std::chrono::steady_clock::now();
  if (mmConn_ == nullptr || mmConn_->closed()) return;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    for (const JobEntry& job : jobs_) {
      if (job.state != JobState::kIdle) continue;
      matchmaking::Advertisement ad;
      ad.ad = classad::makeShared(buildRequestAd(job.spec));
      ad.sequence = ++adSequence_;
      ad.isRequest = true;
      ad.key = adKey(job.spec);
      mmConn_->queue(
          wire::encodeEnvelope({address_, "collector", std::move(ad)}));
      ++adsSent_;
    }
  }
  // Same cadence, one DaemonStatus self-ad for the whole agent.
  matchmaking::Advertisement status;
  status.ad = classad::makeShared(buildSelfAd());
  status.sequence = ++adSequence_;
  status.isRequest = false;
  status.key = address_;
  mmConn_->queue(
      wire::encodeEnvelope({address_, "collector", std::move(status)}));
}

classad::ClassAd CustomerAgentDaemon::buildSelfAd() {
  registry_.gauge("IdleJobs")->set(static_cast<double>(idleJobs()));
  registry_.gauge("RunningJobs")->set(static_cast<double>(runningJobs()));
  registry_.gauge("CompletedJobs")
      ->set(static_cast<double>(completed_.load()));
  registry_.gauge("MatchesReceived")
      ->set(static_cast<double>(matches_.load()));
  registry_.gauge("ClaimsRejected")
      ->set(static_cast<double>(rejected_.load()));
  registry_.gauge("AdsSent")->set(static_cast<double>(adsSent_.load()));
  registry_.gauge("LeaseExpiries")
      ->set(static_cast<double>(leaseExpiries_.load()));
  registry_.gauge("HeartbeatsAcked")
      ->set(static_cast<double>(beatsAcked_.load()));
  registry_.gauge("ClaimTimeouts")
      ->set(static_cast<double>(claimTimeouts_.load()));
  registry_.gauge("MatchmakerReconnects")
      ->set(static_cast<double>(reconnects_.load()));
  classad::ClassAd ad;
  ad.set("MyType", "DaemonStatus");
  ad.set("Type", "DaemonStatus");
  ad.set("DaemonType", "CustomerAgent");
  ad.set("Name", config_.owner);
  ad.set("Address", address_);
  registry_.renderInto(ad);
  return ad;
}

void CustomerAgentDaemon::invalidateJobAd(const JobSpec& job) {
  if (mmConn_ == nullptr || mmConn_->closed()) return;
  mmConn_->queue(wire::encodeEnvelope(
      {address_, "collector",
       htcsim::AdInvalidate{adKey(job), /*isRequest=*/true}}));
}

CustomerAgentDaemon::JobEntry* CustomerAgentDaemon::jobById(
    std::uint64_t id) {
  for (JobEntry& job : jobs_) {
    if (job.spec.id == id) return &job;
  }
  return nullptr;
}

CustomerAgentDaemon::JobEntry* CustomerAgentDaemon::jobOnConnection(
    const Connection* conn) {
  for (JobEntry& job : jobs_) {
    if (job.claimConn == conn) return &job;
  }
  return nullptr;
}

void CustomerAgentDaemon::handleFrame(Connection& conn,
                                      const wire::Frame& frame) {
  if (frame.type == static_cast<std::uint8_t>(wire::MsgType::kHello)) {
    std::string error;
    if (!wire::decodeHello(frame, &error)) conn.close();
    return;
  }
  std::string error;
  const auto env = wire::decodeEnvelope(frame, &error);
  if (!env) {
    conn.close();
    return;
  }

  if (const auto* match =
          std::get_if<matchmaking::MatchNotification>(&env->payload)) {
    ++matches_;
    if (!match->myAd) return;
    const std::uint64_t jobId = static_cast<std::uint64_t>(
        match->myAd->getInteger("JobId").value_or(0));
    std::string host;
    std::uint16_t port = 0;
    if (!parseTcpAddress(match->peerContact, &host, &port)) return;
    std::lock_guard<std::mutex> lock(jobsMu_);
    JobEntry* job = jobById(jobId);
    if (job == nullptr || job->state != JobState::kIdle) return;  // stale
    // Step 4, Figure 3: contact the resource directly and present the
    // ticket the matchmaker relayed. The claim carries the job's
    // CURRENT ad, not the advertised snapshot.
    Connection* claimConn = reactor_->dial(host, port, nullptr);
    if (claimConn == nullptr) return;
    claimConn->peerAddress = match->peerContact;
    claimConn->queue(wire::encodeHello(
        {wire::kProtocolVersion, wire::kProtocolVersion, address_}));
    matchmaking::ClaimRequest claim;
    claim.requestAd = classad::makeShared(buildRequestAd(job->spec));
    claim.ticket = match->ticket;
    claim.customerContact = address_;
    claim.trace = match->trace;
    claimConn->queue(wire::encodeEnvelope(
        {address_, match->peerContact, std::move(claim)}));
    job->state = JobState::kClaiming;
    job->claimConn = claimConn;
    job->ticket = match->ticket;
    job->claimStartedAt = nowSeconds();
    job->trace = match->trace;
    return;
  }

  if (const auto* resp =
          std::get_if<matchmaking::ClaimResponse>(&env->payload)) {
    JobSpec toInvalidate;
    bool placed = false;
    {
      std::lock_guard<std::mutex> lock(jobsMu_);
      JobEntry* job = jobOnConnection(&conn);
      if (job == nullptr || job->state != JobState::kClaiming) return;
      if (resp->accepted) {
        job->state = JobState::kRunning;
        toInvalidate = job->spec;
        placed = true;
        if (resp->leaseDuration > 0.0) {
          // The RA granted a lease: keep it alive with heartbeats (the
          // first beat is due one interval in).
          job->monitor.emplace(config_.heartbeat, resp->leaseDuration,
                               nowSeconds());
        }
      } else {
        ++rejected_;
        job->state = JobState::kIdle;  // back to matchmaking next cycle
        job->claimConn = nullptr;
        conn.close();
      }
    }
    // Placed: retract the request ad so the matchmaker stops
    // re-matching it.
    if (placed) invalidateJobAd(toInvalidate);
    return;
  }

  if (const auto* rel =
          std::get_if<matchmaking::ClaimRelease>(&env->payload)) {
    std::lock_guard<std::mutex> lock(jobsMu_);
    JobEntry* job = jobOnConnection(&conn);
    if (job == nullptr) return;
    job->claimConn = nullptr;
    job->monitor.reset();
    if (rel->completed) {
      job->state = JobState::kDone;
      ++completed_;
    } else {
      job->state = JobState::kIdle;  // evicted; rematch next cycle
    }
    conn.close();
    return;
  }

  if (const auto* hb = std::get_if<matchmaking::Heartbeat>(&env->payload)) {
    if (!hb->ack) return;  // we only originate beats
    std::lock_guard<std::mutex> lock(jobsMu_);
    JobEntry* job = jobOnConnection(&conn);
    if (job == nullptr || !job->monitor.has_value() ||
        job->ticket != hb->ticket) {
      return;
    }
    if (const auto rtt = job->monitor->ack(hb->sequence, nowSeconds())) {
      ++beatsAcked_;
      registry_.histogram("HeartbeatRttSeconds")->observe(*rtt);
    }
    return;
  }

  if (const auto* notice =
          std::get_if<matchmaking::LeaseExpired>(&env->payload)) {
    // The RA already tore the claim down (our renewals arrived too
    // late); requeue without waiting out the miss budget.
    std::lock_guard<std::mutex> lock(jobsMu_);
    JobEntry* job = jobOnConnection(&conn);
    if (job == nullptr || job->ticket != notice->ticket ||
        job->state != JobState::kRunning) {
      return;
    }
    ++leaseExpiries_;
    job->claimConn = nullptr;
    job->monitor.reset();
    job->state = JobState::kIdle;
    conn.close();
    return;
  }
}

std::size_t CustomerAgentDaemon::idleJobs() const {
  std::lock_guard<std::mutex> lock(jobsMu_);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const JobEntry& j) {
        return j.state == JobState::kIdle || j.state == JobState::kClaiming;
      }));
}

std::size_t CustomerAgentDaemon::runningJobs() const {
  std::lock_guard<std::mutex> lock(jobsMu_);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const JobEntry& j) {
        return j.state == JobState::kRunning;
      }));
}

}  // namespace service
