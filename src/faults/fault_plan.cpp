#include "faults/fault_plan.h"

#include <algorithm>
#include <utility>

namespace faults {

namespace {
bool matchesEndpoint(const std::string& pattern, std::string_view address) {
  return pattern.empty() || pattern == address;
}
}  // namespace

bool FaultRule::appliesTo(std::string_view x, std::string_view y) const {
  return (matchesEndpoint(a, x) && matchesEndpoint(b, y)) ||
         (matchesEndpoint(a, y) && matchesEndpoint(b, x));
}

FaultPlan& FaultPlan::add(FaultRule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::killAt(std::string target, double at) {
  FaultRule rule;
  rule.kind = FaultKind::kKillProcess;
  rule.a = std::move(target);
  rule.at = at;
  rule.until = at;
  return add(std::move(rule));
}

FaultPlan& FaultPlan::partition(std::string a, std::string b, double at,
                                double until) {
  FaultRule rule;
  rule.kind = FaultKind::kPartition;
  rule.a = std::move(a);
  rule.b = std::move(b);
  rule.at = at;
  rule.until = until;
  return add(std::move(rule));
}

FaultPlan& FaultPlan::lose(std::string a, std::string b, double probability,
                           double at, double until) {
  FaultRule rule;
  rule.kind = FaultKind::kMessageLoss;
  rule.a = std::move(a);
  rule.b = std::move(b);
  rule.probability = probability;
  rule.at = at;
  rule.until = until;
  return add(std::move(rule));
}

FaultPlan& FaultPlan::delay(std::string a, std::string b, double delaySeconds,
                            double at, double until) {
  FaultRule rule;
  rule.kind = FaultKind::kMessageDelay;
  rule.a = std::move(a);
  rule.b = std::move(b);
  rule.delaySeconds = delaySeconds;
  rule.at = at;
  rule.until = until;
  return add(std::move(rule));
}

bool FaultPlan::partitioned(std::string_view x, std::string_view y,
                            double now) const {
  for (const FaultRule& rule : rules_) {
    if (rule.kind == FaultKind::kPartition && rule.activeAt(now) &&
        rule.appliesTo(x, y)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::extraDelay(std::string_view from, std::string_view to,
                             double now) const {
  double total = 0.0;
  for (const FaultRule& rule : rules_) {
    if (rule.kind == FaultKind::kMessageDelay && rule.activeAt(now) &&
        rule.appliesTo(from, to)) {
      total += rule.delaySeconds;
    }
  }
  return total;
}

bool FaultPlan::shouldDrop(std::string_view from, std::string_view to,
                           double now) {
  for (const FaultRule& rule : rules_) {
    if (rule.kind == FaultKind::kMessageLoss && rule.activeAt(now) &&
        rule.appliesTo(from, to) && rng_.chance(rule.probability)) {
      return true;
    }
  }
  return false;
}

std::vector<FaultRule> FaultPlan::byKind(FaultKind kind) const {
  std::vector<FaultRule> out;
  for (const FaultRule& rule : rules_) {
    if (rule.kind == kind) out.push_back(rule);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultRule& lhs, const FaultRule& rhs) {
                     return lhs.at < rhs.at;
                   });
  return out;
}

std::vector<FaultRule> FaultPlan::killSchedule() const {
  return byKind(FaultKind::kKillProcess);
}

std::vector<FaultRule> FaultPlan::dropSchedule() const {
  return byKind(FaultKind::kDropConnection);
}

FaultPlan FaultPlan::chaosKills(std::uint64_t seed,
                                const std::vector<std::string>& targets,
                                int kills, double start, double end) {
  FaultPlan plan(seed);
  if (targets.empty() || kills <= 0) return plan;
  htcsim::Rng rng(seed);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(kills));
  for (int i = 0; i < kills; ++i) times.push_back(rng.uniform(start, end));
  std::sort(times.begin(), times.end());
  for (double at : times) {
    plan.killAt(targets[rng.below(targets.size())], at);
  }
  return plan;
}

}  // namespace faults
