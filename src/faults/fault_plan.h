// Deterministic fault-injection plan.
//
// A FaultPlan is a seeded, declarative list of failures to inject into
// a running pool: process kills, connection drops, probabilistic
// message loss, added message delay, and network partitions.  The same
// plan object plugs into both transports — the sim Network consults it
// on every send, and the live service Reactor filters frames through
// it — so a chaos scenario reproduces bit-for-bit from its seed.
//
// Rules are matched by endpoint address (exact string, or "" meaning
// "any endpoint") over a time window [at, until).  Time is seconds in
// whatever clock the host transport uses: sim time for Network, wall
// seconds since injection for the Reactor.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.h"

namespace faults {

enum class FaultKind : unsigned char {
  kKillProcess,     // silence the endpoint named `a` at time `at`
  kDropConnection,  // close the a<->b connection once at time `at`
  kMessageLoss,     // drop a->b (and b->a) messages with `probability`
  kMessageDelay,    // add `delaySeconds` to a->b (and b->a) messages
  kPartition,       // drop all a<->b traffic during [at, until)
};

struct FaultRule {
  FaultKind kind = FaultKind::kMessageLoss;
  std::string a;  // endpoint address; "" matches any
  std::string b;  // peer address; "" matches any
  double at = 0.0;
  double until = std::numeric_limits<double>::infinity();
  double probability = 1.0;   // kMessageLoss
  double delaySeconds = 0.0;  // kMessageDelay

  bool activeAt(double now) const { return now >= at && now < until; }
  // Endpoint matching is unordered: a rule against (a, b) applies to
  // traffic in both directions.
  bool appliesTo(std::string_view x, std::string_view y) const;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }
  bool empty() const { return rules_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }

  FaultPlan& add(FaultRule rule);

  // Convenience constructors for the common rules.
  FaultPlan& killAt(std::string target, double at);
  FaultPlan& partition(std::string a, std::string b, double at, double until);
  FaultPlan& lose(std::string a, std::string b, double probability,
                  double at = 0.0,
                  double until = std::numeric_limits<double>::infinity());
  FaultPlan& delay(std::string a, std::string b, double delaySeconds,
                   double at = 0.0,
                   double until = std::numeric_limits<double>::infinity());

  // True while an active partition rule separates x and y.
  bool partitioned(std::string_view x, std::string_view y, double now) const;

  // Extra latency active loss-free delay rules impose on from->to.
  double extraDelay(std::string_view from, std::string_view to,
                    double now) const;

  // Samples the active loss rules for from->to; consumes randomness
  // from the plan's seeded stream, so call order matters for
  // reproducibility (transports call it once per send, which is itself
  // deterministic in the sim).
  bool shouldDrop(std::string_view from, std::string_view to, double now);

  // Kill / connection-drop events in time order, for schedulers that
  // apply them (Scenario in the sim, tests in the live pool).
  std::vector<FaultRule> killSchedule() const;
  std::vector<FaultRule> dropSchedule() const;

  // Deterministic chaos generator: `kills` process-kill rules spread
  // uniformly over [start, end) across `targets`, all derived from the
  // plan seed.  Victims are drawn with replacement so repeated kills of
  // a recovered endpoint occur, as in a real flaky machine room.
  static FaultPlan chaosKills(std::uint64_t seed,
                              const std::vector<std::string>& targets,
                              int kills, double start, double end);

 private:
  std::vector<FaultRule> byKind(FaultKind kind) const;

  std::uint64_t seed_ = 0;
  htcsim::Rng rng_{0};
  std::vector<FaultRule> rules_;
};

}  // namespace faults
