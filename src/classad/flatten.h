// flatten.h - Partial evaluation of classad expressions.
//
// Flattening evaluates everything an expression can know from ONE side of
// a match — the ad that owns it — and leaves a residual expression over
// the still-unknown candidate (`other.*` references and whatever depends
// on them). Figure 1's Constraint, for example, flattens against the
// machine ad to a residual purely in terms of `other.Owner` and constants:
// the machine's lists, load average, keyboard idle time, and DayTime all
// disappear into literals.
//
// This is the workhorse behind several subsystems:
//  * the constraint diagnoser shows users the residual their request
//    actually imposes on the pool;
//  * the gang matcher (co-allocation) pre-flattens each leg's constraint
//    before the combinatorial search;
//  * aggregation fingerprints could flatten away volatile state.
#pragma once

#include "classad/classad.h"
#include "classad/expr.h"

namespace classad {

struct FlattenOptions {
  /// Substitute self-attribute references by their (flattened) defining
  /// expressions when they cannot be fully evaluated. With this off,
  /// indefinite self references stay as bare names.
  bool inlineSelfReferences = true;
};

/// Partially evaluates `expr` against `self` (with no candidate ad).
/// Subexpressions that evaluate to a definite value (neither `undefined`
/// nor `error`) become literals; the rest is rebuilt structurally. The
/// result is semantically equivalent: evaluating the residual against any
/// candidate `other` yields the same value as evaluating the original
/// (tested as a property in tests/classad/flatten_test.cpp).
ExprPtr flatten(const ExprPtr& expr, const ClassAd& self,
                const FlattenOptions& options = {});

/// Convenience: flattens the named attribute of `ad` (nullptr if absent).
ExprPtr flattenAttribute(const ClassAd& ad, std::string_view name,
                         const FlattenOptions& options = {});

/// True iff the expression contains no attribute references at all (it is
/// a constant modulo evaluation).
bool isGround(const Expr& expr);

/// True iff evaluating `expr` against `self` could observe the candidate
/// ad: an explicit `other.X` / bare `other`, or a bare reference missing
/// from `self` (which falls through to the candidate at match time). Self
/// references recurse through their bound expressions with a cycle guard
/// (cyclic references evaluate to `error` either way, so cycles count as
/// candidate-independent). The complement — candidate-INDEPENDENT — is
/// what flatten() is allowed to fold, and what PreparedAd may evaluate
/// once per ad revision instead of once per pair.
bool dependsOnCandidate(const Expr& expr, const ClassAd& self);

}  // namespace classad
