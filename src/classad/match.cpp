#include "classad/match.h"

namespace classad {

const ExprPtr* findConstraintExpr(const ClassAd& ad,
                                  const MatchAttributes& attrs) {
  if (const ExprPtr* e = ad.lookup(attrs.constraint)) return e;
  return ad.lookup(attrs.constraintAlias);
}

ConstraintResult evaluateConstraint(const ClassAd& ad, const ClassAd& target,
                                    const MatchAttributes& attrs) {
  const ExprPtr* constraint = findConstraintExpr(ad, attrs);
  if (constraint == nullptr) return ConstraintResult::Missing;
  const Value v = ad.evaluate(**constraint, &target);
  if (v.isBoolean()) {
    return v.asBoolean() ? ConstraintResult::Satisfied
                         : ConstraintResult::Violated;
  }
  if (v.isUndefined()) return ConstraintResult::Undefined;
  return ConstraintResult::Error;
}

bool symmetricMatch(const ClassAd& a, const ClassAd& b,
                    const MatchAttributes& attrs) {
  return permitsMatch(evaluateConstraint(a, b, attrs)) &&
         permitsMatch(evaluateConstraint(b, a, attrs));
}

bool oneWayMatch(const ClassAd& query, const ClassAd& target,
                 const MatchAttributes& attrs) {
  return permitsMatch(evaluateConstraint(query, target, attrs));
}

double evaluateRank(const ClassAd& ad, const ClassAd& target,
                    const MatchAttributes& attrs) {
  const ExprPtr* rank = ad.lookup(attrs.rank);
  if (rank == nullptr) return 0.0;
  return ad.evaluate(**rank, &target).rankValue();
}

MatchAnalysis analyzeMatch(const ClassAd& request, const ClassAd& resource,
                           const MatchAttributes& attrs) {
  MatchAnalysis out;
  out.requestSide = evaluateConstraint(request, resource, attrs);
  out.resourceSide = evaluateConstraint(resource, request, attrs);
  out.matched = permitsMatch(out.requestSide) && permitsMatch(out.resourceSide);
  if (out.matched) {
    out.requestRank = evaluateRank(request, resource, attrs);
    out.resourceRank = evaluateRank(resource, request, attrs);
  }
  return out;
}

std::string_view toString(ConstraintResult r) noexcept {
  switch (r) {
    case ConstraintResult::Satisfied: return "satisfied";
    case ConstraintResult::Violated: return "violated";
    case ConstraintResult::Undefined: return "undefined";
    case ConstraintResult::Error: return "error";
    case ConstraintResult::Missing: return "missing";
  }
  return "?";
}

}  // namespace classad
