#include "classad/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "classad/classad.h"  // ParseError
#include "classad/value.h"    // equalsIgnoreCase

namespace classad {

std::string_view toString(TokenKind k) noexcept {
  switch (k) {
    case TokenKind::End: return "end of input";
    case TokenKind::Integer: return "integer literal";
    case TokenKind::Real: return "real literal";
    case TokenKind::String: return "string literal";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessEq: return "'<='";
    case TokenKind::Greater: return "'>'";
    case TokenKind::GreaterEq: return "'>='";
    case TokenKind::EqualEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::AndAnd: return "'&&'";
    case TokenKind::OrOr: return "'||'";
    case TokenKind::Bang: return "'!'";
  }
  return "?";
}

bool Token::isKeyword(std::string_view kw) const noexcept {
  return kind == TokenKind::Identifier && equalsIgnoreCase(text, kw);
}

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skipWhitespaceAndComments();
      Token t = next();
      const bool done = t.kind == TokenKind::End;
      out.push_back(std::move(t));
      if (done) break;
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, column_);
  }

  bool atEnd() const noexcept { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      while (!atEnd() &&
             std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const int startLine = line_, startCol = column_;
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (atEnd()) {
            throw ParseError("unterminated /* comment", startLine, startCol);
          }
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token makeToken(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = column_;
    return t;
  }

  Token next() {
    if (atEnd()) return makeToken(TokenKind::End);
    Token t = makeToken(TokenKind::End);  // position captured pre-advance
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return number(t);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier(t);
    }
    if (c == '"') return stringLiteral(t);
    advance();
    switch (c) {
      case '(': t.kind = TokenKind::LParen; return t;
      case ')': t.kind = TokenKind::RParen; return t;
      case '[': t.kind = TokenKind::LBracket; return t;
      case ']': t.kind = TokenKind::RBracket; return t;
      case '{': t.kind = TokenKind::LBrace; return t;
      case '}': t.kind = TokenKind::RBrace; return t;
      case ',': t.kind = TokenKind::Comma; return t;
      case ';': t.kind = TokenKind::Semicolon; return t;
      case ':': t.kind = TokenKind::Colon; return t;
      case '?': t.kind = TokenKind::Question; return t;
      case '.': t.kind = TokenKind::Dot; return t;
      case '+': t.kind = TokenKind::Plus; return t;
      case '-': t.kind = TokenKind::Minus; return t;
      case '*': t.kind = TokenKind::Star; return t;
      case '/': t.kind = TokenKind::Slash; return t;
      case '%': t.kind = TokenKind::Percent; return t;
      case '<':
        if (peek() == '=') { advance(); t.kind = TokenKind::LessEq; }
        else t.kind = TokenKind::Less;
        return t;
      case '>':
        if (peek() == '=') { advance(); t.kind = TokenKind::GreaterEq; }
        else t.kind = TokenKind::Greater;
        return t;
      case '=':
        if (peek() == '=') { advance(); t.kind = TokenKind::EqualEq; }
        else t.kind = TokenKind::Assign;
        return t;
      case '!':
        if (peek() == '=') { advance(); t.kind = TokenKind::NotEq; }
        else t.kind = TokenKind::Bang;
        return t;
      case '&':
        if (peek() == '&') { advance(); t.kind = TokenKind::AndAnd; return t; }
        fail("stray '&' (did you mean '&&'?)");
      case '|':
        if (peek() == '|') { advance(); t.kind = TokenKind::OrOr; return t; }
        fail("stray '|' (did you mean '||'?)");
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token number(Token t) {
    const std::size_t start = pos_;
    bool isReal = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
      isReal = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      // Exponent (Figure 2 writes KFlops/1E3). Only consume it when it is
      // actually followed by a valid exponent, so `2Emails` lexes as
      // number-then-identifier and errors in the parser.
      std::size_t ahead = 1;
      if (peek(1) == '+' || peek(1) == '-') ahead = 2;
      if (std::isdigit(static_cast<unsigned char>(peek(ahead)))) {
        isReal = true;
        for (std::size_t i = 0; i <= ahead; ++i) advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
    const std::string_view text = src_.substr(start, pos_ - start);
    if (isReal) {
      t.kind = TokenKind::Real;
      t.realValue = std::strtod(std::string(text).c_str(), nullptr);
    } else {
      t.kind = TokenKind::Integer;
      const auto res = std::from_chars(text.data(), text.data() + text.size(),
                                       t.intValue);
      if (res.ec != std::errc()) {
        // Out-of-range integer literals degrade to reals rather than
        // failing the whole ad.
        t.kind = TokenKind::Real;
        t.realValue = std::strtod(std::string(text).c_str(), nullptr);
      }
    }
    t.text = std::string(text);
    return t;
  }

  Token identifier(Token t) {
    const std::size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      advance();
    }
    t.kind = TokenKind::Identifier;
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }

  Token stringLiteral(Token t) {
    advance();  // opening quote
    std::string out;
    for (;;) {
      if (atEnd() || peek() == '\n') fail("unterminated string literal");
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        if (atEnd()) fail("unterminated string literal");
        const char e = advance();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default:
            fail(std::string("unknown escape '\\") + e + "' in string");
        }
      } else {
        out += c;
      }
    }
    t.kind = TokenKind::String;
    t.text = std::move(out);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  return Scanner(src).run();
}

}  // namespace classad
