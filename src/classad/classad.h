// classad.h - The classified advertisement: an ordered, case-insensitive
// mapping from attribute names to expressions (Section 3.1: "A classad is a
// mapping from attribute names to expressions").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "classad/expr.h"
#include "classad/value.h"

namespace classad {

/// Thrown by the parsing entry points on malformed input. Carries a
/// 1-based line/column of the offending token.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column)
      : std::runtime_error(std::move(message)), line_(line), column_(column) {}
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// A classad. Attribute names are case-insensitive (per the classad
/// language); insertion order is preserved so that unparsing an ad
/// reproduces the author's layout, and lookup is O(1) via a lowered-name
/// index.
///
/// ClassAds are value types; copying copies the attribute table (the
/// expression trees themselves are immutable and shared).
class ClassAd {
 public:
  ClassAd() = default;
  ClassAd(const ClassAd&) = default;
  ClassAd(ClassAd&&) noexcept = default;
  ClassAd& operator=(const ClassAd&) = default;
  ClassAd& operator=(ClassAd&&) noexcept = default;

  // --- construction / mutation ------------------------------------------

  /// Binds `name` to `expr`, replacing any existing binding (the original
  /// spelling of a replaced name is kept). Returns *this for chaining.
  ClassAd& insert(std::string name, ExprPtr expr);

  /// Binds `name` to the given constant.
  ClassAd& set(std::string name, std::int64_t v);
  ClassAd& set(std::string name, int v) {
    return set(std::move(name), static_cast<std::int64_t>(v));
  }
  ClassAd& set(std::string name, double v);
  ClassAd& set(std::string name, bool v);
  ClassAd& set(std::string name, std::string v);
  ClassAd& set(std::string name, const char* v) {
    return set(std::move(name), std::string(v));
  }
  /// Binds `name` to a list of string constants (Figure 1's ResearchGroup).
  ClassAd& set(std::string name, const std::vector<std::string>& values);

  /// Parses `exprText` as a classad expression and binds it. Throws
  /// ParseError on malformed input.
  ClassAd& setExpr(std::string name, std::string_view exprText);

  /// Removes a binding; returns false if the attribute was absent.
  bool remove(std::string_view name);

  void clear();

  // --- lookup / iteration -------------------------------------------------

  /// Returns the expression bound to `name` (case-insensitive), or nullptr.
  const ExprPtr* lookup(std::string_view name) const noexcept;

  bool contains(std::string_view name) const noexcept {
    return lookup(name) != nullptr;
  }

  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  using Attribute = std::pair<std::string, ExprPtr>;
  /// Attributes in insertion order.
  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }
  std::vector<Attribute>::const_iterator begin() const noexcept {
    return attrs_.begin();
  }
  std::vector<Attribute>::const_iterator end() const noexcept {
    return attrs_.end();
  }

  // --- evaluation ----------------------------------------------------------

  /// Evaluates the attribute `name` with this ad as `self` and (optionally)
  /// `other` as the match candidate. A missing attribute is `undefined`.
  Value evaluateAttr(std::string_view name,
                     const ClassAd* other = nullptr) const;

  /// Evaluates an arbitrary expression with this ad as `self`.
  Value evaluate(const Expr& expr, const ClassAd* other = nullptr) const;

  /// Evaluates an expression given as text (throws ParseError on bad text).
  Value evaluate(std::string_view exprText,
                 const ClassAd* other = nullptr) const;

  /// Typed convenience accessors: evaluate an attribute and coerce.
  /// Returns nullopt if the attribute is missing or of the wrong type.
  std::optional<std::int64_t> getInteger(
      std::string_view name, const ClassAd* other = nullptr) const;
  std::optional<double> getNumber(std::string_view name,
                                  const ClassAd* other = nullptr) const;
  std::optional<std::string> getString(std::string_view name,
                                       const ClassAd* other = nullptr) const;
  std::optional<bool> getBoolean(std::string_view name,
                                 const ClassAd* other = nullptr) const;

  // --- parsing / unparsing -------------------------------------------------

  /// Parses the textual form `[ name = expr; ... ]`. Throws ParseError.
  static ClassAd parse(std::string_view text);

  /// Parses, returning nullopt and filling `errorMessage` instead of
  /// throwing (for tools that process untrusted ad streams).
  static std::optional<ClassAd> tryParse(std::string_view text,
                                         std::string* errorMessage = nullptr);

  /// Renders the ad in the concrete syntax of the paper's figures:
  /// `[ A = 1; B = "x" ]`. Round-trips through parse().
  std::string unparse() const;

  /// Multi-line rendering, one attribute per line, for human consumption.
  std::string unparsePretty() const;

  /// Structural "signature" of the ad: the sorted, lowercased attribute
  /// names. Two ads with equal signatures exhibit the *structural
  /// regularity* of Section 5, which the aggregation engine exploits.
  std::string signature() const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, std::size_t> index_;  // lowered -> position
};

using ClassAdPtr = std::shared_ptr<const ClassAd>;

/// Wraps an ad in a shared pointer (the matchmaker's unit of storage).
inline ClassAdPtr makeShared(ClassAd ad) {
  return std::make_shared<const ClassAd>(std::move(ad));
}

/// Parses a standalone expression (not a whole ad). Throws ParseError.
ExprPtr parseExpr(std::string_view text);

/// Non-throwing variant.
std::optional<ExprPtr> tryParseExpr(std::string_view text,
                                    std::string* errorMessage = nullptr);

}  // namespace classad
