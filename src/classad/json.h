// json.h - JSON interchange for classads.
//
// The 1998 paper predates JSON, but a modern release of this system needs
// a structured interchange form for web dashboards, logging pipelines,
// and non-C++ clients (deployed HTCondor grew exactly this). The mapping
// is lossless in both directions:
//
//   classad value            JSON
//   ------------------------ -----------------------------------------
//   integer / real           number (NaN/Inf as {"$real": "NaN"|...})
//   string                   string
//   boolean                  true / false
//   undefined                null
//   error                    {"$error": "<reason>"}
//   list of literals         array
//   nested ad of literals    object
//   any non-literal expr     {"$expr": "<classad surface syntax>"}
//
// so `Rank = other.Memory / 32` round-trips as
// {"Rank": {"$expr": "other.Memory / 32"}}. Attribute order is
// preserved. The JSON subset parser is self-contained (no third-party
// dependency), strict about syntax, and rejects trailing garbage.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "classad/classad.h"

namespace classad {

struct JsonOptions {
  bool pretty = false;  ///< newline + 2-space indentation
};

/// Serializes an ad to JSON (always a JSON object).
std::string toJson(const ClassAd& ad, const JsonOptions& options = {});

/// Serializes a single value.
std::string toJson(const Value& value, const JsonOptions& options = {});

/// Parses a JSON object back into an ad. Throws ParseError (with a
/// 1-based offset reported via the column field) on malformed input.
ClassAd adFromJson(std::string_view json);

/// Non-throwing variant.
std::optional<ClassAd> tryAdFromJson(std::string_view json,
                                     std::string* errorMessage = nullptr);

}  // namespace classad
