#include "classad/flatten.h"

#include <algorithm>

namespace classad {

namespace {

/// Decides whether evaluating an expression could observe the candidate
/// ad: an explicit `other.X` / bare `other`, or a bare reference that is
/// missing from `self` (and would fall through to the candidate at match
/// time). Folding any such node against a null candidate would be unsound
/// — e.g. `other.Memory is undefined` is "definitely true" with no
/// candidate but false against one that advertises Memory. Self
/// references recurse through their bound expressions (with a cycle
/// guard: cyclic references evaluate to `error` either way, so treating
/// them as candidate-independent is safe).
class CandidateDependence {
 public:
  explicit CandidateDependence(const ClassAd& self) : self_(self) {}

  bool check(const Expr& expr) {
    if (const auto* ref = dynamic_cast<const AttrRefExpr*>(&expr)) {
      if (ref->scope() == RefScope::Other) return true;
      const ExprPtr* bound = self_.lookup(ref->loweredName());
      if (bound == nullptr) {
        // Missing bare names fall through to the candidate; explicit
        // self.X stays undefined regardless of the candidate.
        return ref->scope() == RefScope::Default;
      }
      if (std::find(visiting_.begin(), visiting_.end(),
                    ref->loweredName()) != visiting_.end()) {
        return false;  // cycle: errors with or without a candidate
      }
      visiting_.push_back(ref->loweredName());
      const bool depends = check(**bound);
      visiting_.pop_back();
      return depends;
    }
    if (const auto* scope = dynamic_cast<const ScopeExpr*>(&expr)) {
      return scope->scope() == RefScope::Other;
    }
    bool depends = false;
    expr.visitChildren([this, &depends](const Expr& child) {
      depends = depends || check(child);
    });
    return depends;
  }

 private:
  const ClassAd& self_;
  std::vector<std::string> visiting_;
};

class Flattener {
 public:
  Flattener(const ClassAd& self, const FlattenOptions& options)
      : self_(self), options_(options) {}

  ExprPtr run(const ExprPtr& expr) {
    ExprPtr rebuilt = rebuild(expr);
    // A candidate-independent node that evaluates to a definite value is
    // a constant of the match: fold it. Candidate-DEPENDENT nodes are
    // never folded, however definite they look with no candidate bound.
    if (dependsOnCandidate(*rebuilt, self_)) return rebuilt;
    EvalContext ctx(&self_, nullptr);
    const Value v = rebuilt->evaluate(ctx);
    if (!v.isExceptional()) return LiteralExpr::make(v);
    return rebuilt;
  }

 private:
  ExprPtr rebuild(const ExprPtr& expr) {
    if (const auto* lit = dynamic_cast<const LiteralExpr*>(expr.get())) {
      (void)lit;
      return expr;
    }
    if (const auto* ref = dynamic_cast<const AttrRefExpr*>(expr.get())) {
      return rebuildRef(expr, *ref);
    }
    if (const auto* unary = dynamic_cast<const UnaryExpr*>(expr.get())) {
      return UnaryExpr::make(unary->op(), run(unary->operand()));
    }
    if (const auto* binary = dynamic_cast<const BinaryExpr*>(expr.get())) {
      ExprPtr lhs = run(binary->lhs());
      ExprPtr rhs = run(binary->rhs());
      const auto isBoolLiteral = [](const ExprPtr& e, bool value) {
        const auto* lit = dynamic_cast<const LiteralExpr*>(e.get());
        return lit != nullptr && lit->value().isBoolean() &&
               lit->value().asBoolean() == value;
      };
      // Exact Kleene absorption: `false` wins an && and `true` wins an ||
      // regardless of the other operand (even error or a non-boolean), so
      // these folds are equivalence-preserving.
      if (binary->op() == BinOp::And &&
          (isBoolLiteral(lhs, false) || isBoolLiteral(rhs, false))) {
        return makeLiteral(false);
      }
      if (binary->op() == BinOp::Or &&
          (isBoolLiteral(lhs, true) || isBoolLiteral(rhs, true))) {
        return makeLiteral(true);
      }
      return BinaryExpr::make(binary->op(), std::move(lhs), std::move(rhs));
    }
    if (const auto* ternary = dynamic_cast<const TernaryExpr*>(expr.get())) {
      ExprPtr cond = run(ternary->cond());
      // A definitely-boolean condition selects its branch outright — the
      // exact ternary semantics, so this preserves equivalence.
      if (const auto* condLit =
              dynamic_cast<const LiteralExpr*>(cond.get())) {
        if (condLit->value().isBoolean()) {
          return condLit->value().asBoolean() ? run(ternary->thenExpr())
                                              : run(ternary->elseExpr());
        }
      }
      return TernaryExpr::make(std::move(cond), run(ternary->thenExpr()),
                               run(ternary->elseExpr()));
    }
    if (const auto* list = dynamic_cast<const ListExpr*>(expr.get())) {
      std::vector<ExprPtr> elems;
      elems.reserve(list->elements().size());
      for (const ExprPtr& e : list->elements()) elems.push_back(run(e));
      return ListExpr::make(std::move(elems));
    }
    if (const auto* call = dynamic_cast<const FuncCallExpr*>(expr.get())) {
      std::vector<ExprPtr> args;
      args.reserve(call->args().size());
      for (const ExprPtr& a : call->args()) args.push_back(run(a));
      return FuncCallExpr::make(call->name(), std::move(args));
    }
    if (const auto* sub = dynamic_cast<const SubscriptExpr*>(expr.get())) {
      return SubscriptExpr::make(run(sub->base()), run(sub->index()));
    }
    if (const auto* sel = dynamic_cast<const SelectExpr*>(expr.get())) {
      return SelectExpr::make(run(sel->base()), sel->attribute());
    }
    // RecordExpr / ScopeExpr: structural nodes kept as-is; the top-level
    // fold still replaces them when they are definite.
    return expr;
  }

  ExprPtr rebuildRef(const ExprPtr& expr, const AttrRefExpr& ref) {
    if (ref.scope() == RefScope::Other) return expr;
    // Definite self references are folded by run(); here the reference is
    // indefinite (missing, cyclic, or dependent on `other`).
    if (!options_.inlineSelfReferences) return expr;
    const ExprPtr* bound = self_.lookup(ref.loweredName());
    if (bound == nullptr) return expr;  // may resolve in `other` at match
    if (std::find(inlining_.begin(), inlining_.end(), ref.loweredName()) !=
        inlining_.end()) {
      return expr;  // cycle: leave the reference (it errors at runtime)
    }
    inlining_.push_back(ref.loweredName());
    ExprPtr inlined = run(*bound);
    inlining_.pop_back();
    return inlined;
  }

  const ClassAd& self_;
  FlattenOptions options_;
  std::vector<std::string> inlining_;
};

class GroundChecker {
 public:
  bool ground = true;
  void visit(const Expr& e) {
    if (dynamic_cast<const AttrRefExpr*>(&e) != nullptr ||
        dynamic_cast<const ScopeExpr*>(&e) != nullptr) {
      ground = false;
      return;
    }
    e.visitChildren([this](const Expr& child) { visit(child); });
  }
};

}  // namespace

ExprPtr flatten(const ExprPtr& expr, const ClassAd& self,
                const FlattenOptions& options) {
  if (!expr) return expr;
  return Flattener(self, options).run(expr);
}

ExprPtr flattenAttribute(const ClassAd& ad, std::string_view name,
                         const FlattenOptions& options) {
  const ExprPtr* bound = ad.lookup(name);
  if (bound == nullptr) return nullptr;
  return flatten(*bound, ad, options);
}

bool isGround(const Expr& expr) {
  GroundChecker checker;
  checker.visit(expr);
  return checker.ground;
}

bool dependsOnCandidate(const Expr& expr, const ClassAd& self) {
  return CandidateDependence(self).check(expr);
}

}  // namespace classad
