#include "classad/builtins.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <regex>
#include <unordered_map>

#include "classad/classad.h"
#include "classad/expr.h"

namespace classad {

namespace {

Value argCountError(std::string_view fn, std::size_t want, std::size_t got) {
  return Value::error(std::string(fn) + " expects " + std::to_string(want) +
                      " argument(s), got " + std::to_string(got));
}

/// Propagates exceptional arguments per the usual strictness rule; returns
/// nullopt when all arguments are ordinary.
std::optional<Value> propagate(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.isError()) return v;
  }
  for (const Value& v : args) {
    if (v.isUndefined()) return v;
  }
  return std::nullopt;
}

// --- type predicates (NON-strict: they observe undefined/error) -----------

Value fnIsUndefined(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isUndefined", 1, a.size());
  return Value::boolean(a[0].isUndefined());
}
Value fnIsError(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isError", 1, a.size());
  return Value::boolean(a[0].isError());
}
Value fnIsString(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isString", 1, a.size());
  return Value::boolean(a[0].isString());
}
Value fnIsInteger(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isInteger", 1, a.size());
  return Value::boolean(a[0].isInteger());
}
Value fnIsReal(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isReal", 1, a.size());
  return Value::boolean(a[0].isReal());
}
Value fnIsNumber(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isNumber", 1, a.size());
  return Value::boolean(a[0].isNumber());
}
Value fnIsBoolean(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isBoolean", 1, a.size());
  return Value::boolean(a[0].isBoolean());
}
Value fnIsList(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isList", 1, a.size());
  return Value::boolean(a[0].isList());
}
Value fnIsClassAd(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("isClassAd", 1, a.size());
  return Value::boolean(a[0].isRecord());
}

// --- membership ------------------------------------------------------------

Value fnMember(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("member", 2, a.size());
  return memberSemantics(a[0], a[1]);
}

Value fnIdenticalMember(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("identicalMember", 2, a.size());
  if (a[1].isUndefined()) return Value::undefined();
  if (!a[1].isList()) {
    return Value::error("identicalMember: second argument is not a list");
  }
  for (const Value& elem : *a[1].asList()) {
    if (elem.isIdenticalTo(a[0])) return Value::boolean(true);
  }
  return Value::boolean(false);
}

// --- strings ----------------------------------------------------------------

Value fnStrcat(const std::vector<Value>& a) {
  if (auto exc = propagate(a)) return *exc;
  std::string out;
  for (const Value& v : a) {
    if (v.isString()) {
      out += v.asString();
    } else if (v.isNumber() || v.isBoolean()) {
      out += v.toLiteralString();
    } else {
      return Value::error("strcat: argument is not a scalar");
    }
  }
  return Value::string(std::move(out));
}

Value fnSubstr(const std::vector<Value>& a) {
  if (a.size() != 2 && a.size() != 3) {
    return argCountError("substr", 2, a.size());
  }
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isInteger() ||
      (a.size() == 3 && !a[2].isInteger())) {
    return Value::error("substr(string, int[, int]): bad argument types");
  }
  const std::string& s = a[0].asString();
  std::int64_t offset = a[1].asInteger();
  // Negative offset counts from the end, as in HTCondor's substr.
  if (offset < 0) offset += static_cast<std::int64_t>(s.size());
  offset = std::clamp<std::int64_t>(offset, 0,
                                    static_cast<std::int64_t>(s.size()));
  std::int64_t len = a.size() == 3
                         ? a[2].asInteger()
                         : static_cast<std::int64_t>(s.size()) - offset;
  if (len < 0) len = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(s.size()) - offset + len);
  len = std::min<std::int64_t>(len,
                               static_cast<std::int64_t>(s.size()) - offset);
  return Value::string(s.substr(static_cast<std::size_t>(offset),
                                static_cast<std::size_t>(len)));
}

Value fnToUpper(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("toUpper", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString()) return Value::error("toUpper: argument not a string");
  std::string s = a[0].asString();
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return Value::string(std::move(s));
}

Value fnToLower(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("toLower", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString()) return Value::error("toLower: argument not a string");
  return Value::string(toLowerCopy(a[0].asString()));
}

Value fnStrcmp(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("strcmp", 2, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isString()) {
    return Value::error("strcmp: arguments not strings");
  }
  const int c = a[0].asString().compare(a[1].asString());
  return Value::integer(c < 0 ? -1 : c > 0 ? 1 : 0);
}

Value fnStricmp(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("stricmp", 2, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isString()) {
    return Value::error("stricmp: arguments not strings");
  }
  return Value::integer(compareIgnoreCase(a[0].asString(), a[1].asString()));
}

// --- numeric ----------------------------------------------------------------

Value numeric1(std::string_view name, const std::vector<Value>& a,
               double (*fn)(double)) {
  if (a.size() != 1) return argCountError(name, 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isNumber()) {
    return Value::error(std::string(name) + ": argument not numeric");
  }
  return Value::real(fn(a[0].toReal()));
}

Value fnFloor(const std::vector<Value>& a) {
  if (a.size() == 1 && a[0].isInteger()) return a[0];
  const Value v = numeric1("floor", a, std::floor);
  return v.isReal() ? Value::integer(static_cast<std::int64_t>(v.asReal()))
                    : v;
}
Value fnCeiling(const std::vector<Value>& a) {
  if (a.size() == 1 && a[0].isInteger()) return a[0];
  const Value v = numeric1("ceiling", a, std::ceil);
  return v.isReal() ? Value::integer(static_cast<std::int64_t>(v.asReal()))
                    : v;
}
Value fnRound(const std::vector<Value>& a) {
  if (a.size() == 1 && a[0].isInteger()) return a[0];
  const Value v = numeric1("round", a, [](double d) { return std::round(d); });
  return v.isReal() ? Value::integer(static_cast<std::int64_t>(v.asReal()))
                    : v;
}
Value fnSqrt(const std::vector<Value>& a) {
  const Value v = numeric1("sqrt", a, std::sqrt);
  if (v.isReal() && std::isnan(v.asReal())) {
    return Value::error("sqrt of negative number");
  }
  return v;
}

Value fnAbs(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("abs", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (a[0].isInteger()) return Value::integer(std::llabs(a[0].asInteger()));
  if (a[0].isReal()) return Value::real(std::fabs(a[0].asReal()));
  return Value::error("abs: argument not numeric");
}

Value fnPow(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("pow", 2, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isNumber() || !a[1].isNumber()) {
    return Value::error("pow: arguments not numeric");
  }
  return Value::real(std::pow(a[0].toReal(), a[1].toReal()));
}

/// Reduces a list of numbers (or a variadic argument list) with `step`.
template <typename Step>
Value reduceNumbers(std::string_view name, const std::vector<Value>& a,
                    Step step, bool average) {
  const std::vector<Value>* elems = &a;
  if (a.size() == 1 && a[0].isList()) elems = a[0].asList().get();
  if (a.size() == 1 && a[0].isExceptional()) return a[0];
  if (elems->empty()) return Value::undefined();
  bool anyUndef = false;
  bool allInt = true;
  double acc = 0.0;
  bool first = true;
  for (const Value& v : *elems) {
    if (v.isError()) return v;
    if (v.isUndefined()) {
      anyUndef = true;
      continue;
    }
    if (!v.isNumber()) {
      return Value::error(std::string(name) + ": element not numeric");
    }
    allInt = allInt && v.isInteger();
    acc = first ? v.toReal() : step(acc, v.toReal());
    first = false;
  }
  if (first) return anyUndef ? Value::undefined() : Value::undefined();
  if (average) {
    std::size_t n = 0;
    for (const Value& v : *elems) n += v.isNumber() ? 1 : 0;
    return Value::real(acc / static_cast<double>(n));
  }
  if (allInt && !anyUndef) return Value::integer(static_cast<std::int64_t>(acc));
  return Value::real(acc);
}

Value fnMin(const std::vector<Value>& a) {
  return reduceNumbers("min", a,
                       [](double x, double y) { return std::min(x, y); },
                       false);
}
Value fnMax(const std::vector<Value>& a) {
  return reduceNumbers("max", a,
                       [](double x, double y) { return std::max(x, y); },
                       false);
}
Value fnSum(const std::vector<Value>& a) {
  return reduceNumbers("sum", a, [](double x, double y) { return x + y; },
                       false);
}
Value fnAvg(const std::vector<Value>& a) {
  return reduceNumbers("avg", a, [](double x, double y) { return x + y; },
                       true);
}

// --- size & conversions ------------------------------------------------------

Value fnSize(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("size", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (a[0].isList()) {
    return Value::integer(static_cast<std::int64_t>(a[0].asList()->size()));
  }
  if (a[0].isString()) {
    return Value::integer(static_cast<std::int64_t>(a[0].asString().size()));
  }
  if (a[0].isRecord()) {
    return Value::integer(static_cast<std::int64_t>(a[0].asRecord()->size()));
  }
  return Value::error("size: argument is not a list, string, or classad");
}

Value fnInt(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("int", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  const Value& v = a[0];
  if (v.isInteger()) return v;
  if (v.isReal()) return Value::integer(static_cast<std::int64_t>(v.asReal()));
  if (v.isBoolean()) return Value::integer(v.asBoolean() ? 1 : 0);
  if (v.isString()) {
    const char* s = v.asString().c_str();
    char* end = nullptr;
    const double d = std::strtod(s, &end);
    if (end == s) return Value::error("int: cannot parse '" + v.asString() + "'");
    return Value::integer(static_cast<std::int64_t>(d));
  }
  return Value::error("int: cannot convert");
}

Value fnReal(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("real", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  const Value& v = a[0];
  if (v.isReal()) return v;
  if (v.isInteger()) return Value::real(static_cast<double>(v.asInteger()));
  if (v.isBoolean()) return Value::real(v.asBoolean() ? 1.0 : 0.0);
  if (v.isString()) {
    if (equalsIgnoreCase(v.asString(), "NaN")) {
      return Value::real(std::nan(""));
    }
    if (equalsIgnoreCase(v.asString(), "INF")) {
      return Value::real(std::numeric_limits<double>::infinity());
    }
    if (equalsIgnoreCase(v.asString(), "-INF")) {
      return Value::real(-std::numeric_limits<double>::infinity());
    }
    const char* s = v.asString().c_str();
    char* end = nullptr;
    const double d = std::strtod(s, &end);
    if (end == s) {
      return Value::error("real: cannot parse '" + v.asString() + "'");
    }
    return Value::real(d);
  }
  return Value::error("real: cannot convert");
}

Value fnString(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("string", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  const Value& v = a[0];
  if (v.isString()) return v;
  return Value::string(v.toLiteralString());
}

Value fnBool(const std::vector<Value>& a) {
  if (a.size() != 1) return argCountError("bool", 1, a.size());
  if (auto exc = propagate(a)) return *exc;
  const Value& v = a[0];
  if (v.isBoolean()) return v;
  if (v.isInteger()) return Value::boolean(v.asInteger() != 0);
  if (v.isReal()) return Value::boolean(v.asReal() != 0.0);
  if (v.isString()) {
    if (equalsIgnoreCase(v.asString(), "true")) return Value::boolean(true);
    if (equalsIgnoreCase(v.asString(), "false")) return Value::boolean(false);
    return Value::error("bool: cannot parse '" + v.asString() + "'");
  }
  return Value::error("bool: cannot convert");
}

// --- string lists & regular expressions ------------------------------------
//
// Classic Condor conventions: many deployed policies carry
// comma-separated lists in plain strings ("INTEL,SPARC") and match names
// with POSIX-style regular expressions. These functions make such ads
// portable into this implementation.

std::vector<std::string> splitList(const std::string& s,
                                   const std::string& delims) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    // Trim surrounding spaces, the Condor string-list convention.
    std::size_t b = current.find_first_not_of(' ');
    std::size_t e = current.find_last_not_of(' ');
    out.push_back(b == std::string::npos
                      ? std::string()
                      : current.substr(b, e - b + 1));
    current.clear();
  };
  for (const char c : s) {
    if (delims.find(c) != std::string::npos) {
      flush();
    } else {
      current += c;
    }
  }
  if (!current.empty() || !s.empty()) flush();
  // An entirely empty input is the empty list, not {""}.
  if (s.empty()) out.clear();
  return out;
}

Value fnStringListMember(const std::vector<Value>& a) {
  if (a.size() != 2 && a.size() != 3) {
    return argCountError("stringListMember", 2, a.size());
  }
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isString() ||
      (a.size() == 3 && !a[2].isString())) {
    return Value::error("stringListMember: arguments must be strings");
  }
  const std::string delims = a.size() == 3 ? a[2].asString() : ",";
  for (const std::string& item : splitList(a[1].asString(), delims)) {
    if (equalsIgnoreCase(item, a[0].asString())) return Value::boolean(true);
  }
  return Value::boolean(false);
}

Value fnStringListSize(const std::vector<Value>& a) {
  if (a.size() != 1 && a.size() != 2) {
    return argCountError("stringListSize", 1, a.size());
  }
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || (a.size() == 2 && !a[1].isString())) {
    return Value::error("stringListSize: arguments must be strings");
  }
  const std::string delims = a.size() == 2 ? a[1].asString() : ",";
  return Value::integer(static_cast<std::int64_t>(
      splitList(a[0].asString(), delims).size()));
}

Value fnSplit(const std::vector<Value>& a) {
  if (a.size() != 1 && a.size() != 2) {
    return argCountError("split", 1, a.size());
  }
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || (a.size() == 2 && !a[1].isString())) {
    return Value::error("split: arguments must be strings");
  }
  const std::string delims = a.size() == 2 ? a[1].asString() : ", ";
  std::vector<Value> items;
  for (std::string& item : splitList(a[0].asString(), delims)) {
    if (!item.empty()) items.push_back(Value::string(std::move(item)));
  }
  return Value::list(std::move(items));
}

Value fnJoin(const std::vector<Value>& a) {
  if (a.size() != 2) return argCountError("join", 2, a.size());
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isList()) {
    return Value::error("join(separator, list): bad argument types");
  }
  std::string out;
  bool first = true;
  for (const Value& v : *a[1].asList()) {
    if (!first) out += a[0].asString();
    first = false;
    if (v.isString()) {
      out += v.asString();
    } else if (v.isNumber() || v.isBoolean()) {
      out += v.toLiteralString();
    } else {
      return Value::error("join: element is not a scalar");
    }
  }
  return Value::string(std::move(out));
}

Value fnRegexp(const std::vector<Value>& a) {
  if (a.size() != 2 && a.size() != 3) {
    return argCountError("regexp", 2, a.size());
  }
  if (auto exc = propagate(a)) return *exc;
  if (!a[0].isString() || !a[1].isString() ||
      (a.size() == 3 && !a[2].isString())) {
    return Value::error("regexp(pattern, target[, options])");
  }
  auto flags = std::regex::ECMAScript;
  bool fullMatch = false;
  if (a.size() == 3) {
    for (const char c : a[2].asString()) {
      switch (std::tolower(static_cast<unsigned char>(c))) {
        case 'i': flags |= std::regex::icase; break;
        case 'f': fullMatch = true; break;  // anchor to the whole string
        default:
          return Value::error(std::string("regexp: unknown option '") + c +
                              "'");
      }
    }
  }
  try {
    const std::regex re(a[0].asString(), flags);
    const bool hit = fullMatch ? std::regex_match(a[1].asString(), re)
                               : std::regex_search(a[1].asString(), re);
    return Value::boolean(hit);
  } catch (const std::regex_error&) {
    return Value::error("regexp: bad pattern '" + a[0].asString() + "'");
  }
}

Value fnIfThenElse(const std::vector<Value>& a) {
  if (a.size() != 3) return argCountError("ifThenElse", 3, a.size());
  const Value& c = a[0];
  if (c.isBoolean()) return c.asBoolean() ? a[1] : a[2];
  if (c.isUndefined()) return Value::undefined();
  if (c.isError()) return c;
  return Value::error("ifThenElse: condition is not boolean");
}

const std::unordered_map<std::string, BuiltinFn>& table() {
  static const auto* kTable = new std::unordered_map<std::string, BuiltinFn>{
      {"isundefined", fnIsUndefined},
      {"iserror", fnIsError},
      {"isstring", fnIsString},
      {"isinteger", fnIsInteger},
      {"isreal", fnIsReal},
      {"isnumber", fnIsNumber},
      {"isboolean", fnIsBoolean},
      {"islist", fnIsList},
      {"isclassad", fnIsClassAd},
      {"member", fnMember},
      {"identicalmember", fnIdenticalMember},
      {"strcat", fnStrcat},
      {"substr", fnSubstr},
      {"toupper", fnToUpper},
      {"tolower", fnToLower},
      {"strcmp", fnStrcmp},
      {"stricmp", fnStricmp},
      {"floor", fnFloor},
      {"ceiling", fnCeiling},
      {"round", fnRound},
      {"sqrt", fnSqrt},
      {"abs", fnAbs},
      {"pow", fnPow},
      {"min", fnMin},
      {"max", fnMax},
      {"sum", fnSum},
      {"avg", fnAvg},
      {"size", fnSize},
      {"int", fnInt},
      {"real", fnReal},
      {"string", fnString},
      {"bool", fnBool},
      {"ifthenelse", fnIfThenElse},
      {"stringlistmember", fnStringListMember},
      {"stringlistsize", fnStringListSize},
      {"split", fnSplit},
      {"join", fnJoin},
      {"regexp", fnRegexp},
  };
  return *kTable;
}

}  // namespace

Value memberSemantics(const Value& needle, const Value& haystack) {
  if (needle.isError()) return needle;
  if (haystack.isError()) return haystack;
  if (haystack.isUndefined()) return Value::undefined();
  if (!haystack.isList()) {
    return Value::error("member: second argument is not a list");
  }
  if (needle.isUndefined()) return Value::undefined();
  bool sawUndefined = false;
  for (const Value& elem : *haystack.asList()) {
    const Value eq = BinaryExpr::apply(BinOp::Equal, needle, elem);
    if (eq.isBooleanTrue()) return Value::boolean(true);
    if (eq.isUndefined()) sawUndefined = true;
    // Type-mismatched elements (error from ==) simply don't match.
  }
  return sawUndefined ? Value::undefined() : Value::boolean(false);
}

const BuiltinFn* lookupBuiltin(std::string_view loweredName) {
  const auto& t = table();
  auto it = t.find(std::string(loweredName));
  return it == t.end() ? nullptr : &it->second;
}

std::vector<std::string> builtinNames() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, fn] : table()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace classad
