// refs.h - The attribute-reference pass of the static analyzer.
//
// Walks an expression (or a whole ad) and reports every referenced
// attribute together with its resolved scope: `self` when the reference
// lands in the containing ad, `other` when it falls through to the match
// candidate (Section 3.2's self-then-other rule for bare names), and
// `builtin` for function calls into the standard library. Unknown
// functions — which evaluate to `error` unconditionally — are reported
// separately so lint can flag them.
//
// This pass powers the lint layer's misspelling detection (an `other`
// reference absent from the pool schema) and is the hook a future
// attribute-indexed matchmaker would use to decide which attributes to
// index.
#pragma once

#include <string>
#include <vector>

#include "classad/classad.h"
#include "classad/expr.h"

namespace classad::analysis {

/// Where a reference resolves, given the containing ad.
enum class ResolvedScope : std::uint8_t {
  Self,     ///< defined by the containing ad (or written `self.`)
  Other,    ///< falls through to the match candidate
  Builtin,  ///< a standard-library function
};

std::string_view toString(ResolvedScope s) noexcept;

struct AttrRef {
  std::string name;     ///< original spelling (first occurrence wins)
  std::string lowered;  ///< case-insensitive key
  ResolvedScope scope = ResolvedScope::Self;
  RefScope written = RefScope::Default;  ///< scope as written in the source
  std::size_t count = 0;                 ///< occurrences
};

struct RefReport {
  /// References deduplicated by (lowered name, resolved scope).
  std::vector<AttrRef> refs;
  /// Function names (original spelling) that are not in the builtin table.
  std::vector<std::string> unknownFunctions;

  const AttrRef* find(std::string_view lowered, ResolvedScope scope) const;
  /// All references that resolve against the match candidate.
  std::vector<const AttrRef*> otherRefs() const;
};

/// Collects references from one expression. `self` (nullable) decides how
/// bare names resolve: defined in self -> Self, otherwise they fall
/// through -> Other.
void collectRefs(const Expr& expr, const ClassAd* self, RefReport& out);

RefReport collectRefs(const Expr& expr, const ClassAd* self);

/// Collects references from every attribute of `ad` (each attribute's
/// expression resolves with `ad` itself as self).
RefReport collectRefs(const ClassAd& ad);

}  // namespace classad::analysis
