#include "classad/analysis/refs.h"

#include <algorithm>

#include "classad/builtins.h"

namespace classad::analysis {

std::string_view toString(ResolvedScope s) noexcept {
  switch (s) {
    case ResolvedScope::Self: return "self";
    case ResolvedScope::Other: return "other";
    case ResolvedScope::Builtin: return "builtin";
  }
  return "?";
}

const AttrRef* RefReport::find(std::string_view lowered,
                               ResolvedScope scope) const {
  for (const AttrRef& r : refs) {
    if (r.scope == scope && r.lowered == lowered) return &r;
  }
  return nullptr;
}

std::vector<const AttrRef*> RefReport::otherRefs() const {
  std::vector<const AttrRef*> out;
  for (const AttrRef& r : refs) {
    if (r.scope == ResolvedScope::Other) out.push_back(&r);
  }
  return out;
}

namespace {

void record(RefReport& out, const std::string& name,
            const std::string& lowered, ResolvedScope scope,
            RefScope written) {
  for (AttrRef& r : out.refs) {
    if (r.scope == scope && r.lowered == lowered) {
      ++r.count;
      return;
    }
  }
  out.refs.push_back(AttrRef{name, lowered, scope, written, 1});
}

void walk(const Expr& expr, const ClassAd* self, RefReport& out) {
  if (const auto* ref = dynamic_cast<const AttrRefExpr*>(&expr)) {
    ResolvedScope scope;
    switch (ref->scope()) {
      case RefScope::Self:
        scope = ResolvedScope::Self;
        break;
      case RefScope::Other:
        scope = ResolvedScope::Other;
        break;
      case RefScope::Default:
      default:
        // The deployed self-then-other fall-through rule (see
        // AttrRefExpr::evaluate): a bare name the containing ad does not
        // define resolves against the match candidate.
        scope = (self != nullptr && self->contains(ref->loweredName()))
                    ? ResolvedScope::Self
                    : ResolvedScope::Other;
        break;
    }
    record(out, ref->name(), ref->loweredName(), scope, ref->scope());
  } else if (const auto* call = dynamic_cast<const FuncCallExpr*>(&expr)) {
    const std::string lowered = toLowerCopy(call->name());
    if (lookupBuiltin(lowered) != nullptr) {
      record(out, call->name(), lowered, ResolvedScope::Builtin,
             RefScope::Default);
    } else if (std::find(out.unknownFunctions.begin(),
                         out.unknownFunctions.end(),
                         call->name()) == out.unknownFunctions.end()) {
      out.unknownFunctions.push_back(call->name());
    }
  }
  expr.visitChildren(
      [&](const Expr& child) { walk(child, self, out); });
}

}  // namespace

void collectRefs(const Expr& expr, const ClassAd* self, RefReport& out) {
  walk(expr, self, out);
}

RefReport collectRefs(const Expr& expr, const ClassAd* self) {
  RefReport out;
  walk(expr, self, out);
  return out;
}

RefReport collectRefs(const ClassAd& ad) {
  RefReport out;
  for (const auto& [name, expr] : ad.attributes()) {
    walk(*expr, &ad, out);
  }
  return out;
}

}  // namespace classad::analysis
