#include "classad/analysis/implies.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <set>
#include <utility>

#include "classad/analysis/absint.h"
#include "classad/analysis/domain.h"
#include "classad/analysis/lint.h"
#include "classad/flatten.h"
#include "classad/prepared.h"
#include "classad/value.h"

namespace classad::analysis {

namespace {

// Integer literals beyond 2^53 do not round-trip through the double
// interval channel; comparisons against them are evaluated in int64
// space, so atoms over them are over-approximations only.
constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
constexpr std::size_t kMaxCubes = 64;
constexpr std::size_t kMaxMemberAlternatives = 16;
constexpr std::size_t kMaxBuildNodes = 4096;
constexpr int kMaxBuildDepth = 40;

/// Does `outer` contain every point of `inner`?
bool intervalCovers(const Interval& outer, const Interval& inner) {
  if (inner.empty()) return true;
  if (outer.empty()) return false;
  if (inner.lo < outer.lo) return false;
  if (inner.lo == outer.lo && outer.loOpen && !inner.loOpen) return false;
  if (inner.hi > outer.hi) return false;
  if (inner.hi == outer.hi && outer.hiOpen && !inner.hiOpen) return false;
  return true;
}

/// The set of concrete Values a candidate attribute may hold, channelled
/// by type the way compareValues decides truth: non-NaN numbers (with
/// finitely many excluded points, for `!=` atoms), the two booleans,
/// strings (none / all-but-finitely-many / a finite lowered set),
/// `undefined`, and `others` (error, list, record, NaN — the values no
/// strict comparison can accept). Default-constructed it is the full
/// universe; ValueSet::none() is the empty set.
struct ValueSet {
  enum class StrMode : std::uint8_t { None, Any, Finite };

  Interval num = Interval::all();
  std::vector<double> numExcluded;  ///< sorted unique, all inside num
  bool canTrue = true;
  bool canFalse = true;
  StrMode strMode = StrMode::Any;
  /// Finite: the allowed strings; Any: the excluded strings. Lowered
  /// (`==` compares case-insensitively), sorted, unique.
  std::vector<std::string> strs;
  bool undef = true;
  bool others = true;

  static ValueSet none() {
    ValueSet s;
    s.num = Interval::none();
    s.canTrue = s.canFalse = false;
    s.strMode = StrMode::None;
    s.undef = s.others = false;
    return s;
  }

  bool excludesNumber(double v) const {
    return std::binary_search(numExcluded.begin(), numExcluded.end(), v);
  }
  bool numEmpty() const {
    if (num.empty()) return true;
    return num.isPoint() && excludesNumber(num.lo);
  }
  bool strEmpty() const {
    return strMode == StrMode::None ||
           (strMode == StrMode::Finite && strs.empty());
  }
  bool empty() const {
    return numEmpty() && !canTrue && !canFalse && strEmpty() && !undef &&
           !others;
  }

  bool containsNumber(double v) const {
    if (std::isnan(v)) return others;
    return num.contains(v) && !excludesNumber(v);
  }
  bool containsLowered(const std::string& lowered) const {
    switch (strMode) {
      case StrMode::None:
        return false;
      case StrMode::Any:
        return !std::binary_search(strs.begin(), strs.end(), lowered);
      case StrMode::Finite:
        return std::binary_search(strs.begin(), strs.end(), lowered);
    }
    return false;
  }
  bool contains(const Value& v) const {
    switch (v.type()) {
      case ValueType::Undefined:
        return undef;
      case ValueType::Error:
      case ValueType::List:
      case ValueType::Record:
        return others;
      case ValueType::Boolean:
        return v.asBoolean() ? canTrue : canFalse;
      case ValueType::Integer:
      case ValueType::Real:
        return containsNumber(v.toReal());
      case ValueType::String:
        return containsLowered(toLowerCopy(v.asString()));
    }
    return true;
  }

  /// Narrows to the intersection (conjuncts compose by AND).
  void meetWith(const ValueSet& o) {
    num = num.meet(o.num);
    std::vector<double> merged;
    merged.reserve(numExcluded.size() + o.numExcluded.size());
    std::set_union(numExcluded.begin(), numExcluded.end(),
                   o.numExcluded.begin(), o.numExcluded.end(),
                   std::back_inserter(merged));
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [&](double p) { return !num.contains(p); }),
                 merged.end());
    numExcluded = std::move(merged);
    canTrue = canTrue && o.canTrue;
    canFalse = canFalse && o.canFalse;
    if (strMode == StrMode::None || o.strMode == StrMode::None) {
      strMode = StrMode::None;
      strs.clear();
    } else if (strMode == StrMode::Any && o.strMode == StrMode::Any) {
      std::vector<std::string> ex;
      std::set_union(strs.begin(), strs.end(), o.strs.begin(), o.strs.end(),
                     std::back_inserter(ex));
      strs = std::move(ex);
    } else if (strMode == StrMode::Finite && o.strMode == StrMode::Finite) {
      std::vector<std::string> kept;
      std::set_intersection(strs.begin(), strs.end(), o.strs.begin(),
                            o.strs.end(), std::back_inserter(kept));
      strs = std::move(kept);
    } else {
      // Finite ∩ (all but excluded) = the finite set minus the exclusions.
      const std::vector<std::string>& fin =
          strMode == StrMode::Finite ? strs : o.strs;
      const std::vector<std::string>& ex =
          strMode == StrMode::Finite ? o.strs : strs;
      std::vector<std::string> kept;
      std::set_difference(fin.begin(), fin.end(), ex.begin(), ex.end(),
                          std::back_inserter(kept));
      strMode = StrMode::Finite;
      strs = std::move(kept);
    }
    undef = undef && o.undef;
    others = others && o.others;
  }

  /// Is every value of *this also in `o`? Exact per channel.
  bool subsetOf(const ValueSet& o) const {
    if (!numEmpty()) {
      if (!intervalCovers(o.num, num)) return false;
      for (double p : o.numExcluded) {
        if (num.contains(p) && !excludesNumber(p)) return false;
      }
    }
    if (canTrue && !o.canTrue) return false;
    if (canFalse && !o.canFalse) return false;
    if (!strEmpty()) {
      if (strMode == StrMode::Finite) {
        for (const std::string& s : strs) {
          if (!o.containsLowered(s)) return false;
        }
      } else {
        // All-but-finitely-many fits only inside another such set whose
        // exclusions we also exclude.
        if (o.strMode != StrMode::Any) return false;
        for (const std::string& s : o.strs) {
          if (!std::binary_search(strs.begin(), strs.end(), s)) return false;
        }
      }
    }
    if (undef && !o.undef) return false;
    if (others && !o.others) return false;
    return true;
  }
};

/// The value-set image of an abstract value: what the schema says a
/// candidate attribute can be. NaN hides inside any real-typed abstract
/// value whose interval reaches infinity (the documented overflow hole in
/// domain.h), so such envelopes keep the `others` channel open.
ValueSet fromAbstract(const AbstractValue& d) {
  ValueSet s = ValueSet::none();
  if (d.mayBeNumber()) s.num = d.range();
  s.canTrue = d.mayBeTrue();
  s.canFalse = d.mayBeFalse();
  if (d.mayBeString()) {
    if (const auto& strs = d.strings(); strs.has_value()) {
      s.strMode = ValueSet::StrMode::Finite;
      s.strs.reserve(strs->size());
      for (const std::string& v : *strs) {
        s.strs.push_back(toLowerCopy(v));
      }
      std::sort(s.strs.begin(), s.strs.end());
      s.strs.erase(std::unique(s.strs.begin(), s.strs.end()), s.strs.end());
    } else {
      s.strMode = ValueSet::StrMode::Any;
    }
  }
  s.undef = d.mayBeUndefined();
  s.others = d.mayBeError() || d.types().has(ValueType::List) ||
             d.types().has(ValueType::Record) ||
             (d.types().has(ValueType::Real) &&
              (std::isinf(d.range().lo) || std::isinf(d.range().hi)));
  return s;
}

/// One conjunct's truth set, projected onto a single candidate attribute:
/// "the conjunct is true exactly when attr's value lies in `set`" — or,
/// when `exact` is false, "only when" (the set over-approximates).
struct Atom {
  std::string attr;  ///< lowered
  ValueSet set = ValueSet::none();
  bool exact = true;
};

/// A conjunction of atoms: per-attribute value sets, top for unmentioned
/// attributes. `exact` iff every contributing atom was exact.
struct Cube {
  std::map<std::string, ValueSet> attrs;
  bool exact = true;

  bool empty() const {
    return std::any_of(attrs.begin(), attrs.end(),
                       [](const auto& kv) { return kv.second.empty(); });
  }
  void meetWith(const Cube& o) {
    for (const auto& [attr, set] : o.attrs) {
      auto [it, inserted] = attrs.try_emplace(attr, set);
      if (!inserted) it->second.meetWith(set);
    }
    exact = exact && o.exact;
  }
};

using CubeList = std::vector<Cube>;  // disjunction; empty = false

/// The reference resolves in the CANDIDATE at match time: an explicit
/// `other.X`, or a bare name absent from `self` (same rule the guard
/// deriver uses — a name bound to `undefined` in self does NOT fall
/// through).
const AttrRefExpr* asCandidateRef(const Expr& e, const ClassAd* self) {
  const auto* ref = dynamic_cast<const AttrRefExpr*>(&e);
  if (ref == nullptr) return nullptr;
  if (ref->scope() == RefScope::Other) return ref;
  if (ref->scope() == RefScope::Default &&
      (self == nullptr || self->lookup(ref->loweredName()) == nullptr)) {
    return ref;
  }
  return nullptr;
}

BinOp mirrorOp(BinOp op) noexcept {
  switch (op) {
    case BinOp::Less:
      return BinOp::Greater;
    case BinOp::LessEq:
      return BinOp::GreaterEq;
    case BinOp::Greater:
      return BinOp::Less;
    case BinOp::GreaterEq:
      return BinOp::LessEq;
    default:
      return op;  // ==, !=, is, isnt are symmetric
  }
}

/// `!(a op b)` is true exactly when `a op b` is false, and comparisons
/// are false exactly when the negated comparison is true (both are
/// undefined/error on the same operands).
std::optional<BinOp> negateCmp(BinOp op) noexcept {
  switch (op) {
    case BinOp::Equal:
      return BinOp::NotEqual;
    case BinOp::NotEqual:
      return BinOp::Equal;
    case BinOp::Less:
      return BinOp::GreaterEq;
    case BinOp::LessEq:
      return BinOp::Greater;
    case BinOp::Greater:
      return BinOp::LessEq;
    case BinOp::GreaterEq:
      return BinOp::Less;
    default:
      return std::nullopt;
  }
}

/// Truth set of `ref op lit` (ref on the left). Mirrors compareValues:
/// booleans promote to 0/1 against numbers, strings compare
/// case-insensitively, mixed types / exceptional values / NaN are never
/// true.
std::optional<Atom> atomizeCmp(const AttrRefExpr& ref, BinOp op,
                               const Value& lit) {
  Atom a;
  a.attr = ref.loweredName();
  ValueSet& s = a.set;
  s = ValueSet::none();

  if (lit.isBoolean() || lit.isNumber()) {
    const double r = lit.isBoolean() ? (lit.asBoolean() ? 1.0 : 0.0)
                                     : lit.toReal();
    if (std::isnan(r)) return std::nullopt;  // cmp vs NaN: error, never true
    if (lit.isInteger() && std::abs(r) >= kExactIntLimit) a.exact = false;
    switch (op) {
      case BinOp::Equal:
        s.num = Interval::point(r);
        break;
      case BinOp::NotEqual:
        s.num = Interval::all();
        s.numExcluded = {r};
        break;
      case BinOp::Less:
        s.num = Interval::atMost(r, true);
        break;
      case BinOp::LessEq:
        s.num = Interval::atMost(r, false);
        break;
      case BinOp::Greater:
        s.num = Interval::atLeast(r, true);
        break;
      case BinOp::GreaterEq:
        s.num = Interval::atLeast(r, false);
        break;
      default:
        return std::nullopt;
    }
    s.canTrue = s.containsNumber(1.0);
    s.canFalse = s.containsNumber(0.0);
    return a;
  }

  if (lit.isString()) {
    const std::string low = toLowerCopy(lit.asString());
    switch (op) {
      case BinOp::Equal:
        s.strMode = ValueSet::StrMode::Finite;
        s.strs = {low};
        break;
      case BinOp::NotEqual:
        s.strMode = ValueSet::StrMode::Any;
        s.strs = {low};
        break;
      case BinOp::Less:
      case BinOp::LessEq:
      case BinOp::Greater:
      case BinOp::GreaterEq:
        // Lexical ranges are not representable; "some string" is a sound
        // over-approximation (non-strings are error, never true).
        s.strMode = ValueSet::StrMode::Any;
        a.exact = false;
        break;
      default:
        return std::nullopt;
    }
    return a;
  }

  return std::nullopt;  // undefined/error/list/record literal operand
}

/// Truth set of `ref is lit` / `ref isnt lit` for the exactly-decidable
/// literals. `is undefined` and the boolean identities are exact;
/// identity on numbers/strings distinguishes int-vs-real and case, which
/// the channels do not, so those over-approximate.
std::optional<Atom> atomizeIs(const AttrRefExpr& ref, BinOp op,
                              const Value& lit) {
  Atom a;
  a.attr = ref.loweredName();
  a.set = ValueSet::none();
  if (op == BinOp::Is) {
    if (lit.isUndefined()) {
      a.set.undef = true;
      return a;
    }
    if (lit.isBoolean()) {
      (lit.asBoolean() ? a.set.canTrue : a.set.canFalse) = true;
      return a;
    }
    if (lit.isNumber()) {
      const double r = lit.toReal();
      if (std::isnan(r)) return std::nullopt;
      a.set.num = Interval::point(r);
      a.exact = false;  // 5 is 5.0 is false; the channel cannot tell
      return a;
    }
    if (lit.isString()) {
      a.set.strMode = ValueSet::StrMode::Finite;
      a.set.strs = {toLowerCopy(lit.asString())};
      a.exact = false;  // `is` on strings is case-sensitive
      return a;
    }
    return std::nullopt;
  }
  // isnt: only `ref isnt undefined` (= "the attribute is present and
  // definite-or-error") has an exact channel image.
  if (lit.isUndefined()) {
    a.set = ValueSet();  // top...
    a.set.undef = false;  // ...minus undefined
    return a;
  }
  return std::nullopt;
}

/// Truth set of `member(ref, <literal list>)`: true exactly when the
/// value ==-equals SOME element (memberSemantics: order-independent,
/// type-mismatched elements simply don't match, undefined elements only
/// matter for the undefined/false distinction — not for truth). Each
/// element contributes one alternative atom, so the union stays exact.
std::optional<std::vector<Atom>> atomizeMember(const AttrRefExpr& ref,
                                               const Expr& listArg) {
  std::vector<Value> elems;
  if (const auto* list = dynamic_cast<const ListExpr*>(&listArg)) {
    elems.reserve(list->elements().size());
    for (const ExprPtr& e : list->elements()) {
      const auto* lit = dynamic_cast<const LiteralExpr*>(e.get());
      if (lit == nullptr) return std::nullopt;
      elems.push_back(lit->value());
    }
  } else if (const auto* lit = dynamic_cast<const LiteralExpr*>(&listArg);
             lit != nullptr && lit->value().isList()) {
    elems = *lit->value().asList();
  } else {
    return std::nullopt;
  }
  if (elems.size() > kMaxMemberAlternatives) return std::nullopt;

  std::vector<Atom> out;
  for (const Value& v : elems) {
    if (v.isBoolean() || v.isNumber()) {
      if (auto a = atomizeCmp(ref, BinOp::Equal, v)) {
        out.push_back(std::move(*a));
      }
      // NaN elements match nothing; dropping them is exact.
    } else if (v.isString()) {
      Atom a;
      a.attr = ref.loweredName();
      a.set = ValueSet::none();
      a.set.strMode = ValueSet::StrMode::Finite;
      a.set.strs = {toLowerCopy(v.asString())};
      out.push_back(std::move(a));
    }
    // undefined / error / list / record elements never ==-equal a value:
    // they contribute nothing to the truth set.
  }
  if (out.empty()) {
    // No element can match: the truth set is empty, exactly.
    Atom a;
    a.attr = ref.loweredName();
    a.set = ValueSet::none();
    out.push_back(std::move(a));
  }
  return out;
}

/// Atomizes one non-decomposable conjunct into a union of single-attr
/// truth sets, or nullopt when its shape is not supported.
std::optional<std::vector<Atom>> atomize(const Expr& e, const ClassAd* self) {
  if (const AttrRefExpr* ref = asCandidateRef(e, self)) {
    // A bare reference is a satisfied constraint only when the value IS
    // boolean true.
    Atom a;
    a.attr = ref->loweredName();
    a.set = ValueSet::none();
    a.set.canTrue = true;
    return std::vector<Atom>{std::move(a)};
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&e)) {
    if (unary->op() != UnOp::Not) return std::nullopt;
    const Expr& inner = *unary->operand();
    if (const AttrRefExpr* ref = asCandidateRef(inner, self)) {
      // !X is true exactly when X is boolean false (Kleene Not).
      Atom a;
      a.attr = ref->loweredName();
      a.set = ValueSet::none();
      a.set.canFalse = true;
      return std::vector<Atom>{std::move(a)};
    }
    if (const auto* bin = dynamic_cast<const BinaryExpr*>(&inner)) {
      if (auto negated = negateCmp(bin->op())) {
        const auto* lref = asCandidateRef(*bin->lhs(), self);
        const auto* rref = asCandidateRef(*bin->rhs(), self);
        const auto* llit = dynamic_cast<const LiteralExpr*>(bin->lhs().get());
        const auto* rlit = dynamic_cast<const LiteralExpr*>(bin->rhs().get());
        if (lref != nullptr && rlit != nullptr) {
          if (auto a = atomizeCmp(*lref, *negated, rlit->value())) {
            return std::vector<Atom>{std::move(*a)};
          }
        }
        if (rref != nullptr && llit != nullptr) {
          if (auto a =
                  atomizeCmp(*rref, mirrorOp(*negated), llit->value())) {
            return std::vector<Atom>{std::move(*a)};
          }
        }
      }
    }
    return std::nullopt;
  }
  if (const auto* bin = dynamic_cast<const BinaryExpr*>(&e)) {
    const auto* lref = asCandidateRef(*bin->lhs(), self);
    const auto* rref = asCandidateRef(*bin->rhs(), self);
    const auto* llit = dynamic_cast<const LiteralExpr*>(bin->lhs().get());
    const auto* rlit = dynamic_cast<const LiteralExpr*>(bin->rhs().get());
    const bool isIdentity =
        bin->op() == BinOp::Is || bin->op() == BinOp::IsNot;
    if (lref != nullptr && rlit != nullptr) {
      auto a = isIdentity ? atomizeIs(*lref, bin->op(), rlit->value())
                          : atomizeCmp(*lref, bin->op(), rlit->value());
      if (a) return std::vector<Atom>{std::move(*a)};
    }
    if (rref != nullptr && llit != nullptr) {
      auto a = isIdentity
                   ? atomizeIs(*rref, bin->op(), llit->value())
                   : atomizeCmp(*rref, mirrorOp(bin->op()), llit->value());
      if (a) return std::vector<Atom>{std::move(*a)};
    }
    return std::nullopt;
  }
  if (const auto* call = dynamic_cast<const FuncCallExpr*>(&e)) {
    if (toLowerCopy(call->name()) == "member" && call->args().size() == 2) {
      if (const AttrRefExpr* ref = asCandidateRef(*call->args()[0], self)) {
        return atomizeMember(*ref, *call->args()[1]);
      }
    }
    return std::nullopt;
  }
  return std::nullopt;
}

struct BuildCtx {
  const ClassAd* self = nullptr;
  AnalysisEnv env;
  /// Premise mode: unsupported pieces may widen to "anything" (the truth
  /// set is over-approximated; Proven stays sound). Consequent mode:
  /// unsupported disjuncts are dropped (under-approximation — coverage
  /// of a smaller set still proves coverage of nothing more), and an
  /// unsupported conjunct fails the whole disjunct.
  bool premise = false;
  std::size_t nodes = 0;
};

CubeList topCube() { return CubeList{Cube{}}; }

/// Normalizes the truth set of `e` into a disjunction of cubes. nullopt
/// = shape not supported at this node (callers in premise mode widen).
std::optional<CubeList> buildDnf(const ExprPtr& e, BuildCtx& ctx, int depth) {
  if (e == nullptr) return std::nullopt;
  if (++ctx.nodes > kMaxBuildNodes || depth > kMaxBuildDepth) {
    return std::nullopt;
  }

  // Ground-truth shortcut: the abstract interpreter may already decide
  // this subtree for every schema-consistent candidate. Both outcomes
  // are exact truth sets (everything / nothing).
  const AbstractValue av = abstractEval(*e, ctx.env);
  if (!av.mayBeTrue()) return CubeList{};
  if (av.onlyTrue()) return topCube();

  if (const auto* bin = dynamic_cast<const BinaryExpr*>(e.get())) {
    if (bin->op() == BinOp::And) {
      auto l = buildDnf(bin->lhs(), ctx, depth + 1);
      auto r = buildDnf(bin->rhs(), ctx, depth + 1);
      if (!l || !r) {
        if (!ctx.premise) return std::nullopt;
        // Dropping an unanalyzable conjunct over-approximates: fine here.
        if (!l && !r) return topCube();
        if (!l) l = topCube();
        if (!r) r = topCube();
      }
      CubeList out;
      for (const Cube& cl : *l) {
        for (const Cube& cr : *r) {
          Cube c = cl;
          c.meetWith(cr);
          if (c.empty()) continue;
          out.push_back(std::move(c));
          if (out.size() > kMaxCubes) {
            return ctx.premise ? std::optional<CubeList>(topCube())
                               : std::nullopt;
          }
        }
      }
      return out;
    }
    if (bin->op() == BinOp::Or) {
      auto l = buildDnf(bin->lhs(), ctx, depth + 1);
      auto r = buildDnf(bin->rhs(), ctx, depth + 1);
      if (ctx.premise && (!l || !r)) return topCube();
      CubeList out;
      if (l) out.insert(out.end(), l->begin(), l->end());
      if (r) out.insert(out.end(), r->begin(), r->end());
      if (!l && !r) return std::nullopt;
      if (out.size() > kMaxCubes) {
        return ctx.premise ? std::optional<CubeList>(topCube())
                           : std::nullopt;
      }
      return out;
    }
  }
  if (const auto* tern = dynamic_cast<const TernaryExpr*>(e.get())) {
    const auto* elseLit =
        dynamic_cast<const LiteralExpr*>(tern->elseExpr().get());
    const bool elseFalse = elseLit != nullptr &&
                           elseLit->value().isBoolean() &&
                           !elseLit->value().asBoolean();
    if (elseFalse) {
      // `c ? t : false` is true exactly when both c and t are.
      const ExprPtr conj = BinaryExpr::make(BinOp::And, tern->cond(),
                                            tern->thenExpr());
      return buildDnf(conj, ctx, depth + 1);
    }
    return ctx.premise ? std::optional<CubeList>(topCube()) : std::nullopt;
  }

  if (auto atoms = atomize(*e, ctx.self)) {
    CubeList out;
    out.reserve(atoms->size());
    for (Atom& a : *atoms) {
      Cube c;
      c.exact = a.exact;
      if (a.set.empty()) continue;
      c.attrs.emplace(std::move(a.attr), std::move(a.set));
      out.push_back(std::move(c));
    }
    return out;
  }
  return ctx.premise ? std::optional<CubeList>(topCube()) : std::nullopt;
}

/// Schema envelopes, computed lazily per attribute.
class EnvelopeCache {
 public:
  EnvelopeCache(const Schema* schema, bool exactValues)
      : schema_(schema), exact_(exactValues) {}

  bool active() const { return schema_ != nullptr && !schema_->empty(); }

  /// The candidate population's value set for `attr`; top when no schema.
  const ValueSet& of(const std::string& attr) {
    static const ValueSet kTop;
    if (!active()) return kTop;
    auto it = cache_.find(attr);
    if (it == cache_.end()) {
      it = cache_.emplace(attr, fromAbstract(schema_->domainOf(attr, exact_)))
               .first;
    }
    return it->second;
  }

 private:
  const Schema* schema_;
  bool exact_;
  std::map<std::string, ValueSet> cache_;
};

/// The premise cube's effective projection onto `attr`: its own set if
/// present (already schema-narrowed), else the schema envelope.
ValueSet projection(const Cube& a, const std::string& attr,
                    EnvelopeCache& env) {
  auto it = a.attrs.find(attr);
  if (it != a.attrs.end()) return it->second;
  return env.of(attr);
}

bool cubeContained(const Cube& a, const Cube& b, EnvelopeCache& env) {
  for (const auto& [attr, setB] : b.attrs) {
    if (!projection(a, attr, env).subsetOf(setB)) return false;
  }
  return true;
}

/// Does the union of `sets` cover `a` on one attribute? Exact for the
/// channels; conservative (may say no) on awkward interval unions.
bool unionCovers(const ValueSet& a, const std::vector<const ValueSet*>& sets) {
  if (a.canTrue &&
      std::none_of(sets.begin(), sets.end(),
                   [](const ValueSet* s) { return s->canTrue; })) {
    return false;
  }
  if (a.canFalse &&
      std::none_of(sets.begin(), sets.end(),
                   [](const ValueSet* s) { return s->canFalse; })) {
    return false;
  }
  if (a.undef && std::none_of(sets.begin(), sets.end(),
                              [](const ValueSet* s) { return s->undef; })) {
    return false;
  }
  if (a.others && std::none_of(sets.begin(), sets.end(),
                               [](const ValueSet* s) { return s->others; })) {
    return false;
  }

  if (!a.strEmpty()) {
    if (a.strMode == ValueSet::StrMode::Finite) {
      for (const std::string& s : a.strs) {
        if (std::none_of(sets.begin(), sets.end(), [&](const ValueSet* b) {
              return b->containsLowered(s);
            })) {
          return false;
        }
      }
    } else {
      // a admits all strings but a.strs. The union covers that cofinite
      // set iff the strings excluded by EVERY Any-mode member (none if
      // there is no Any member) are each excluded by a or covered by a
      // Finite member.
      std::vector<std::string> inter;
      bool haveAny = false;
      for (const ValueSet* b : sets) {
        if (b->strMode != ValueSet::StrMode::Any) continue;
        if (!haveAny) {
          inter = b->strs;
          haveAny = true;
        } else {
          std::vector<std::string> kept;
          std::set_intersection(inter.begin(), inter.end(), b->strs.begin(),
                                b->strs.end(), std::back_inserter(kept));
          inter = std::move(kept);
        }
      }
      if (!haveAny) return false;
      for (const std::string& s : inter) {
        const bool excusedByA =
            std::binary_search(a.strs.begin(), a.strs.end(), s);
        const bool coveredFinite =
            std::any_of(sets.begin(), sets.end(), [&](const ValueSet* b) {
              return b->strMode == ValueSet::StrMode::Finite &&
                     b->containsLowered(s);
            });
        if (!excusedByA && !coveredFinite) return false;
      }
    }
  }

  if (!a.numEmpty()) {
    // Interval sweep over the members' intervals (exclusion holes are
    // checked afterwards). A single-point gap is fine when a excludes it.
    std::vector<const ValueSet*> nums;
    for (const ValueSet* b : sets) {
      if (!b->num.empty()) nums.push_back(b);
    }
    std::sort(nums.begin(), nums.end(),
              [](const ValueSet* x, const ValueSet* y) {
                if (x->num.lo != y->num.lo) return x->num.lo < y->num.lo;
                return !x->num.loOpen && y->num.loOpen;
              });
    double reach = a.num.lo;
    // "Covered" here means: every needed point < reach is covered, and
    // reach itself is covered iff reachClosed.
    bool reachClosed = a.num.loOpen || a.excludesNumber(a.num.lo);
    for (const ValueSet* b : nums) {
      const Interval& iv = b->num;
      if (iv.hi < reach || (iv.hi == reach && iv.hiOpen && reachClosed)) {
        continue;
      }
      if (iv.lo > reach) return false;  // an uncovered open gap
      if (iv.lo == reach && !reachClosed && iv.loOpen) {
        if (!a.excludesNumber(reach)) return false;
        reachClosed = true;
      }
      if (iv.hi > reach || (iv.hi == reach && !iv.hiOpen)) {
        reach = iv.hi;
        reachClosed = !iv.hiOpen;
      }
    }
    if (reach < a.num.hi) return false;
    if (reach == a.num.hi && !a.num.hiOpen && !reachClosed &&
        !a.excludesNumber(reach)) {
      return false;
    }
    // Exclusion holes: a point some member excludes must be outside a's
    // set or inside another member's set.
    for (const ValueSet* b : sets) {
      for (double p : b->numExcluded) {
        if (!a.containsNumber(p)) continue;
        if (std::none_of(sets.begin(), sets.end(), [&](const ValueSet* o) {
              return o->containsNumber(p);
            })) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Is the premise cube `a` covered by the (exact) consequent cubes?
bool covered(const Cube& a, const CubeList& bs, EnvelopeCache& env) {
  for (const Cube& b : bs) {
    if (b.exact && cubeContained(a, b, env)) return true;
  }
  // Union refinement: consequent cubes constraining exactly ONE shared
  // attribute cover jointly (each admits every value of the others), so
  // `X < 5 || X >= 5`-style disjunctions decide.
  std::set<std::string> attrs;
  for (const Cube& b : bs) {
    if (b.exact && b.attrs.size() == 1) attrs.insert(b.attrs.begin()->first);
  }
  for (const std::string& attr : attrs) {
    std::vector<const ValueSet*> sets;
    for (const Cube& b : bs) {
      if (b.exact && b.attrs.size() == 1 &&
          b.attrs.begin()->first == attr) {
        sets.push_back(&b.attrs.begin()->second);
      }
    }
    const ValueSet proj = projection(a, attr, env);
    if (unionCovers(proj, sets)) return true;
  }
  return false;
}

// --- witness search --------------------------------------------------------

const ClassAd& emptyAd() {
  static const ClassAd kEmpty;
  return kEmpty;
}

void addNumberChoice(std::vector<Value>& out, double v) {
  if (std::isnan(v) || std::isinf(v)) return;
  // Prefer integral literals: they compare exactly and read naturally.
  if (v == std::floor(v) && std::abs(v) < kExactIntLimit) {
    out.push_back(Value::integer(static_cast<std::int64_t>(v)));
  } else {
    out.push_back(Value::real(v));
  }
}

/// Candidate values worth trying for one attribute, drawn from the value
/// set: boundaries, just-outside-boundaries, excluded points and their
/// neighbours — the places where two constraints disagree.
void choicesFromSet(const ValueSet& s, std::vector<Value>& out) {
  if (!s.num.empty()) {
    if (std::isfinite(s.num.lo)) {
      addNumberChoice(out, s.num.lo);
      addNumberChoice(out, s.num.lo + 1);
      addNumberChoice(out, s.num.lo - 1);
      addNumberChoice(out, s.num.lo + 0.5);
    }
    if (std::isfinite(s.num.hi)) {
      addNumberChoice(out, s.num.hi);
      addNumberChoice(out, s.num.hi + 1);
      addNumberChoice(out, s.num.hi - 1);
      addNumberChoice(out, s.num.hi - 0.5);
    }
    addNumberChoice(out, 0);
    addNumberChoice(out, 1);
  }
  for (double p : s.numExcluded) {
    addNumberChoice(out, p);
    addNumberChoice(out, p + 1);
  }
  for (const std::string& str : s.strs) out.push_back(Value::string(str));
  if (s.strMode == ValueSet::StrMode::Any) {
    out.push_back(Value::string("zz_witness"));
  }
  if (s.canTrue) out.push_back(Value::boolean(true));
  if (s.canFalse) out.push_back(Value::boolean(false));
}

}  // namespace

std::string_view toString(ImpliesVerdict v) noexcept {
  switch (v) {
    case ImpliesVerdict::Proven:
      return "proven";
    case ImpliesVerdict::Refuted:
      return "refuted";
    case ImpliesVerdict::Unknown:
      return "unknown";
  }
  return "unknown";
}

std::string_view toString(RelaxationVerdict v) noexcept {
  switch (v) {
    case RelaxationVerdict::StrictRelaxation:
      return "strict-relaxation";
    case RelaxationVerdict::Relaxation:
      return "relaxation";
    case RelaxationVerdict::Equivalent:
      return "equivalent";
    case RelaxationVerdict::NotRelaxation:
      return "not-a-relaxation";
    case RelaxationVerdict::Unknown:
      return "unknown";
  }
  return "unknown";
}

ImpliesResult implies(const ClassAd* selfA, const ExprPtr& a,
                      const ClassAd* selfB, const ExprPtr& b,
                      const ImpliesOptions& opts) {
  static const ExprPtr kTrue = makeLiteral(true);
  const ExprPtr rawA = a != nullptr ? a : kTrue;
  const ExprPtr rawB = b != nullptr ? b : kTrue;
  const ExprPtr fa = selfA != nullptr ? flatten(rawA, *selfA) : rawA;
  const ExprPtr fb = selfB != nullptr ? flatten(rawB, *selfB) : rawB;

  ImpliesResult res;
  const AnalysisEnv envA{selfA, opts.otherSchema, opts.exactSchemaValues};
  const AnalysisEnv envB{selfB, opts.otherSchema, opts.exactSchemaValues};

  const AbstractValue avB = abstractEval(*fb, envB);
  if (avB.onlyTrue()) {
    res.verdict = ImpliesVerdict::Proven;
    res.note = "consequent is always true";
    return res;
  }
  const AbstractValue avA = abstractEval(*fa, envA);
  if (!avA.mayBeTrue()) {
    res.verdict = ImpliesVerdict::Proven;
    res.note = "premise can never be true";
    return res;
  }

  BuildCtx ctxA{selfA, envA, /*premise=*/true, 0};
  CubeList dnfA = buildDnf(fa, ctxA, 0).value_or(topCube());
  BuildCtx ctxB{selfB, envB, /*premise=*/false, 0};
  std::optional<CubeList> dnfB = buildDnf(fb, ctxB, 0);

  EnvelopeCache env(opts.otherSchema, opts.exactSchemaValues);
  if (env.active()) {
    for (Cube& cube : dnfA) {
      for (auto& [attr, set] : cube.attrs) set.meetWith(env.of(attr));
    }
  }
  dnfA.erase(std::remove_if(dnfA.begin(), dnfA.end(),
                            [](const Cube& c) { return c.empty(); }),
             dnfA.end());
  if (dnfA.empty()) {
    res.verdict = ImpliesVerdict::Proven;
    res.note = "premise is unsatisfiable within the schema";
    return res;
  }

  if (dnfB.has_value()) {
    const bool allCovered =
        std::all_of(dnfA.begin(), dnfA.end(),
                    [&](const Cube& c) { return covered(c, *dnfB, env); });
    if (allCovered) {
      res.verdict = ImpliesVerdict::Proven;
      res.note = "every premise disjunct is contained in the consequent";
      return res;
    }
  }

  if (opts.maxWitnessTrials <= 0) {
    res.note = "containment not established (witness search disabled)";
    return res;
  }

  // --- counterexample search: assemble candidate ads from the places
  // where the two truth sets disagree, then confirm concretely. ---------
  std::set<std::string> attrs;
  {
    std::vector<std::string> names;
    collectAttrRefs(*fa, names);
    collectAttrRefs(*fb, names);
    for (std::string& n : names) attrs.insert(std::move(n));
    for (const Cube& c : dnfA) {
      for (const auto& [attr, set] : c.attrs) attrs.insert(attr);
    }
    if (dnfB) {
      for (const Cube& c : *dnfB) {
        for (const auto& [attr, set] : c.attrs) attrs.insert(attr);
      }
    }
  }

  // With a schema, the witness must stay inside the candidate population
  // the claim quantifies over: every schema attribute set to an in-domain
  // value (or omitted when the schema allows absence), attributes the
  // schema has never seen left out entirely.
  std::map<std::string, std::vector<std::optional<Value>>> choices;
  for (const std::string& attr : attrs) {
    std::vector<Value> pool;
    for (const Cube& c : dnfA) {
      auto it = c.attrs.find(attr);
      if (it != c.attrs.end()) choicesFromSet(it->second, pool);
    }
    if (dnfB) {
      for (const Cube& c : *dnfB) {
        auto it = c.attrs.find(attr);
        if (it != c.attrs.end()) choicesFromSet(it->second, pool);
      }
    }
    if (env.active()) choicesFromSet(env.of(attr), pool);
    addNumberChoice(pool, 64);
    pool.push_back(Value::string("zz_w2"));

    // The ValueSet abstraction forgets the integer/real split and string
    // case, but the schema's claim quantifies over its own (finer) domain
    // — filter through it directly, and seed its original-cased strings
    // so exact-mode string witnesses survive the filter.
    std::optional<AbstractValue> schemaDom;
    if (env.active()) {
      schemaDom = opts.otherSchema->domainOf(attr, opts.exactSchemaValues);
      if (const auto& strs = schemaDom->strings(); strs.has_value()) {
        for (const std::string& s : *strs) pool.push_back(Value::string(s));
      }
    }

    std::vector<std::optional<Value>> kept;
    const ValueSet& envelope = env.of(attr);  // top when no schema
    for (Value& v : pool) {
      if (!envelope.contains(v)) continue;
      if (schemaDom.has_value() && !schemaDom->contains(v)) continue;
      const bool dup = std::any_of(
          kept.begin(), kept.end(), [&](const std::optional<Value>& k) {
            return k.has_value() && k->isIdenticalTo(v);
          });
      if (!dup) kept.emplace_back(std::move(v));
      if (kept.size() >= 10) break;
    }
    if (!env.active() || envelope.undef) kept.emplace_back(std::nullopt);
    if (!kept.empty()) choices.emplace(attr, std::move(kept));
  }

  const ClassAd& sa = selfA != nullptr ? *selfA : emptyAd();
  const ClassAd& sb = selfB != nullptr ? *selfB : emptyAd();
  int trials = 0;
  auto tryWitness = [&](const std::map<std::string, Value>& assign) -> bool {
    if (trials >= opts.maxWitnessTrials) return false;
    ++trials;
    ClassAd w;
    for (const auto& [attr, v] : assign) w.insert(attr, LiteralExpr::make(v));
    if (!sa.evaluate(*fa, &w).isBooleanTrue()) return false;
    if (sb.evaluate(*fb, &w).isBooleanTrue()) return false;
    ImpliesResult refuted;
    refuted.verdict = ImpliesVerdict::Refuted;
    refuted.witness = std::move(w);
    refuted.note = "witness satisfies the premise but not the consequent";
    res = std::move(refuted);
    return true;
  };

  // Base assignment per premise cube (first in-cube choice per attr),
  // then single-attribute variations around it.
  for (const Cube& cube : dnfA) {
    std::map<std::string, Value> base;
    for (const auto& [attr, vs] : choices) {
      auto it = cube.attrs.find(attr);
      for (const std::optional<Value>& v : vs) {
        if (!v.has_value()) continue;
        if (it == cube.attrs.end() || it->second.contains(*v)) {
          base.emplace(attr, *v);
          break;
        }
      }
    }
    if (tryWitness(base)) return res;
    for (const auto& [attr, vs] : choices) {
      for (const std::optional<Value>& v : vs) {
        std::map<std::string, Value> varied = base;
        varied.erase(attr);
        if (v.has_value()) varied.emplace(attr, *v);
        if (tryWitness(varied)) return res;
      }
      if (trials >= opts.maxWitnessTrials) break;
    }
    if (trials >= opts.maxWitnessTrials) break;
  }

  res.note = "containment not established; no witness within budget";
  return res;
}

ImpliesResult implies(const ClassAd& self, const ExprPtr& a, const ExprPtr& b,
                      const ImpliesOptions& opts) {
  return implies(&self, a, &self, b, opts);
}

ImpliesResult unsatisfiable(const ClassAd* self, const ExprPtr& constraint,
                            const ImpliesOptions& opts) {
  static const ExprPtr kFalse = makeLiteral(false);
  ImpliesResult res = implies(self, constraint, nullptr, kFalse, opts);
  if (res.proven()) {
    res.note = "constraint is unsatisfiable: " + res.note;
  } else if (res.refuted()) {
    res.note = "constraint is satisfiable; witness attached";
  }
  return res;
}

RelaxationResult isRelaxationOf(const ClassAd& oldAd, const ClassAd& newAd,
                                const ImpliesOptions& opts) {
  const PreparedAd oldPrep =
      PreparedAd::prepare(std::make_shared<ClassAd>(oldAd));
  const PreparedAd newPrep =
      PreparedAd::prepare(std::make_shared<ClassAd>(newAd));
  static const ExprPtr kTrue = makeLiteral(true);
  const ExprPtr oldC = oldPrep.hasConstraint() ? oldPrep.constraint() : kTrue;
  const ExprPtr newC = newPrep.hasConstraint() ? newPrep.constraint() : kTrue;

  RelaxationResult out;
  const ImpliesResult fwd = implies(&oldAd, oldC, &newAd, newC, opts);
  if (fwd.refuted()) {
    out.verdict = RelaxationVerdict::NotRelaxation;
    out.witness = fwd.witness;
    out.note = "old admits the witness, new rejects it";
    return out;
  }
  if (!fwd.proven()) {
    out.note = "old => new undecided: " + fwd.note;
    return out;
  }
  const ImpliesResult back = implies(&newAd, newC, &oldAd, oldC, opts);
  if (back.refuted()) {
    out.verdict = RelaxationVerdict::StrictRelaxation;
    out.witness = back.witness;
    out.note = "new admits the witness, old rejects it";
    return out;
  }
  if (back.proven()) {
    out.verdict = RelaxationVerdict::Equivalent;
    out.note = "both constraints admit exactly the same candidates";
    return out;
  }
  out.verdict = RelaxationVerdict::Relaxation;
  out.note = "new provably admits everything old does; strictness unproven";
  return out;
}

std::vector<bool> redundantConjuncts(const ClassAd& self,
                                     const std::vector<ExprPtr>& conjuncts,
                                     const ImpliesOptions& opts) {
  std::vector<bool> elided(conjuncts.size(), false);
  if (conjuncts.empty() || conjuncts.size() > 16) return elided;
  ImpliesOptions cheap = opts;
  cheap.maxWitnessTrials = 0;
  static const ExprPtr kTrue = makeLiteral(true);
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    ExprPtr premise;
    for (std::size_t j = 0; j < conjuncts.size(); ++j) {
      if (j == i || elided[j]) continue;
      premise = premise == nullptr
                    ? conjuncts[j]
                    : BinaryExpr::make(BinOp::And, premise, conjuncts[j]);
    }
    if (premise == nullptr) premise = kTrue;
    if (implies(&self, premise, &self, conjuncts[i], cheap).proven()) {
      elided[i] = true;
    }
  }
  return elided;
}

}  // namespace classad::analysis
