#include "classad/analysis/schema.h"

#include <algorithm>

#include "classad/analysis/absint.h"

namespace classad::analysis {

std::size_t editDistance(std::string_view a, std::string_view b) {
  const std::string la = toLowerCopy(a);
  const std::string lb = toLowerCopy(b);
  const std::size_t n = la.size(), m = lb.size();
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (la[i - 1] == lb[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

void Schema::fold(const ClassAd& ad) {
  ++adCount_;
  // Each attribute is abstracted in its OWN ad's frame, against an
  // unconstrained match candidate — the folded domain must cover the
  // attribute's value against any partner the pool may later meet.
  AnalysisEnv env;
  env.self = &ad;
  for (const auto& [name, expr] : ad.attributes()) {
    const std::string lowered = toLowerCopy(name);
    AttrInfo& info = attrs_[lowered];
    if (info.definedIn == 0) info.spelling = name;
    ++info.definedIn;
    info.domain = info.domain.join(abstractEval(*expr, env));
  }
}

Schema Schema::fromAds(std::span<const ClassAdPtr> ads) {
  Schema s;
  for (const ClassAdPtr& ad : ads) {
    if (ad) s.fold(*ad);
  }
  return s;
}

Schema Schema::fromAds(std::span<const ClassAd> ads) {
  Schema s;
  for (const ClassAd& ad : ads) s.fold(ad);
  return s;
}

const AttrInfo* Schema::find(std::string_view lowered) const {
  const auto it = attrs_.find(std::string(lowered));
  return it == attrs_.end() ? nullptr : &it->second;
}

namespace {

/// Keeps the type structure of a domain but forgets the observed values:
/// per-type top for each reachable type.
AbstractValue widenValues(const AbstractValue& v) {
  static constexpr ValueType kAll[] = {
      ValueType::Undefined, ValueType::Error,  ValueType::Boolean,
      ValueType::Integer,   ValueType::Real,   ValueType::String,
      ValueType::List,      ValueType::Record,
  };
  AbstractValue out = AbstractValue::bottom();
  for (ValueType t : kAll) {
    if (v.types().has(t)) out = out.join(AbstractValue::ofType(t));
  }
  return out;
}

}  // namespace

AbstractValue Schema::domainOf(std::string_view lowered,
                               bool exactValues) const {
  const AttrInfo* info = find(lowered);
  if (info == nullptr) {
    // No ad defines the attribute: the misspelling signal.
    return AbstractValue::undefined();
  }
  AbstractValue d =
      exactValues ? info->domain : widenValues(info->domain);
  if (info->definedIn < adCount_) {
    d = d.join(AbstractValue::undefined());  // some ads lack it
  }
  return d;
}

std::optional<std::string> Schema::nearestName(
    std::string_view lowered) const {
  constexpr std::size_t kMaxDistance = 2;
  std::size_t best = kMaxDistance + 1;
  const AttrInfo* bestInfo = nullptr;
  for (const auto& [key, info] : attrs_) {
    if (key == lowered) continue;
    const std::size_t d = editDistance(key, lowered);
    if (d < best ||
        (d == best && bestInfo != nullptr &&
         info.spelling < bestInfo->spelling)) {
      best = d;
      bestInfo = &info;
    }
  }
  if (bestInfo == nullptr) return std::nullopt;
  return bestInfo->spelling;
}

void Schema::insert(std::string lowered, std::string spelling,
                    std::size_t definedIn, AbstractValue domain) {
  AttrInfo& info = attrs_[std::move(lowered)];
  if (info.definedIn == 0) info.spelling = std::move(spelling);
  info.definedIn += definedIn;
  info.domain = info.domain.join(domain);
}

std::vector<const AttrInfo*> Schema::sorted() const {
  std::vector<const AttrInfo*> out;
  out.reserve(attrs_.size());
  for (const auto& [key, info] : attrs_) out.push_back(&info);
  std::sort(out.begin(), out.end(),
            [](const AttrInfo* a, const AttrInfo* b) {
              return toLowerCopy(a->spelling) < toLowerCopy(b->spelling);
            });
  return out;
}

}  // namespace classad::analysis
