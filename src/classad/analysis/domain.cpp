#include "classad/analysis/domain.h"

#include <algorithm>
#include <cmath>

namespace classad::analysis {

namespace {

constexpr double kInf = Interval::kInf;

/// Endpoint product with the interval-arithmetic convention 0 * inf = 0:
/// an infinite endpoint is a limit, and whenever it matters some other
/// endpoint combination contributes the infinity.
double mulBound(double x, double y) noexcept {
  if (x == 0.0 || y == 0.0) return 0.0;
  return x * y;
}

}  // namespace

// ---------------------------------------------------------------------------
// TypeSet
// ---------------------------------------------------------------------------

std::string TypeSet::toString() const {
  static constexpr ValueType kAll[] = {
      ValueType::Undefined, ValueType::Error,  ValueType::Boolean,
      ValueType::Integer,   ValueType::Real,   ValueType::String,
      ValueType::List,      ValueType::Record,
  };
  std::string out;
  for (ValueType t : kAll) {
    if (!has(t)) continue;
    if (!out.empty()) out += '|';
    out += classad::toString(t);
  }
  return out.empty() ? "none" : out;
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

Interval Interval::meet(const Interval& o) const noexcept {
  Interval r;
  if (lo > o.lo || (lo == o.lo && loOpen)) {
    r.lo = lo;
    r.loOpen = loOpen;
  } else {
    r.lo = o.lo;
    r.loOpen = o.loOpen;
  }
  if (hi < o.hi || (hi == o.hi && hiOpen)) {
    r.hi = hi;
    r.hiOpen = hiOpen;
  } else {
    r.hi = o.hi;
    r.hiOpen = o.hiOpen;
  }
  return r;
}

Interval Interval::hull(const Interval& o) const noexcept {
  if (empty()) return o;
  if (o.empty()) return *this;
  Interval r;
  if (lo < o.lo || (lo == o.lo && !loOpen)) {
    r.lo = lo;
    r.loOpen = loOpen;
  } else {
    r.lo = o.lo;
    r.loOpen = o.loOpen;
  }
  if (hi > o.hi || (hi == o.hi && !hiOpen)) {
    r.hi = hi;
    r.hiOpen = hiOpen;
  } else {
    r.hi = o.hi;
    r.hiOpen = o.hiOpen;
  }
  return r;
}

bool Interval::entirelyBelow(const Interval& o) const noexcept {
  if (empty() || o.empty()) return true;
  if (hi < o.lo) return true;
  return hi == o.lo && (hiOpen || o.loOpen);
}

std::string Interval::toString() const {
  if (empty()) return "(empty)";
  auto num = [](double v) {
    if (v == kInf) return std::string("+inf");
    if (v == -kInf) return std::string("-inf");
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
      return std::to_string(static_cast<std::int64_t>(v));
    }
    return std::to_string(v);
  };
  return std::string(loOpen ? "(" : "[") + num(lo) + ", " + num(hi) +
         (hiOpen ? ")" : "]");
}

Interval intervalAdd(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::none();
  return {a.lo + b.lo, a.hi + b.hi, false, false};
}

Interval intervalSub(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::none();
  return {a.lo - b.hi, a.hi - b.lo, false, false};
}

Interval intervalNeg(const Interval& a) noexcept {
  if (a.empty()) return Interval::none();
  return {-a.hi, -a.lo, a.hiOpen, a.loOpen};
}

Interval intervalMul(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::none();
  const double p[4] = {mulBound(a.lo, b.lo), mulBound(a.lo, b.hi),
                       mulBound(a.hi, b.lo), mulBound(a.hi, b.hi)};
  const auto [mn, mx] = std::minmax_element(p, p + 4);
  return {*mn, *mx, false, false};
}

Interval intervalDiv(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::none();
  // A divisor interval straddling (or touching) zero makes the quotient
  // unbounded in both directions.
  if (b.contains(0.0) || (b.lo < 0.0 && b.hi > 0.0)) return Interval::all();
  const auto div = [](double x, double y) {
    if (std::isinf(x) && std::isinf(y)) return 0.0;  // limit convention
    if (std::isinf(y)) return 0.0;
    return x / y;
  };
  const double p[4] = {div(a.lo, b.lo), div(a.lo, b.hi), div(a.hi, b.lo),
                       div(a.hi, b.hi)};
  const auto [mn, mx] = std::minmax_element(p, p + 4);
  return {*mn, *mx, false, false};
}

// ---------------------------------------------------------------------------
// AbstractValue: construction and normalization
// ---------------------------------------------------------------------------

void AbstractValue::normalize() {
  if (!types_.has(ValueType::Boolean)) {
    canTrue_ = canFalse_ = false;
  } else if (!canTrue_ && !canFalse_) {
    canTrue_ = canFalse_ = true;  // "some boolean" with no flag info
  }
  if (!mayBeNumber()) {
    range_ = Interval::none();
  } else if (range_.empty()) {
    types_ = types_.without(ValueType::Integer).without(ValueType::Real);
    range_ = Interval::none();
  }
  if (!types_.has(ValueType::String)) {
    strings_ = std::vector<std::string>{};
  } else if (strings_.has_value()) {
    if (strings_->empty()) {
      types_ = types_.without(ValueType::String);
    } else {
      std::sort(strings_->begin(), strings_->end());
      strings_->erase(std::unique(strings_->begin(), strings_->end()),
                      strings_->end());
      if (strings_->size() > kMaxStrings) strings_.reset();  // widen
    }
  }
}

AbstractValue AbstractValue::top() {
  AbstractValue v;
  v.types_ = TypeSet::all();
  v.range_ = Interval::all();
  v.canTrue_ = v.canFalse_ = true;
  v.strings_.reset();  // any string
  return v;
}

AbstractValue AbstractValue::undefined() {
  AbstractValue v;
  v.types_ = TypeSet::of(ValueType::Undefined);
  return v;
}

AbstractValue AbstractValue::error() {
  AbstractValue v;
  v.types_ = TypeSet::of(ValueType::Error);
  return v;
}

AbstractValue AbstractValue::boolean(bool canTrue, bool canFalse) {
  AbstractValue v;
  if (canTrue || canFalse) {
    v.types_ = TypeSet::of(ValueType::Boolean);
    v.canTrue_ = canTrue;
    v.canFalse_ = canFalse;
  }
  return v;
}

AbstractValue AbstractValue::number(Interval range, bool canInt,
                                    bool canReal) {
  AbstractValue v;
  if (range.empty() || (!canInt && !canReal)) return v;
  if (canInt) v.types_ = v.types_.with(ValueType::Integer);
  if (canReal) v.types_ = v.types_.with(ValueType::Real);
  v.range_ = range;
  return v;
}

AbstractValue AbstractValue::anyString() {
  AbstractValue v;
  v.types_ = TypeSet::of(ValueType::String);
  v.strings_.reset();
  return v;
}

AbstractValue AbstractValue::stringSet(std::vector<std::string> values) {
  AbstractValue v;
  v.types_ = TypeSet::of(ValueType::String);
  v.strings_ = std::move(values);
  v.normalize();
  return v;
}

AbstractValue AbstractValue::ofType(ValueType t) {
  switch (t) {
    case ValueType::Undefined: return undefined();
    case ValueType::Error: return error();
    case ValueType::Boolean: return boolean(true, true);
    case ValueType::Integer: return number(Interval::all(), true, false);
    case ValueType::Real: return number(Interval::all(), false, true);
    case ValueType::String: return anyString();
    case ValueType::List:
    case ValueType::Record: {
      AbstractValue v;
      v.types_ = TypeSet::of(t);
      return v;
    }
  }
  return top();
}

AbstractValue AbstractValue::of(const Value& v) {
  switch (v.type()) {
    case ValueType::Undefined: return undefined();
    case ValueType::Error: return error();
    case ValueType::Boolean: return boolean(v.asBoolean(), !v.asBoolean());
    case ValueType::Integer:
      return number(Interval::point(static_cast<double>(v.asInteger())),
                    true, false);
    case ValueType::Real:
      if (std::isnan(v.asReal())) {
        return number(Interval::all(), false, true);
      }
      return number(Interval::point(v.asReal()), false, true);
    case ValueType::String: return stringSet({v.asString()});
    case ValueType::List: return ofType(ValueType::List);
    case ValueType::Record: return ofType(ValueType::Record);
  }
  return top();
}

// ---------------------------------------------------------------------------
// Lattice operations
// ---------------------------------------------------------------------------

AbstractValue AbstractValue::join(const AbstractValue& o) const {
  AbstractValue r;
  r.types_ = types_.unite(o.types_);
  r.range_ = range_.hull(o.range_);
  r.canTrue_ = canTrue_ || o.canTrue_;
  r.canFalse_ = canFalse_ || o.canFalse_;
  const bool left = types_.has(ValueType::String);
  const bool right = o.types_.has(ValueType::String);
  if (!left) {
    r.strings_ = o.strings_;
  } else if (!right) {
    r.strings_ = strings_;
  } else if (strings_.has_value() && o.strings_.has_value()) {
    std::vector<std::string> merged = *strings_;
    merged.insert(merged.end(), o.strings_->begin(), o.strings_->end());
    r.strings_ = std::move(merged);
  } else {
    r.strings_.reset();
  }
  r.normalize();
  return r;
}

bool AbstractValue::contains(const Value& v) const {
  switch (v.type()) {
    case ValueType::Undefined: return types_.has(ValueType::Undefined);
    case ValueType::Error: return types_.has(ValueType::Error);
    case ValueType::Boolean: return v.asBoolean() ? canTrue_ : canFalse_;
    case ValueType::Integer:
      return types_.has(ValueType::Integer) &&
             range_.contains(static_cast<double>(v.asInteger()));
    case ValueType::Real:
      if (!types_.has(ValueType::Real)) return false;
      // Documented hole: NaN (overflow arithmetic) counts as "any real".
      return std::isnan(v.asReal()) || range_.contains(v.asReal());
    case ValueType::String:
      if (!types_.has(ValueType::String)) return false;
      if (!strings_.has_value()) return true;
      return std::find(strings_->begin(), strings_->end(), v.asString()) !=
             strings_->end();
    case ValueType::List: return types_.has(ValueType::List);
    case ValueType::Record: return types_.has(ValueType::Record);
  }
  return false;
}

bool AbstractValue::mayBeNonBoolean() const noexcept {
  return mayBeNumber() || mayBeString() || types_.has(ValueType::List) ||
         types_.has(ValueType::Record);
}

std::optional<Value> AbstractValue::singleton() const {
  if (onlyUndefined()) return Value::undefined();
  if (onlyError()) return Value::error();
  if (types_.only(ValueType::Boolean) && canTrue_ != canFalse_) {
    return Value::boolean(canTrue_);
  }
  if (types_.only(ValueType::Integer) && range_.isPoint() &&
      range_.lo == std::floor(range_.lo)) {
    return Value::integer(static_cast<std::int64_t>(range_.lo));
  }
  if (types_.only(ValueType::Real) && range_.isPoint()) {
    return Value::real(range_.lo);
  }
  if (types_.only(ValueType::String) && strings_.has_value() &&
      strings_->size() == 1) {
    return Value::string(strings_->front());
  }
  return std::nullopt;
}

std::string AbstractValue::describe() const {
  if (isBottom()) return "none";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += '|';
    out += part;
  };
  if (types_.has(ValueType::Undefined)) append("undefined");
  if (types_.has(ValueType::Error)) append("error");
  if (types_.has(ValueType::Boolean)) {
    std::string b = "boolean{";
    if (canTrue_) b += "true";
    if (canTrue_ && canFalse_) b += ",";
    if (canFalse_) b += "false";
    append(b + "}");
  }
  if (mayBeNumber()) {
    std::string n;
    if (types_.has(ValueType::Integer)) n = "integer";
    if (types_.has(ValueType::Real)) n += n.empty() ? "real" : "|real";
    append(n + " in " + range_.toString());
  }
  if (types_.has(ValueType::String)) {
    if (!strings_.has_value()) {
      append("string");
    } else {
      std::string s = "string{";
      for (std::size_t i = 0; i < strings_->size(); ++i) {
        if (i) s += ",";
        s += '"' + (*strings_)[i] + '"';
      }
      append(s + "}");
    }
  }
  if (types_.has(ValueType::List)) append("list");
  if (types_.has(ValueType::Record)) append("classad");
  return out;
}

// ---------------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------------

namespace {

/// The numeric view of an operand after the classic-Condor bool-as-0/1
/// promotion (see promoteBool in expr.cpp): which numeric types are
/// reachable and within what interval.
struct NumericView {
  bool canInt = false;
  bool canReal = false;
  Interval range = Interval::none();
  bool possible() const noexcept { return canInt || canReal; }
};

NumericView numericView(const AbstractValue& v) {
  NumericView n;
  if (v.types().has(ValueType::Integer)) {
    n.canInt = true;
    n.range = n.range.hull(v.range());
  }
  if (v.types().has(ValueType::Real)) {
    n.canReal = true;
    n.range = n.range.hull(v.range());
  }
  if (v.types().has(ValueType::Boolean)) {
    n.canInt = true;
    if (v.mayBeFalse()) n.range = n.range.hull(Interval::point(0.0));
    if (v.mayBeTrue()) n.range = n.range.hull(Interval::point(1.0));
  }
  return n;
}

bool hasStructured(const AbstractValue& v) {
  return v.types().has(ValueType::String) || v.types().has(ValueType::List) ||
         v.types().has(ValueType::Record);
}

AbstractValue abstractArithmetic(BinOp op, const AbstractValue& a,
                                 const AbstractValue& b) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeError() || b.mayBeError()) r = r.join(AbstractValue::error());
  // Concretely, error on either side wins before undefined is considered:
  // undefined is reachable only when both sides can be non-error.
  if (!a.onlyError() && !b.onlyError() &&
      (a.mayBeUndefined() || b.mayBeUndefined())) {
    r = r.join(AbstractValue::undefined());
  }
  if (hasStructured(a) || hasStructured(b)) {
    r = r.join(AbstractValue::error());
  }
  const NumericView x = numericView(a);
  const NumericView y = numericView(b);
  if (!x.possible() || !y.possible()) return r;

  const bool bothInt = x.canInt && y.canInt;
  const bool anyReal = x.canReal || y.canReal;
  switch (op) {
    case BinOp::Add:
      r = r.join(AbstractValue::number(intervalAdd(x.range, y.range), bothInt,
                                       anyReal));
      break;
    case BinOp::Subtract:
      r = r.join(AbstractValue::number(intervalSub(x.range, y.range), bothInt,
                                       anyReal));
      break;
    case BinOp::Multiply:
      r = r.join(AbstractValue::number(intervalMul(x.range, y.range), bothInt,
                                       anyReal));
      break;
    case BinOp::Divide: {
      if (y.range.contains(0.0)) r = r.join(AbstractValue::error());
      Interval q = intervalDiv(x.range, y.range);
      if (bothInt && !q.empty() && !std::isinf(q.lo) && !std::isinf(q.hi)) {
        // Integer division truncates toward zero; widen the real-quotient
        // hull so every truncated result is covered.
        q = {std::floor(q.lo), std::ceil(q.hi), false, false};
      }
      // The divisor may have nonzero values even when 0 is possible.
      if (!(y.range.isPoint() && y.range.lo == 0.0)) {
        r = r.join(AbstractValue::number(q, bothInt, anyReal));
      }
      break;
    }
    case BinOp::Modulus: {
      if (anyReal) r = r.join(AbstractValue::error());
      if (x.canInt && y.canInt) {
        if (y.range.contains(0.0)) r = r.join(AbstractValue::error());
        if (!(y.range.isPoint() && y.range.lo == 0.0)) {
          // |a % b| < |b|, sign follows the dividend (C++ semantics).
          const double m =
              std::max(std::fabs(y.range.lo), std::fabs(y.range.hi));
          Interval mod = std::isinf(m)
                             ? Interval::all()
                             : Interval{-(m - 1), m - 1, false, false};
          r = r.join(AbstractValue::number(mod, true, false));
        }
      }
      break;
    }
    default:
      r = r.join(AbstractValue::error());
      break;
  }
  return r;
}

/// Possible outcomes of an abstract three-way comparison.
struct CmpOutcomes {
  bool less = false;
  bool equal = false;
  bool greater = false;
  bool any() const noexcept { return less || equal || greater; }
  void all() noexcept { less = equal = greater = true; }
};

CmpOutcomes intervalOutcomes(const Interval& a, const Interval& b) {
  CmpOutcomes o;
  if (a.empty() || b.empty()) return o;
  o.less = a.lo < b.hi;      // some x in A below some y in B
  o.greater = a.hi > b.lo;   // some x in A above some y in B
  o.equal = !a.disjoint(b);  // some common point
  return o;
}

AbstractValue outcomesToResult(BinOp op, const CmpOutcomes& o) {
  bool canTrue = false, canFalse = false;
  const auto fold = [&](bool outcomePossible, bool opTrueOnOutcome) {
    if (!outcomePossible) return;
    (opTrueOnOutcome ? canTrue : canFalse) = true;
  };
  const bool trueOnLess = op == BinOp::Less || op == BinOp::LessEq ||
                          op == BinOp::NotEqual;
  const bool trueOnGreater = op == BinOp::Greater || op == BinOp::GreaterEq ||
                             op == BinOp::NotEqual;
  const bool trueOnEqual = op == BinOp::Equal || op == BinOp::LessEq ||
                           op == BinOp::GreaterEq;
  fold(o.less, trueOnLess);
  fold(o.equal, trueOnEqual);
  fold(o.greater, trueOnGreater);
  return AbstractValue::boolean(canTrue, canFalse);
}

AbstractValue abstractRelational(BinOp op, const AbstractValue& a,
                                 const AbstractValue& b) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeUndefined() || b.mayBeUndefined()) {
    r = r.join(AbstractValue::undefined());
  }
  if (a.mayBeError() || b.mayBeError()) r = r.join(AbstractValue::error());

  const bool aNum = a.mayBeNumber(), bNum = b.mayBeNumber();
  const bool aBool = a.types().has(ValueType::Boolean);
  const bool bBool = b.types().has(ValueType::Boolean);
  const bool aStr = a.mayBeString(), bStr = b.mayBeString();
  const bool aStruct = a.types().has(ValueType::List) ||
                       a.types().has(ValueType::Record);
  const bool bStruct = b.types().has(ValueType::List) ||
                       b.types().has(ValueType::Record);

  // Numeric comparisons (including bool-vs-number promotion and
  // bool-vs-bool, which orders false < true exactly like 0 < 1).
  if ((aNum || aBool) && (bNum || bBool)) {
    const NumericView x = numericView(a);
    const NumericView y = numericView(b);
    r = r.join(outcomesToResult(op, intervalOutcomes(x.range, y.range)));
  }
  if (aStr && bStr) {
    CmpOutcomes o;
    const auto& sa = a.strings();
    const auto& sb = b.strings();
    if (sa.has_value() && sb.has_value() && sa->size() * sb->size() <= 64) {
      for (const std::string& x : *sa) {
        for (const std::string& y : *sb) {
          const int c = compareIgnoreCase(x, y);
          if (c < 0) o.less = true;
          else if (c > 0) o.greater = true;
          else o.equal = true;
        }
      }
    } else {
      o.all();
    }
    r = r.join(outcomesToResult(op, o));
  }
  // Incompatible cross-type pairings are comparison errors.
  const bool crossTypeError =
      (aNum && bStr) || (aStr && bNum) || (aBool && bStr) || (aStr && bBool) ||
      aStruct || bStruct;
  if (crossTypeError) r = r.join(AbstractValue::error());
  return r;
}

/// Reachable operand classes for the Kleene connectives.
struct TriSet {
  bool t = false, f = false, u = false, e = false;
};

TriSet triSet(const AbstractValue& v) {
  TriSet s;
  s.t = v.mayBeTrue();
  s.f = v.mayBeFalse();
  s.u = v.mayBeUndefined();
  s.e = v.mayBeError() || v.mayBeNonBoolean();
  return s;
}

enum class Tri { T, F, U, E };

Tri kleeneAnd(Tri x, Tri y) {
  if (x == Tri::F || y == Tri::F) return Tri::F;
  if (x == Tri::E || y == Tri::E) return Tri::E;
  if (x == Tri::U || y == Tri::U) return Tri::U;
  return Tri::T;
}

Tri kleeneOr(Tri x, Tri y) {
  if (x == Tri::T || y == Tri::T) return Tri::T;
  if (x == Tri::E || y == Tri::E) return Tri::E;
  if (x == Tri::U || y == Tri::U) return Tri::U;
  return Tri::F;
}

AbstractValue abstractKleene(BinOp op, const AbstractValue& a,
                             const AbstractValue& b) {
  const TriSet sa = triSet(a), sb = triSet(b);
  const auto possibles = [](const TriSet& s) {
    std::vector<Tri> out;
    if (s.t) out.push_back(Tri::T);
    if (s.f) out.push_back(Tri::F);
    if (s.u) out.push_back(Tri::U);
    if (s.e) out.push_back(Tri::E);
    return out;
  };
  AbstractValue r = AbstractValue::bottom();
  for (Tri x : possibles(sa)) {
    for (Tri y : possibles(sb)) {
      switch (op == BinOp::And ? kleeneAnd(x, y) : kleeneOr(x, y)) {
        case Tri::T: r = r.join(AbstractValue::boolean(true, false)); break;
        case Tri::F: r = r.join(AbstractValue::boolean(false, true)); break;
        case Tri::U: r = r.join(AbstractValue::undefined()); break;
        case Tri::E: r = r.join(AbstractValue::error()); break;
      }
    }
  }
  return r;
}

/// Could a value drawn from `a` be isIdenticalTo some value from `b`?
bool identityOverlapPossible(const AbstractValue& a, const AbstractValue& b) {
  const TypeSet common = a.types().intersect(b.types());
  if (common.empty()) return false;
  if (common.has(ValueType::Undefined) || common.has(ValueType::Error) ||
      common.has(ValueType::List) || common.has(ValueType::Record)) {
    return true;
  }
  if (common.has(ValueType::Boolean) &&
      ((a.mayBeTrue() && b.mayBeTrue()) ||
       (a.mayBeFalse() && b.mayBeFalse()))) {
    return true;
  }
  if ((common.has(ValueType::Integer) || common.has(ValueType::Real)) &&
      !a.range().disjoint(b.range())) {
    return true;
  }
  if (common.has(ValueType::String)) {
    const auto& sa = a.strings();
    const auto& sb = b.strings();
    if (!sa.has_value() || !sb.has_value()) return true;
    for (const std::string& x : *sa) {
      // `is` compares strings case-SENSITIVELY, unlike ==.
      if (std::find(sb->begin(), sb->end(), x) != sb->end()) return true;
    }
    return false;
  }
  return false;
}

AbstractValue abstractIdentity(BinOp op, const AbstractValue& a,
                               const AbstractValue& b) {
  // `is`/`isnt` always produce a boolean (Section 3.2), never
  // undefined/error — identity is decided, not propagated.
  bool canIdentical = identityOverlapPossible(a, b);
  bool canDifferent = true;
  const auto sa = a.singleton();
  const auto sb = b.singleton();
  if (sa.has_value() && sb.has_value()) {
    canIdentical = sa->isIdenticalTo(*sb);
    canDifferent = !canIdentical;
  }
  if (op == BinOp::IsNot) std::swap(canIdentical, canDifferent);
  return AbstractValue::boolean(canIdentical, canDifferent);
}

}  // namespace

AbstractValue AbstractValue::applyUnary(UnOp op, const AbstractValue& a) {
  AbstractValue r = bottom();
  switch (op) {
    case UnOp::Not:
      if (a.mayBeError()) r = r.join(error());
      if (a.mayBeUndefined()) r = r.join(undefined());
      if (a.mayBeTrue()) r = r.join(boolean(false, true));
      if (a.mayBeFalse()) r = r.join(boolean(true, false));
      if (a.mayBeNonBoolean()) r = r.join(error());
      return r;
    case UnOp::Minus:
    case UnOp::Plus: {
      if (a.mayBeError()) r = r.join(error());
      if (a.mayBeUndefined()) r = r.join(undefined());
      // Unary +/- do NOT promote booleans (see UnaryExpr::evaluate).
      if (a.types().has(ValueType::Boolean) || hasStructured(a)) {
        r = r.join(error());
      }
      if (a.mayBeNumber()) {
        const Interval v =
            op == UnOp::Minus ? intervalNeg(a.range()) : a.range();
        r = r.join(number(v, a.types().has(ValueType::Integer),
                          a.types().has(ValueType::Real)));
      }
      return r;
    }
  }
  return top();
}

AbstractValue AbstractValue::applyBinary(BinOp op, const AbstractValue& a,
                                         const AbstractValue& b) {
  if (a.isBottom() || b.isBottom()) return bottom();
  switch (op) {
    case BinOp::Add:
    case BinOp::Subtract:
    case BinOp::Multiply:
    case BinOp::Divide:
    case BinOp::Modulus:
      return abstractArithmetic(op, a, b);
    case BinOp::Less:
    case BinOp::LessEq:
    case BinOp::Greater:
    case BinOp::GreaterEq:
    case BinOp::Equal:
    case BinOp::NotEqual:
      return abstractRelational(op, a, b);
    case BinOp::And:
    case BinOp::Or:
      return abstractKleene(op, a, b);
    case BinOp::Is:
    case BinOp::IsNot:
      return abstractIdentity(op, a, b);
  }
  return top();
}

}  // namespace classad::analysis
