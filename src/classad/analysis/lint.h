// lint.h - The lint layer: turns the abstract interpreter's verdicts into
// actionable findings on whole ads.
//
// The catalogue (see docs/ANALYSIS.md):
//   errors   — findings that make the ad useless as written: a constraint
//              conjunct that can never be true (statically unsatisfiable,
//              always-false, always-error, or contradictory with a sibling
//              conjunct), a call to an unknown function, an attribute that
//              always evaluates to error.
//   warnings — findings that deserve a look but may be intentional: a
//              reference to an attribute no pool ad defines (probable
//              misspelling, with a nearest-name suggestion), a conjunct
//              that is always undefined, a tautological conjunct.
//
// mm_lint, matchmakerd's advertising boundary, and matchmaker::diagnose
// all run this same pass.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "classad/analysis/absint.h"
#include "classad/analysis/schema.h"
#include "classad/classad.h"

namespace classad::analysis {

enum class LintCode : std::uint8_t {
  UnknownFunction,    ///< call target not in the builtin table (error)
  UnknownAttribute,   ///< other-ref absent from the pool schema (warning)
  AlwaysUndefined,    ///< conjunct can only be undefined (warning)
  AlwaysError,        ///< conjunct/attribute can only be error (error)
  NeverTrue,          ///< conjunct can never be boolean true (error)
  Contradiction,      ///< two conjuncts jointly unsatisfiable (error)
  Tautology,          ///< conjunct is always true: dead weight (warning)
  SubsumedConjunct,   ///< conjunct implied by a sibling: dead weight (warning)
  SchemaImplied,      ///< every pool ad already satisfies it (warning)
  RankGuardConflict,  ///< Rank guard unreachable under Requirements (warning)
};

std::string_view toString(LintCode code) noexcept;

enum class Severity : std::uint8_t { Warning, Error };

std::string_view toString(Severity s) noexcept;

struct LintFinding {
  LintCode code;
  Severity severity;
  std::string attribute;   ///< ad attribute the finding is in
  std::string expr;        ///< offending (sub)expression, source form
  std::string message;     ///< human-readable explanation
  std::string suggestion;  ///< nearest-name hint, "" if none

  /// One-line rendering: "error[never-true] Constraint: ... — ...".
  std::string toString() const;
};

struct LintReport {
  std::vector<LintFinding> findings;

  std::size_t warnings() const;
  std::size_t errors() const;
  bool hasErrors() const { return errors() > 0; }
  bool empty() const { return findings.empty(); }
  std::string toString() const;
};

struct LintOptions {
  /// Pool schema the candidate side is checked against; null or empty
  /// disables schema-dependent findings (UnknownAttribute, and any verdict
  /// that depends on what `other` can be).
  const Schema* otherSchema = nullptr;
  /// Treat schema value domains as exhaustive (see Schema::domainOf).
  bool exactSchemaValues = false;
  /// Attributes treated as match constraints (conjunct-level analysis).
  std::vector<std::string> constraintAttrs = {"Constraint", "Requirements"};
  /// Attributes whose embedded guards (ternary conditions, boolean
  /// factors) are checked for contradiction with the constraint.
  std::vector<std::string> rankAttrs = {"Rank"};
  /// Run the implication-prover checks (SubsumedConjunct, SchemaImplied,
  /// RankGuardConflict). Cheap — the prover runs without witness search —
  /// but off-switchable for hot paths that only need the absint verdicts.
  bool proverChecks = true;
};

/// Renders findings as one JSON object per line (mm_lint -json): keys
/// `severity`, `code`, `attribute`, `expr`, `message`, `suggestion`, plus
/// the caller-supplied `source` (file or ad key; omitted when empty).
std::string toJsonLines(const LintReport& report, std::string_view source);

/// Lints a whole ad: reference checks on every attribute, conjunct-level
/// verdicts + cross-conjunct contradiction detection on the constraint
/// attributes.
LintReport lintAd(const ClassAd& ad, const LintOptions& opts = {});

/// Lints one constraint expression in the frame of `self` (the entry point
/// matchmaker::diagnose uses). `attrName` labels the findings.
LintReport lintConstraint(const ClassAd& self, const Expr& constraint,
                          std::string_view attrName,
                          const LintOptions& opts = {});

/// The static verdict on a single conjunct, derived from its abstract
/// value. `Unknown` means the static pass cannot decide and a dynamic
/// (per-ad) evaluation is needed.
enum class ConjunctVerdict : std::uint8_t {
  Unknown,
  AlwaysTrue,
  AlwaysUndefined,  ///< only undefined is reachable
  AlwaysError,      ///< only error is reachable
  NeverTrue,        ///< true unreachable, mixed other outcomes
};

std::string_view toString(ConjunctVerdict v) noexcept;

ConjunctVerdict classifyConjunct(const AbstractValue& v);

/// Splits an expression into its effective top-level conjuncts:
///   - `a && b` descends both sides (parenthesization is transparent);
///   - a ternary guard `c ? t : false` contributes the conjuncts of both
///     `c` and `t` (the expression is true exactly when both are);
///   - `c ? true : false` contributes the conjuncts of `c`;
///   - literal `true` conjuncts are dropped.
/// A non-decomposable root yields itself. Shared by the static lint and
/// the dynamic diagnoser so both agree on conjunct boundaries.
std::vector<ExprPtr> splitConjuncts(const ExprPtr& expr);

/// Splits a file's text into top-level `[ ... ]` ad blocks (bracket-aware,
/// string-literal-aware; `#` and `//` begin comments outside blocks).
/// Malformed trailing text is returned as a final (unparsable) block so
/// the caller reports it.
std::vector<std::string> splitAdBlocks(std::string_view text);

}  // namespace classad::analysis
