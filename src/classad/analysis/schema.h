// schema.h - The schema inferencer: folds a set of ads (a pool snapshot,
// or example ads) into an attribute -> type/domain summary.
//
// Ads in a pool exhibit the *structural regularity* Section 5 observes:
// machine ads all define Arch, OpSys, Memory, ... with values of the same
// types. The schema makes that regularity explicit so the static analyzer
// can answer, with no candidate ad in hand, "what could `other.Memory`
// possibly be?" — and so a reference to an attribute NO ad defines can be
// reported as a probable misspelling, with a nearest-name suggestion.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classad/analysis/domain.h"
#include "classad/classad.h"

namespace classad::analysis {

/// Per-attribute summary over the folded ads.
struct AttrInfo {
  std::string spelling;       ///< original case of the first occurrence
  std::size_t definedIn = 0;  ///< number of ads defining the attribute
  /// Join of the attribute's abstract value across the ads (each ad's
  /// expression abstractly evaluated in its own frame with an
  /// unconstrained match candidate).
  AbstractValue domain = AbstractValue::bottom();
};

class Schema {
 public:
  Schema() = default;

  /// Folds the given ads. Null entries are skipped.
  static Schema fromAds(std::span<const ClassAdPtr> ads);
  static Schema fromAds(std::span<const ClassAd> ads);

  std::size_t adCount() const noexcept { return adCount_; }
  /// A schema folded from zero ads carries no information; callers treat
  /// it as "no schema" rather than "every reference is undefined".
  bool empty() const noexcept { return adCount_ == 0; }
  std::size_t attributeCount() const noexcept { return attrs_.size(); }

  const AttrInfo* find(std::string_view lowered) const;

  /// The abstract value of `other.<name>` against this schema:
  ///   - attribute unknown: `undefined` only (the misspelling signal);
  ///   - `exactValues`: the folded domain, plus `undefined` when some ad
  ///     lacks the attribute;
  ///   - otherwise (the default for lint): the folded TYPE set with the
  ///     value component widened to top. Pools are open-world — tomorrow's
  ///     machine may have Memory = 512 — so treating observed values as
  ///     exhaustive would fabricate tautologies/contradictions. Types are
  ///     kept: they are the stable, structural part of the regularity.
  AbstractValue domainOf(std::string_view lowered, bool exactValues) const;

  /// Nearest defined attribute name within Levenshtein distance 2 (ties
  /// broken by distance, then alphabetically). The misspelling suggester.
  std::optional<std::string> nearestName(std::string_view lowered) const;

  /// Attributes sorted by (lowered) name, for reports and tools.
  std::vector<const AttrInfo*> sorted() const;

  /// Reconstruction hooks for the federation digest (src/federation/):
  /// installs one attribute row directly, joining with any existing row
  /// under the same lowered name. `lowered` must be the lowercase of
  /// `spelling` — the invariant fold() maintains.
  void insert(std::string lowered, std::string spelling,
              std::size_t definedIn, AbstractValue domain);
  void setAdCount(std::size_t n) noexcept { adCount_ = n; }

 private:
  void fold(const ClassAd& ad);

  std::unordered_map<std::string, AttrInfo> attrs_;  // lowered -> info
  std::size_t adCount_ = 0;
};

/// Edit distance used by the suggester (insert/delete/substitute, cost 1
/// each, case-insensitive).
std::size_t editDistance(std::string_view a, std::string_view b);

}  // namespace classad::analysis
