// domain.h - The abstract domain of the ClassAd static analyzer.
//
// Section 5 of the paper asks for "identifying constraints which can never
// be satisfied by the pool". The dynamic diagnoser (matchmaker/analysis.*)
// answers that by evaluating against every ad; this domain lets us answer
// a stronger question with NO candidate ad at all: over-approximate, per
// subexpression, the set of values an expression may evaluate to, and
// propagate that set through the strict/non-strict operator tables of
// Section 3.2.
//
// An AbstractValue is a superset of the possible concrete Values:
//   - a TypeSet saying which ValueTypes are reachable (including the
//     distinguished `undefined` and `error` constants, so three-valued
//     reachability is part of the lattice, not a side channel);
//   - a numeric interval bounding any integer/real outcome;
//   - the reachable boolean constants (true / false separately, so the
//     Kleene connectives stay precise);
//   - an optional finite set of reachable strings (absent = any string).
//
// Soundness contract (property-tested in analysis_soundness_test.cpp):
// for every expression e, environment env and candidate ad, the concrete
// evaluation of e lies in abstractEval(e, env).contains(). Transfer
// functions may lose precision, never possibilities. One documented hole:
// IEEE NaN from overflow arithmetic (inf - inf) is treated as "any real".
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "classad/expr.h"
#include "classad/value.h"

namespace classad::analysis {

/// A set of ValueTypes, as a bitmask. The lattice's "shape" component.
class TypeSet {
 public:
  constexpr TypeSet() = default;

  static constexpr unsigned bit(ValueType t) noexcept {
    return 1u << static_cast<unsigned>(t);
  }
  static TypeSet of(ValueType t) noexcept { return TypeSet(bit(t)); }
  static TypeSet none() noexcept { return TypeSet(0); }
  static TypeSet all() noexcept { return TypeSet(0xFFu); }

  bool has(ValueType t) const noexcept { return (mask_ & bit(t)) != 0; }
  bool empty() const noexcept { return mask_ == 0; }
  /// True iff the set is exactly {t}.
  bool only(ValueType t) const noexcept { return mask_ == bit(t); }

  TypeSet unite(TypeSet o) const noexcept { return TypeSet(mask_ | o.mask_); }
  TypeSet intersect(TypeSet o) const noexcept {
    return TypeSet(mask_ & o.mask_);
  }
  TypeSet with(ValueType t) const noexcept { return TypeSet(mask_ | bit(t)); }
  TypeSet without(ValueType t) const noexcept {
    return TypeSet(mask_ & ~bit(t));
  }
  bool subsetOf(TypeSet o) const noexcept {
    return (mask_ & ~o.mask_) == 0;
  }
  bool operator==(const TypeSet& o) const noexcept = default;

  /// "integer|real|undefined" — for findings and debugging.
  std::string toString() const;

 private:
  explicit constexpr TypeSet(unsigned mask) : mask_(mask) {}
  unsigned mask_ = 0;
};

/// A (possibly open-ended) interval over the reals, bounding numeric
/// outcomes. Endpoint openness is tracked so that integer-style
/// constraints like `x > 64 && x < 65` are decided exactly.
struct Interval {
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  double lo = -kInf;
  double hi = kInf;
  bool loOpen = false;  ///< lo itself excluded
  bool hiOpen = false;  ///< hi itself excluded

  static Interval all() noexcept { return {}; }
  static Interval point(double v) noexcept { return {v, v, false, false}; }
  static Interval atLeast(double v, bool open) noexcept {
    return {v, kInf, open, false};
  }
  static Interval atMost(double v, bool open) noexcept {
    return {-kInf, v, false, open};
  }
  /// The canonical empty interval.
  static Interval none() noexcept { return {kInf, -kInf, true, true}; }

  bool empty() const noexcept {
    return lo > hi || (lo == hi && (loOpen || hiOpen));
  }
  bool isPoint() const noexcept { return lo == hi && !loOpen && !hiOpen; }
  bool contains(double v) const noexcept {
    if (v < lo || (v == lo && loOpen)) return false;
    if (v > hi || (v == hi && hiOpen)) return false;
    return true;
  }
  /// Greatest lower bound of the pair (set intersection).
  Interval meet(const Interval& o) const noexcept;
  /// Convex hull (the interval join — may include values in neither).
  Interval hull(const Interval& o) const noexcept;

  /// True iff every x in *this is strictly less than every y in `o`
  /// (empty intervals compare vacuously true).
  bool entirelyBelow(const Interval& o) const noexcept;
  /// True iff the two intervals share no point.
  bool disjoint(const Interval& o) const noexcept {
    return meet(o).empty();
  }

  std::string toString() const;
};

// Interval arithmetic (convex hulls; openness is dropped — results are
// closed over-approximations, which is all the interpreter needs).
Interval intervalAdd(const Interval& a, const Interval& b) noexcept;
Interval intervalSub(const Interval& a, const Interval& b) noexcept;
Interval intervalMul(const Interval& a, const Interval& b) noexcept;
Interval intervalNeg(const Interval& a) noexcept;
/// Quotient hull; callers must add `error` reachability separately when
/// the divisor may be zero. A divisor interval straddling zero widens the
/// result to all().
Interval intervalDiv(const Interval& a, const Interval& b) noexcept;

/// An over-approximation of the set of Values an expression may produce.
class AbstractValue {
 public:
  /// Everything: any type, any value. The lattice top, and the safe
  /// answer whenever the analyzer cannot do better.
  static AbstractValue top();
  /// Nothing (identity of join). Never the result of analyzing a real
  /// expression — evaluation is total.
  static AbstractValue bottom() { return AbstractValue(); }

  static AbstractValue undefined();
  static AbstractValue error();
  static AbstractValue boolean(bool canTrue, bool canFalse);
  static AbstractValue number(Interval range, bool canInt, bool canReal);
  static AbstractValue integer(Interval range) {
    return number(range, true, false);
  }
  static AbstractValue anyString();
  static AbstractValue stringSet(std::vector<std::string> values);
  static AbstractValue ofType(ValueType t);

  /// The singleton abstraction of a concrete value (lists and records
  /// abstract to their type only).
  static AbstractValue of(const Value& v);

  // --- lattice ------------------------------------------------------------

  /// Least upper bound: the union of possibilities.
  AbstractValue join(const AbstractValue& o) const;

  /// Soundness predicate: may this abstract value describe `v`?
  bool contains(const Value& v) const;

  // --- inspection ----------------------------------------------------------

  const TypeSet& types() const noexcept { return types_; }
  const Interval& range() const noexcept { return range_; }
  bool mayBeTrue() const noexcept { return canTrue_; }
  bool mayBeFalse() const noexcept { return canFalse_; }
  bool mayBeUndefined() const noexcept {
    return types_.has(ValueType::Undefined);
  }
  bool mayBeError() const noexcept { return types_.has(ValueType::Error); }
  bool mayBeNumber() const noexcept {
    return types_.has(ValueType::Integer) || types_.has(ValueType::Real);
  }
  bool mayBeString() const noexcept { return types_.has(ValueType::String); }
  /// May the value be something other than a boolean/undefined/error —
  /// i.e. a type-error operand for the Kleene connectives?
  bool mayBeNonBoolean() const noexcept;

  bool isBottom() const noexcept { return types_.empty(); }
  bool onlyUndefined() const noexcept {
    return types_.only(ValueType::Undefined);
  }
  bool onlyError() const noexcept { return types_.only(ValueType::Error); }
  bool onlyTrue() const noexcept {
    return types_.only(ValueType::Boolean) && canTrue_ && !canFalse_;
  }
  bool onlyFalse() const noexcept {
    return types_.only(ValueType::Boolean) && canFalse_ && !canTrue_;
  }
  /// The match-killing classification: can this expression EVER produce
  /// boolean true? (Section 3.2: a constraint that does not evaluate to
  /// true fails the match — undefined and error included.)
  bool canSatisfyConstraint() const noexcept { return canTrue_; }

  /// Finite string domain; nullopt = unconstrained (any string). Only
  /// meaningful when types() includes String.
  const std::optional<std::vector<std::string>>& strings() const noexcept {
    return strings_;
  }

  /// If this abstracts exactly one concrete scalar value, returns it.
  std::optional<Value> singleton() const;

  /// "boolean{true}|undefined" / "integer|real in [64, +inf)" — findings.
  std::string describe() const;

  // --- transfer functions ---------------------------------------------------

  /// Abstract counterpart of UnaryExpr::evaluate.
  static AbstractValue applyUnary(UnOp op, const AbstractValue& a);
  /// Abstract counterpart of BinaryExpr::apply (the strict arithmetic /
  /// comparison tables and the non-strict Kleene connectives of §3.2).
  static AbstractValue applyBinary(BinOp op, const AbstractValue& a,
                                   const AbstractValue& b);

 private:
  AbstractValue() = default;
  void normalize();

  TypeSet types_;
  Interval range_ = Interval::none();
  bool canTrue_ = false;
  bool canFalse_ = false;
  std::optional<std::vector<std::string>> strings_{
      std::vector<std::string>{}};  // empty set (bottom), not "any"

  /// Finite string sets wider than this widen to "any string".
  static constexpr std::size_t kMaxStrings = 24;
};

}  // namespace classad::analysis
