// implies.h - A sound implication prover over ClassAd boolean expressions.
//
// The bilateral `Requirements` semantics of Section 2 make one question
// central to matchmaking policy work: does constraint A admit everything
// that constraint B admits? The dynamic diagnoser answers it ad by ad;
// this module answers it symbolically, with no candidate in hand, by
// normalizing both sides into disjuncts of per-attribute value-set atoms
// (intervals, finite string sets, boolean points, undefined-ness) over
// the PR 3 abstract domain and deciding containment per atom.
//
// Three-valued verdicts, three guarantees:
//   Proven   — sound: for EVERY candidate ad consistent with the schema
//              (any ad at all when no schema is given) on which A
//              evaluates to boolean true, B also evaluates to true. The
//              premise side may be over-approximated and the consequent
//              side under-approximated during normalization, so Proven
//              never over-claims; precision is what is lost.
//   Refuted  — constructive: `witness` is a concrete candidate ad on
//              which A concretely evaluates to true and B does not. The
//              witness is re-evaluated before the verdict is issued, so a
//              Refuted answer is never wrong.
//   Unknown  — the normalizer met a shape it cannot atomize exactly
//              (string order comparisons, candidate-vs-candidate
//              relations, negated ternaries, ...) and no witness was
//              found within the trial budget.
//
// One scope caveat, shared with every static pass in this directory: the
// atoms quantify over the VALUES candidate attributes evaluate to. When
// the two sides live in different self frames (isRelaxationOf compares an
// old and a new request ad), a candidate attribute defined as an
// expression over `other.*` could evaluate differently against the two
// frames; machine-ad attributes are literal-valued in practice, and the
// proofs are exact for any candidate whose referenced attributes evaluate
// frame-independently. docs/ANALYSIS.md spells this out.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "classad/analysis/schema.h"
#include "classad/classad.h"
#include "classad/expr.h"

namespace classad::analysis {

enum class ImpliesVerdict : std::uint8_t { Proven, Refuted, Unknown };

std::string_view toString(ImpliesVerdict v) noexcept;

struct ImpliesOptions {
  /// Candidate population the claim quantifies over; null or empty means
  /// "any ad at all". With a schema, Proven speaks only for candidates
  /// whose attribute values lie in the schema's domains, and Refuted
  /// witnesses are built inside those domains.
  const Schema* otherSchema = nullptr;
  /// Treat the schema's observed value domains as exhaustive (see
  /// Schema::domainOf). Off = open-world types-only envelopes.
  bool exactSchemaValues = false;
  /// Budget for the counterexample search; 0 disables it entirely (the
  /// cheap prepare-time mode: Proven or Unknown, never Refuted).
  int maxWitnessTrials = 64;
};

struct ImpliesResult {
  ImpliesVerdict verdict = ImpliesVerdict::Unknown;
  /// Set exactly when `verdict == Refuted`: a candidate ad on which the
  /// premise concretely evaluates to true and the consequent does not.
  std::optional<ClassAd> witness;
  /// Human-readable one-liner explaining how the verdict was reached.
  std::string note;

  bool proven() const noexcept { return verdict == ImpliesVerdict::Proven; }
  bool refuted() const noexcept { return verdict == ImpliesVerdict::Refuted; }
};

/// Does `a` (in the frame of `selfA`) imply `b` (in the frame of `selfB`)
/// for every candidate ad consistent with `opts`? Either self may be null
/// (expression-only mode). Null expressions count as literal `true`.
ImpliesResult implies(const ClassAd* selfA, const ExprPtr& a,
                      const ClassAd* selfB, const ExprPtr& b,
                      const ImpliesOptions& opts = {});

/// Common case: both sides live in the same ad's frame.
ImpliesResult implies(const ClassAd& self, const ExprPtr& a, const ExprPtr& b,
                      const ImpliesOptions& opts = {});

/// Can `constraint` be satisfied by any candidate consistent with `opts`?
/// Proven = statically unsatisfiable (implies(constraint, false));
/// Refuted = satisfiable, with a concrete satisfying candidate as the
/// witness. This is the federation flock-targeting primitive: a resource
/// ad whose admissibility is Proven-unsatisfiable against a peer's demand
/// digest cannot match there, so flocking it is pure waste.
ImpliesResult unsatisfiable(const ClassAd* self, const ExprPtr& constraint,
                            const ImpliesOptions& opts = {});

enum class RelaxationVerdict : std::uint8_t {
  StrictRelaxation,  ///< new admits everything old does, plus a witness more
  Relaxation,        ///< new admits everything old does; strictness unknown
  Equivalent,        ///< both constraints admit exactly the same candidates
  NotRelaxation,     ///< witness: admitted by old, rejected by new
  Unknown,
};

std::string_view toString(RelaxationVerdict v) noexcept;

struct RelaxationResult {
  RelaxationVerdict verdict = RelaxationVerdict::Unknown;
  /// NotRelaxation: a candidate old admits and new rejects.
  /// StrictRelaxation: a candidate new admits and old rejects.
  std::optional<ClassAd> witness;
  std::string note;
};

/// Is `newAd`'s effective constraint a relaxation (admitted-set superset)
/// of `oldAd`'s? The ROADMAP item-5 verification primitive: a constraint
/// relaxation step is only safe when it provably widens the admitted set.
RelaxationResult isRelaxationOf(const ClassAd& oldAd, const ClassAd& newAd,
                                const ImpliesOptions& opts = {});

/// Marks conjuncts provably implied by the conjunction of the OTHER
/// (still-kept) conjuncts — their truth set adds nothing, so guard
/// derivation may skip them. Processes in order, removing as it goes, so
/// of two mutually-implied conjuncts exactly one survives. All conjuncts
/// must live in the frame of `self`. Witness search is never used here.
std::vector<bool> redundantConjuncts(const ClassAd& self,
                                     const std::vector<ExprPtr>& conjuncts,
                                     const ImpliesOptions& opts = {});

}  // namespace classad::analysis
