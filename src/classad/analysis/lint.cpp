#include "classad/analysis/lint.h"

#include <algorithm>
#include <unordered_map>

#include "classad/analysis/implies.h"
#include "classad/analysis/refs.h"
#include "classad/json.h"

namespace classad::analysis {

std::string_view toString(LintCode code) noexcept {
  switch (code) {
    case LintCode::UnknownFunction: return "unknown-function";
    case LintCode::UnknownAttribute: return "unknown-attribute";
    case LintCode::AlwaysUndefined: return "always-undefined";
    case LintCode::AlwaysError: return "always-error";
    case LintCode::NeverTrue: return "never-true";
    case LintCode::Contradiction: return "contradiction";
    case LintCode::Tautology: return "tautology";
    case LintCode::SubsumedConjunct: return "subsumed-conjunct";
    case LintCode::SchemaImplied: return "schema-implied";
    case LintCode::RankGuardConflict: return "rank-guard-conflict";
  }
  return "?";
}

std::string_view toString(Severity s) noexcept {
  return s == Severity::Error ? "error" : "warning";
}

std::string_view toString(ConjunctVerdict v) noexcept {
  switch (v) {
    case ConjunctVerdict::Unknown: return "unknown";
    case ConjunctVerdict::AlwaysTrue: return "always-true";
    case ConjunctVerdict::AlwaysUndefined: return "always-undefined";
    case ConjunctVerdict::AlwaysError: return "always-error";
    case ConjunctVerdict::NeverTrue: return "never-true";
  }
  return "?";
}

std::string LintFinding::toString() const {
  std::string out(analysis::toString(severity));
  out += '[';
  out += analysis::toString(code);
  out += "] ";
  if (!attribute.empty()) {
    out += attribute;
    out += ": ";
  }
  if (!expr.empty()) {
    out += '\'';
    out += expr;
    out += "' — ";
  }
  out += message;
  if (!suggestion.empty()) {
    out += " (did you mean '";
    out += suggestion;
    out += "'?)";
  }
  return out;
}

std::size_t LintReport::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.severity == Severity::Warning;
      }));
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.severity == Severity::Error;
      }));
}

std::string LintReport::toString() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += f.toString();
    out += '\n';
  }
  return out;
}

std::string toJsonLines(const LintReport& report, std::string_view source) {
  // One object per line (JSONL) so downstream tools can stream findings
  // without a full-document parse. Escaping rides on the Value encoder.
  const auto field = [](std::string_view key, std::string_view value) {
    return toJson(Value::string(std::string(key))) + ":" +
           toJson(Value::string(std::string(value)));
  };
  std::string out;
  for (const LintFinding& f : report.findings) {
    out += '{';
    if (!source.empty()) {
      out += field("source", source);
      out += ',';
    }
    out += field("severity", toString(f.severity));
    out += ',';
    out += field("code", toString(f.code));
    out += ',';
    out += field("attribute", f.attribute);
    out += ',';
    out += field("expr", f.expr);
    out += ',';
    out += field("message", f.message);
    if (!f.suggestion.empty()) {
      out += ',';
      out += field("suggestion", f.suggestion);
    }
    out += "}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Conjunct decomposition
// ---------------------------------------------------------------------------

namespace {

bool isLiteralBool(const Expr& e, bool value) {
  const auto* lit = dynamic_cast<const LiteralExpr*>(&e);
  return lit != nullptr && lit->value().isBoolean() &&
         lit->value().asBoolean() == value;
}

void collectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>& out) {
  const auto* bin = dynamic_cast<const BinaryExpr*>(expr.get());
  if (bin != nullptr && bin->op() == BinOp::And) {
    collectConjuncts(bin->lhs(), out);
    collectConjuncts(bin->rhs(), out);
    return;
  }
  // Ternary guards: `c ? t : false` is true exactly when c and t are, so
  // both contribute conjuncts (the guard idiom behind many deployed
  // Requirements expressions).
  const auto* tern = dynamic_cast<const TernaryExpr*>(expr.get());
  if (tern != nullptr && isLiteralBool(*tern->elseExpr(), false)) {
    collectConjuncts(tern->cond(), out);
    if (!isLiteralBool(*tern->thenExpr(), true)) {
      collectConjuncts(tern->thenExpr(), out);
    }
    return;
  }
  if (isLiteralBool(*expr, true)) return;  // dead weight, dropped
  out.push_back(expr);
}

}  // namespace

std::vector<ExprPtr> splitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr) collectConjuncts(expr, out);
  // Everything was literal true: keep the original so callers always have
  // at least one conjunct for a present constraint.
  if (out.empty() && expr) out.push_back(expr);
  return out;
}

ConjunctVerdict classifyConjunct(const AbstractValue& v) {
  if (v.onlyTrue()) return ConjunctVerdict::AlwaysTrue;
  if (v.onlyUndefined()) return ConjunctVerdict::AlwaysUndefined;
  if (v.onlyError()) return ConjunctVerdict::AlwaysError;
  if (!v.canSatisfyConstraint()) return ConjunctVerdict::NeverTrue;
  return ConjunctVerdict::Unknown;
}

// ---------------------------------------------------------------------------
// Cross-conjunct contradiction detection
// ---------------------------------------------------------------------------

namespace {

/// One conjunct reduced to "attribute <rel> constant" form, when possible.
struct Atom {
  std::string key;  ///< lowered name of the other-resolving reference
  bool isString = false;
  Interval range = Interval::all();  ///< numeric requirement
  std::string str;                   ///< lowered string equality requirement
};

/// The lowered name of a reference that resolves against the match
/// candidate, or empty.
std::string otherRefKey(const Expr& e, const ClassAd& self) {
  const auto* ref = dynamic_cast<const AttrRefExpr*>(&e);
  if (ref == nullptr) return {};
  if (ref->scope() == RefScope::Other) return ref->loweredName();
  if (ref->scope() == RefScope::Default &&
      !self.contains(ref->loweredName())) {
    return ref->loweredName();
  }
  return {};
}

/// A numeric or string literal, allowing a unary minus on numbers.
std::optional<Value> literalScalar(const Expr& e) {
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&e)) {
    const Value& v = lit->value();
    if (v.isNumber() || v.isString()) return v;
    return std::nullopt;
  }
  if (const auto* un = dynamic_cast<const UnaryExpr*>(&e)) {
    if (un->op() != UnOp::Minus) return std::nullopt;
    const auto inner = literalScalar(*un->operand());
    if (!inner.has_value() || !inner->isNumber()) return std::nullopt;
    return inner->isInteger() ? Value::integer(-inner->asInteger())
                              : Value::real(-inner->asReal());
  }
  return std::nullopt;
}

BinOp flip(BinOp op) {
  switch (op) {
    case BinOp::Less: return BinOp::Greater;
    case BinOp::LessEq: return BinOp::GreaterEq;
    case BinOp::Greater: return BinOp::Less;
    case BinOp::GreaterEq: return BinOp::LessEq;
    default: return op;
  }
}

std::optional<Atom> extractAtom(const Expr& conjunct, const ClassAd& self) {
  const auto* bin = dynamic_cast<const BinaryExpr*>(&conjunct);
  if (bin == nullptr) return std::nullopt;
  BinOp op = bin->op();
  if (op != BinOp::Less && op != BinOp::LessEq && op != BinOp::Greater &&
      op != BinOp::GreaterEq && op != BinOp::Equal) {
    return std::nullopt;
  }
  std::string key = otherRefKey(*bin->lhs(), self);
  std::optional<Value> lit;
  if (!key.empty()) {
    lit = literalScalar(*bin->rhs());
  } else {
    key = otherRefKey(*bin->rhs(), self);
    if (key.empty()) return std::nullopt;
    lit = literalScalar(*bin->lhs());
    op = flip(op);  // constant on the left: mirror the relation
  }
  if (!lit.has_value()) return std::nullopt;

  Atom atom;
  atom.key = std::move(key);
  if (lit->isString()) {
    if (op != BinOp::Equal) return std::nullopt;  // string order: skip
    atom.isString = true;
    atom.str = toLowerCopy(lit->asString());  // == is case-insensitive
    return atom;
  }
  const double c = lit->toReal();
  switch (op) {
    case BinOp::Less: atom.range = Interval::atMost(c, true); break;
    case BinOp::LessEq: atom.range = Interval::atMost(c, false); break;
    case BinOp::Greater: atom.range = Interval::atLeast(c, true); break;
    case BinOp::GreaterEq: atom.range = Interval::atLeast(c, false); break;
    case BinOp::Equal: atom.range = Interval::point(c); break;
    default: return std::nullopt;
  }
  return atom;
}

/// Accumulated requirements on one candidate attribute.
struct NarrowState {
  bool numeric = false;
  Interval range = Interval::all();
  bool hasString = false;
  std::string str;        // lowered
  std::string firstText;  // conjunct that established the requirement
  bool reported = false;
};

void findContradictions(const std::vector<ExprPtr>& conjuncts,
                        const ClassAd& self, std::string_view attrName,
                        LintReport& report) {
  std::unordered_map<std::string, NarrowState> states;
  for (const ExprPtr& c : conjuncts) {
    const auto atom = extractAtom(*c, self);
    if (!atom.has_value()) continue;
    NarrowState& s = states[atom->key];
    const std::string text = c->toString();
    bool conflict = false;
    std::string why;
    if (atom->isString) {
      if (s.numeric) {
        conflict = true;
        why = "mixes a string equality with a numeric requirement";
      } else if (s.hasString && s.str != atom->str) {
        conflict = true;
        why = "requires two different string values";
      } else {
        s.hasString = true;
        s.str = atom->str;
      }
    } else {
      if (s.hasString) {
        conflict = true;
        why = "mixes a numeric requirement with a string equality";
      } else {
        const Interval next =
            s.numeric ? s.range.meet(atom->range) : atom->range;
        if (next.empty()) {
          conflict = true;
          why = "numeric requirements exclude every value";
        } else {
          s.numeric = true;
          s.range = next;
        }
      }
    }
    if (s.firstText.empty()) s.firstText = text;
    if (conflict && !s.reported) {
      s.reported = true;
      report.findings.push_back(LintFinding{
          LintCode::Contradiction, Severity::Error, std::string(attrName),
          text,
          "contradicts '" + s.firstText + "' on attribute '" + atom->key +
              "': " + why + "; the constraint can never be satisfied",
          {}});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Lint entry points
// ---------------------------------------------------------------------------

namespace {

const Schema* usableSchema(const LintOptions& opts) {
  return (opts.otherSchema != nullptr && !opts.otherSchema->empty())
             ? opts.otherSchema
             : nullptr;
}

/// Prover configuration shared by the lint checks: verdicts only, no
/// witness search (findings never need a counterexample ad).
ImpliesOptions proverOptions(const LintOptions& opts) {
  ImpliesOptions po;
  po.otherSchema = usableSchema(opts);
  po.exactSchemaValues = opts.exactSchemaValues;
  po.maxWitnessTrials = 0;
  return po;
}

/// Pairwise-subsumption and schema-implication findings. `flagged[i]` is
/// true when conjunct i already carries an absint verdict (tautology,
/// never-true, ...) — the prover would re-derive those, so they are
/// skipped rather than double-reported. Quadratic in the conjunct count,
/// capped: real Requirements expressions have a handful of conjuncts.
void proverConstraintChecks(const ClassAd& self,
                            const std::vector<ExprPtr>& conjuncts,
                            const std::vector<bool>& flagged,
                            std::string_view attrName,
                            const LintOptions& opts, LintReport& report) {
  constexpr std::size_t kMaxProverConjuncts = 12;
  if (conjuncts.size() > kMaxProverConjuncts) return;
  const ImpliesOptions po = proverOptions(opts);
  static const ExprPtr kTrue = LiteralExpr::make(Value::boolean(true));

  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (flagged[i]) continue;
    // A pool-wide-true conjunct is trivially implied by every sibling, so
    // the schema diagnosis runs first — it names the actual cause.
    if (po.otherSchema != nullptr &&
        implies(&self, kTrue, &self, conjuncts[i], po).proven()) {
      report.findings.push_back(LintFinding{
          LintCode::SchemaImplied, Severity::Warning, std::string(attrName),
          conjuncts[i]->toString(),
          "every ad in the pool already satisfies this conjunct; it never "
          "restricts the match within this pool",
          {}});
      continue;
    }
    for (std::size_t j = 0; j < conjuncts.size(); ++j) {
      if (j == i || flagged[j]) continue;
      // Tie-break mutually-equivalent pairs by position: keep the first,
      // flag the rest, mirroring the engine's elision order.
      if (j > i && implies(self, conjuncts[i], conjuncts[j], po).proven()) {
        continue;
      }
      if (implies(self, conjuncts[j], conjuncts[i], po).proven()) {
        report.findings.push_back(LintFinding{
            LintCode::SubsumedConjunct, Severity::Warning,
            std::string(attrName), conjuncts[i]->toString(),
            "conjunct is implied by sibling conjunct '" +
                conjuncts[j]->toString() + "'; it never tightens the match",
            {}});
        break;
      }
    }
  }
}

/// Guard-like subexpressions of a Rank attribute: ternary conditions and
/// boolean factors (comparisons, member() calls) — the idioms behind
/// `member(other.Owner, {...}) * 10` and `other.Fast ? 100 : 0`.
void collectRankGuards(const ExprPtr& e, std::vector<ExprPtr>& out) {
  constexpr std::size_t kMaxGuards = 8;
  if (out.size() >= kMaxGuards || e == nullptr) return;
  if (const auto* tern = dynamic_cast<const TernaryExpr*>(e.get())) {
    out.push_back(tern->cond());
    collectRankGuards(tern->thenExpr(), out);
    collectRankGuards(tern->elseExpr(), out);
    return;
  }
  if (const auto* bin = dynamic_cast<const BinaryExpr*>(e.get())) {
    switch (bin->op()) {
      case BinOp::Less:
      case BinOp::LessEq:
      case BinOp::Greater:
      case BinOp::GreaterEq:
      case BinOp::Equal:
      case BinOp::NotEqual:
        out.push_back(e);
        return;
      default:
        collectRankGuards(bin->lhs(), out);
        collectRankGuards(bin->rhs(), out);
        return;
    }
  }
  if (const auto* call = dynamic_cast<const FuncCallExpr*>(e.get())) {
    if (equalsIgnoreCase(call->name(), "member")) out.push_back(e);
  }
}

/// Flags Rank guards that no candidate passing the constraint can ever
/// satisfy: the preference is dead weight, and usually a sign the two
/// expressions drifted apart during editing.
void rankGuardChecks(const ClassAd& ad, const ExprPtr& constraint,
                     std::string_view rankAttr, const ExprPtr& rank,
                     const LintOptions& opts, LintReport& report) {
  std::vector<ExprPtr> guards;
  collectRankGuards(rank, guards);
  const ImpliesOptions po = proverOptions(opts);
  for (const ExprPtr& g : guards) {
    const ExprPtr gated = BinaryExpr::make(BinOp::And, constraint, g);
    if (unsatisfiable(&ad, gated, po).proven()) {
      report.findings.push_back(LintFinding{
          LintCode::RankGuardConflict, Severity::Warning,
          std::string(rankAttr), g->toString(),
          "rank guard can never hold for a candidate that satisfies the "
          "constraint; the preference it expresses is unreachable",
          {}});
    }
  }
}

void lintConstraintInto(const ClassAd& self, const ExprPtr& constraint,
                        std::string_view attrName, const LintOptions& opts,
                        LintReport& report) {
  AnalysisEnv env;
  env.self = &self;
  env.otherSchema = usableSchema(opts);
  env.exactSchemaValues = opts.exactSchemaValues;

  const std::vector<ExprPtr> conjuncts = splitConjuncts(constraint);
  std::vector<bool> flagged(conjuncts.size(), false);
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    // Literal booleans are explicit intent (`Constraint = false` drains a
    // machine); never flagged.
    if (dynamic_cast<const LiteralExpr*>(c.get()) != nullptr) {
      flagged[i] = true;  // and exempt from the prover checks below
      continue;
    }
    const AbstractValue v = abstractEval(*c, env);
    const std::string text = c->toString();
    flagged[i] = classifyConjunct(v) != ConjunctVerdict::Unknown;
    switch (classifyConjunct(v)) {
      case ConjunctVerdict::AlwaysTrue:
        report.findings.push_back(
            LintFinding{LintCode::Tautology, Severity::Warning,
                        std::string(attrName), text,
                        "conjunct is always true; it never restricts the "
                        "match",
                        {}});
        break;
      case ConjunctVerdict::AlwaysUndefined:
        report.findings.push_back(
            LintFinding{LintCode::AlwaysUndefined, Severity::Warning,
                        std::string(attrName), text,
                        "conjunct always evaluates to undefined (inferred "
                        "value: " +
                            v.describe() + "); it can never hold",
                        {}});
        break;
      case ConjunctVerdict::AlwaysError:
        report.findings.push_back(
            LintFinding{LintCode::AlwaysError, Severity::Error,
                        std::string(attrName), text,
                        "conjunct always evaluates to error (inferred "
                        "value: " +
                            v.describe() + ")",
                        {}});
        break;
      case ConjunctVerdict::NeverTrue:
        report.findings.push_back(
            LintFinding{LintCode::NeverTrue, Severity::Error,
                        std::string(attrName), text,
                        "conjunct can never be true (inferred value: " +
                            v.describe() + ")",
                        {}});
        break;
      case ConjunctVerdict::Unknown:
        break;
    }
  }
  findContradictions(conjuncts, self, attrName, report);
  if (opts.proverChecks) {
    proverConstraintChecks(self, conjuncts, flagged, attrName, opts, report);
  }
}

bool isConstraintAttr(std::string_view name, const LintOptions& opts) {
  return std::any_of(opts.constraintAttrs.begin(), opts.constraintAttrs.end(),
                     [name](const std::string& c) {
                       return equalsIgnoreCase(c, name);
                     });
}

bool isRankAttr(std::string_view name, const LintOptions& opts) {
  return std::any_of(
      opts.rankAttrs.begin(), opts.rankAttrs.end(),
      [name](const std::string& c) { return equalsIgnoreCase(c, name); });
}

}  // namespace

LintReport lintConstraint(const ClassAd& self, const Expr& constraint,
                          std::string_view attrName,
                          const LintOptions& opts) {
  LintReport report;
  // Wrap without taking ownership; the alias keeps the expression alive
  // for the duration of the call only.
  const ExprPtr alias(ExprPtr{}, &constraint);
  lintConstraintInto(self, alias, attrName, opts, report);
  return report;
}

LintReport lintAd(const ClassAd& ad, const LintOptions& opts) {
  LintReport report;
  const Schema* schema = usableSchema(opts);

  for (const auto& [name, expr] : ad.attributes()) {
    const RefReport refs = collectRefs(*expr, &ad);
    for (const std::string& fn : refs.unknownFunctions) {
      report.findings.push_back(
          LintFinding{LintCode::UnknownFunction, Severity::Error, name,
                      fn + "(...)",
                      "call to unknown function '" + fn +
                          "'; it always evaluates to error",
                      {}});
    }
    if (schema != nullptr) {
      for (const AttrRef* ref : refs.otherRefs()) {
        if (schema->find(ref->lowered) != nullptr) continue;
        std::string suggestion =
            schema->nearestName(ref->lowered).value_or("");
        report.findings.push_back(LintFinding{
            LintCode::UnknownAttribute, Severity::Warning, name, ref->name,
            "no ad in the pool defines attribute '" + ref->name +
                "'; the reference always evaluates to undefined",
            std::move(suggestion)});
      }
    }
    if (isConstraintAttr(name, opts)) {
      lintConstraintInto(ad, expr, name, opts, report);
      if (opts.proverChecks) {
        for (const auto& [rankName, rankExpr] : ad.attributes()) {
          if (isRankAttr(rankName, opts)) {
            rankGuardChecks(ad, expr, rankName, rankExpr, opts, report);
          }
        }
      }
    } else if (refs.unknownFunctions.empty()) {
      AnalysisEnv env;
      env.self = &ad;
      env.otherSchema = schema;
      env.exactSchemaValues = opts.exactSchemaValues;
      if (abstractEval(*expr, env).onlyError()) {
        report.findings.push_back(
            LintFinding{LintCode::AlwaysError, Severity::Error, name,
                        expr->toString(),
                        "attribute always evaluates to error",
                        {}});
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Ad-file reading
// ---------------------------------------------------------------------------

std::vector<std::string> splitAdBlocks(std::string_view text) {
  std::vector<std::string> blocks;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && text[i + 1] == '/')) {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c != '[') {
      // Garbage outside a block: hand it to the caller as an unparsable
      // "block" so it surfaces as a parse error instead of vanishing.
      const std::size_t start = i;
      while (i < n && text[i] != '[' && text[i] != '\n') ++i;
      blocks.emplace_back(text.substr(start, i - start));
      continue;
    }
    const std::size_t start = i;
    int depth = 0;
    bool inString = false;
    for (; i < n; ++i) {
      const char ch = text[i];
      if (inString) {
        if (ch == '\\' && i + 1 < n) {
          ++i;
        } else if (ch == '"') {
          inString = false;
        }
        continue;
      }
      if (ch == '"') {
        inString = true;
      } else if (ch == '[') {
        ++depth;
      } else if (ch == ']') {
        if (--depth == 0) {
          ++i;
          break;
        }
      }
    }
    blocks.emplace_back(text.substr(start, i - start));
  }
  return blocks;
}

}  // namespace classad::analysis
