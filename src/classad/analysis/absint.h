// absint.h - The abstract interpreter over the three-valued semantics.
//
// Evaluates an expression with NO candidate ad: references into `self`
// descend into the containing ad's own expressions; references that fall
// through to the match candidate are answered from a pool Schema (or are
// unconstrained when no schema is given). The result is an AbstractValue
// over-approximating every concrete outcome, propagated through the
// strict/non-strict operator tables of Section 3.2 — which is what lets
// lint flag a conjunct as statically unsatisfiable, tautological,
// always-undefined, or always-error at submission time, O(1) in the pool.
//
// Soundness contract: for any concrete evaluation environment consistent
// with `env` (same self ad; the candidate either one of the schema's ads,
// or arbitrary when no schema is set), the concrete result is contained
// in the abstract one. Precision may be lost (top is always sound);
// possibilities are never dropped.
#pragma once

#include "classad/analysis/domain.h"
#include "classad/analysis/schema.h"
#include "classad/classad.h"
#include "classad/expr.h"

namespace classad::analysis {

/// The static counterpart of EvalContext.
struct AnalysisEnv {
  /// The ad containing the expression (nullable: expression-only mode).
  const ClassAd* self = nullptr;
  /// Summary of the possible match candidates; null or empty means
  /// "any ad at all" (every other-reference is unconstrained).
  const Schema* otherSchema = nullptr;
  /// Treat the schema's observed value domains as exhaustive. Off by
  /// default: pools are open-world (see Schema::domainOf).
  bool exactSchemaValues = false;
};

/// Abstractly evaluates `expr` under `env`.
AbstractValue abstractEval(const Expr& expr, const AnalysisEnv& env);

/// Abstract transfer function for a builtin call with already-abstracted
/// arguments; `loweredName` must be lowercase. Unknown functions are
/// `error` (mirroring FuncCallExpr::evaluate). Exposed for tests.
AbstractValue applyBuiltin(const std::string& loweredName,
                           const std::vector<AbstractValue>& args);

}  // namespace classad::analysis
