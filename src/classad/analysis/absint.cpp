#include "classad/analysis/absint.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "classad/builtins.h"
#include "classad/value.h"

namespace classad::analysis {

namespace {

constexpr double kInf = Interval::kInf;

/// Walk state: the static counterpart of EvalContext's cycle stack and
/// depth guard. Kept well below the evaluator's 512 so the analyzer's own
/// C++ recursion stays shallow; exceeding it widens to top, which is
/// always sound.
struct AbsCtx {
  const AnalysisEnv* env;
  std::vector<std::pair<const ClassAd*, std::string>> stack;
  int depth = 0;
  static constexpr int kMaxDepth = 200;
};

AbstractValue eval(const Expr& expr, AbsCtx& ctx);

bool hasOrdinary(const AbstractValue& v) {
  return !v.types()
              .without(ValueType::Undefined)
              .without(ValueType::Error)
              .empty();
}

bool mayBeStruct(const AbstractValue& v) {
  return v.types().has(ValueType::List) || v.types().has(ValueType::Record);
}

/// Exceptional propagation shared by the strict builtins (see
/// `propagate()` in builtins.cpp): any may-error argument makes error
/// reachable, any may-undefined argument makes undefined reachable, and
/// the ordinary result is only reachable when EVERY argument has a
/// non-exceptional possibility.
AbstractValue propagated(const std::vector<AbstractValue>& args,
                         bool* ordinaryPossible) {
  AbstractValue r = AbstractValue::bottom();
  *ordinaryPossible = true;
  for (const AbstractValue& a : args) {
    if (a.mayBeError()) r = r.join(AbstractValue::error());
    if (a.mayBeUndefined()) r = r.join(AbstractValue::undefined());
    if (!hasOrdinary(a)) *ordinaryPossible = false;
  }
  return r;
}

// --- builtin transfer functions --------------------------------------------

AbstractValue typePredicate(const AbstractValue& a, TypeSet yes) {
  const bool canYes = !a.types().intersect(yes).empty();
  const bool canNo = !a.types().subsetOf(yes);
  return AbstractValue::boolean(canYes, canNo);
}

AbstractValue absMember(const AbstractValue& needle,
                        const AbstractValue& hay) {
  AbstractValue r = AbstractValue::bottom();
  if (needle.mayBeError() || hay.mayBeError()) {
    r = r.join(AbstractValue::error());
  }
  if (hay.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (!hay.types()
           .without(ValueType::List)
           .without(ValueType::Undefined)
           .without(ValueType::Error)
           .empty()) {
    r = r.join(AbstractValue::error());  // non-list haystack
  }
  if (hay.types().has(ValueType::List)) {
    if (needle.mayBeUndefined()) r = r.join(AbstractValue::undefined());
    if (hasOrdinary(needle)) {
      // Element comparisons may themselves be undefined.
      r = r.join(AbstractValue::boolean(true, true))
              .join(AbstractValue::undefined());
    }
  }
  return r;
}

AbstractValue absIdenticalMember(const AbstractValue& hay) {
  AbstractValue r = AbstractValue::bottom();
  if (hay.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (!hay.types()
           .without(ValueType::List)
           .without(ValueType::Undefined)
           .empty()) {
    r = r.join(AbstractValue::error());
  }
  if (hay.types().has(ValueType::List)) {
    r = r.join(AbstractValue::boolean(true, true));
  }
  return r;
}

Interval truncatedToInt(const Interval& r) {
  if (r.empty()) return r;
  return {std::floor(r.lo), std::ceil(r.hi), false, false};
}

AbstractValue absRounding(const AbstractValue& a) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeError()) r = r.join(AbstractValue::error());
  if (a.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (a.types().has(ValueType::Boolean) || a.mayBeString() ||
      mayBeStruct(a)) {
    r = r.join(AbstractValue::error());
  }
  if (a.mayBeNumber()) {
    r = r.join(AbstractValue::integer(truncatedToInt(a.range())));
  }
  return r;
}

AbstractValue absIntCast(const AbstractValue& a) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeError()) r = r.join(AbstractValue::error());
  if (a.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (a.types().has(ValueType::Integer)) {
    r = r.join(AbstractValue::integer(a.range()));
  }
  if (a.types().has(ValueType::Real)) {
    r = r.join(AbstractValue::integer(truncatedToInt(a.range())));
  }
  if (a.types().has(ValueType::Boolean)) {
    Interval b = Interval::none();
    if (a.mayBeFalse()) b = b.hull(Interval::point(0.0));
    if (a.mayBeTrue()) b = b.hull(Interval::point(1.0));
    r = r.join(AbstractValue::integer(b));
  }
  if (a.mayBeString()) {
    r = r.join(AbstractValue::integer(Interval::all()))
            .join(AbstractValue::error());
  }
  if (mayBeStruct(a)) r = r.join(AbstractValue::error());
  return r;
}

AbstractValue absRealCast(const AbstractValue& a) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeError()) r = r.join(AbstractValue::error());
  if (a.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (a.mayBeNumber()) {
    r = r.join(AbstractValue::number(a.range(), false, true));
  }
  if (a.types().has(ValueType::Boolean)) {
    Interval b = Interval::none();
    if (a.mayBeFalse()) b = b.hull(Interval::point(0.0));
    if (a.mayBeTrue()) b = b.hull(Interval::point(1.0));
    r = r.join(AbstractValue::number(b, false, true));
  }
  if (a.mayBeString()) {
    r = r.join(AbstractValue::number(Interval::all(), false, true))
            .join(AbstractValue::error());
  }
  if (mayBeStruct(a)) r = r.join(AbstractValue::error());
  return r;
}

AbstractValue absBoolCast(const AbstractValue& a) {
  AbstractValue r = AbstractValue::bottom();
  if (a.mayBeError()) r = r.join(AbstractValue::error());
  if (a.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (a.types().has(ValueType::Boolean)) {
    r = r.join(AbstractValue::boolean(a.mayBeTrue(), a.mayBeFalse()));
  }
  if (a.mayBeNumber()) {
    const bool canZero = a.range().contains(0.0);
    const bool canNonzero = !a.range().isPoint() || a.range().lo != 0.0;
    r = r.join(AbstractValue::boolean(canNonzero, canZero));
  }
  if (a.mayBeString()) {
    r = r.join(AbstractValue::boolean(true, true))
            .join(AbstractValue::error());
  }
  if (mayBeStruct(a)) r = r.join(AbstractValue::error());
  return r;
}

AbstractValue absIfThenElse(const std::vector<AbstractValue>& args) {
  const AbstractValue& c = args[0];
  AbstractValue r = AbstractValue::bottom();
  if (c.mayBeTrue()) r = r.join(args[1]);
  if (c.mayBeFalse()) r = r.join(args[2]);
  if (c.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (c.mayBeError() || c.mayBeNonBoolean()) {
    r = r.join(AbstractValue::error());
  }
  return r;
}

/// Strict string->string helpers (toUpper/toLower) map finite sets.
AbstractValue absMapString(const AbstractValue& a,
                           char (*mapChar)(unsigned char)) {
  AbstractValue r = AbstractValue::bottom();
  bool ordinary = true;
  r = r.join(propagated({a}, &ordinary));
  if (a.mayBeNumber() || a.types().has(ValueType::Boolean) ||
      mayBeStruct(a)) {
    r = r.join(AbstractValue::error());
  }
  if (a.mayBeString()) {
    if (const auto& strs = a.strings(); strs.has_value()) {
      std::vector<std::string> mapped;
      mapped.reserve(strs->size());
      for (std::string s : *strs) {
        for (char& ch : s) {
          ch = mapChar(static_cast<unsigned char>(ch));
        }
        mapped.push_back(std::move(s));
      }
      r = r.join(AbstractValue::stringSet(std::move(mapped)));
    } else {
      r = r.join(AbstractValue::anyString());
    }
  }
  return r;
}

/// All-arguments-strings check used by the string utilities: adds error
/// reachability for non-string ordinary operands and returns whether a
/// fully-string invocation is possible.
bool allStringsPossible(const std::vector<AbstractValue>& args,
                        AbstractValue& r) {
  bool possible = true;
  for (const AbstractValue& a : args) {
    if (a.mayBeNumber() || a.types().has(ValueType::Boolean) ||
        mayBeStruct(a)) {
      r = r.join(AbstractValue::error());
    }
    if (!a.mayBeString()) possible = false;
  }
  return possible;
}

}  // namespace

AbstractValue applyBuiltin(const std::string& loweredName,
                           const std::vector<AbstractValue>& args) {
  const std::size_t n = args.size();
  const auto arity = [&](std::size_t lo, std::size_t hi) {
    return n >= lo && n <= hi;
  };

  // Non-strict type predicates: they observe undefined/error.
  if (loweredName == "isundefined" || loweredName == "iserror" ||
      loweredName == "isstring" || loweredName == "isinteger" ||
      loweredName == "isreal" || loweredName == "isnumber" ||
      loweredName == "isboolean" || loweredName == "islist" ||
      loweredName == "isclassad") {
    if (!arity(1, 1)) return AbstractValue::error();
    TypeSet yes = TypeSet::none();
    if (loweredName == "isundefined") yes = TypeSet::of(ValueType::Undefined);
    if (loweredName == "iserror") yes = TypeSet::of(ValueType::Error);
    if (loweredName == "isstring") yes = TypeSet::of(ValueType::String);
    if (loweredName == "isinteger") yes = TypeSet::of(ValueType::Integer);
    if (loweredName == "isreal") yes = TypeSet::of(ValueType::Real);
    if (loweredName == "isnumber") {
      yes = TypeSet::of(ValueType::Integer).with(ValueType::Real);
    }
    if (loweredName == "isboolean") yes = TypeSet::of(ValueType::Boolean);
    if (loweredName == "islist") yes = TypeSet::of(ValueType::List);
    if (loweredName == "isclassad") yes = TypeSet::of(ValueType::Record);
    return typePredicate(args[0], yes);
  }

  if (loweredName == "member") {
    if (!arity(2, 2)) return AbstractValue::error();
    return absMember(args[0], args[1]);
  }
  if (loweredName == "identicalmember") {
    if (!arity(2, 2)) return AbstractValue::error();
    return absIdenticalMember(args[1]);
  }
  if (loweredName == "ifthenelse") {
    if (!arity(3, 3)) return AbstractValue::error();
    return absIfThenElse(args);
  }

  if (loweredName == "toupper" || loweredName == "tolower") {
    if (!arity(1, 1)) return AbstractValue::error();
    return absMapString(args[0], loweredName == "toupper"
                                     ? +[](unsigned char c) {
                                         return static_cast<char>(
                                             std::toupper(c));
                                       }
                                     : +[](unsigned char c) {
                                         return static_cast<char>(
                                             std::tolower(c));
                                       });
  }

  if (loweredName == "floor" || loweredName == "ceiling" ||
      loweredName == "round") {
    if (!arity(1, 1)) return AbstractValue::error();
    return absRounding(args[0]);
  }
  if (loweredName == "int") {
    if (!arity(1, 1)) return AbstractValue::error();
    return absIntCast(args[0]);
  }
  if (loweredName == "real") {
    if (!arity(1, 1)) return AbstractValue::error();
    return absRealCast(args[0]);
  }
  if (loweredName == "bool") {
    if (!arity(1, 1)) return AbstractValue::error();
    return absBoolCast(args[0]);
  }

  // The remaining builtins all propagate exceptional arguments first.
  bool ordinary = true;
  AbstractValue r = propagated(args, &ordinary);
  const auto withOrdinary = [&](AbstractValue v) {
    return ordinary ? r.join(v) : r;
  };

  if (loweredName == "strcat") {
    bool scalarOk = true;
    for (const AbstractValue& a : args) {
      if (mayBeStruct(a)) r = r.join(AbstractValue::error());
      if (!a.mayBeString() && !a.mayBeNumber() &&
          !a.types().has(ValueType::Boolean)) {
        scalarOk = false;
      }
    }
    return scalarOk ? withOrdinary(AbstractValue::anyString()) : r;
  }
  if (loweredName == "substr") {
    if (!arity(2, 3)) return AbstractValue::error();
    bool typesOk = args[0].mayBeString();
    for (std::size_t i = 1; i < n; ++i) {
      typesOk = typesOk && args[i].types().has(ValueType::Integer);
    }
    r = r.join(AbstractValue::error());  // type mismatches are reachable
    return typesOk ? withOrdinary(AbstractValue::anyString()) : r;
  }
  if (loweredName == "strcmp" || loweredName == "stricmp") {
    if (!arity(2, 2)) return AbstractValue::error();
    AbstractValue out = AbstractValue::bottom();
    if (allStringsPossible(args, r)) {
      out = AbstractValue::integer({-1.0, 1.0, false, false});
    }
    return withOrdinary(out).join(r);
  }
  if (loweredName == "sqrt") {
    if (!arity(1, 1)) return AbstractValue::error();
    const AbstractValue& a = args[0];
    if (!a.mayBeNumber() || a.types().has(ValueType::Boolean) ||
        a.mayBeString() || mayBeStruct(a)) {
      r = r.join(AbstractValue::error());
    }
    if (a.mayBeNumber()) {
      if (a.range().lo < 0.0) r = r.join(AbstractValue::error());
      if (a.range().hi >= 0.0) {
        r = withOrdinary(AbstractValue::number(
            {0.0, kInf, false, false}, false, true));
      }
    }
    return r;
  }
  if (loweredName == "abs") {
    if (!arity(1, 1)) return AbstractValue::error();
    const AbstractValue& a = args[0];
    if (!hasOrdinary(a)) return r;
    if (a.mayBeString() || a.types().has(ValueType::Boolean) ||
        mayBeStruct(a)) {
      r = r.join(AbstractValue::error());
    }
    if (a.mayBeNumber()) {
      const Interval in = a.range();
      Interval out;
      if (in.lo >= 0.0) {
        out = in;
      } else if (in.hi <= 0.0) {
        out = intervalNeg(in);
      } else {
        out = {0.0, std::max(-in.lo, in.hi), false, false};
      }
      r = r.join(AbstractValue::number(out,
                                       a.types().has(ValueType::Integer),
                                       a.types().has(ValueType::Real)));
    }
    return r;
  }
  if (loweredName == "pow") {
    if (!arity(2, 2)) return AbstractValue::error();
    bool bothNum = true;
    for (const AbstractValue& a : args) {
      if (a.mayBeString() || a.types().has(ValueType::Boolean) ||
          mayBeStruct(a)) {
        r = r.join(AbstractValue::error());
      }
      bothNum = bothNum && a.mayBeNumber();
    }
    return bothNum ? withOrdinary(AbstractValue::number(Interval::all(),
                                                        false, true))
                   : r;
  }
  if (loweredName == "min" || loweredName == "max" ||
      loweredName == "sum" || loweredName == "avg") {
    // Variadic or list-reducing; conservative: any numeric result, plus
    // undefined (empty input) and error (non-numeric element).
    return r.join(AbstractValue::undefined())
        .join(AbstractValue::error())
        .join(AbstractValue::number(Interval::all(), true, true));
  }
  if (loweredName == "size") {
    if (!arity(1, 1)) return AbstractValue::error();
    const AbstractValue& a = args[0];
    if (a.mayBeNumber() || a.types().has(ValueType::Boolean)) {
      r = r.join(AbstractValue::error());
    }
    if (a.mayBeString() || mayBeStruct(a)) {
      r = withOrdinary(AbstractValue::integer({0.0, kInf, false, false}));
    }
    return r;
  }
  if (loweredName == "string") {
    if (!arity(1, 1)) return AbstractValue::error();
    return withOrdinary(AbstractValue::anyString());
  }
  if (loweredName == "stringlistmember") {
    if (!arity(2, 3)) return AbstractValue::error();
    AbstractValue out = AbstractValue::bottom();
    if (allStringsPossible(args, r)) {
      out = AbstractValue::boolean(true, true);
    }
    return withOrdinary(out).join(r);
  }
  if (loweredName == "stringlistsize") {
    if (!arity(1, 2)) return AbstractValue::error();
    AbstractValue out = AbstractValue::bottom();
    if (allStringsPossible(args, r)) {
      out = AbstractValue::integer({0.0, kInf, false, false});
    }
    return withOrdinary(out).join(r);
  }
  if (loweredName == "split") {
    if (!arity(1, 2)) return AbstractValue::error();
    AbstractValue out = AbstractValue::bottom();
    if (allStringsPossible(args, r)) {
      out = AbstractValue::ofType(ValueType::List);
    }
    return withOrdinary(out).join(r);
  }
  if (loweredName == "join") {
    if (!arity(2, 2)) return AbstractValue::error();
    r = r.join(AbstractValue::error());  // bad types / non-scalar element
    if (args[0].mayBeString() && args[1].types().has(ValueType::List)) {
      r = withOrdinary(AbstractValue::anyString());
    }
    return r;
  }
  if (loweredName == "regexp") {
    if (!arity(2, 3)) return AbstractValue::error();
    r = r.join(AbstractValue::error());  // bad pattern / bad types
    if (allStringsPossible(args, r)) {
      r = withOrdinary(AbstractValue::boolean(true, true));
    }
    return r;
  }

  // A builtin registered in the evaluator but not modeled here: sound
  // fallback.
  return AbstractValue::top();
}

namespace {

AbstractValue evalOtherRef(const std::string& lowered, AbsCtx& ctx) {
  const Schema* schema = ctx.env->otherSchema;
  if (schema == nullptr || schema->empty()) return AbstractValue::top();
  return schema->domainOf(lowered, ctx.env->exactSchemaValues);
}

AbstractValue evalAttrRef(const AttrRefExpr& ref, AbsCtx& ctx) {
  const ClassAd* self = ctx.env->self;
  if (ref.scope() == RefScope::Other) {
    return evalOtherRef(ref.loweredName(), ctx);
  }
  const ExprPtr* bound =
      self != nullptr ? self->lookup(ref.loweredName()) : nullptr;
  if (bound == nullptr) {
    if (ref.scope() == RefScope::Default) {
      // Bare-name fall-through to the match candidate (Section 3.2 as
      // deployed; see AttrRefExpr::evaluate).
      return evalOtherRef(ref.loweredName(), ctx);
    }
    return AbstractValue::undefined();  // self.<missing>
  }
  // A cycle here does NOT mean the concrete result is `error`: concrete
  // evaluation may short-circuit before closing the loop (e.g.
  // [a = other.x && a] against a candidate whose x is false). Top is the
  // only sound answer.
  for (const auto& [ad, attr] : ctx.stack) {
    if (ad == self && attr == ref.loweredName()) return AbstractValue::top();
  }
  ctx.stack.emplace_back(self, ref.loweredName());
  const AbstractValue v = eval(**bound, ctx);
  ctx.stack.pop_back();
  return v;
}

AbstractValue evalTernary(const TernaryExpr& t, AbsCtx& ctx) {
  const AbstractValue c = eval(*t.cond(), ctx);
  AbstractValue r = AbstractValue::bottom();
  if (c.mayBeTrue()) r = r.join(eval(*t.thenExpr(), ctx));
  if (c.mayBeFalse()) r = r.join(eval(*t.elseExpr(), ctx));
  if (c.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (c.mayBeError() || c.mayBeNonBoolean()) {
    r = r.join(AbstractValue::error());
  }
  return r;
}

AbstractValue evalSelect(const SelectExpr& sel, AbsCtx& ctx) {
  const AbstractValue base = eval(*sel.base(), ctx);
  AbstractValue r = AbstractValue::bottom();
  if (base.mayBeUndefined()) r = r.join(AbstractValue::undefined());
  if (base.mayBeError()) r = r.join(AbstractValue::error());
  if (base.types().has(ValueType::Record)) {
    return AbstractValue::top();  // opaque record contents
  }
  if (base.mayBeNumber() || base.mayBeString() ||
      base.types().has(ValueType::Boolean) ||
      base.types().has(ValueType::List)) {
    r = r.join(AbstractValue::error());
  }
  return r;
}

AbstractValue evalSubscript(const SubscriptExpr& sub, AbsCtx& ctx) {
  const AbstractValue base = eval(*sub.base(), ctx);
  const AbstractValue idx = eval(*sub.index(), ctx);
  if (base.types().has(ValueType::List) ||
      base.types().has(ValueType::Record)) {
    return AbstractValue::top();  // element/attribute contents are opaque
  }
  AbstractValue r = AbstractValue::bottom();
  if (base.mayBeUndefined() || idx.mayBeUndefined()) {
    r = r.join(AbstractValue::undefined());
  }
  // Everything else (error bases/indices, scalar bases) is an error.
  if (base.mayBeError() || idx.mayBeError() || hasOrdinary(base)) {
    r = r.join(AbstractValue::error());
  }
  return r;
}

AbstractValue eval(const Expr& expr, AbsCtx& ctx) {
  if (++ctx.depth > AbsCtx::kMaxDepth) {
    --ctx.depth;
    return AbstractValue::top();
  }
  AbstractValue result = AbstractValue::top();
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&expr)) {
    result = AbstractValue::of(lit->value());
  } else if (const auto* ref = dynamic_cast<const AttrRefExpr*>(&expr)) {
    result = evalAttrRef(*ref, ctx);
  } else if (const auto* scope = dynamic_cast<const ScopeExpr*>(&expr)) {
    // A missing frame (`other` with no candidate, `self` in
    // expression-only mode) evaluates to undefined concretely.
    result = AbstractValue::ofType(ValueType::Record);
    if (scope->scope() == RefScope::Other || ctx.env->self == nullptr) {
      result = result.join(AbstractValue::undefined());
    }
  } else if (const auto* un = dynamic_cast<const UnaryExpr*>(&expr)) {
    result = AbstractValue::applyUnary(un->op(), eval(*un->operand(), ctx));
  } else if (const auto* bin = dynamic_cast<const BinaryExpr*>(&expr)) {
    result = AbstractValue::applyBinary(bin->op(), eval(*bin->lhs(), ctx),
                                        eval(*bin->rhs(), ctx));
  } else if (const auto* tern = dynamic_cast<const TernaryExpr*>(&expr)) {
    result = evalTernary(*tern, ctx);
  } else if (dynamic_cast<const ListExpr*>(&expr) != nullptr) {
    result = AbstractValue::ofType(ValueType::List);
  } else if (dynamic_cast<const RecordExpr*>(&expr) != nullptr) {
    result = AbstractValue::ofType(ValueType::Record);
  } else if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
    result = evalSelect(*sel, ctx);
  } else if (const auto* sub = dynamic_cast<const SubscriptExpr*>(&expr)) {
    result = evalSubscript(*sub, ctx);
  } else if (const auto* call = dynamic_cast<const FuncCallExpr*>(&expr)) {
    const std::string lowered = toLowerCopy(call->name());
    if (lookupBuiltin(lowered) == nullptr) {
      result = AbstractValue::error();  // unknown function
    } else {
      std::vector<AbstractValue> args;
      args.reserve(call->args().size());
      for (const ExprPtr& a : call->args()) {
        args.push_back(eval(*a, ctx));
      }
      result = applyBuiltin(lowered, args);
    }
  }
  --ctx.depth;
  return result;
}

}  // namespace

AbstractValue abstractEval(const Expr& expr, const AnalysisEnv& env) {
  AbsCtx ctx{&env, {}, 0};
  return eval(expr, ctx);
}

}  // namespace classad::analysis
