// builtins.h - The built-in function library of the classad language.
//
// The paper's Figure 1 uses `member(other.Owner, ResearchGroup)`; beyond
// `member` we provide the small standard library a working matchmaking
// deployment needs: type predicates and conversions, string utilities, and
// numeric/list helpers. All functions receive fully evaluated argument
// values; each decides its own strictness (type predicates, for instance,
// must observe `undefined` rather than propagate it).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "classad/value.h"

namespace classad {

/// A built-in: maps evaluated argument values to a result value. Never
/// throws; failures are `error` values.
using BuiltinFn = std::function<Value(const std::vector<Value>&)>;

/// Looks up a built-in by (case-insensitive) name; nullptr if unknown.
const BuiltinFn* lookupBuiltin(std::string_view loweredName);

/// Names of all registered built-ins (for documentation/diagnostic tools).
std::vector<std::string> builtinNames();

/// The semantics of `member(x, list)`: boolean true if some element of
/// `list` equals `x` under `==` semantics (numeric promotion,
/// case-insensitive strings); `undefined` if x is undefined or no element
/// matched but some comparison was undefined; `error` on non-list second
/// argument. Exposed directly because the matchmaker's analysis module
/// reuses it.
Value memberSemantics(const Value& needle, const Value& haystack);

}  // namespace classad
