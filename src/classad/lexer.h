// lexer.h - Tokenizer for the classad concrete syntax.
//
// The syntax follows the paper's figures: C-style `//` and `/* */`
// comments, double-quoted strings with backslash escapes, case-insensitive
// keywords (`true`, `false`, `undefined`, `error`, `is`, `isnt`, `self`,
// `other`), integer and real literals (including exponent forms such as
// Figure 2's `1E3`), and the operator set of Section 3.1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace classad {

enum class TokenKind : std::uint8_t {
  End,
  Integer,
  Real,
  String,
  Identifier,  // includes keywords; the parser distinguishes by text
  // punctuation / operators
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Comma, Semicolon, Colon, Question, Dot, Assign,
  Plus, Minus, Star, Slash, Percent,
  Less, LessEq, Greater, GreaterEq, EqualEq, NotEq,
  AndAnd, OrOr, Bang,
};

std::string_view toString(TokenKind k) noexcept;

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;        // identifier/keyword spelling or string contents
  std::int64_t intValue = 0;
  double realValue = 0.0;
  int line = 1;
  int column = 1;

  /// Case-insensitive keyword test for identifier tokens.
  bool isKeyword(std::string_view kw) const noexcept;
};

/// Tokenizes `src` completely. Throws ParseError (see classad.h) on
/// malformed input (unterminated string/comment, bad number, stray byte).
std::vector<Token> tokenize(std::string_view src);

}  // namespace classad
