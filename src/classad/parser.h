// parser.h - Recursive-descent parser for classad expressions and ads.
//
// Grammar (precedence from loosest to tightest, matching the paper's
// examples and conventional C precedence):
//
//   expr        := ternary
//   ternary     := or [ '?' expr ':' ternary ]
//   or          := and { '||' and }
//   and         := equality { '&&' equality }
//   equality    := relational { ('=='|'!='|'is'|'isnt') relational }
//   relational  := additive { ('<'|'<='|'>'|'>=') additive }
//   additive    := multiplicative { ('+'|'-') multiplicative }
//   multiplicative := unary { ('*'|'/'|'%') unary }
//   unary       := ('!'|'-'|'+') unary | postfix
//   postfix     := primary { '.' Identifier | '[' expr ']' }
//   primary     := Integer | Real | String | 'true' | 'false'
//                | 'undefined' | 'error'
//                | 'self' [ '.' Identifier ] | 'other' [ '.' Identifier ]
//                | Identifier [ '(' args ')' ]
//                | '(' expr ')' | list | record
//   list        := '{' [ expr { ',' expr } ] '}'
//   record      := '[' [ binding { ';' binding } [';'] ] ']'
//   binding     := Identifier '=' expr
//
// Keywords are case-insensitive. `self.X` / `other.X` are scoped attribute
// references; a postfix `.X` on any other expression is record selection.
#pragma once

#include <string_view>

#include "classad/classad.h"
#include "classad/expr.h"

namespace classad {

// The public entry points are declared in classad.h (ClassAd::parse,
// parseExpr, ...); this header exposes the parser for tools that want to
// parse a sequence of ads from one stream.

/// Parses a stream of consecutive classads (whitespace/comment separated),
/// e.g. a file of advertisements. Throws ParseError.
std::vector<ClassAd> parseAdStream(std::string_view text);

}  // namespace classad
