// prepared.h - Per-revision compilation of an ad for the matchmaking hot
// path.
//
// Every pair evaluation in a negotiation cycle used to re-resolve
// `Constraint`/`Requirements` by string lookup and re-walk untouched
// ASTs. A PreparedAd does the per-ad work exactly once per ad revision:
//
//  * the effective constraint is found via the MatchAttributes precedence
//    rule (match.h) and FLATTENED against the owning ad, so self-only
//    subexpressions collapse to literals before any candidate is seen;
//  * the Rank expression is flattened the same way (a fully-folded rank
//    becomes a constant that skips evaluation entirely);
//  * the ad's own attribute values are pre-evaluated into a lowered-name
//    table (candidate-independent attributes only), which is what the
//    engine's candidate index consumes — the index never re-parses or
//    re-evaluates an ad.
//
// flatten() is equivalence-preserving (tests/classad/flatten_test.cpp),
// so every prepared entry point below returns bit-identical results to
// its ClassAd counterpart in match.h; the property test in
// tests/matchmaker/engine spells this out over random pools.
#pragma once

#include <string>
#include <vector>

#include "classad/classad.h"
#include "classad/expr.h"
#include "classad/match.h"
#include "classad/value.h"

namespace classad {

class PreparedAd {
 public:
  /// A candidate-independent attribute, pre-evaluated: `name` is the
  /// lowered (interned) attribute name, `value` its definite value.
  struct OwnValue {
    std::string name;
    Value value;
  };

  PreparedAd() = default;

  /// Compiles `ad` (shared, immutable) under `attrs`. A null ad yields an
  /// invalid PreparedAd that matches nothing.
  static PreparedAd prepare(ClassAdPtr ad, const MatchAttributes& attrs = {});

  bool valid() const noexcept { return ad_ != nullptr; }
  const ClassAdPtr& ad() const noexcept { return ad_; }
  const MatchAttributes& attrs() const noexcept { return attrs_; }

  /// The flattened effective constraint (nullptr when the ad has none and
  /// therefore imposes no requirement).
  bool hasConstraint() const noexcept { return constraint_ != nullptr; }
  const ExprPtr& constraint() const noexcept { return constraint_; }

  /// The flattened Rank expression (nullptr = rank 0.0). When flattening
  /// folded it to a literal, `rankIsConstant()` lets callers skip
  /// evaluation per pair.
  bool hasRank() const noexcept { return rank_ != nullptr; }
  const ExprPtr& rank() const noexcept { return rank_; }
  bool rankIsConstant() const noexcept { return rankConstant_; }
  double constantRank() const noexcept { return constantRankValue_; }

  /// Definite, candidate-independent attribute values (lowered names,
  /// ad-insertion order). Exceptional values are omitted: a strict
  /// comparison against `undefined`/`error` can never be true, so they
  /// carry no indexable information.
  const std::vector<OwnValue>& ownValues() const noexcept { return own_; }

  /// Lowered names of attributes whose defining expressions observe the
  /// candidate ad. Their match-time values are unknowable per-ad, so an
  /// index must treat slots advertising them as candidates for any guard
  /// on these names.
  const std::vector<std::string>& candidateDependentAttrs() const noexcept {
    return candidateDependent_;
  }

 private:
  ClassAdPtr ad_;
  MatchAttributes attrs_;
  ExprPtr constraint_;
  ExprPtr rank_;
  bool rankConstant_ = false;
  double constantRankValue_ = 0.0;
  std::vector<OwnValue> own_;
  std::vector<std::string> candidateDependent_;
};

/// Prepared counterparts of the match.h entry points. Results are
/// identical to the ClassAd versions on the same underlying ads.
ConstraintResult evaluateConstraint(const PreparedAd& ad,
                                    const ClassAd& target);
double evaluateRank(const PreparedAd& ad, const ClassAd& target);
MatchAnalysis analyzeMatch(const PreparedAd& request,
                           const PreparedAd& resource);
bool symmetricMatch(const PreparedAd& a, const PreparedAd& b);
bool oneWayMatch(const PreparedAd& query, const ClassAd& target);

}  // namespace classad
