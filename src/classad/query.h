// query.h - One-way matching queries over collections of ads.
//
// Section 4: "Classads are used for other purposes in Condor as well. All
// entities are represented with classads, as are queries submitted by
// various administrative and user tools. One-way matching protocols are
// used to find all objects matching a given pattern. For example, there are
// tools to check on the status of job queues and browse existing
// resources." This module is the engine behind the repo's condor_status /
// condor_q analogues (examples/status_tools.cpp).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classad/classad.h"
#include "classad/match.h"

namespace classad {

/// A compiled query: a constraint expression evaluated against each target
/// ad (the target is `self` so that bare attribute names refer to the ad
/// being examined, as in `condor_status -constraint 'Memory > 32'`), plus
/// an optional projection of attribute names.
class Query {
 public:
  /// Compiles a constraint expression. Throws ParseError on bad syntax.
  static Query fromConstraint(std::string_view constraintText);

  /// A query matching every ad.
  static Query all();

  explicit Query(ExprPtr constraint) : constraint_(std::move(constraint)) {}

  /// Restricts output to the given attributes (evaluated per ad).
  Query& project(std::vector<std::string> attributes) {
    projection_ = std::move(attributes);
    return *this;
  }

  const std::vector<std::string>& projection() const noexcept {
    return projection_;
  }

  /// True iff the constraint evaluates to boolean true against `ad`.
  bool matches(const ClassAd& ad) const;

  /// All matching ads, in input order.
  std::vector<ClassAdPtr> select(std::span<const ClassAdPtr> ads) const;

  /// Count of matching ads.
  std::size_t count(std::span<const ClassAdPtr> ads) const;

  /// Evaluates the projection against one ad: (name, value) rows. With no
  /// projection, every attribute of the ad is returned (values evaluated).
  std::vector<std::pair<std::string, Value>> row(const ClassAd& ad) const;

 private:
  Query() = default;
  ExprPtr constraint_;  // null means "match all"
  std::vector<std::string> projection_;
};

/// Renders query results as a fixed-width table (the look of condor_status)
/// with one row per ad and one column per projected attribute.
std::string formatTable(const Query& query, std::span<const ClassAdPtr> ads);

/// Orders ads by an attribute's evaluated value: numbers before strings
/// before everything else, each group ordered naturally (numeric order,
/// case-insensitive string order); ads lacking the attribute sort last.
/// Stable, so equal keys keep input order.
std::vector<ClassAdPtr> sortBy(std::span<const ClassAdPtr> ads,
                               std::string_view attribute,
                               bool descending = false);

/// Tallies the distinct values of an attribute across ads (the
/// condor_status -totals view): (rendered value, count) pairs, most
/// frequent first, ties by value text. Missing attributes tally under
/// "undefined".
std::vector<std::pair<std::string, std::size_t>> summarize(
    std::span<const ClassAdPtr> ads, std::string_view attribute);

}  // namespace classad
