#include "classad/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "classad/expr.h"

namespace classad {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Writer {
 public:
  explicit Writer(const JsonOptions& options) : options_(options) {}

  std::string take() { return std::move(out_); }

  void value(const Value& v) {
    switch (v.type()) {
      case ValueType::Undefined:
        out_ += "null";
        return;
      case ValueType::Error:
        out_ += "{\"$error\": ";
        appendJsonString(out_, v.errorReason());
        out_ += '}';
        return;
      case ValueType::Boolean:
        out_ += v.asBoolean() ? "true" : "false";
        return;
      case ValueType::Integer:
        out_ += std::to_string(v.asInteger());
        return;
      case ValueType::Real: {
        const double d = v.asReal();
        if (std::isnan(d)) {
          out_ += "{\"$real\": \"NaN\"}";
        } else if (std::isinf(d)) {
          out_ += d > 0 ? "{\"$real\": \"Infinity\"}"
                        : "{\"$real\": \"-Infinity\"}";
        } else {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.17g", d);
          std::string text = buf;
          // Keep reals distinguishable from integers on the way back.
          if (text.find_first_of(".eE") == std::string::npos) text += ".0";
          out_ += text;
        }
        return;
      }
      case ValueType::String:
        appendJsonString(out_, v.asString());
        return;
      case ValueType::List: {
        const auto& elems = *v.asList();
        out_ += '[';
        ++depth_;
        for (std::size_t i = 0; i < elems.size(); ++i) {
          if (i) out_ += ',';
          newline();
          value(elems[i]);
        }
        --depth_;
        if (!elems.empty()) newline();
        out_ += ']';
        return;
      }
      case ValueType::Record:
        ad(*v.asRecord());
        return;
    }
  }

  void ad(const ClassAd& a) {
    out_ += '{';
    ++depth_;
    bool first = true;
    for (const auto& [name, expr] : a) {
      if (!first) out_ += ',';
      first = false;
      newline();
      appendJsonString(out_, name);
      out_ += options_.pretty ? ": " : ":";
      expression(*expr);
    }
    --depth_;
    if (!first) newline();
    out_ += '}';
  }

  /// A literal serializes natively; lists/records of literals recurse;
  /// everything else becomes {"$expr": "<text>"}.
  void expression(const Expr& e) {
    if (const auto* lit = dynamic_cast<const LiteralExpr*>(&e)) {
      value(lit->value());
      return;
    }
    if (const auto* list = dynamic_cast<const ListExpr*>(&e)) {
      out_ += '[';
      ++depth_;
      bool first = true;
      for (const ExprPtr& elem : list->elements()) {
        if (!first) out_ += ',';
        first = false;
        newline();
        expression(*elem);
      }
      --depth_;
      if (!first) newline();
      out_ += ']';
      return;
    }
    if (const auto* record = dynamic_cast<const RecordExpr*>(&e)) {
      ad(*record->ad());
      return;
    }
    out_ += "{\"$expr\": ";
    appendJsonString(out_, e.toString());
    out_ += '}';
  }

 private:
  void newline() {
    if (!options_.pretty) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }

  JsonOptions options_;
  std::string out_;
  int depth_ = 0;
};

}  // namespace

std::string toJson(const ClassAd& ad, const JsonOptions& options) {
  Writer w(options);
  w.ad(ad);
  return w.take();
}

std::string toJson(const Value& value, const JsonOptions& options) {
  Writer w(options);
  w.value(value);
  return w.take();
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view src) : src_(src) {}

  ClassAd parseTopLevel() {
    skipWs();
    ClassAd ad = parseAd();
    skipWs();
    if (pos_ != src_.size()) fail("trailing characters after JSON object");
    return ad;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON: " + message, 1, static_cast<int>(pos_) + 1);
  }

  char peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char advance() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_++];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }
  void skipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(std::string_view word) {
    if (src_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Basic-plane only; encode UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape in string");
        }
      } else {
        out += c;
      }
    }
  }

  ExprPtr parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool isReal = false;
    if (peek() == '.') {
      isReal = true;
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      isReal = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string text(src_.substr(start, pos_ - start));
    if (text.empty() || text == "-") fail("bad number");
    if (!isReal) {
      std::int64_t v = 0;
      const auto res =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (res.ec == std::errc() && res.ptr == text.data() + text.size()) {
        return makeLiteral(v);
      }
    }
    return makeLiteral(std::strtod(text.c_str(), nullptr));
  }

  /// Parses any JSON value into an expression (literals and structures).
  ExprPtr parseExprValue() {
    // Depth guard: JSON ads arrive off the wire from untrusted peers;
    // unbounded recursion on nested arrays/objects would let a hostile
    // payload overflow the stack.
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    ExprPtr e = parseExprValueInner();
    --depth_;
    return e;
  }

  ExprPtr parseExprValueInner() {
    skipWs();
    const char c = peek();
    if (c == '"') return makeLiteral(parseString());
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == 't' && consume("true")) return makeLiteral(true);
    if (c == 'f' && consume("false")) return makeLiteral(false);
    if (c == 'n' && consume("null")) {
      return LiteralExpr::make(Value::undefined());
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parseNumber();
    }
    fail("unexpected character");
  }

  ExprPtr parseArray() {
    expect('[');
    std::vector<ExprPtr> elems;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return ListExpr::make(std::move(elems));
    }
    for (;;) {
      elems.push_back(parseExprValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return ListExpr::make(std::move(elems));
    }
  }

  struct Special {
    enum class Kind { None, Expr, Error, Real } kind = Kind::None;
    std::string payload;
  };

  /// An object is a special form ($expr/$error/$real) or a nested ad.
  ExprPtr parseObject() {
    Special special;  // local: nested objects must not clobber the outer
    ClassAd ad = parseAdBody(/*allowSpecial=*/true, &special);
    if (special.kind == Special::Kind::Expr) {
      return classad::parseExpr(special.payload);
    }
    if (special.kind == Special::Kind::Error) {
      return LiteralExpr::make(Value::error(special.payload));
    }
    if (special.kind == Special::Kind::Real) {
      if (special.payload == "NaN") return makeLiteral(std::nan(""));
      if (special.payload == "Infinity") {
        return makeLiteral(std::numeric_limits<double>::infinity());
      }
      if (special.payload == "-Infinity") {
        return makeLiteral(-std::numeric_limits<double>::infinity());
      }
      fail("bad $real payload");
    }
    return RecordExpr::make(
        std::make_shared<const ClassAd>(std::move(ad)));
  }

  ClassAd parseAd() {
    Special ignored;
    ClassAd ad = parseAdBody(/*allowSpecial=*/false, &ignored);
    return ad;
  }

  ClassAd parseAdBody(bool allowSpecial, Special* special) {
    special->kind = Special::Kind::None;
    expect('{');
    ClassAd ad;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return ad;
    }
    bool first = true;
    for (;;) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      if (allowSpecial && first &&
          (key == "$expr" || key == "$error" || key == "$real")) {
        skipWs();
        special->payload = parseString();
        special->kind = key == "$expr" ? Special::Kind::Expr
                        : key == "$error" ? Special::Kind::Error
                                          : Special::Kind::Real;
        skipWs();
        expect('}');
        return ad;
      }
      ad.insert(key, parseExprValue());
      first = false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return ad;
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view src_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

ClassAd adFromJson(std::string_view json) {
  return JsonParser(json).parseTopLevel();
}

std::optional<ClassAd> tryAdFromJson(std::string_view json,
                                     std::string* errorMessage) {
  try {
    return adFromJson(json);
  } catch (const ParseError& e) {
    if (errorMessage) {
      *errorMessage = std::string(e.what()) + " (offset " +
                      std::to_string(e.column()) + ")";
    }
    return std::nullopt;
  }
}

}  // namespace classad
