#include "classad/expr.h"

#include <cmath>

#include "classad/builtins.h"
#include "classad/classad.h"

namespace classad {

std::string_view toString(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Subtract: return "-";
    case BinOp::Multiply: return "*";
    case BinOp::Divide: return "/";
    case BinOp::Modulus: return "%";
    case BinOp::Less: return "<";
    case BinOp::LessEq: return "<=";
    case BinOp::Greater: return ">";
    case BinOp::GreaterEq: return ">=";
    case BinOp::Equal: return "==";
    case BinOp::NotEqual: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    case BinOp::Is: return "is";
    case BinOp::IsNot: return "isnt";
  }
  return "?";
}

std::string_view toString(UnOp op) noexcept {
  switch (op) {
    case UnOp::Minus: return "-";
    case UnOp::Plus: return "+";
    case UnOp::Not: return "!";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// EvalContext
// ---------------------------------------------------------------------------

EvalContext::AttrGuard::AttrGuard(EvalContext& ctx, const ClassAd* ad,
                                  std::string_view attr)
    : ctx_(ctx), cyclic_(false) {
  std::string lowered = toLowerCopy(attr);
  for (const Frame& f : ctx_.stack_) {
    if (f.ad == ad && f.attr == lowered) {
      cyclic_ = true;
      return;
    }
  }
  ctx_.stack_.push_back(Frame{ad, std::move(lowered)});
}

EvalContext::AttrGuard::~AttrGuard() {
  if (!cyclic_) ctx_.stack_.pop_back();
}

// ---------------------------------------------------------------------------
// Attribute references
// ---------------------------------------------------------------------------

Value AttrRefExpr::evaluate(EvalContext& ctx) const {
  // Resolve the target ad. Bare references resolve in self first and then
  // FALL THROUGH to the other ad: the paper's prose says bare names
  // "assume the self prefix", but its own Figure 2 writes the machine's
  // attributes bare in the job's Constraint (`Arch == "INTEL"`), which only
  // matches Figure 1 under the deployed Condor rule of self-then-target
  // resolution. We implement the deployed rule.
  const ClassAd* target = nullptr;
  bool inOther = false;
  const ExprPtr* bound = nullptr;
  if (scope_ == RefScope::Other) {
    target = ctx.other();
    inOther = true;
    bound = target ? target->lookup(lowered_) : nullptr;
  } else {
    target = ctx.self();
    bound = target ? target->lookup(lowered_) : nullptr;
    if (bound == nullptr && scope_ == RefScope::Default &&
        ctx.other() != nullptr) {
      target = ctx.other();
      inOther = true;
      bound = target->lookup(lowered_);
    }
  }
  if (bound == nullptr) {
    // "A reference to a non-existent attribute evaluates to the constant
    // undefined." (Section 3.2)
    return Value::undefined();
  }
  EvalContext::AttrGuard guard(ctx, target, lowered_);
  if (guard.cyclic()) {
    return Value::error("circular reference through attribute '" + name_ +
                        "'");
  }
  if (!ctx.enter()) return Value::error("expression too deep");
  // The referenced expression evaluates with its OWNER as self: a
  // reference to other.Rank evaluates the other ad's Rank in the other
  // ad's own frame (with the roles of self/other swapped), exactly as the
  // matchmaking algorithm of Section 3.2 requires.
  Value v;
  if (inOther) {
    EvalContext::ScopeSwap swap(ctx);
    v = (*bound)->evaluate(ctx);
  } else {
    v = (*bound)->evaluate(ctx);
  }
  ctx.leave();
  return v;
}

void AttrRefExpr::unparse(std::string& out) const {
  switch (scope_) {
    case RefScope::Default: break;
    case RefScope::Self: out += "self."; break;
    case RefScope::Other: out += "other."; break;
  }
  out += name_;
}

Value ScopeExpr::evaluate(EvalContext& ctx) const {
  const ClassAd* target =
      scope_ == RefScope::Other ? ctx.other() : ctx.self();
  if (target == nullptr) return Value::undefined();
  return Value::record(std::make_shared<const ClassAd>(*target));
}

void ScopeExpr::unparse(std::string& out) const {
  out += scope_ == RefScope::Other ? "other" : "self";
}

// ---------------------------------------------------------------------------
// Literals & constructors
// ---------------------------------------------------------------------------

void LiteralExpr::unparse(std::string& out) const {
  out += value_.toLiteralString();
}

Value ListExpr::evaluate(EvalContext& ctx) const {
  std::vector<Value> vals;
  vals.reserve(elems_.size());
  for (const ExprPtr& e : elems_) {
    vals.push_back(e->evaluate(ctx));
  }
  return Value::list(std::move(vals));
}

void ListExpr::unparse(std::string& out) const {
  out += "{ ";
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (i) out += ", ";
    elems_[i]->unparse(out);
  }
  out += elems_.empty() ? "}" : " }";
}

Value RecordExpr::evaluate(EvalContext&) const { return Value::record(ad_); }

void RecordExpr::unparse(std::string& out) const { out += ad_->unparse(); }

// ---------------------------------------------------------------------------
// Unary operators
// ---------------------------------------------------------------------------

Value UnaryExpr::evaluate(EvalContext& ctx) const {
  const Value v = operand_->evaluate(ctx);
  switch (op_) {
    case UnOp::Not:
      // Kleene negation: strict only over error.
      if (v.isError()) return v;
      if (v.isUndefined()) return v;
      if (v.isBoolean()) return Value::boolean(!v.asBoolean());
      return Value::error("operand of ! is not boolean");
    case UnOp::Minus:
      if (v.isExceptional()) return v;
      if (v.isInteger()) return Value::integer(-v.asInteger());
      if (v.isReal()) return Value::real(-v.asReal());
      return Value::error("operand of unary - is not numeric");
    case UnOp::Plus:
      if (v.isExceptional()) return v;
      if (v.isNumber()) return v;
      return Value::error("operand of unary + is not numeric");
  }
  return Value::error("bad unary operator");
}

void UnaryExpr::unparse(std::string& out) const {
  out += classad::toString(op_);
  const bool paren = operand_->precedence() < precedence();
  if (paren) out += '(';
  operand_->unparse(out);
  if (paren) out += ')';
}

// ---------------------------------------------------------------------------
// Binary operators
// ---------------------------------------------------------------------------

namespace {

/// Comparison outcome used by the relational operators.
enum class Cmp { Less, Equal, Greater, Undefined, Error };

Value promoteBool(const Value& v);

Cmp compareValues(const Value& rawA, const Value& rawB) {
  if (rawA.isUndefined() || rawB.isUndefined()) return Cmp::Undefined;
  if (rawA.isError() || rawB.isError()) return Cmp::Error;
  // Mixed boolean/number comparisons treat the boolean as 0/1 (see
  // promoteBool); boolean/boolean comparisons stay boolean.
  const Value a = rawA.isBoolean() && rawB.isNumber() ? promoteBool(rawA) : rawA;
  const Value b = rawB.isBoolean() && rawA.isNumber() ? promoteBool(rawB) : rawB;
  if (a.isNumber() && b.isNumber()) {
    if (a.isInteger() && b.isInteger()) {
      const auto x = a.asInteger(), y = b.asInteger();
      return x < y ? Cmp::Less : x > y ? Cmp::Greater : Cmp::Equal;
    }
    const double x = a.toReal(), y = b.toReal();
    if (std::isnan(x) || std::isnan(y)) return Cmp::Error;
    return x < y ? Cmp::Less : x > y ? Cmp::Greater : Cmp::Equal;
  }
  if (a.isString() && b.isString()) {
    // The == operator compares strings case-insensitively (the `is`
    // operator provides case-sensitive identity).
    const int c = compareIgnoreCase(a.asString(), b.asString());
    return c < 0 ? Cmp::Less : c > 0 ? Cmp::Greater : Cmp::Equal;
  }
  if (a.isBoolean() && b.isBoolean()) {
    const int x = a.asBoolean() ? 1 : 0, y = b.asBoolean() ? 1 : 0;
    return x < y ? Cmp::Less : x > y ? Cmp::Greater : Cmp::Equal;
  }
  // Mixed or non-scalar types do not compare.
  return Cmp::Error;
}

/// Booleans participate in arithmetic as 0/1, the classic-Condor behaviour
/// that Figure 1's `member(other.Owner, ResearchGroup) * 10 + ...` Rank
/// expression relies on.
Value promoteBool(const Value& v) {
  if (v.isBoolean()) return Value::integer(v.asBoolean() ? 1 : 0);
  return v;
}

Value arithmetic(BinOp op, const Value& rawA, const Value& rawB) {
  const Value a = promoteBool(rawA);
  const Value b = promoteBool(rawB);
  // Error dominates undefined: a computation that already failed stays
  // failed even when mixed with missing data.
  if (a.isError()) return a;
  if (b.isError()) return b;
  if (a.isUndefined() || b.isUndefined()) return Value::undefined();
  if (!a.isNumber() || !b.isNumber()) {
    return Value::error(std::string("operands of ") +
                        std::string(classad::toString(op)) + " are not numeric");
  }
  const bool bothInt = a.isInteger() && b.isInteger();
  switch (op) {
    case BinOp::Add:
      return bothInt ? Value::integer(a.asInteger() + b.asInteger())
                     : Value::real(a.toReal() + b.toReal());
    case BinOp::Subtract:
      return bothInt ? Value::integer(a.asInteger() - b.asInteger())
                     : Value::real(a.toReal() - b.toReal());
    case BinOp::Multiply:
      return bothInt ? Value::integer(a.asInteger() * b.asInteger())
                     : Value::real(a.toReal() * b.toReal());
    case BinOp::Divide:
      if (bothInt) {
        if (b.asInteger() == 0) return Value::error("division by zero");
        return Value::integer(a.asInteger() / b.asInteger());
      }
      if (b.toReal() == 0.0) return Value::error("division by zero");
      return Value::real(a.toReal() / b.toReal());
    case BinOp::Modulus:
      if (!bothInt) return Value::error("operands of % are not integers");
      if (b.asInteger() == 0) return Value::error("modulus by zero");
      return Value::integer(a.asInteger() % b.asInteger());
    default:
      return Value::error("bad arithmetic operator");
  }
}

Value relational(BinOp op, const Value& a, const Value& b) {
  switch (compareValues(a, b)) {
    case Cmp::Undefined:
      // "comparison operators are strict" (Section 3.2)
      return Value::undefined();
    case Cmp::Error:
      return Value::error(std::string("cannot compare ") +
                          std::string(classad::toString(a.type())) + " with " +
                          std::string(classad::toString(b.type())));
    case Cmp::Less:
      return Value::boolean(op == BinOp::Less || op == BinOp::LessEq ||
                            op == BinOp::NotEqual);
    case Cmp::Greater:
      return Value::boolean(op == BinOp::Greater || op == BinOp::GreaterEq ||
                            op == BinOp::NotEqual);
    case Cmp::Equal:
      return Value::boolean(op == BinOp::Equal || op == BinOp::LessEq ||
                            op == BinOp::GreaterEq);
  }
  return Value::error("bad comparison");
}

/// Classifies a value for the Kleene connectives: definite boolean,
/// undefined, or error (any non-boolean, non-undefined operand of && / ||
/// is a type error).
enum class Tri { True, False, Undef, Err };

Tri triOf(const Value& v) {
  if (v.isBoolean()) return v.asBoolean() ? Tri::True : Tri::False;
  if (v.isUndefined()) return Tri::Undef;
  return Tri::Err;
}

}  // namespace

Value BinaryExpr::apply(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::Add:
    case BinOp::Subtract:
    case BinOp::Multiply:
    case BinOp::Divide:
    case BinOp::Modulus:
      return arithmetic(op, a, b);
    case BinOp::Less:
    case BinOp::LessEq:
    case BinOp::Greater:
    case BinOp::GreaterEq:
    case BinOp::Equal:
    case BinOp::NotEqual:
      return relational(op, a, b);
    case BinOp::And: {
      // "The Boolean operators || and && are non-strict on both
      // arguments" (Section 3.2): false wins regardless of the other side.
      const Tri x = triOf(a), y = triOf(b);
      if (x == Tri::False || y == Tri::False) return Value::boolean(false);
      if (x == Tri::Err || y == Tri::Err) {
        return Value::error("operand of && is not boolean");
      }
      if (x == Tri::Undef || y == Tri::Undef) return Value::undefined();
      return Value::boolean(true);
    }
    case BinOp::Or: {
      const Tri x = triOf(a), y = triOf(b);
      if (x == Tri::True || y == Tri::True) return Value::boolean(true);
      if (x == Tri::Err || y == Tri::Err) {
        return Value::error("operand of || is not boolean");
      }
      if (x == Tri::Undef || y == Tri::Undef) return Value::undefined();
      return Value::boolean(false);
    }
    case BinOp::Is:
      // "non-strict operators is and isnt, which always return Boolean
      // results (not undefined)" (Section 3.2)
      return Value::boolean(a.isIdenticalTo(b));
    case BinOp::IsNot:
      return Value::boolean(!a.isIdenticalTo(b));
  }
  return Value::error("bad binary operator");
}

Value BinaryExpr::evaluate(EvalContext& ctx) const {
  if (!ctx.enter()) return Value::error("expression too deep");
  const Value a = lhs_->evaluate(ctx);
  // Short-circuit where the left operand alone decides, preserving
  // non-strict semantics while skipping wasted work.
  if (op_ == BinOp::And && a.isBoolean() && !a.asBoolean()) {
    ctx.leave();
    return Value::boolean(false);
  }
  if (op_ == BinOp::Or && a.isBoolean() && a.asBoolean()) {
    ctx.leave();
    return Value::boolean(true);
  }
  const Value b = rhs_->evaluate(ctx);
  ctx.leave();
  return apply(op_, a, b);
}

int BinaryExpr::precedence() const noexcept {
  switch (op_) {
    case BinOp::Or: return 20;
    case BinOp::And: return 30;
    case BinOp::Is:
    case BinOp::IsNot:
    case BinOp::Equal:
    case BinOp::NotEqual: return 40;
    case BinOp::Less:
    case BinOp::LessEq:
    case BinOp::Greater:
    case BinOp::GreaterEq: return 50;
    case BinOp::Add:
    case BinOp::Subtract: return 60;
    case BinOp::Multiply:
    case BinOp::Divide:
    case BinOp::Modulus: return 70;
  }
  return 0;
}

void BinaryExpr::unparse(std::string& out) const {
  const int prec = precedence();
  const bool lparen = lhs_->precedence() < prec;
  if (lparen) out += '(';
  lhs_->unparse(out);
  if (lparen) out += ')';
  out += ' ';
  out += classad::toString(op_);
  out += ' ';
  // Left-associative grammar: parenthesize the right child at equal
  // precedence (e.g. a - (b - c)).
  const bool rparen = rhs_->precedence() <= prec;
  if (rparen) out += '(';
  rhs_->unparse(out);
  if (rparen) out += ')';
}

// ---------------------------------------------------------------------------
// Ternary
// ---------------------------------------------------------------------------

Value TernaryExpr::evaluate(EvalContext& ctx) const {
  if (!ctx.enter()) return Value::error("expression too deep");
  const Value c = cond_->evaluate(ctx);
  Value result;
  if (c.isBoolean()) {
    result = c.asBoolean() ? then_->evaluate(ctx) : else_->evaluate(ctx);
  } else if (c.isUndefined()) {
    result = Value::undefined();
  } else if (c.isError()) {
    result = c;
  } else {
    result = Value::error("condition of ?: is not boolean");
  }
  ctx.leave();
  return result;
}

void TernaryExpr::unparse(std::string& out) const {
  const bool cparen = cond_->precedence() <= precedence();
  if (cparen) out += '(';
  cond_->unparse(out);
  if (cparen) out += ')';
  out += " ? ";
  then_->unparse(out);
  out += " : ";
  // ?: is right-associative; the else branch may be another ternary
  // without parentheses (Figure 1 nests conditionals this way).
  else_->unparse(out);
}

// ---------------------------------------------------------------------------
// Selection, subscription, calls
// ---------------------------------------------------------------------------

Value SelectExpr::evaluate(EvalContext& ctx) const {
  if (!ctx.enter()) return Value::error("expression too deep");
  const Value base = base_->evaluate(ctx);
  ctx.leave();
  if (base.isExceptional()) return base;
  if (!base.isRecord()) {
    return Value::error("selection '." + attr_ + "' applied to " +
                        std::string(classad::toString(base.type())));
  }
  // Attributes of a nested record evaluate in the record's own frame, so
  // that its internal references resolve locally.
  return base.asRecord()->evaluateAttr(attr_, ctx.other());
}

void SelectExpr::unparse(std::string& out) const {
  const bool paren = base_->precedence() < precedence();
  if (paren) out += '(';
  base_->unparse(out);
  if (paren) out += ')';
  out += '.';
  out += attr_;
}

Value SubscriptExpr::evaluate(EvalContext& ctx) const {
  if (!ctx.enter()) return Value::error("expression too deep");
  const Value base = base_->evaluate(ctx);
  const Value idx = index_->evaluate(ctx);
  ctx.leave();
  if (base.isExceptional()) return base;
  if (idx.isExceptional()) return idx;
  if (base.isList()) {
    if (!idx.isInteger()) return Value::error("list subscript is not integer");
    const auto& elems = *base.asList();
    const std::int64_t i = idx.asInteger();
    if (i < 0 || static_cast<std::size_t>(i) >= elems.size()) {
      return Value::error("list subscript out of range");
    }
    return elems[static_cast<std::size_t>(i)];
  }
  if (base.isRecord()) {
    if (!idx.isString()) return Value::error("record subscript is not string");
    return base.asRecord()->evaluateAttr(idx.asString(), ctx.other());
  }
  return Value::error("subscript applied to " +
                      std::string(classad::toString(base.type())));
}

void SubscriptExpr::unparse(std::string& out) const {
  const bool paren = base_->precedence() < precedence();
  if (paren) out += '(';
  base_->unparse(out);
  if (paren) out += ')';
  out += '[';
  index_->unparse(out);
  out += ']';
}

Value FuncCallExpr::evaluate(EvalContext& ctx) const {
  const BuiltinFn* fn = lookupBuiltin(lowered_);
  if (fn == nullptr) {
    return Value::error("unknown function '" + name_ + "'");
  }
  if (!ctx.enter()) return Value::error("expression too deep");
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    args.push_back(a->evaluate(ctx));
  }
  ctx.leave();
  return (*fn)(args);
}

void FuncCallExpr::unparse(std::string& out) const {
  out += name_;
  out += '(';
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    args_[i]->unparse(out);
  }
  out += ')';
}

// ---------------------------------------------------------------------------
// Generic AST walking
// ---------------------------------------------------------------------------

void Expr::visitChildren(const std::function<void(const Expr&)>&) const {}

void UnaryExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  fn(*operand_);
}

void BinaryExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  fn(*lhs_);
  fn(*rhs_);
}

void TernaryExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  fn(*cond_);
  fn(*then_);
  fn(*else_);
}

void ListExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  for (const ExprPtr& e : elems_) fn(*e);
}

void RecordExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  for (const auto& [name, expr] : ad_->attributes()) fn(*expr);
}

void SelectExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  fn(*base_);
}

void SubscriptExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  fn(*base_);
  fn(*index_);
}

void FuncCallExpr::visitChildren(
    const std::function<void(const Expr&)>& fn) const {
  for (const ExprPtr& a : args_) fn(*a);
}

void collectAttrRefs(const Expr& expr,
                     std::vector<std::string>& loweredNames) {
  if (const auto* ref = dynamic_cast<const AttrRefExpr*>(&expr)) {
    loweredNames.push_back(ref->loweredName());
  } else if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
    loweredNames.push_back(toLowerCopy(sel->attribute()));
  }
  expr.visitChildren(
      [&loweredNames](const Expr& child) { collectAttrRefs(child, loweredNames); });
}

// ---------------------------------------------------------------------------
// Literal helpers
// ---------------------------------------------------------------------------

ExprPtr makeLiteral(std::int64_t v) {
  return LiteralExpr::make(Value::integer(v));
}
ExprPtr makeLiteral(double v) { return LiteralExpr::make(Value::real(v)); }
ExprPtr makeLiteral(bool v) { return LiteralExpr::make(Value::boolean(v)); }
ExprPtr makeLiteral(std::string v) {
  return LiteralExpr::make(Value::string(std::move(v)));
}
ExprPtr makeLiteral(const char* v) {
  return LiteralExpr::make(Value::string(v));
}

}  // namespace classad
