// value.h - Runtime values of the ClassAd expression language.
//
// Implements the data model of Section 3.1 of "Matchmaking: Distributed
// Resource Management for High Throughput Computing" (Raman, Livny, Solomon,
// HPDC 1998): integers, reals, strings, booleans, lists, nested classads
// (records), and the two distinguished constants `undefined` and `error`
// that drive the three-valued logic of Section 3.2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace classad {

class ClassAd;
class Value;

/// A list value: the result of evaluating a `{ e1, e2, ... }` expression.
/// Lists are immutable once built and cheaply shareable.
using ListValue = std::shared_ptr<const std::vector<Value>>;

/// A record value: a nested classad, first-class per Section 3.1 ("Classads
/// are first-class objects in the model. They can be arbitrarily nested").
using AdValue = std::shared_ptr<const ClassAd>;

/// Discriminator for Value.
enum class ValueType : std::uint8_t {
  Undefined,  ///< reference to a nonexistent attribute, and propagation
  Error,      ///< type errors, division by zero, circular references, ...
  Boolean,
  Integer,
  Real,
  String,
  List,
  Record,
};

/// Human-readable name of a ValueType ("undefined", "integer", ...).
std::string_view toString(ValueType t) noexcept;

/// A runtime value. Values are small, copyable, and immutable; lists and
/// records are shared by reference.
class Value {
 public:
  struct UndefinedT {};
  /// `error` carries a diagnostic reason used by the constraint-diagnosis
  /// tools (Section 5 future work); the reason does not participate in
  /// equality or identity.
  struct ErrorT {
    std::shared_ptr<const std::string> reason;
  };

  /// Default-constructed values are `undefined` (the language's bottom).
  Value() noexcept : v_(UndefinedT{}) {}

  static Value undefined() noexcept { return Value(); }
  static Value error(std::string reason = {});
  static Value boolean(bool b) noexcept { return Value(b); }
  static Value integer(std::int64_t i) noexcept { return Value(i); }
  static Value real(double d) noexcept { return Value(d); }
  static Value string(std::string s) { return Value(std::move(s)); }
  static Value list(ListValue l) noexcept { return Value(std::move(l)); }
  static Value list(std::vector<Value> elems);
  static Value record(AdValue ad) noexcept { return Value(std::move(ad)); }

  ValueType type() const noexcept {
    return static_cast<ValueType>(v_.index());
  }

  bool isUndefined() const noexcept { return type() == ValueType::Undefined; }
  bool isError() const noexcept { return type() == ValueType::Error; }
  /// Either undefined or error: the "exceptional" values most operators are
  /// strict over.
  bool isExceptional() const noexcept { return isUndefined() || isError(); }
  bool isBoolean() const noexcept { return type() == ValueType::Boolean; }
  bool isInteger() const noexcept { return type() == ValueType::Integer; }
  bool isReal() const noexcept { return type() == ValueType::Real; }
  bool isNumber() const noexcept { return isInteger() || isReal(); }
  bool isString() const noexcept { return type() == ValueType::String; }
  bool isList() const noexcept { return type() == ValueType::List; }
  bool isRecord() const noexcept { return type() == ValueType::Record; }

  /// Accessors; calling the wrong one is a programming error (asserts in
  /// debug builds via std::get).
  bool asBoolean() const { return std::get<bool>(v_); }
  std::int64_t asInteger() const { return std::get<std::int64_t>(v_); }
  double asReal() const { return std::get<double>(v_); }
  const std::string& asString() const { return std::get<std::string>(v_); }
  const ListValue& asList() const { return std::get<ListValue>(v_); }
  const AdValue& asRecord() const { return std::get<AdValue>(v_); }

  /// Diagnostic reason attached to an error value ("" if none).
  const std::string& errorReason() const;

  /// Numeric coercion: integer or real as double. Precondition: isNumber().
  double toReal() const {
    return isInteger() ? static_cast<double>(asInteger()) : asReal();
  }

  /// True iff the value is boolean `true`. The matchmaking algorithm of
  /// Section 3.2 accepts a match only when both Constraints satisfy this
  /// ("the match fails if the Constraint evaluates to undefined").
  bool isBooleanTrue() const noexcept {
    return isBoolean() && std::get<bool>(v_);
  }

  /// Rank coercion per Section 3.2: "non-integer values are treated as
  /// zero". We accept any number (integers and reals both appear in the
  /// paper's Rank expressions, e.g. Figure 2's `KFlops/1E3 + ...`) and map
  /// everything else to 0.0.
  double rankValue() const noexcept {
    return isNumber() ? toReal() : 0.0;
  }

  /// Identity per the `is` operator: same type and same value. Strings
  /// compare case-sensitively, integer and real of equal magnitude are NOT
  /// identical, `undefined is undefined` and `error is error` are true.
  /// Lists/records compare by structural identity (deep, case-sensitive).
  bool isIdenticalTo(const Value& rhs) const;

  /// Renders the value as a literal of the classad language (strings are
  /// quoted and escaped, reals keep full round-trip precision).
  std::string toLiteralString() const;

 private:
  explicit Value(bool b) noexcept : v_(b) {}
  explicit Value(std::int64_t i) noexcept : v_(i) {}
  explicit Value(double d) noexcept : v_(d) {}
  explicit Value(std::string s) noexcept : v_(std::move(s)) {}
  explicit Value(ListValue l) noexcept : v_(std::move(l)) {}
  explicit Value(AdValue a) noexcept : v_(std::move(a)) {}
  explicit Value(ErrorT e) noexcept : v_(std::move(e)) {}

  // Order must match ValueType.
  std::variant<UndefinedT, ErrorT, bool, std::int64_t, double, std::string,
               ListValue, AdValue>
      v_;
};

/// Case-insensitive string equality, the comparison used by the `==`
/// operator on strings and by attribute-name lookup (classad identifiers
/// are case-insensitive).
bool equalsIgnoreCase(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive three-way string comparison (<0, 0, >0).
int compareIgnoreCase(std::string_view a, std::string_view b) noexcept;

/// Lowercase a name for use as a case-insensitive map key.
std::string toLowerCopy(std::string_view s);

}  // namespace classad
