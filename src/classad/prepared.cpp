#include "classad/prepared.h"

#include <utility>

#include "classad/flatten.h"

namespace classad {

PreparedAd PreparedAd::prepare(ClassAdPtr ad, const MatchAttributes& attrs) {
  PreparedAd out;
  if (ad == nullptr) return out;
  out.ad_ = std::move(ad);
  out.attrs_ = attrs;

  const ClassAd& self = *out.ad_;
  if (const ExprPtr* constraint = findConstraintExpr(self, attrs)) {
    out.constraint_ = flatten(*constraint, self);
  }
  if (const ExprPtr* rank = self.lookup(attrs.rank)) {
    out.rank_ = flatten(*rank, self);
    if (const auto* lit = dynamic_cast<const LiteralExpr*>(out.rank_.get())) {
      out.rankConstant_ = true;
      out.constantRankValue_ = lit->value().rankValue();
    }
  }

  for (const auto& [name, expr] : self.attributes()) {
    std::string lowered = toLowerCopy(name);
    if (dependsOnCandidate(*expr, self)) {
      out.candidateDependent_.push_back(std::move(lowered));
      continue;
    }
    Value v = self.evaluateAttr(lowered);
    if (v.isExceptional()) continue;
    out.own_.push_back({std::move(lowered), std::move(v)});
  }
  return out;
}

ConstraintResult evaluateConstraint(const PreparedAd& ad,
                                    const ClassAd& target) {
  if (!ad.valid()) return ConstraintResult::Error;
  if (!ad.hasConstraint()) return ConstraintResult::Missing;
  const Value v = ad.ad()->evaluate(*ad.constraint(), &target);
  if (v.isBoolean()) {
    return v.asBoolean() ? ConstraintResult::Satisfied
                         : ConstraintResult::Violated;
  }
  if (v.isUndefined()) return ConstraintResult::Undefined;
  return ConstraintResult::Error;
}

double evaluateRank(const PreparedAd& ad, const ClassAd& target) {
  if (!ad.valid() || !ad.hasRank()) return 0.0;
  if (ad.rankIsConstant()) return ad.constantRank();
  return ad.ad()->evaluate(*ad.rank(), &target).rankValue();
}

MatchAnalysis analyzeMatch(const PreparedAd& request,
                           const PreparedAd& resource) {
  MatchAnalysis out;
  out.requestSide = evaluateConstraint(request, *resource.ad());
  out.resourceSide = evaluateConstraint(resource, *request.ad());
  out.matched = permitsMatch(out.requestSide) && permitsMatch(out.resourceSide);
  if (out.matched) {
    out.requestRank = evaluateRank(request, *resource.ad());
    out.resourceRank = evaluateRank(resource, *request.ad());
  }
  return out;
}

bool symmetricMatch(const PreparedAd& a, const PreparedAd& b) {
  return permitsMatch(evaluateConstraint(a, *b.ad())) &&
         permitsMatch(evaluateConstraint(b, *a.ad()));
}

bool oneWayMatch(const PreparedAd& query, const ClassAd& target) {
  return permitsMatch(evaluateConstraint(query, target));
}

}  // namespace classad
