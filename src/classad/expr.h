// expr.h - Abstract syntax tree of the ClassAd expression language and its
// evaluation semantics (Section 3.1-3.2 of the HPDC 1998 paper).
//
// Expressions are immutable and shared (ExprPtr is shared_ptr<const Expr>),
// so a parsed ad can be copied, stored in a matchmaker, and evaluated from
// multiple threads concurrently without synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "classad/value.h"

namespace classad {

class ClassAd;
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators, grouped by the evaluation rule they follow.
enum class BinOp : std::uint8_t {
  // arithmetic (strict, numeric)
  Add, Subtract, Multiply, Divide, Modulus,
  // comparison (strict; numeric with promotion, or case-insensitive string)
  Less, LessEq, Greater, GreaterEq, Equal, NotEqual,
  // logical (NON-strict: three-valued Kleene logic per Section 3.2)
  And, Or,
  // identity (non-strict; always yields a boolean, never undefined/error)
  Is, IsNot,
};

enum class UnOp : std::uint8_t {
  Minus,  // strict, numeric
  Plus,   // strict, numeric
  Not,    // Kleene: !undefined = undefined
};

std::string_view toString(BinOp op) noexcept;
std::string_view toString(UnOp op) noexcept;

/// Which ad an attribute reference resolves against (Section 3.2: "An
/// attribute reference of the form self.attribute-name refers to another
/// attribute of the classad containing the reference, while
/// other.attribute-name refers to an attribute of the other ad. If neither
/// self nor other is mentioned explicitly, the evaluation mechanism assumes
/// the self prefix.").
enum class RefScope : std::uint8_t {
  Default,  // bare name: resolves in self
  Self,
  Other,
};

/// Evaluation environment. `self` is the ad containing the expression being
/// evaluated, `other` is the candidate ad of a (one- or two-sided) match.
/// Either may be null: a reference through a missing scope is `undefined`.
///
/// The context also carries the circular-reference guard. A classad may
/// legally contain mutually-referring attributes (Figure 1's Constraint
/// refers to Rank); cycles, however, evaluate to `error` rather than
/// diverging.
class EvalContext {
 public:
  EvalContext(const ClassAd* self, const ClassAd* other) noexcept
      : self_(self), other_(other) {}

  const ClassAd* self() const noexcept { return self_; }
  const ClassAd* other() const noexcept { return other_; }

  /// RAII guard marking (ad, attribute) as under evaluation; detects cycles.
  class AttrGuard {
   public:
    AttrGuard(EvalContext& ctx, const ClassAd* ad, std::string_view attr);
    ~AttrGuard();
    AttrGuard(const AttrGuard&) = delete;
    AttrGuard& operator=(const AttrGuard&) = delete;
    /// True if this (ad, attr) was already on the evaluation stack.
    bool cyclic() const noexcept { return cyclic_; }

   private:
    EvalContext& ctx_;
    bool cyclic_;
  };

  /// Depth guard against pathologically deep expressions.
  bool enter() noexcept {
    return ++depth_ <= kMaxDepth;
  }
  void leave() noexcept { --depth_; }

  /// RAII swap of self/other for the duration of evaluating an
  /// `other.Attr` reference: the referenced expression evaluates with its
  /// OWNER as self (Section 3.2), while the cycle stack and depth counter
  /// remain shared so self->other->self reference cycles are detected.
  class ScopeSwap {
   public:
    explicit ScopeSwap(EvalContext& ctx) noexcept : ctx_(ctx) {
      std::swap(ctx_.self_, ctx_.other_);
    }
    ~ScopeSwap() { std::swap(ctx_.self_, ctx_.other_); }
    ScopeSwap(const ScopeSwap&) = delete;
    ScopeSwap& operator=(const ScopeSwap&) = delete;

   private:
    EvalContext& ctx_;
  };

 private:
  friend class AttrGuard;
  struct Frame {
    const ClassAd* ad;
    std::string attr;  // lowercased
  };
  const ClassAd* self_;
  const ClassAd* other_;
  std::vector<Frame> stack_;
  int depth_ = 0;
  static constexpr int kMaxDepth = 512;
};

/// Base class of all AST nodes.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates the expression in `ctx`. Never throws for language-level
  /// failures; those produce `error` values (Section 3.2 semantics).
  virtual Value evaluate(EvalContext& ctx) const = 0;

  /// Appends the concrete syntax of this node to `out`. The output
  /// re-parses to an equivalent AST (the round-trip property tested in
  /// tests/classad/parser_test.cpp).
  virtual void unparse(std::string& out) const = 0;

  /// Operator precedence of this node, used to parenthesize minimally when
  /// unparsing. Higher binds tighter; atoms return kAtomPrecedence.
  virtual int precedence() const noexcept { return kAtomPrecedence; }

  /// Invokes `fn` on each direct child expression (none for atoms).
  /// Drives generic AST walks (attribute-reference collection, conjunct
  /// analysis) without a full visitor hierarchy.
  virtual void visitChildren(const std::function<void(const Expr&)>& fn) const;

  std::string toString() const {
    std::string out;
    unparse(out);
    return out;
  }

  static constexpr int kAtomPrecedence = 100;
};

// ---------------------------------------------------------------------------
// Node types
// ---------------------------------------------------------------------------

/// A literal constant: 42, 3.14, "INTEL", true, undefined, error.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value evaluate(EvalContext&) const override { return value_; }
  void unparse(std::string& out) const override;
  const Value& value() const noexcept { return value_; }

  static ExprPtr make(Value v) {
    return std::make_shared<LiteralExpr>(std::move(v));
  }

 private:
  Value value_;
};

/// An attribute reference: `Memory`, `self.Rank`, `other.Owner`.
class AttrRefExpr final : public Expr {
 public:
  AttrRefExpr(RefScope scope, std::string name)
      : scope_(scope), name_(std::move(name)), lowered_(toLowerCopy(name_)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  RefScope scope() const noexcept { return scope_; }
  const std::string& name() const noexcept { return name_; }
  const std::string& loweredName() const noexcept { return lowered_; }

  static ExprPtr make(RefScope scope, std::string name) {
    return std::make_shared<AttrRefExpr>(scope, std::move(name));
  }

 private:
  RefScope scope_;
  std::string name_;
  std::string lowered_;
};

/// A bare `self` or `other` used as a value: evaluates to the ad itself as
/// a record value (supports e.g. `size(other)`).
class ScopeExpr final : public Expr {
 public:
  explicit ScopeExpr(RefScope scope) : scope_(scope) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  RefScope scope() const noexcept { return scope_; }

 private:
  RefScope scope_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  int precedence() const noexcept override { return 90; }
  UnOp op() const noexcept { return op_; }
  const ExprPtr& operand() const noexcept { return operand_; }

  static ExprPtr make(UnOp op, ExprPtr e) {
    return std::make_shared<UnaryExpr>(op, std::move(e));
  }

 private:
  UnOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  int precedence() const noexcept override;
  BinOp op() const noexcept { return op_; }
  const ExprPtr& lhs() const noexcept { return lhs_; }
  const ExprPtr& rhs() const noexcept { return rhs_; }

  static ExprPtr make(BinOp op, ExprPtr l, ExprPtr r) {
    return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
  }

  /// Applies `op` to already-evaluated operands; the building block shared
  /// by the evaluator, the constraint analyzer, and constant folding.
  static Value apply(BinOp op, const Value& lhs, const Value& rhs);

 private:
  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// `cond ? then : else` (Figure 1 uses a nested conditional as its policy).
class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr cond, ExprPtr then, ExprPtr otherwise)
      : cond_(std::move(cond)),
        then_(std::move(then)),
        else_(std::move(otherwise)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  int precedence() const noexcept override { return 10; }
  const ExprPtr& cond() const noexcept { return cond_; }
  const ExprPtr& thenExpr() const noexcept { return then_; }
  const ExprPtr& elseExpr() const noexcept { return else_; }

  static ExprPtr make(ExprPtr c, ExprPtr t, ExprPtr e) {
    return std::make_shared<TernaryExpr>(std::move(c), std::move(t),
                                         std::move(e));
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

/// A list constructor `{ e1, e2, ... }` (Figure 1's ResearchGroup).
class ListExpr final : public Expr {
 public:
  explicit ListExpr(std::vector<ExprPtr> elems) : elems_(std::move(elems)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  const std::vector<ExprPtr>& elements() const noexcept { return elems_; }

  static ExprPtr make(std::vector<ExprPtr> elems) {
    return std::make_shared<ListExpr>(std::move(elems));
  }

 private:
  std::vector<ExprPtr> elems_;
};

/// A record (nested classad) constructor `[ name = expr; ... ]`.
class RecordExpr final : public Expr {
 public:
  explicit RecordExpr(std::shared_ptr<const ClassAd> ad)
      : ad_(std::move(ad)) {}
  Value evaluate(EvalContext&) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  const std::shared_ptr<const ClassAd>& ad() const noexcept { return ad_; }

  static ExprPtr make(std::shared_ptr<const ClassAd> ad) {
    return std::make_shared<RecordExpr>(std::move(ad));
  }

 private:
  std::shared_ptr<const ClassAd> ad_;
};

/// Attribute selection on a record-valued expression: `expr.Attr`.
/// (`self.X` / `other.X` parse to AttrRefExpr, not SelectExpr.)
class SelectExpr final : public Expr {
 public:
  SelectExpr(ExprPtr base, std::string attr)
      : base_(std::move(base)), attr_(std::move(attr)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  int precedence() const noexcept override { return 95; }
  const std::string& attribute() const noexcept { return attr_; }
  const ExprPtr& base() const noexcept { return base_; }

  static ExprPtr make(ExprPtr base, std::string attr) {
    return std::make_shared<SelectExpr>(std::move(base), std::move(attr));
  }

 private:
  ExprPtr base_;
  std::string attr_;
};

/// List subscription `list[i]` and record subscription `record["name"]`.
class SubscriptExpr final : public Expr {
 public:
  SubscriptExpr(ExprPtr base, ExprPtr index)
      : base_(std::move(base)), index_(std::move(index)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  int precedence() const noexcept override { return 95; }
  const ExprPtr& base() const noexcept { return base_; }
  const ExprPtr& index() const noexcept { return index_; }

  static ExprPtr make(ExprPtr base, ExprPtr index) {
    return std::make_shared<SubscriptExpr>(std::move(base), std::move(index));
  }

 private:
  ExprPtr base_;
  ExprPtr index_;
};

/// A call to a built-in function, e.g. Figure 1's
/// `member(other.Owner, ResearchGroup)`. The function table lives in
/// builtins.h; unknown functions evaluate to `error`.
class FuncCallExpr final : public Expr {
 public:
  FuncCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)),
        lowered_(toLowerCopy(name_)),
        args_(std::move(args)) {}
  Value evaluate(EvalContext& ctx) const override;
  void unparse(std::string& out) const override;
  void visitChildren(
      const std::function<void(const Expr&)>& fn) const override;
  const std::string& name() const noexcept { return name_; }
  const std::vector<ExprPtr>& args() const noexcept { return args_; }

  static ExprPtr make(std::string name, std::vector<ExprPtr> args) {
    return std::make_shared<FuncCallExpr>(std::move(name), std::move(args));
  }

 private:
  std::string name_;
  std::string lowered_;
  std::vector<ExprPtr> args_;
};

/// Collects the (lowercased) names of every attribute referenced anywhere
/// in `expr` — bare, self-, other-scoped references and record selections
/// alike. Used by the aggregation soundness check and the diagnostics.
void collectAttrRefs(const Expr& expr, std::vector<std::string>& loweredNames);

/// Convenience constructors for literal expressions.
ExprPtr makeLiteral(std::int64_t v);
ExprPtr makeLiteral(double v);
ExprPtr makeLiteral(bool v);
ExprPtr makeLiteral(std::string v);
ExprPtr makeLiteral(const char* v);

}  // namespace classad
