// match.h - The two-sided match test and rank evaluation of Section 3.2.
//
// "The classads in Figures 1 and 2 assume a matchmaking algorithm that
// considers a pair of ads to be incompatible unless their Constraint
// expressions both evaluate to true. The Rank attributes is then used to
// choose among compatible matches."
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "classad/classad.h"

namespace classad {

/// Names given meaning by the advertising protocol (Section 3: "the
/// advertising protocol may specify that the attribute Constraint indicates
/// compatibility and the attribute Rank measures the desirability of a
/// match"). `Requirements` is accepted as a synonym for `Constraint`, as in
/// deployed Condor.
///
/// Precedence: when an ad defines BOTH `constraint` and `constraintAlias`,
/// the primary name wins and the alias is ignored entirely — it is neither
/// evaluated nor conjoined. The alias only speaks for ads that lack the
/// primary attribute (regression-tested in tests/classad/match_test.cpp).
struct MatchAttributes {
  std::string constraint = "Constraint";
  std::string constraintAlias = "Requirements";
  std::string rank = "Rank";
};

/// Outcome of evaluating one side's constraint against the other ad.
enum class ConstraintResult : unsigned char {
  Satisfied,    // evaluated to boolean true
  Violated,     // evaluated to boolean false
  Undefined,    // evaluated to undefined (treated as a failed match)
  Error,        // evaluated to error or a non-boolean value
  Missing,      // the ad has no constraint attribute at all
};

/// Evaluates `ad`'s constraint with `target` as the other ad. An ad with
/// no constraint attribute imposes no requirement (Missing is treated as
/// satisfied by the symmetric test, matching a provider that will serve
/// anyone).
ConstraintResult evaluateConstraint(const ClassAd& ad, const ClassAd& target,
                                    const MatchAttributes& attrs = {});

/// The ad's effective constraint expression under the MatchAttributes
/// precedence rule (primary name, then the alias), or nullptr when the ad
/// carries neither. This is THE lookup every consumer — match tests,
/// PreparedAd, the diagnoser — goes through, so precedence is decided in
/// exactly one place.
const ExprPtr* findConstraintExpr(const ClassAd& ad,
                                  const MatchAttributes& attrs = {});

/// True iff the result permits a match.
inline bool permitsMatch(ConstraintResult r) noexcept {
  return r == ConstraintResult::Satisfied || r == ConstraintResult::Missing;
}

/// Symmetric (two-sided) match: both ads' constraints must be satisfied
/// ("a pair of ads [is] incompatible unless their Constraint expressions
/// both evaluate to true"). `undefined` fails the match — "the matchmaking
/// algorithm effectively treats undefined as false".
bool symmetricMatch(const ClassAd& a, const ClassAd& b,
                    const MatchAttributes& attrs = {});

/// One-sided match used by the query tools of Section 4 ("One-way matching
/// protocols are used to find all objects matching a given pattern"): only
/// `query`'s constraint is evaluated, against `target`.
bool oneWayMatch(const ClassAd& query, const ClassAd& target,
                 const MatchAttributes& attrs = {});

/// Evaluates `ad`'s Rank with `target` as the other ad, applying the
/// Section 3.2 coercion: "non-integer values are treated as zero" (we
/// accept any number; everything else, including a missing Rank, is 0.0).
double evaluateRank(const ClassAd& ad, const ClassAd& target,
                    const MatchAttributes& attrs = {});

/// Full detail of a candidate pairing, as computed by the matchmaker and
/// by diagnostic tools.
struct MatchAnalysis {
  ConstraintResult requestSide;   // request's constraint vs resource
  ConstraintResult resourceSide;  // resource's constraint vs request
  double requestRank = 0.0;       // request's Rank of the resource
  double resourceRank = 0.0;      // resource's Rank of the request
  bool matched = false;
};

MatchAnalysis analyzeMatch(const ClassAd& request, const ClassAd& resource,
                           const MatchAttributes& attrs = {});

std::string_view toString(ConstraintResult r) noexcept;

}  // namespace classad
