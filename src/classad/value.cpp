#include "classad/value.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "classad/classad.h"

namespace classad {

std::string_view toString(ValueType t) noexcept {
  switch (t) {
    case ValueType::Undefined: return "undefined";
    case ValueType::Error: return "error";
    case ValueType::Boolean: return "boolean";
    case ValueType::Integer: return "integer";
    case ValueType::Real: return "real";
    case ValueType::String: return "string";
    case ValueType::List: return "list";
    case ValueType::Record: return "record";
  }
  return "?";
}

Value Value::error(std::string reason) {
  ErrorT e;
  if (!reason.empty()) {
    e.reason = std::make_shared<const std::string>(std::move(reason));
  }
  return Value(std::move(e));
}

Value Value::list(std::vector<Value> elems) {
  return Value(std::make_shared<const std::vector<Value>>(std::move(elems)));
}

const std::string& Value::errorReason() const {
  static const std::string kEmpty;
  const auto& e = std::get<ErrorT>(v_);
  return e.reason ? *e.reason : kEmpty;
}

bool Value::isIdenticalTo(const Value& rhs) const {
  if (type() != rhs.type()) return false;
  switch (type()) {
    case ValueType::Undefined:
    case ValueType::Error:
      return true;  // reasons are diagnostics, not part of identity
    case ValueType::Boolean:
      return asBoolean() == rhs.asBoolean();
    case ValueType::Integer:
      return asInteger() == rhs.asInteger();
    case ValueType::Real:
      // NaN is not identical to anything, matching IEEE and keeping `is`
      // an equivalence relation on non-NaN values only.
      return asReal() == rhs.asReal();
    case ValueType::String:
      return asString() == rhs.asString();  // case-SENSITIVE for identity
    case ValueType::List: {
      const auto& a = *asList();
      const auto& b = *rhs.asList();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].isIdenticalTo(b[i])) return false;
      }
      return true;
    }
    case ValueType::Record: {
      const ClassAd& a = *asRecord();
      const ClassAd& b = *rhs.asRecord();
      if (&a == &b) return true;
      return a.unparse() == b.unparse();
    }
  }
  return false;
}

namespace {

std::string realToString(double d) {
  if (std::isnan(d)) return "real(\"NaN\")";
  if (std::isinf(d)) return d > 0 ? "real(\"INF\")" : "real(\"-INF\")";
  std::array<char, 64> buf{};
  // Round-trip precision; always keep a decimal point or exponent so the
  // literal re-parses as a real, not an integer.
  int n = std::snprintf(buf.data(), buf.size(), "%.17g", d);
  std::string s(buf.data(), static_cast<std::size_t>(n));
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

std::string quoteString(std::string_view s);

std::string quoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string Value::toLiteralString() const {
  switch (type()) {
    case ValueType::Undefined: return "undefined";
    case ValueType::Error: return "error";
    case ValueType::Boolean: return asBoolean() ? "true" : "false";
    case ValueType::Integer: return std::to_string(asInteger());
    case ValueType::Real: return realToString(asReal());
    case ValueType::String: return quoteString(asString());
    case ValueType::List: {
      std::string out = "{ ";
      const auto& elems = *asList();
      for (std::size_t i = 0; i < elems.size(); ++i) {
        if (i) out += ", ";
        out += elems[i].toLiteralString();
      }
      out += elems.empty() ? "}" : " }";
      return out;
    }
    case ValueType::Record:
      return asRecord()->unparse();
  }
  return "error";
}

bool equalsIgnoreCase(std::string_view a, std::string_view b) noexcept {
  return compareIgnoreCase(a, b) == 0;
}

int compareIgnoreCase(std::string_view a, std::string_view b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int ca = std::tolower(static_cast<unsigned char>(a[i]));
    const int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

std::string toLowerCopy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace classad
