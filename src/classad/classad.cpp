#include "classad/classad.h"

#include <algorithm>

namespace classad {

ClassAd& ClassAd::insert(std::string name, ExprPtr expr) {
  std::string lowered = toLowerCopy(name);
  auto it = index_.find(lowered);
  if (it != index_.end()) {
    attrs_[it->second].second = std::move(expr);
  } else {
    index_.emplace(std::move(lowered), attrs_.size());
    attrs_.emplace_back(std::move(name), std::move(expr));
  }
  return *this;
}

ClassAd& ClassAd::set(std::string name, std::int64_t v) {
  return insert(std::move(name), makeLiteral(v));
}
ClassAd& ClassAd::set(std::string name, double v) {
  return insert(std::move(name), makeLiteral(v));
}
ClassAd& ClassAd::set(std::string name, bool v) {
  return insert(std::move(name), makeLiteral(v));
}
ClassAd& ClassAd::set(std::string name, std::string v) {
  return insert(std::move(name), makeLiteral(std::move(v)));
}
ClassAd& ClassAd::set(std::string name,
                      const std::vector<std::string>& values) {
  std::vector<ExprPtr> elems;
  elems.reserve(values.size());
  for (const std::string& v : values) elems.push_back(makeLiteral(v));
  return insert(std::move(name), ListExpr::make(std::move(elems)));
}

ClassAd& ClassAd::setExpr(std::string name, std::string_view exprText) {
  return insert(std::move(name), parseExpr(exprText));
}

bool ClassAd::remove(std::string_view name) {
  const std::string lowered = toLowerCopy(name);
  auto it = index_.find(lowered);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  attrs_.erase(attrs_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [key, idx] : index_) {
    if (idx > pos) --idx;
  }
  return true;
}

void ClassAd::clear() {
  attrs_.clear();
  index_.clear();
}

const ExprPtr* ClassAd::lookup(std::string_view name) const noexcept {
  auto it = index_.find(toLowerCopy(name));
  if (it == index_.end()) return nullptr;
  return &attrs_[it->second].second;
}

Value ClassAd::evaluateAttr(std::string_view name,
                            const ClassAd* other) const {
  const ExprPtr* bound = lookup(name);
  if (bound == nullptr) return Value::undefined();
  EvalContext ctx(this, other);
  EvalContext::AttrGuard guard(ctx, this, name);
  return (*bound)->evaluate(ctx);
}

Value ClassAd::evaluate(const Expr& expr, const ClassAd* other) const {
  EvalContext ctx(this, other);
  return expr.evaluate(ctx);
}

Value ClassAd::evaluate(std::string_view exprText,
                        const ClassAd* other) const {
  return evaluate(*parseExpr(exprText), other);
}

std::optional<std::int64_t> ClassAd::getInteger(std::string_view name,
                                                const ClassAd* other) const {
  const Value v = evaluateAttr(name, other);
  if (v.isInteger()) return v.asInteger();
  return std::nullopt;
}

std::optional<double> ClassAd::getNumber(std::string_view name,
                                         const ClassAd* other) const {
  const Value v = evaluateAttr(name, other);
  if (v.isNumber()) return v.toReal();
  return std::nullopt;
}

std::optional<std::string> ClassAd::getString(std::string_view name,
                                              const ClassAd* other) const {
  const Value v = evaluateAttr(name, other);
  if (v.isString()) return v.asString();
  return std::nullopt;
}

std::optional<bool> ClassAd::getBoolean(std::string_view name,
                                        const ClassAd* other) const {
  const Value v = evaluateAttr(name, other);
  if (v.isBoolean()) return v.asBoolean();
  return std::nullopt;
}

std::string ClassAd::unparse() const {
  if (attrs_.empty()) return "[]";
  std::string out = "[ ";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += "; ";
    out += attrs_[i].first;
    out += " = ";
    attrs_[i].second->unparse(out);
  }
  out += attrs_.empty() ? "]" : " ]";
  return out;
}

std::string ClassAd::unparsePretty() const {
  std::string out = "[\n";
  for (const auto& [name, expr] : attrs_) {
    out += "  ";
    out += name;
    out += " = ";
    expr->unparse(out);
    out += ";\n";
  }
  out += "]";
  return out;
}

std::string ClassAd::signature() const {
  std::vector<std::string> names;
  names.reserve(attrs_.size());
  for (const auto& [name, expr] : attrs_) {
    names.push_back(toLowerCopy(name));
  }
  std::sort(names.begin(), names.end());
  std::string out;
  for (const std::string& n : names) {
    out += n;
    out += ';';
  }
  return out;
}

}  // namespace classad
