#include "classad/query.h"

#include <algorithm>
#include <map>

namespace classad {

namespace {

/// Sort key: type class (numbers < strings < booleans < rest), then value.
struct SortKey {
  int typeClass;
  double number = 0.0;
  std::string text;

  explicit SortKey(const Value& v) {
    if (v.isNumber()) {
      typeClass = 0;
      number = v.toReal();
    } else if (v.isString()) {
      typeClass = 1;
      text = toLowerCopy(v.asString());
    } else if (v.isBoolean()) {
      typeClass = 2;
      number = v.asBoolean() ? 1.0 : 0.0;
    } else {
      typeClass = 3;  // lists, records, undefined, error: last
    }
  }

  bool operator<(const SortKey& rhs) const {
    if (typeClass != rhs.typeClass) return typeClass < rhs.typeClass;
    if (typeClass == 1) return text < rhs.text;
    return number < rhs.number;
  }
};

}  // namespace

Query Query::fromConstraint(std::string_view constraintText) {
  return Query(parseExpr(constraintText));
}

Query Query::all() { return Query(); }

bool Query::matches(const ClassAd& ad) const {
  if (!constraint_) return true;
  return ad.evaluate(*constraint_).isBooleanTrue();
}

std::vector<ClassAdPtr> Query::select(std::span<const ClassAdPtr> ads) const {
  std::vector<ClassAdPtr> out;
  for (const ClassAdPtr& ad : ads) {
    if (ad && matches(*ad)) out.push_back(ad);
  }
  return out;
}

std::size_t Query::count(std::span<const ClassAdPtr> ads) const {
  std::size_t n = 0;
  for (const ClassAdPtr& ad : ads) {
    if (ad && matches(*ad)) ++n;
  }
  return n;
}

std::vector<std::pair<std::string, Value>> Query::row(
    const ClassAd& ad) const {
  std::vector<std::pair<std::string, Value>> out;
  if (projection_.empty()) {
    for (const auto& [name, expr] : ad) {
      out.emplace_back(name, ad.evaluateAttr(name));
    }
  } else {
    for (const std::string& name : projection_) {
      out.emplace_back(name, ad.evaluateAttr(name));
    }
  }
  return out;
}

std::string formatTable(const Query& query, std::span<const ClassAdPtr> ads) {
  const std::vector<ClassAdPtr> selected = query.select(ads);
  std::vector<std::string> headers = query.projection();
  if (headers.empty() && !selected.empty()) {
    for (const auto& [name, expr] : *selected.front()) headers.push_back(name);
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(selected.size());
  for (const ClassAdPtr& ad : selected) {
    std::vector<std::string> row;
    row.reserve(headers.size());
    for (const std::string& h : headers) {
      const Value v = ad->evaluateAttr(h);
      row.push_back(v.isString() ? v.asString() : v.toLiteralString());
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::size_t> widths;
  widths.reserve(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    std::size_t w = headers[c].size();
    for (const auto& row : rows) w = std::max(w, row[c].size());
    widths.push_back(w);
  }
  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out += pad(headers[c], widths[c]);
    out += c + 1 < headers.size() ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], widths[c]);
      out += c + 1 < row.size() ? "  " : "";
    }
    out += '\n';
  }
  return out;
}


std::vector<ClassAdPtr> sortBy(std::span<const ClassAdPtr> ads,
                               std::string_view attribute,
                               bool descending) {
  struct Entry {
    ClassAdPtr ad;
    SortKey key;
    std::size_t order;
  };
  std::vector<Entry> entries;
  entries.reserve(ads.size());
  std::size_t order = 0;
  for (const ClassAdPtr& ad : ads) {
    if (!ad) continue;
    entries.push_back(Entry{ad, SortKey(ad->evaluateAttr(attribute)), order++});
  }
  std::sort(entries.begin(), entries.end(),
            [descending](const Entry& a, const Entry& b) {
              if (a.key < b.key) return !descending;
              if (b.key < a.key) return descending;
              return a.order < b.order;  // stable among equals
            });
  std::vector<ClassAdPtr> out;
  out.reserve(entries.size());
  for (Entry& e : entries) out.push_back(std::move(e.ad));
  return out;
}

std::vector<std::pair<std::string, std::size_t>> summarize(
    std::span<const ClassAdPtr> ads, std::string_view attribute) {
  std::map<std::string, std::size_t> tally;
  for (const ClassAdPtr& ad : ads) {
    if (!ad) continue;
    const Value v = ad->evaluateAttr(attribute);
    ++tally[v.isString() ? v.asString() : v.toLiteralString()];
  }
  std::vector<std::pair<std::string, std::size_t>> out(tally.begin(),
                                                       tally.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace classad

