#include "classad/parser.h"

#include <utility>

#include "classad/lexer.h"

namespace classad {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : tokens_(tokenize(src)) {}

  ExprPtr parseSingleExpr() {
    ExprPtr e = parseExpr();
    expect(TokenKind::End, "after expression");
    return e;
  }

  ClassAd parseSingleAd() {
    ClassAd ad = parseAd();
    expect(TokenKind::End, "after classad");
    return ad;
  }

  std::vector<ClassAd> parseStream() {
    std::vector<ClassAd> ads;
    while (peek().kind != TokenKind::End) {
      ads.push_back(parseAd());
    }
    return ads;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool check(TokenKind k) const { return peek().kind == k; }
  bool match(TokenKind k) {
    if (!check(k)) return false;
    advance();
    return true;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = peek();
    throw ParseError("expected " + msg + ", found " +
                         std::string(toString(t.kind)) +
                         (t.kind == TokenKind::Identifier ? " '" + t.text + "'"
                                                          : ""),
                     t.line, t.column);
  }
  void expect(TokenKind k, const std::string& context) {
    if (!match(k)) fail(std::string(toString(k)) + " " + context);
  }

  ClassAd parseAd() {
    expect(TokenKind::LBracket, "to open classad");
    ClassAd ad;
    if (match(TokenKind::RBracket)) return ad;
    for (;;) {
      if (!check(TokenKind::Identifier)) fail("attribute name");
      std::string name = advance().text;
      expect(TokenKind::Assign, "after attribute name");
      ad.insert(std::move(name), parseExpr());
      if (match(TokenKind::Semicolon)) {
        if (match(TokenKind::RBracket)) return ad;  // trailing ';' allowed
        continue;
      }
      expect(TokenKind::RBracket, "to close classad");
      return ad;
    }
  }

  ExprPtr parseExpr() {
    // Depth guard: ads arrive from untrusted peers (the wire layer feeds
    // network bytes here), and unbounded recursive descent turns deep
    // nesting into a stack overflow. Well beyond any legitimate ad.
    if (++depth_ > kMaxDepth) {
      const Token& t = peek();
      throw ParseError("expression nesting too deep", t.line, t.column);
    }
    ExprPtr e = parseTernary();
    --depth_;
    return e;
  }

  ExprPtr parseTernary() {
    ExprPtr cond = parseOr();
    if (!match(TokenKind::Question)) return cond;
    ExprPtr then = parseExpr();
    expect(TokenKind::Colon, "in conditional expression");
    ExprPtr otherwise = parseTernary();  // right-associative
    return TernaryExpr::make(std::move(cond), std::move(then),
                             std::move(otherwise));
  }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (match(TokenKind::OrOr)) {
      lhs = BinaryExpr::make(BinOp::Or, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseEquality();
    while (match(TokenKind::AndAnd)) {
      lhs = BinaryExpr::make(BinOp::And, std::move(lhs), parseEquality());
    }
    return lhs;
  }

  ExprPtr parseEquality() {
    ExprPtr lhs = parseRelational();
    for (;;) {
      BinOp op;
      if (match(TokenKind::EqualEq)) op = BinOp::Equal;
      else if (match(TokenKind::NotEq)) op = BinOp::NotEqual;
      else if (peek().isKeyword("is")) { advance(); op = BinOp::Is; }
      else if (peek().isKeyword("isnt")) { advance(); op = BinOp::IsNot; }
      else return lhs;
      lhs = BinaryExpr::make(op, std::move(lhs), parseRelational());
    }
  }

  ExprPtr parseRelational() {
    ExprPtr lhs = parseAdditive();
    for (;;) {
      BinOp op;
      if (match(TokenKind::Less)) op = BinOp::Less;
      else if (match(TokenKind::LessEq)) op = BinOp::LessEq;
      else if (match(TokenKind::Greater)) op = BinOp::Greater;
      else if (match(TokenKind::GreaterEq)) op = BinOp::GreaterEq;
      else return lhs;
      lhs = BinaryExpr::make(op, std::move(lhs), parseAdditive());
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    for (;;) {
      BinOp op;
      if (match(TokenKind::Plus)) op = BinOp::Add;
      else if (match(TokenKind::Minus)) op = BinOp::Subtract;
      else return lhs;
      lhs = BinaryExpr::make(op, std::move(lhs), parseMultiplicative());
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    for (;;) {
      BinOp op;
      if (match(TokenKind::Star)) op = BinOp::Multiply;
      else if (match(TokenKind::Slash)) op = BinOp::Divide;
      else if (match(TokenKind::Percent)) op = BinOp::Modulus;
      else return lhs;
      lhs = BinaryExpr::make(op, std::move(lhs), parseUnary());
    }
  }

  ExprPtr parseUnary() {
    if (match(TokenKind::Bang)) {
      return UnaryExpr::make(UnOp::Not, parseUnary());
    }
    if (match(TokenKind::Minus)) {
      // Fold a negated numeric literal so that `-5` is a literal, keeping
      // unparse output natural.
      ExprPtr e = parseUnary();
      if (const auto* lit = dynamic_cast<const LiteralExpr*>(e.get())) {
        if (lit->value().isInteger()) {
          return makeLiteral(-lit->value().asInteger());
        }
        if (lit->value().isReal()) {
          return makeLiteral(-lit->value().asReal());
        }
      }
      return UnaryExpr::make(UnOp::Minus, std::move(e));
    }
    if (match(TokenKind::Plus)) {
      return UnaryExpr::make(UnOp::Plus, parseUnary());
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr e = parsePrimary();
    for (;;) {
      if (match(TokenKind::Dot)) {
        if (!check(TokenKind::Identifier)) fail("attribute name after '.'");
        e = SelectExpr::make(std::move(e), advance().text);
      } else if (match(TokenKind::LBracket)) {
        ExprPtr idx = parseExpr();
        expect(TokenKind::RBracket, "to close subscript");
        e = SubscriptExpr::make(std::move(e), std::move(idx));
      } else {
        return e;
      }
    }
  }

  ExprPtr parsePrimary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::Integer: {
        const std::int64_t v = t.intValue;
        advance();
        return makeLiteral(v);
      }
      case TokenKind::Real: {
        const double v = t.realValue;
        advance();
        return makeLiteral(v);
      }
      case TokenKind::String: {
        std::string v = t.text;
        advance();
        return makeLiteral(std::move(v));
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr e = parseExpr();
        expect(TokenKind::RParen, "to close parenthesized expression");
        return e;
      }
      case TokenKind::LBrace: {
        advance();
        std::vector<ExprPtr> elems;
        if (!match(TokenKind::RBrace)) {
          for (;;) {
            elems.push_back(parseExpr());
            if (match(TokenKind::Comma)) continue;
            expect(TokenKind::RBrace, "to close list");
            break;
          }
        }
        return ListExpr::make(std::move(elems));
      }
      case TokenKind::LBracket: {
        ClassAd ad = parseAd();
        return RecordExpr::make(
            std::make_shared<const ClassAd>(std::move(ad)));
      }
      case TokenKind::Identifier:
        return parseIdentifier();
      default:
        fail("an expression");
    }
  }

  ExprPtr parseIdentifier() {
    const Token t = advance();
    // Constant keywords.
    if (t.isKeyword("true")) return makeLiteral(true);
    if (t.isKeyword("false")) return makeLiteral(false);
    if (t.isKeyword("undefined")) {
      return LiteralExpr::make(Value::undefined());
    }
    if (t.isKeyword("error")) return LiteralExpr::make(Value::error());
    // Scoped references: self.X / other.X, or bare self/other.
    if (t.isKeyword("self") || t.isKeyword("other")) {
      const RefScope scope =
          t.isKeyword("self") ? RefScope::Self : RefScope::Other;
      if (match(TokenKind::Dot)) {
        if (!check(TokenKind::Identifier)) fail("attribute name after '.'");
        return AttrRefExpr::make(scope, advance().text);
      }
      return std::make_shared<ScopeExpr>(scope);
    }
    // Function call.
    if (check(TokenKind::LParen)) {
      advance();
      std::vector<ExprPtr> args;
      if (!match(TokenKind::RParen)) {
        for (;;) {
          args.push_back(parseExpr());
          if (match(TokenKind::Comma)) continue;
          expect(TokenKind::RParen, "to close argument list");
          break;
        }
      }
      return FuncCallExpr::make(t.text, std::move(args));
    }
    // Plain attribute reference.
    return AttrRefExpr::make(RefScope::Default, t.text);
  }

  static constexpr int kMaxDepth = 256;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

ExprPtr parseExpr(std::string_view text) {
  return Parser(text).parseSingleExpr();
}

std::optional<ExprPtr> tryParseExpr(std::string_view text,
                                    std::string* errorMessage) {
  try {
    return parseExpr(text);
  } catch (const ParseError& e) {
    if (errorMessage) {
      *errorMessage = std::string(e.what()) + " (line " +
                      std::to_string(e.line()) + ", column " +
                      std::to_string(e.column()) + ")";
    }
    return std::nullopt;
  }
}

ClassAd ClassAd::parse(std::string_view text) {
  return Parser(text).parseSingleAd();
}

std::optional<ClassAd> ClassAd::tryParse(std::string_view text,
                                         std::string* errorMessage) {
  try {
    return parse(text);
  } catch (const ParseError& e) {
    if (errorMessage) {
      *errorMessage = std::string(e.what()) + " (line " +
                      std::to_string(e.line()) + ", column " +
                      std::to_string(e.column()) + ")";
    }
    return std::nullopt;
  }
}

std::vector<ClassAd> parseAdStream(std::string_view text) {
  return Parser(text).parseStream();
}

}  // namespace classad
