// analysis.h - Constraint-satisfiability diagnostics (Section 5).
//
// "The complexity of constraints imposed by resources and customers may
// hinder the diagnostic capability of administrators and customers who may
// wonder why certain requests are unable to find resources with particular
// characteristics. To alleviate this problem, we are researching methods
// for identifying constraints which can never be satisfied by the pool. In
// addition to diagnostic utilities, this tool may help discovering hidden
// characteristics of a pool."
//
// Method: the request's Constraint is decomposed into its top-level
// conjuncts (the `&&` tree), each conjunct is evaluated against every
// resource in the pool, and conjuncts that no resource satisfies are
// reported as the unsatisfiable core. The same machinery runs in reverse
// over the resource side, exposing which owner policies exclude the
// request. This is exactly what powers deployed Condor's `condor_q
// -better-analyze`.
// The static analyzer (src/classad/analysis) now runs FIRST: each conjunct
// is abstractly evaluated against a schema folded from the pool, and only
// the conjuncts the analyzer cannot decide fall back to per-resource
// evaluation. A statically decided conjunct costs O(1) in the pool size.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "classad/analysis/lint.h"
#include "classad/classad.h"
#include "classad/match.h"

namespace matchmaking {

/// Per-conjunct tally over the pool.
struct ConjunctReport {
  std::string text;          ///< source form of the conjunct
  std::size_t satisfied = 0; ///< resources satisfying it
  std::size_t violated = 0;  ///< resources definitely failing it
  std::size_t undefined = 0; ///< resources lacking the referenced attributes
  std::size_t error = 0;
  /// Verdict of the static pass; when not Unknown the tallies above were
  /// filled in without evaluating a single pool ad.
  classad::analysis::ConjunctVerdict staticVerdict =
      classad::analysis::ConjunctVerdict::Unknown;
  bool decidedStatically = false;
  /// No resource in the pool satisfies this conjunct: part of the
  /// unsatisfiable core ("constraints which can never be satisfied by the
  /// pool").
  bool unsatisfiable(std::size_t poolSize) const noexcept {
    return poolSize > 0 && satisfied == 0;
  }
};

struct Diagnosis {
  std::size_t poolSize = 0;
  /// Resources satisfying the request's whole Constraint.
  std::size_t requestSideOk = 0;
  /// Resources whose own Constraint admits this request.
  std::size_t resourceSideOk = 0;
  /// Two-sided matches available right now.
  std::size_t matches = 0;
  /// The request's constraint, conjunct by conjunct.
  std::vector<ConjunctReport> conjuncts;
  /// Static lint findings for the request against the pool schema
  /// (misspelled attributes, contradictions, type errors, ...).
  classad::analysis::LintReport lint;
  /// True iff no resource satisfies the request's constraint.
  bool requestUnsatisfiable() const noexcept {
    return poolSize > 0 && requestSideOk == 0;
  }
  /// True iff the request matches nothing solely because of owner policies
  /// (its own constraint is satisfiable, but no willing resource remains).
  bool rejectedByOwners() const noexcept {
    return requestSideOk > 0 && matches == 0;
  }
  /// Human-readable report in the style of condor_q -better-analyze.
  std::string summary() const;
};

/// Splits an expression into its effective top-level conjuncts. Delegates
/// to classad::analysis::splitConjuncts, so the static and dynamic passes
/// agree on conjunct boundaries (including parenthesized `&&` trees and
/// `cond ? expr : false` ternary guards).
std::vector<classad::ExprPtr> splitConjuncts(const classad::ExprPtr& expr);

/// Analyzes why `request` does or does not match the `pool`.
Diagnosis diagnose(const classad::ClassAd& request,
                   std::span<const classad::ClassAdPtr> pool,
                   const classad::MatchAttributes& attrs = {});

/// Pool-wide sweep: returns the subset of `requests` whose constraints can
/// never be satisfied by the pool (the administrator's view).
std::vector<std::size_t> findUnsatisfiableRequests(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> pool,
    const classad::MatchAttributes& attrs = {});

}  // namespace matchmaking
