#include "matchmaker/advertising.h"

namespace matchmaking {

ValidationResult AdvertisingProtocol::validate(
    const classad::ClassAd& ad) const {
  ValidationResult result;
  result.accepted = true;
  auto complain = [&result](std::string msg) {
    result.accepted = false;
    result.problems.push_back(std::move(msg));
  };

  if (!ad.getString(attrs_.type)) {
    complain("missing or non-string '" + attrs_.type + "' attribute");
  }
  const auto contact = ad.getString(attrs_.contact);
  if (!contact || contact->empty()) {
    complain("missing or empty '" + attrs_.contact + "' attribute");
  }
  // A Constraint that evaluates to `error` with no candidate ad present is
  // structurally broken only if it doesn't depend on `other`; constraints
  // typically reference other.*, which is undefined here. So we only
  // reject constraints that are the literal `error` or reference unknown
  // functions (both evaluate to error regardless of `other`).
  const classad::ExprPtr* constraint = ad.lookup(attrs_.match.constraint);
  if (constraint == nullptr) {
    constraint = ad.lookup(attrs_.match.constraintAlias);
  }
  if (constraint != nullptr) {
    classad::ClassAd empty;
    const classad::Value v = ad.evaluate(**constraint, &empty);
    if (v.isError()) {
      complain("'" + attrs_.match.constraint +
               "' evaluates to error even against an empty candidate: " +
               v.errorReason());
    }
  }
  return result;
}

ValidationResult AdvertisingProtocol::validateRequest(
    const classad::ClassAd& ad) const {
  ValidationResult result = validate(ad);
  if (!ad.getString(attrs_.owner)) {
    result.accepted = false;
    result.problems.push_back("request ad missing string '" + attrs_.owner +
                              "' attribute");
  }
  return result;
}

ValidationResult AdvertisingProtocol::validateResource(
    const classad::ClassAd& ad) const {
  return validate(ad);
}

std::string AdvertisingProtocol::keyOf(const classad::ClassAd& ad) const {
  return ad.getString(attrs_.contact).value_or("");
}

}  // namespace matchmaking
