#include "matchmaker/policy/assignment.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

namespace matchmaking::policy {

namespace {

constexpr std::uint32_t kNone = AssignmentPolicy::kUnmatched;

/// Hopcroft–Karp over the dense bipartite graph: repeated BFS layering
/// from the free requests, then vertex-disjoint augmenting DFS along the
/// layers. Deterministic: adjacency lists are consumed in build order.
struct HopcroftKarp {
  const FeasibilityGraph& g;
  std::vector<std::uint32_t> matchL;
  std::vector<std::uint32_t> matchR;
  std::vector<std::uint32_t> layer;

  explicit HopcroftKarp(const FeasibilityGraph& graph)
      : g(graph),
        matchL(graph.requestCount(), kNone),
        matchR(graph.resourceCount(), kNone),
        layer(graph.requestCount(), 0) {}

  bool bfs() {
    constexpr std::uint32_t kInf = 0xffffffffU;
    std::deque<std::uint32_t> queue;
    for (std::uint32_t r = 0; r < g.requestCount(); ++r) {
      if (matchL[r] == kNone) {
        layer[r] = 0;
        queue.push_back(r);
      } else {
        layer[r] = kInf;
      }
    }
    bool reachedFree = false;
    while (!queue.empty()) {
      const std::uint32_t r = queue.front();
      queue.pop_front();
      for (const std::uint32_t e : g.adjacency[r]) {
        const std::uint32_t c = g.edges[e].resource;
        const std::uint32_t owner = matchR[c];
        if (owner == kNone) {
          reachedFree = true;
        } else if (layer[owner] == kInf) {
          layer[owner] = layer[r] + 1;
          queue.push_back(owner);
        }
      }
    }
    return reachedFree;
  }

  bool dfs(std::uint32_t r) {
    for (const std::uint32_t e : g.adjacency[r]) {
      const std::uint32_t c = g.edges[e].resource;
      const std::uint32_t owner = matchR[c];
      if (owner == kNone || (layer[owner] == layer[r] + 1 && dfs(owner))) {
        matchL[r] = c;
        matchR[c] = r;
        return true;
      }
    }
    layer[r] = 0xffffffffU;  // dead end for this phase
    return false;
  }

  void solve() {
    while (bfs()) {
      for (std::uint32_t r = 0; r < g.requestCount(); ++r) {
        if (matchL[r] == kNone) dfs(r);
      }
    }
  }
};

}  // namespace

std::vector<std::uint32_t> AssignmentPolicy::solveMaxPairs(
    const FeasibilityGraph& g) {
  HopcroftKarp hk(g);
  hk.solve();
  return std::move(hk.matchL);
}

// Min-cost max-cardinality matching by successive shortest augmenting
// paths: cost(e) = maxRank - requestRank(e) >= 0, so among matchings of
// equal cardinality, minimum cost == maximum total request rank; and
// because every augmentation (cheap or not) grows the matching, the
// final cardinality is maximum. Paths are found with SPFA over the
// residual graph from a virtual source at every free request —
// Bellman–Ford queue relaxation, which tolerates the negative backward
// arcs of matched edges without potentials. Classic SSP invariant: after
// k augmentations the matching is min-cost among all k-matchings, so the
// residual graph never grows a negative cycle.
std::vector<std::uint32_t> AssignmentPolicy::solveMaxTotalRank(
    const FeasibilityGraph& g) {
  const std::size_t nl = g.requestCount();
  const std::size_t nr = g.resourceCount();
  std::vector<std::uint32_t> matchL(nl, kNone);
  std::vector<std::uint32_t> matchR(nr, kNone);
  if (g.edges.empty()) return matchL;

  double maxRank = -std::numeric_limits<double>::infinity();
  for (const FeasibleEdge& e : g.edges) {
    maxRank = std::max(maxRank, e.requestRank);
  }
  const auto cost = [&](const FeasibleEdge& e) {
    return maxRank - e.requestRank;
  };

  // Residual-node numbering: requests [0, nl), resources [nl, nl + nr).
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist;
  std::vector<std::uint32_t> via;  // edge index that reached this node
  std::vector<char> queued;
  std::deque<std::uint32_t> queue;

  for (;;) {
    dist.assign(nl + nr, inf);
    via.assign(nl + nr, kNone);
    queued.assign(nl + nr, 0);
    queue.clear();
    for (std::uint32_t r = 0; r < nl; ++r) {
      if (matchL[r] == kNone && !g.adjacency[r].empty()) {
        dist[r] = 0.0;
        queued[r] = 1;
        queue.push_back(r);
      }
    }
    while (!queue.empty()) {
      const std::uint32_t node = queue.front();
      queue.pop_front();
      queued[node] = 0;
      if (node < nl) {
        // Forward arcs: unmatched request->resource edges at cost(e).
        for (const std::uint32_t e : g.adjacency[node]) {
          const FeasibleEdge& edge = g.edges[e];
          if (matchL[node] == edge.resource) continue;
          const std::uint32_t to = static_cast<std::uint32_t>(nl) +
                                   edge.resource;
          const double nd = dist[node] + cost(edge);
          if (nd < dist[to]) {
            dist[to] = nd;
            via[to] = e;
            if (queued[to] == 0) {
              queued[to] = 1;
              queue.push_back(to);
            }
          }
        }
      } else {
        // Backward arc: a matched resource releases its request at
        // -cost(matched edge).
        const std::uint32_t c = node - static_cast<std::uint32_t>(nl);
        const std::uint32_t owner = matchR[c];
        if (owner == kNone) continue;
        for (const std::uint32_t e : g.adjacency[owner]) {
          if (g.edges[e].resource != c) continue;
          const double nd = dist[node] - cost(g.edges[e]);
          if (nd < dist[owner]) {
            dist[owner] = nd;
            via[owner] = e;
            if (queued[owner] == 0) {
              queued[owner] = 1;
              queue.push_back(owner);
            }
          }
          break;
        }
      }
    }

    // Cheapest free resource reachable ends the shortest augmenting path
    // (ties: lowest dense index, for determinism).
    std::uint32_t target = kNone;
    for (std::uint32_t c = 0; c < nr; ++c) {
      if (matchR[c] != kNone || dist[nl + c] == inf) continue;
      if (target == kNone || dist[nl + c] < dist[nl + target]) target = c;
    }
    if (target == kNone) break;  // maximum matching reached

    // Flip the path: alternate forward (assign) and backward (reassign)
    // edges back to the free request the SPFA started from.
    std::uint32_t node = static_cast<std::uint32_t>(nl) + target;
    while (via[node] != kNone) {
      const FeasibleEdge& edge = g.edges[via[node]];
      if (node >= nl) {
        // Arrived at a resource via a forward arc: assign it.
        const std::uint32_t previous = matchL[edge.request];
        matchL[edge.request] = edge.resource;
        matchR[edge.resource] = edge.request;
        node = edge.request;
        if (previous == edge.resource) break;  // defensive; cannot happen
      } else {
        // Arrived at a request via a backward arc: its old resource was
        // just handed over; continue from that resource node.
        node = static_cast<std::uint32_t>(nl) + edge.resource;
      }
    }
  }
  return matchL;
}

std::vector<Decision> AssignmentPolicy::decide(CycleContext& ctx,
                                               PolicyStats* stats) const {
  if (ctx.taken.size() < ctx.resources.slots().size()) {
    ctx.taken.resize(ctx.resources.slots().size(), 0);
  }
  const FeasibilityGraph graph = buildFeasibilityGraph(ctx);
  const std::vector<std::uint32_t> matchL =
      objective_ == AssignmentObjective::kMaxPairs ? solveMaxPairs(graph)
                                                   : solveMaxTotalRank(graph);

  std::vector<Decision> out;
  out.reserve(graph.requestCount());
  for (std::uint32_t r = 0; r < graph.requestCount(); ++r) {
    const std::uint32_t c = matchL[r];
    if (c == kNone) continue;
    // Recover the edge (adjacency is small per request).
    const FeasibleEdge* edge = nullptr;
    for (const std::uint32_t e : graph.adjacency[r]) {
      if (graph.edges[e].resource == c) {
        edge = &graph.edges[e];
        break;
      }
    }
    if (edge == nullptr) continue;  // defensive; solver only uses real edges
    Decision decision;
    decision.requestSlot = graph.requestSlots[r];
    decision.resourceSlot = graph.resourceSlots[c];
    decision.requestRank = edge->requestRank;
    decision.resourceRank = edge->resourceRank;
    decision.preempting = edge->preempting;
    ctx.taken[decision.resourceSlot] = 1;
    if (stats != nullptr) {
      ++stats->matchedPairs;
      stats->aggregateRank += edge->requestRank;
    }
    out.push_back(decision);
  }
  return out;
}

}  // namespace matchmaking::policy
