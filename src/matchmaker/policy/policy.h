// policy.h - Pluggable negotiation policies (ROADMAP item 3).
//
// Section 3.2's greedy priority-order scan is ONE way to decide which
// request gets which resource each cycle; the MatchEngine refactor made
// the scan swappable in principle, and this subsystem makes it real. A
// NegotiationPolicy owns exactly the per-cycle request<->resource
// DECISION: the Matchmaker still prepares the pools, orders requests by
// fair-share standing, and issues the match notifications — the policy
// only picks the pairs. Three policies ship:
//
//   GreedyPolicy      - the paper's Section 3.2 scan re-expressed through
//                       the interface. Bit-identical to the direct
//                       MatchEngine path (enforced by a randomized
//                       property suite, ctest -L policy).
//   AssignmentPolicy  - whole-cycle optimal assignment: materializes the
//                       cycle's feasibility graph from the engine's
//                       admission guards and solves it as bipartite
//                       matching — Hopcroft–Karp for max-cardinality, or
//                       successive-shortest-augmenting-path for
//                       max-total-rank at max cardinality. Never returns
//                       fewer pairs than greedy (a greedy matching is
//                       maximal; both solvers are maximum).
//   AuctionPolicy     - an iterative market (Bertsekas-style auction):
//                       each request's evaluated Rank is its bid, prices
//                       resolve contention, and preemption-gated claimed
//                       resources simply price their current customer in.
//
// Every policy sees only FEASIBLE pairs — pairs admitted by the same
// bilateral constraint evaluation and preemption gate as the greedy scan
// (see graph.h) — so no policy can ever issue a match the Section 3.2
// semantics would reject. docs/POLICY.md has the contract and the
// when-to-use guidance; bench_e13_policies and EXPERIMENTS.md E13 have
// the numbers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "matchmaker/engine/engine.h"

namespace matchmaking::policy {

enum class PolicyKind : std::uint8_t { kGreedy, kAssignment, kAuction };

/// Parses a `--policy` / config spelling ("greedy", "assignment",
/// "auction"). Unknown names return nullopt — callers own the usage
/// error.
std::optional<PolicyKind> parsePolicyName(std::string_view name);

/// The canonical lowercase name (what parsePolicyName accepts), used in
/// DaemonStatus self-ads ("NegotiationPolicy") and mm_status output.
std::string_view policyName(PolicyKind kind) noexcept;

/// Everything a policy may consume when deciding one cycle. The taken
/// vector is resource-slot-indexed; entries already non-zero on entry
/// (never the case today, but the contract) are unavailable, and the
/// policy marks every slot it assigns before returning.
struct CycleContext {
  const engine::MatchEngine& engine;
  const engine::PreparedPool& requests;
  const engine::PreparedPool& resources;
  /// Live, non-gang request slot ids in fair-share service order — the
  /// same order the greedy scan consumes; batch policies use it only for
  /// deterministic iteration and output order.
  std::span<const std::uint32_t> serviceOrder;
  std::vector<char>& taken;
  engine::ScanStats* scan = nullptr;  ///< optional scan instrumentation
};

/// One pair the policy decided on. Ranks are the evaluated Rank values of
/// the pair (the same numbers the greedy scan would have used).
struct Decision {
  std::uint32_t requestSlot = 0;
  std::uint32_t resourceSlot = 0;
  double requestRank = 0.0;
  double resourceRank = 0.0;
  bool preempting = false;
};

/// Per-cycle policy instrumentation, published by the PoolManager as
/// PolicyCycleSolveSeconds / PolicyMatchedPairs / PolicyAggregateRank /
/// PolicyAuctionRounds (DaemonStatus self-ads, mm_status -stats).
struct PolicyStats {
  std::size_t matchedPairs = 0;
  double aggregateRank = 0.0;   ///< sum of matched requests' Rank values
  std::size_t auctionRounds = 0;  ///< bids processed (auction only)
};

class NegotiationPolicy {
 public:
  virtual ~NegotiationPolicy() = default;

  virtual PolicyKind kind() const noexcept = 0;

  /// Decides the cycle. Returns at most one Decision per request slot and
  /// per resource slot, every pair feasible under the engine's bilateral
  /// evaluation + preemption gate, in the order matches should be
  /// notified (greedy: service order; batch policies: service order of
  /// the matched requests). Must mark ctx.taken for every resource slot
  /// it assigns.
  virtual std::vector<Decision> decide(CycleContext& ctx,
                                       PolicyStats* stats = nullptr) const = 0;
};

/// Factory for the built-in policies (assignment defaults to
/// max-total-rank; construct AssignmentPolicy directly for max-pairs).
std::unique_ptr<NegotiationPolicy> makePolicy(PolicyKind kind);

}  // namespace matchmaking::policy
