#include "matchmaker/policy/policy.h"

#include "matchmaker/policy/assignment.h"
#include "matchmaker/policy/auction.h"
#include "matchmaker/policy/greedy.h"

namespace matchmaking::policy {

std::optional<PolicyKind> parsePolicyName(std::string_view name) {
  if (name == "greedy") return PolicyKind::kGreedy;
  if (name == "assignment") return PolicyKind::kAssignment;
  if (name == "auction") return PolicyKind::kAuction;
  return std::nullopt;
}

std::string_view policyName(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kGreedy:
      return "greedy";
    case PolicyKind::kAssignment:
      return "assignment";
    case PolicyKind::kAuction:
      return "auction";
  }
  return "greedy";
}

std::unique_ptr<NegotiationPolicy> makePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAssignment:
      return std::make_unique<AssignmentPolicy>();
    case PolicyKind::kAuction:
      return std::make_unique<AuctionPolicy>();
    case PolicyKind::kGreedy:
      break;
  }
  return std::make_unique<GreedyPolicy>();
}

}  // namespace matchmaking::policy
