#include "matchmaker/policy/greedy.h"

namespace matchmaking::policy {

std::vector<Decision> GreedyPolicy::decide(CycleContext& ctx,
                                           PolicyStats* stats) const {
  std::vector<Decision> out;
  const std::vector<engine::Slot>& slots = ctx.requests.slots();
  if (ctx.taken.size() < ctx.resources.slots().size()) {
    ctx.taken.resize(ctx.resources.slots().size(), 0);
  }
  for (const std::uint32_t requestSlot : ctx.serviceOrder) {
    const engine::Slot& reqSlot = slots[requestSlot];
    const engine::BestCandidate best = ctx.engine.bestFor(
        reqSlot.prepared, reqSlot.guards, ctx.resources, ctx.taken, ctx.scan);
    if (!best.found) continue;
    ctx.taken[best.slot] = 1;
    Decision decision;
    decision.requestSlot = requestSlot;
    decision.resourceSlot = best.slot;
    decision.requestRank = best.requestRank;
    decision.resourceRank = best.resourceRank;
    decision.preempting = best.preempting;
    if (stats != nullptr) {
      ++stats->matchedPairs;
      stats->aggregateRank += best.requestRank;
    }
    out.push_back(decision);
  }
  return out;
}

}  // namespace matchmaking::policy
