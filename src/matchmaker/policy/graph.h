// graph.h - The cycle's feasibility graph, materialized once.
//
// Batch policies (assignment, auction) need the whole bipartite graph of
// feasible request<->resource pairs up front, where the greedy scan only
// ever needs the best edge per request. Both views come from the SAME
// admission pipeline: per-request candidate selection through the
// engine's guards + candidate index (a proven superset of the matchable
// slots), then the full bilateral evaluation and the preemption gate on
// the survivors. An edge exists here iff the greedy scan could have
// picked that pair — so anything a batch policy outputs is a pair the
// Section 3.2 semantics accept.
#pragma once

#include <cstdint>
#include <vector>

#include "matchmaker/policy/policy.h"

namespace matchmaking::policy {

/// One feasible pair. `request`/`resource` are DENSE indices into
/// FeasibilityGraph::requestSlots / resourceSlots (not pool slot ids).
struct FeasibleEdge {
  std::uint32_t request = 0;
  std::uint32_t resource = 0;
  double requestRank = 0.0;
  double resourceRank = 0.0;
  bool preempting = false;
};

struct FeasibilityGraph {
  /// Request slot ids in service order (requests with zero feasible
  /// edges are still listed; their adjacency is empty).
  std::vector<std::uint32_t> requestSlots;
  /// Resource slot ids that carry at least one edge, in first-discovery
  /// order (deterministic: requests in service order, candidates
  /// ascending).
  std::vector<std::uint32_t> resourceSlots;
  std::vector<FeasibleEdge> edges;
  /// Edge indices per dense request index, in ascending resource slot
  /// order — the same order the serial greedy scan evaluates, which is
  /// what makes every policy's tie-breaking deterministic.
  std::vector<std::vector<std::uint32_t>> adjacency;

  std::size_t requestCount() const noexcept { return requestSlots.size(); }
  std::size_t resourceCount() const noexcept { return resourceSlots.size(); }
};

/// Builds the graph for the cycle: for each request in ctx.serviceOrder,
/// candidate selection through guards/index, full pair evaluation on the
/// survivors, preemption gate, skipping resources already taken.
/// Evaluations and prunes are folded into ctx.scan exactly as the greedy
/// scan folds them.
FeasibilityGraph buildFeasibilityGraph(const CycleContext& ctx);

}  // namespace matchmaking::policy
