// auction.h - Market-based negotiation: ranks are bids, prices resolve
// contention.
//
// A Bertsekas-style forward auction over the cycle's feasibility graph
// (the economic-scheduling framing: each request's evaluated Rank of a
// machine is what that match is WORTH to it; see PAPERS.md, "Matching
// Mechanisms for Real-Time Computational Resource Exchange Markets" and
// Buyya's economic grid scheduling). Unassigned requests repeatedly bid
// for the machine maximizing value = rank - price, raising its price by
// the bid increment (value over the second-best option, plus epsilon).
// An outbid request re-enters the queue; a request priced out of every
// feasible machine drops out. Epsilon makes every bid raise some price,
// so the auction terminates, and with epsilon small relative to rank
// gaps the outcome approaches the max-total-rank assignment — the
// resolution path is just decentralized price discovery instead of a
// global solver. PolicyAuctionRounds counts the bids a cycle needed.
#pragma once

#include "matchmaker/policy/graph.h"
#include "matchmaker/policy/policy.h"

namespace matchmaking::policy {

struct AuctionConfig {
  /// Minimum bid increment. <= 0 picks one automatically: the rank
  /// spread over (resources + 1), the classic near-optimality scale.
  double epsilon = 0.0;
  /// A request whose best value falls below (minRank - priceFloor) stops
  /// bidding — it cannot profitably displace anyone. <= 0 picks the rank
  /// spread + 1 per contested machine.
  double priceFloor = 0.0;
};

class AuctionPolicy final : public NegotiationPolicy {
 public:
  explicit AuctionPolicy(AuctionConfig config = {}) : config_(config) {}

  PolicyKind kind() const noexcept override { return PolicyKind::kAuction; }
  std::vector<Decision> decide(CycleContext& ctx,
                               PolicyStats* stats) const override;

 private:
  AuctionConfig config_;
};

}  // namespace matchmaking::policy
