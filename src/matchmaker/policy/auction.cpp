#include "matchmaker/policy/auction.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace matchmaking::policy {

namespace {
constexpr std::uint32_t kNone = 0xffffffffU;
}  // namespace

std::vector<Decision> AuctionPolicy::decide(CycleContext& ctx,
                                            PolicyStats* stats) const {
  if (ctx.taken.size() < ctx.resources.slots().size()) {
    ctx.taken.resize(ctx.resources.slots().size(), 0);
  }
  const FeasibilityGraph graph = buildFeasibilityGraph(ctx);
  const std::size_t nl = graph.requestCount();
  const std::size_t nr = graph.resourceCount();

  std::vector<Decision> out;
  if (graph.edges.empty()) return out;

  double minRank = std::numeric_limits<double>::infinity();
  double maxRank = -std::numeric_limits<double>::infinity();
  for (const FeasibleEdge& e : graph.edges) {
    minRank = std::min(minRank, e.requestRank);
    maxRank = std::max(maxRank, e.requestRank);
  }
  const double spread = maxRank - minRank;
  const double epsilon = config_.epsilon > 0.0
                             ? config_.epsilon
                             : std::max(1e-6, spread) /
                                   static_cast<double>(nr + 1);
  // Below this value a request cannot profitably displace anyone: even
  // the cheapest machine at its floor price beats bidding further.
  const double floorValue =
      minRank - (config_.priceFloor > 0.0 ? config_.priceFloor : spread + 1.0);

  std::vector<double> price(nr, 0.0);
  std::vector<std::uint32_t> owner(nr, kNone);      // dense request index
  std::vector<std::uint32_t> assigned(nl, kNone);   // edge index
  std::deque<std::uint32_t> bidders;
  for (std::uint32_t r = 0; r < nl; ++r) {
    if (!graph.adjacency[r].empty()) bidders.push_back(r);
  }

  std::size_t rounds = 0;
  while (!bidders.empty()) {
    const std::uint32_t r = bidders.front();
    bidders.pop_front();

    // Best and second-best value among feasible machines at current
    // prices; ties keep the FIRST (lowest-slot) machine, deterministic.
    std::uint32_t bestEdge = kNone;
    double best = -std::numeric_limits<double>::infinity();
    double second = -std::numeric_limits<double>::infinity();
    for (const std::uint32_t e : graph.adjacency[r]) {
      const FeasibleEdge& edge = graph.edges[e];
      const double value = edge.requestRank - price[edge.resource];
      if (bestEdge == kNone || value > best) {
        second = best;
        best = value;
        bestEdge = e;
      } else if (value > second) {
        second = value;
      }
    }
    if (bestEdge == kNone || best < floorValue) continue;  // priced out
    ++rounds;
    const FeasibleEdge& edge = graph.edges[bestEdge];
    const std::uint32_t c = edge.resource;
    // Bertsekas bid: pay what makes the runner-up equally attractive,
    // plus epsilon so every accepted bid raises the price.
    const double runnerUp = second > floorValue ? second : floorValue;
    price[c] += (best - runnerUp) + epsilon;
    if (owner[c] != kNone) {
      assigned[owner[c]] = kNone;
      bidders.push_back(owner[c]);
    }
    owner[c] = r;
    assigned[r] = bestEdge;
  }

  for (std::uint32_t r = 0; r < nl; ++r) {
    if (assigned[r] == kNone) continue;
    const FeasibleEdge& edge = graph.edges[assigned[r]];
    Decision decision;
    decision.requestSlot = graph.requestSlots[r];
    decision.resourceSlot = graph.resourceSlots[edge.resource];
    decision.requestRank = edge.requestRank;
    decision.resourceRank = edge.resourceRank;
    decision.preempting = edge.preempting;
    ctx.taken[decision.resourceSlot] = 1;
    if (stats != nullptr) {
      ++stats->matchedPairs;
      stats->aggregateRank += edge.requestRank;
    }
    out.push_back(decision);
  }
  if (stats != nullptr) stats->auctionRounds += rounds;
  return out;
}

}  // namespace matchmaking::policy
