// assignment.h - Whole-cycle optimal assignment as a negotiation policy.
//
// The greedy scan serves requests one at a time, so an early request can
// take the only machine a later request could use even when both had
// alternatives — on contended pools that costs matched pairs. This
// policy instead materializes the cycle's feasibility graph (graph.h)
// and solves it as bipartite matching:
//
//   kMaxPairs     - Hopcroft–Karp maximum-cardinality matching (the
//                   DeployR machine<->resource idiom): O(E sqrt(V)),
//                   rank-blind beyond feasibility.
//   kMaxTotalRank - successive shortest augmenting paths over the
//                   residual graph with edge cost (maxRank - rank):
//                   among all MAXIMUM matchings, maximizes the summed
//                   request Rank. Cardinality first, rank second —
//                   augmentation continues while any augmenting path
//                   exists, so the pair count equals Hopcroft–Karp's.
//
// Either way the result can never have fewer pairs than greedy: greedy
// produces a maximal matching of the same graph, and a maximum matching
// is at least as large (invariant-tested under ctest -L policy).
#pragma once

#include "matchmaker/policy/graph.h"
#include "matchmaker/policy/policy.h"

namespace matchmaking::policy {

enum class AssignmentObjective : std::uint8_t { kMaxPairs, kMaxTotalRank };

class AssignmentPolicy final : public NegotiationPolicy {
 public:
  explicit AssignmentPolicy(
      AssignmentObjective objective = AssignmentObjective::kMaxTotalRank)
      : objective_(objective) {}

  PolicyKind kind() const noexcept override { return PolicyKind::kAssignment; }
  AssignmentObjective objective() const noexcept { return objective_; }
  std::vector<Decision> decide(CycleContext& ctx,
                               PolicyStats* stats) const override;

  /// The solvers, exposed for tests and the bench: given the graph,
  /// return matchL (per dense request index, the dense resource index it
  /// was assigned, or kUnmatched).
  static constexpr std::uint32_t kUnmatched = 0xffffffffU;
  static std::vector<std::uint32_t> solveMaxPairs(const FeasibilityGraph& g);
  static std::vector<std::uint32_t> solveMaxTotalRank(
      const FeasibilityGraph& g);

 private:
  AssignmentObjective objective_;
};

}  // namespace matchmaking::policy
