#include "matchmaker/policy/graph.h"

#include <unordered_map>

namespace matchmaking::policy {

FeasibilityGraph buildFeasibilityGraph(const CycleContext& ctx) {
  FeasibilityGraph graph;
  graph.requestSlots.assign(ctx.serviceOrder.begin(), ctx.serviceOrder.end());
  graph.adjacency.resize(graph.requestSlots.size());

  const std::vector<engine::Slot>& requestSlots = ctx.requests.slots();
  const std::vector<engine::Slot>& resourceSlots = ctx.resources.slots();
  std::unordered_map<std::uint32_t, std::uint32_t> denseResource;

  for (std::uint32_t r = 0; r < graph.requestSlots.size(); ++r) {
    const engine::Slot& reqSlot = requestSlots[graph.requestSlots[r]];
    if (!reqSlot.prepared.valid()) continue;
    if (reqSlot.guards.neverTrue) {
      if (ctx.scan != nullptr) ++ctx.scan->staticSkips;
      continue;
    }
    const std::vector<std::uint32_t> ids = engine::selectCandidates(
        reqSlot.guards, ctx.resources, ctx.engine.config().useIndex, ctx.scan);
    for (const std::uint32_t id : ids) {
      if (!ctx.taken.empty() && ctx.taken[id] != 0) continue;
      const engine::Slot& resSlot = resourceSlots[id];
      if (ctx.scan != nullptr) ++ctx.scan->evaluated;
      const classad::MatchAnalysis m =
          ctx.engine.analyzePair(reqSlot.prepared, resSlot.prepared);
      if (!m.matched) continue;
      // The same preemption gate as the greedy scan: a claimed resource
      // only hears from customers it ranks strictly above its current one.
      if (resSlot.claimed && !(m.resourceRank > resSlot.currentRank)) continue;

      const auto [it, inserted] = denseResource.try_emplace(
          id, static_cast<std::uint32_t>(graph.resourceSlots.size()));
      if (inserted) graph.resourceSlots.push_back(id);
      FeasibleEdge edge;
      edge.request = r;
      edge.resource = it->second;
      edge.requestRank = m.requestRank;
      edge.resourceRank = m.resourceRank;
      edge.preempting = resSlot.claimed;
      graph.adjacency[r].push_back(
          static_cast<std::uint32_t>(graph.edges.size()));
      graph.edges.push_back(edge);
    }
  }
  return graph;
}

}  // namespace matchmaking::policy
