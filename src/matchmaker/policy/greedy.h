// greedy.h - The paper's Section 3.2 negotiation policy, behind the
// NegotiationPolicy interface.
//
// One request at a time, in fair-share service order: the engine's
// bestFor scan (static skip, guard/index candidate selection, bilateral
// evaluation, preemption gate, the shared engine/ordering.h ranking)
// picks the best untaken resource, which is immediately consumed. This
// is exactly the loop the Matchmaker used to inline — the policy calls
// the same MatchEngine entry points in the same order on the same taken
// vector, so its output is bit-identical to the direct path (enforced by
// tests/matchmaker/policy/policy_equivalence_test.cpp, and the Release
// PolicyPerfSmokeTest pins the interface overhead to noise).
#pragma once

#include "matchmaker/policy/policy.h"

namespace matchmaking::policy {

class GreedyPolicy final : public NegotiationPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kGreedy; }
  std::vector<Decision> decide(CycleContext& ctx,
                               PolicyStats* stats) const override;
};

}  // namespace matchmaking::policy
