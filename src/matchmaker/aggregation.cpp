#include "matchmaker/aggregation.h"

#include <algorithm>
#include <unordered_map>

namespace matchmaking {

namespace {

std::string fingerprint(const classad::ClassAd& ad,
                        const AggregationConfig& config) {
  classad::ClassAd residual = ad;
  for (const std::string& name : config.identityAttributes) {
    residual.remove(name);
  }
  // Canonicalize: sort attributes by lowered name so ads that list the
  // same bindings in different orders aggregate together (structural
  // regularity is about the set of names, not their order).
  std::vector<classad::ClassAd::Attribute> attrs(residual.attributes());
  std::sort(attrs.begin(), attrs.end(),
            [](const auto& a, const auto& b) {
              return classad::compareIgnoreCase(a.first, b.first) < 0;
            });
  std::string out;
  for (const auto& [name, expr] : attrs) {
    out += classad::toLowerCopy(name);
    out += '=';
    expr->unparse(out);
    out += ';';
  }
  return out;
}

}  // namespace

std::vector<AdGroup> groupAds(std::span<const classad::ClassAdPtr> ads,
                              const AggregationConfig& config) {
  std::vector<AdGroup> groups;
  std::unordered_map<std::string, std::size_t> byKey;
  for (std::size_t i = 0; i < ads.size(); ++i) {
    if (!ads[i]) continue;
    std::string key = fingerprint(*ads[i], config);
    auto it = byKey.find(key);
    if (it == byKey.end()) {
      AdGroup group;
      group.key = key;
      group.members.push_back(i);
      group.representative = ads[i];
      byKey.emplace(std::move(key), groups.size());
      groups.push_back(std::move(group));
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  return groups;
}

double regularity(std::span<const classad::ClassAdPtr> ads,
                  const AggregationConfig& config) {
  const std::vector<AdGroup> groups = groupAds(ads, config);
  std::size_t total = 0;
  std::size_t grouped = 0;
  for (const AdGroup& g : groups) {
    total += g.members.size();
    if (g.members.size() > 1) grouped += g.members.size();
  }
  return total == 0 ? 0.0 : static_cast<double>(grouped) /
                                static_cast<double>(total);
}

}  // namespace matchmaking
