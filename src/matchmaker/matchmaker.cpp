#include "matchmaker/matchmaker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "classad/prepared.h"
#include "matchmaker/aggregation.h"

namespace matchmaking {

namespace {

/// Seconds elapsed since `from` (negotiation-phase stopwatch).
double secondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

engine::EngineConfig engineConfigFor(const MatchmakerConfig& config) {
  engine::EngineConfig ec;
  ec.bilateral = config.bilateral;
  ec.useIndex = config.useCandidateIndex;
  ec.scanThreads = config.scanThreads;
  ec.parallelScanThreshold = config.parallelScanThreshold;
  return ec;
}

void foldScanStats(const engine::ScanStats& scan, NegotiationStats& out) {
  out.candidateEvaluations += scan.evaluated;
  out.candidatesPruned += scan.pruned;
  out.indexedSelections += scan.indexedSelections;
  out.fullScans += scan.fullScans;
  out.staticSkips += scan.staticSkips;
}

/// Live, non-gang request ads in slot order plus their slot ids (gang
/// requests are co-allocation work for the GangMatcher, served by the
/// caller after the pairwise pass).
struct RequestView {
  std::vector<classad::ClassAdPtr> ads;
  std::vector<std::uint32_t> slotIds;
};

RequestView pairwiseRequests(const engine::PreparedPool& requests) {
  RequestView view;
  const std::vector<engine::Slot>& slots = requests.slots();
  view.ads.reserve(requests.liveCount());
  view.slotIds.reserve(requests.liveCount());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const engine::Slot& slot = slots[i];
    if (!slot.live || slot.isGang) continue;
    view.ads.push_back(slot.ad());
    view.slotIds.push_back(static_cast<std::uint32_t>(i));
  }
  return view;
}

/// Binds `taken` to the caller's slot-indexed vector (growing it to the
/// pool's slot count) or to a cycle-local one.
std::vector<char>& bindTaken(std::vector<char>* external,
                             std::vector<char>& local,
                             std::size_t slotCount) {
  std::vector<char>& taken = external != nullptr ? *external : local;
  if (taken.size() < slotCount) taken.resize(slotCount, 0);
  return taken;
}

Match buildMatch(const classad::ClassAdPtr& request, const engine::Slot& slot,
                 std::uint32_t slotId, double requestRank, double resourceRank,
                 bool preempting, const ProtocolAttributes& protocol) {
  Match match;
  match.request = request;
  match.resource = slot.ad();
  match.resourceSlot = slotId;
  match.requestContact = request->getString(protocol.contact).value_or("");
  match.resourceContact = slot.ad()->getString(protocol.contact).value_or("");
  match.user = request->getString(protocol.owner).value_or("");
  if (const auto t = slot.ad()->getString(protocol.ticket)) {
    match.ticket = ticketFromString(*t).value_or(kNoTicket);
  }
  match.requestRank = requestRank;
  match.resourceRank = resourceRank;
  match.preempting = preempting;
  return match;
}

/// True iff the request's Constraint or Rank references any of the
/// identity attributes dropped by the aggregation fingerprint. Such a
/// request can distinguish members WITHIN a group, so representative-level
/// filtering would be unsound for it — it is matched naively instead.
bool referencesIdentityAttributes(const classad::ClassAd& request,
                                  const classad::MatchAttributes& attrs,
                                  const AggregationConfig& aggConfig) {
  std::vector<std::string> refs;
  for (const std::string& name :
       {attrs.constraint, attrs.constraintAlias, attrs.rank}) {
    if (const classad::ExprPtr* e = request.lookup(name)) {
      classad::collectAttrRefs(**e, refs);
    }
  }
  for (const std::string& identity : aggConfig.identityAttributes) {
    const std::string lowered = classad::toLowerCopy(identity);
    for (const std::string& ref : refs) {
      if (ref == lowered) return true;
    }
  }
  return false;
}

}  // namespace

engine::PoolOptions requestPoolOptions(const MatchmakerConfig& config) {
  engine::PoolOptions options;
  options.attrs = config.protocol.match;
  options.currentRankAttr = config.currentRankAttr;
  options.deriveGuards = config.useCandidateIndex;
  return options;
}

engine::PoolOptions resourcePoolOptions(const MatchmakerConfig& config) {
  engine::PoolOptions options;
  options.attrs = config.protocol.match;
  options.currentRankAttr = config.currentRankAttr;
  options.buildIndex = config.useCandidateIndex;
  return options;
}

bool Matchmaker::matches(const classad::ClassAd& request,
                         const classad::ClassAd& resource) const {
  const auto& attrs = config_.protocol.match;
  if (!config_.bilateral) {
    return classad::oneWayMatch(request, resource, attrs);
  }
  return classad::symmetricMatch(request, resource, attrs);
}

std::optional<Match> Matchmaker::bestMatchFor(
    const classad::ClassAdPtr& request, const engine::PreparedPool& resources,
    Time now, NegotiationStats* stats) const {
  if (!request) return std::nullopt;
  const classad::ClassAdPtr one[] = {request};
  const engine::PreparedPool requestPool =
      engine::PreparedPool::fromAds(one, requestPoolOptions(config_));
  const Accountant guestAccountant{Accountant::Config{}};
  std::vector<Match> found =
      negotiate(requestPool, resources, guestAccountant, now, stats);
  if (found.empty()) return std::nullopt;
  return std::move(found.front());
}

std::vector<Match> Matchmaker::negotiate(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> resources,
    const Accountant& accountant, Time now, NegotiationStats* stats) const {
  // Throwaway pools: slot ids equal span indices, so Match::resourceSlot
  // keeps meaning "index into the span you handed me".
  const engine::PreparedPool requestPool =
      engine::PreparedPool::fromAds(requests, requestPoolOptions(config_));
  const engine::PreparedPool resourcePool =
      engine::PreparedPool::fromAds(resources, resourcePoolOptions(config_));
  return negotiate(requestPool, resourcePool, accountant, now, stats, nullptr);
}

std::vector<Match> Matchmaker::negotiate(const engine::PreparedPool& requests,
                                         const engine::PreparedPool& resources,
                                         const Accountant& accountant, Time now,
                                         NegotiationStats* stats,
                                         std::vector<char>* taken) const {
  // Aggregation is a greedy-scan accelerator (it reorders WHICH resource a
  // request's scan inspects first, not which request is served next); the
  // batch policies replace that scan outright, so they win the dispatch.
  if (config_.useAggregation &&
      config_.negotiationPolicy == policy::PolicyKind::kGreedy) {
    return negotiateAggregated(requests, resources, accountant, now, stats,
                               taken);
  }
  return negotiateWithPolicy(requests, resources, accountant, now, stats,
                             taken);
}

std::vector<std::size_t> Matchmaker::serviceOrder(
    std::span<const classad::ClassAdPtr> requests,
    const Accountant& accountant, Time now) const {
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) order[i] = i;
  if (!config_.fairShare) return order;

  // Fair-share service order, two-level: repeatedly serve the pending
  // request of the best-standing GROUP, and within it the best-standing
  // USER; each grant doubles both keys (a deterministic approximation of
  // Condor's priority-ordered "pie spin"). An ungrouped user forms a
  // singleton pseudo-group whose key is the user's own, which makes the
  // two-level scheme degenerate exactly to flat fair share.
  struct UserState {
    double key = 0.0;
    std::vector<std::size_t> pending;  // request indices, submission order
    std::size_t next = 0;
    std::size_t group = 0;
  };
  struct GroupState {
    double key = 0.0;
    std::vector<std::size_t> members;  // user indices, first-seen order
    std::size_t pendingTotal = 0;
  };
  std::vector<UserState> users;
  std::vector<GroupState> groups;
  std::unordered_map<std::string, std::size_t> userIndex;
  std::unordered_map<std::string, std::size_t> groupIndex;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const classad::ClassAdPtr& ad = requests[i];
    std::string user =
        ad ? ad->getString(config_.protocol.owner).value_or("") : "";
    auto [uit, newUser] = userIndex.try_emplace(user, users.size());
    if (newUser) {
      UserState state;
      state.key = accountant.effectivePriority(user, now);
      const std::string& group =
          config_.groupFairShare ? accountant.groupOf(user) : std::string();
      // Singleton pseudo-group for ungrouped users, keyed by the user.
      const std::string groupName =
          group.empty() ? "\x01user:" + user : group;
      auto [git, newGroup] = groupIndex.try_emplace(groupName, groups.size());
      if (newGroup) {
        GroupState gstate;
        gstate.key = group.empty()
                         ? state.key
                         : accountant.effectiveGroupPriority(group, now);
        groups.push_back(std::move(gstate));
      }
      state.group = git->second;
      groups[git->second].members.push_back(users.size());
      users.push_back(std::move(state));
    }
    UserState& state = users[uit->second];
    state.pending.push_back(i);
    ++groups[state.group].pendingTotal;
  }

  std::vector<std::size_t> out;
  out.reserve(requests.size());
  std::size_t remaining = requests.size();
  while (remaining > 0) {
    GroupState* bestGroup = nullptr;
    for (GroupState& g : groups) {
      if (g.pendingTotal == 0) continue;
      if (bestGroup == nullptr || g.key < bestGroup->key) bestGroup = &g;
    }
    UserState* bestUser = nullptr;
    for (const std::size_t u : bestGroup->members) {
      UserState& s = users[u];
      if (s.next >= s.pending.size()) continue;
      if (bestUser == nullptr || s.key < bestUser->key) bestUser = &s;
    }
    out.push_back(bestUser->pending[bestUser->next++]);
    bestUser->key *= 2.0;
    bestGroup->key *= 2.0;
    --bestGroup->pendingTotal;
    --remaining;
  }
  return out;
}

std::vector<Match> Matchmaker::negotiateWithPolicy(
    const engine::PreparedPool& requests, const engine::PreparedPool& resources,
    const Accountant& accountant, Time now, NegotiationStats* stats,
    std::vector<char>* taken) const {
  NegotiationStats local;
  const RequestView view = pairwiseRequests(requests);
  local.requestsConsidered = view.ads.size();
  local.resourcesConsidered = resources.liveCount();

  std::vector<char> cycleTaken;
  std::vector<char>& takenRef =
      bindTaken(taken, cycleTaken, resources.slots().size());
  const engine::MatchEngine eng(engineConfigFor(config_));
  engine::ScanStats scan;

  std::vector<Match> out;
  auto phaseStart = std::chrono::steady_clock::now();
  const std::vector<std::size_t> order =
      serviceOrder(view.ads, accountant, now);
  local.serviceOrderSeconds = secondsSince(phaseStart);

  // Request slot ids in service order: the policy's contract is "earlier
  // span entries have better standing", so fair share stays the
  // matchmaker's concern and the policy only decides pairs.
  std::vector<std::uint32_t> orderedSlots;
  orderedSlots.reserve(order.size());
  for (const std::size_t reqIdx : order) {
    orderedSlots.push_back(view.slotIds[reqIdx]);
  }

  phaseStart = std::chrono::steady_clock::now();
  policy::CycleContext ctx{eng, requests, resources, orderedSlots, takenRef,
                           &scan};
  const std::unique_ptr<policy::NegotiationPolicy> pol =
      policy::makePolicy(config_.negotiationPolicy);
  policy::PolicyStats pstats;
  const std::vector<policy::Decision> decisions = pol->decide(ctx, &pstats);
  local.scanSeconds = secondsSince(phaseStart);
  local.policySolveSeconds = local.scanSeconds;

  out.reserve(decisions.size());
  for (const policy::Decision& d : decisions) {
    const engine::Slot& reqSlot = requests.slots()[d.requestSlot];
    Match match = buildMatch(reqSlot.ad(), resources.slots()[d.resourceSlot],
                             d.resourceSlot, d.requestRank, d.resourceRank,
                             d.preempting, config_.protocol);
    if (match.preempting) ++local.preemptions;
    ++local.matches;
    out.push_back(std::move(match));
  }
  local.aggregateRank = pstats.aggregateRank;
  local.auctionRounds = pstats.auctionRounds;
  foldScanStats(scan, local);
  if (stats) *stats = local;
  return out;
}

std::vector<Match> Matchmaker::negotiateAggregated(
    const engine::PreparedPool& requests, const engine::PreparedPool& resources,
    const Accountant& accountant, Time now, NegotiationStats* stats,
    std::vector<char>* taken) const {
  const auto& attrs = config_.protocol.match;
  const AggregationConfig aggConfig;
  const std::vector<engine::Slot>& slots = resources.slots();

  // Slot-aligned ad vector (nullptr for tombstones, which groupAds skips)
  // so group member indices ARE resource slot ids.
  std::vector<classad::ClassAdPtr> resourceAds(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].live) resourceAds[i] = slots[i].ad();
  }
  const std::vector<AdGroup> groups = groupAds(resourceAds, aggConfig);

  NegotiationStats local;
  const RequestView view = pairwiseRequests(requests);
  local.requestsConsidered = view.ads.size();
  local.resourcesConsidered = resources.liveCount();
  local.aggregateGroups = groups.size();

  // Representatives are prepared once per cycle, not once per request.
  std::vector<classad::PreparedAd> reps;
  reps.reserve(groups.size());
  for (const AdGroup& g : groups) {
    reps.push_back(classad::PreparedAd::prepare(g.representative, attrs));
  }

  // Unmatched members remaining per group (each resource belongs to
  // exactly one group).
  std::vector<std::size_t> remaining(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    remaining[g] = groups[g].members.size();
  }
  // Group index of each resource, for bookkeeping on fallback matches.
  std::vector<std::size_t> groupOf(slots.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::size_t m : groups[g].members) groupOf[m] = g;
  }

  std::vector<char> cycleTaken;
  std::vector<char>& takenRef = bindTaken(taken, cycleTaken, slots.size());
  const engine::MatchEngine eng(engineConfigFor(config_));
  engine::ScanStats scan;

  auto emit = [&](const classad::ClassAdPtr& request, std::uint32_t slotId,
                  double reqRank, double resRank, bool preempting,
                  std::vector<Match>& out) {
    takenRef[slotId] = 1;
    --remaining[groupOf[slotId]];
    Match match = buildMatch(request, slots[slotId], slotId, reqRank, resRank,
                             preempting, config_.protocol);
    if (match.preempting) ++local.preemptions;
    ++local.matches;
    out.push_back(std::move(match));
  };

  std::vector<Match> out;
  auto phaseStart = std::chrono::steady_clock::now();
  const std::vector<std::size_t> order =
      serviceOrder(view.ads, accountant, now);
  local.serviceOrderSeconds = secondsSince(phaseStart);
  phaseStart = std::chrono::steady_clock::now();
  for (const std::size_t reqIdx : order) {
    const engine::Slot& reqSlot = requests.slots()[view.slotIds[reqIdx]];
    const classad::ClassAdPtr& request = reqSlot.ad();

    // Soundness fallback: a request whose policy can tell group members
    // apart (references an identity attribute) is matched naively.
    if (referencesIdentityAttributes(*request, attrs, aggConfig)) {
      const engine::BestCandidate best = eng.bestFor(
          reqSlot.prepared, reqSlot.guards, resources, takenRef, &scan);
      if (best.found) {
        emit(request, best.slot, best.requestRank, best.resourceRank,
             best.preempting, out);
      }
      continue;
    }

    // Phase 1: evaluate each group's REPRESENTATIVE (one evaluation per
    // group instead of one per resource) and order groups by the shared
    // Section 3.2 ordering (engine/ordering.h; "slot" = group index).
    std::vector<engine::RankedCandidate> candidates;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (remaining[g] == 0) continue;
      ++local.candidateEvaluations;
      const classad::MatchAnalysis m =
          eng.analyzePair(reqSlot.prepared, reps[g]);
      if (!m.matched) continue;
      candidates.push_back(
          {m.requestRank, m.resourceRank, static_cast<std::uint32_t>(g)});
    }
    std::sort(candidates.begin(), candidates.end(),
              engine::RankOrderBestFirst{});

    // Phase 2: inside the best group, VERIFY against the actual member
    // (the match-is-a-hint discipline). A member that fails verification
    // for THIS request stays available for later requests. Fall through
    // groups until a member verifies.
    bool served = false;
    for (const engine::RankedCandidate& cand : candidates) {
      const AdGroup& group = groups[cand.slot];
      for (const std::size_t memberIdx : group.members) {
        const engine::Slot& slot = slots[memberIdx];
        if (takenRef[memberIdx] != 0 || !slot.live) continue;
        ++local.candidateEvaluations;
        const classad::MatchAnalysis m =
            eng.analyzePair(reqSlot.prepared, slot.prepared);
        if (!m.matched ||
            (slot.claimed && !(m.resourceRank > slot.currentRank))) {
          continue;
        }
        emit(request, static_cast<std::uint32_t>(memberIdx), m.requestRank,
             m.resourceRank, slot.claimed, out);
        served = true;
        break;
      }
      if (served) break;
    }
  }
  local.scanSeconds = secondsSince(phaseStart);
  foldScanStats(scan, local);
  if (stats) *stats = local;
  return out;
}

}  // namespace matchmaking
