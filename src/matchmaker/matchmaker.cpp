#include "matchmaker/matchmaker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <limits>
#include <unordered_map>

#include "matchmaker/aggregation.h"

namespace matchmaking {

namespace {

/// Seconds elapsed since `from` (negotiation-phase stopwatch).
double secondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

bool Matchmaker::matches(const classad::ClassAd& request,
                         const classad::ClassAd& resource) const {
  const auto& attrs = config_.protocol.match;
  if (!config_.bilateral) {
    return classad::oneWayMatch(request, resource, attrs);
  }
  return classad::symmetricMatch(request, resource, attrs);
}

std::vector<Match> Matchmaker::negotiate(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> resources,
    const Accountant& accountant, Time now, NegotiationStats* stats) const {
  if (config_.useAggregation) {
    return negotiateAggregated(requests, resources, accountant, now, stats);
  }
  return negotiateNaive(requests, resources, accountant, now, stats);
}

namespace {

/// Per-resource negotiation state shared by both algorithm variants.
struct ResourceSlot {
  classad::ClassAdPtr ad;
  bool taken = false;        // matched earlier in this cycle
  bool claimed = false;      // advertised with a CurrentRank (busy)
  double currentRank = 0.0;  // rank of its current customer, if claimed
};

std::vector<ResourceSlot> makeSlots(
    std::span<const classad::ClassAdPtr> resources,
    const std::string& currentRankAttr) {
  std::vector<ResourceSlot> slots;
  slots.reserve(resources.size());
  for (const classad::ClassAdPtr& r : resources) {
    ResourceSlot s;
    s.ad = r;
    if (r) {
      if (const auto cur = r->getNumber(currentRankAttr)) {
        s.claimed = true;
        s.currentRank = *cur;
      }
    }
    slots.push_back(std::move(s));
  }
  return slots;
}

/// Two-sided (or one-sided, per config) analysis of one candidate pair.
classad::MatchAnalysis analyzeCandidate(const classad::ClassAd& request,
                                        const classad::ClassAd& resource,
                                        bool bilateral,
                                        const classad::MatchAttributes& attrs) {
  if (bilateral) return classad::analyzeMatch(request, resource, attrs);
  classad::MatchAnalysis one;
  one.requestSide = classad::evaluateConstraint(request, resource, attrs);
  one.resourceSide = classad::ConstraintResult::Missing;
  one.matched = classad::permitsMatch(one.requestSide);
  if (one.matched) {
    one.requestRank = classad::evaluateRank(request, resource, attrs);
    one.resourceRank = classad::evaluateRank(resource, request, attrs);
  }
  return one;
}

/// Candidate quality ordering of Section 3.2: "Among provider ads matching
/// a given customer ad, the matchmaker chooses the one with the highest
/// Rank value ..., breaking ties according to the provider's Rank value."
/// Final tie-break on scan order keeps cycles deterministic.
struct Best {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  double requestRank = -std::numeric_limits<double>::infinity();
  double resourceRank = -std::numeric_limits<double>::infinity();
  bool preempting = false;
  bool found = false;

  bool improvedBy(double reqRank, double resRank) const noexcept {
    if (!found) return true;
    if (reqRank != requestRank) return reqRank > requestRank;
    return resRank > resourceRank;
  }
};

/// Scans slots [lo, hi) for the best candidate for `request`.
Best scanRange(const classad::ClassAd& request,
               const std::vector<ResourceSlot>& slots, std::size_t lo,
               std::size_t hi, bool bilateral,
               const classad::MatchAttributes& attrs,
               std::size_t& evaluations) {
  Best best;
  for (std::size_t i = lo; i < hi; ++i) {
    const ResourceSlot& slot = slots[i];
    if (slot.taken || !slot.ad) continue;
    ++evaluations;
    const classad::MatchAnalysis m =
        analyzeCandidate(request, *slot.ad, bilateral, attrs);
    if (!m.matched) continue;
    // Preemption gate: a claimed resource only accepts customers it ranks
    // strictly above its current one.
    if (slot.claimed && !(m.resourceRank > slot.currentRank)) continue;
    if (best.improvedBy(m.requestRank, m.resourceRank)) {
      best.index = i;
      best.requestRank = m.requestRank;
      best.resourceRank = m.resourceRank;
      best.preempting = slot.claimed;
      best.found = true;
    }
  }
  return best;
}

/// Scans all open slots, optionally fanning out across threads. The
/// parallel path is deterministic: each worker owns a contiguous index
/// range and keeps its FIRST best under the rank ordering; merging the
/// per-range winners in ascending range order reproduces the serial
/// scan's first-best-wins tie-breaking exactly (expression trees are
/// immutable, so concurrent evaluation needs no synchronization).
Best scanAllSlots(const classad::ClassAd& request,
                  const std::vector<ResourceSlot>& slots, bool bilateral,
                  const classad::MatchAttributes& attrs,
                  std::size_t& evaluations, unsigned threads,
                  std::size_t parallelThreshold) {
  if (threads <= 1 || slots.size() < parallelThreshold) {
    return scanRange(request, slots, 0, slots.size(), bilateral, attrs,
                     evaluations);
  }
  const unsigned workers = std::min<unsigned>(
      threads, static_cast<unsigned>(
                   (slots.size() + parallelThreshold - 1) /
                   parallelThreshold));
  std::vector<Best> results(workers);
  std::vector<std::size_t> evalCounts(workers, 0);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (slots.size() + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(slots.size(), lo + chunk);
    pool.emplace_back([&, w, lo, hi] {
      results[w] = scanRange(request, slots, lo, hi, bilateral, attrs,
                             evalCounts[w]);
    });
  }
  for (std::thread& t : pool) t.join();
  Best best;
  for (unsigned w = 0; w < workers; ++w) {
    evaluations += evalCounts[w];
    const Best& r = results[w];
    if (r.found && best.improvedBy(r.requestRank, r.resourceRank)) {
      best = r;
    }
  }
  return best;
}

Match buildMatch(const classad::ClassAdPtr& request, const ResourceSlot& slot,
                 double requestRank, double resourceRank, bool preempting,
                 const ProtocolAttributes& protocol) {
  Match match;
  match.request = request;
  match.resource = slot.ad;
  match.requestContact = request->getString(protocol.contact).value_or("");
  match.resourceContact = slot.ad->getString(protocol.contact).value_or("");
  match.user = request->getString(protocol.owner).value_or("");
  if (const auto t = slot.ad->getString(protocol.ticket)) {
    match.ticket = ticketFromString(*t).value_or(kNoTicket);
  }
  match.requestRank = requestRank;
  match.resourceRank = resourceRank;
  match.preempting = preempting;
  return match;
}

/// True iff the request's Constraint or Rank references any of the
/// identity attributes dropped by the aggregation fingerprint. Such a
/// request can distinguish members WITHIN a group, so representative-level
/// filtering would be unsound for it — it is matched naively instead.
bool referencesIdentityAttributes(const classad::ClassAd& request,
                                  const classad::MatchAttributes& attrs,
                                  const AggregationConfig& aggConfig) {
  std::vector<std::string> refs;
  for (const std::string& name :
       {attrs.constraint, attrs.constraintAlias, attrs.rank}) {
    if (const classad::ExprPtr* e = request.lookup(name)) {
      classad::collectAttrRefs(**e, refs);
    }
  }
  for (const std::string& identity : aggConfig.identityAttributes) {
    const std::string lowered = classad::toLowerCopy(identity);
    for (const std::string& ref : refs) {
      if (ref == lowered) return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::size_t> Matchmaker::serviceOrder(
    std::span<const classad::ClassAdPtr> requests,
    const Accountant& accountant, Time now) const {
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) order[i] = i;
  if (!config_.fairShare) return order;

  // Fair-share service order, two-level: repeatedly serve the pending
  // request of the best-standing GROUP, and within it the best-standing
  // USER; each grant doubles both keys (a deterministic approximation of
  // Condor's priority-ordered "pie spin"). An ungrouped user forms a
  // singleton pseudo-group whose key is the user's own, which makes the
  // two-level scheme degenerate exactly to flat fair share.
  struct UserState {
    double key = 0.0;
    std::vector<std::size_t> pending;  // request indices, submission order
    std::size_t next = 0;
    std::size_t group = 0;
  };
  struct GroupState {
    double key = 0.0;
    std::vector<std::size_t> members;  // user indices, first-seen order
    std::size_t pendingTotal = 0;
  };
  std::vector<UserState> users;
  std::vector<GroupState> groups;
  std::unordered_map<std::string, std::size_t> userIndex;
  std::unordered_map<std::string, std::size_t> groupIndex;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const classad::ClassAdPtr& ad = requests[i];
    std::string user =
        ad ? ad->getString(config_.protocol.owner).value_or("") : "";
    auto [uit, newUser] = userIndex.try_emplace(user, users.size());
    if (newUser) {
      UserState state;
      state.key = accountant.effectivePriority(user, now);
      const std::string& group =
          config_.groupFairShare ? accountant.groupOf(user) : std::string();
      // Singleton pseudo-group for ungrouped users, keyed by the user.
      const std::string groupName =
          group.empty() ? "\x01user:" + user : group;
      auto [git, newGroup] = groupIndex.try_emplace(groupName, groups.size());
      if (newGroup) {
        GroupState gstate;
        gstate.key = group.empty()
                         ? state.key
                         : accountant.effectiveGroupPriority(group, now);
        groups.push_back(std::move(gstate));
      }
      state.group = git->second;
      groups[git->second].members.push_back(users.size());
      users.push_back(std::move(state));
    }
    UserState& state = users[uit->second];
    state.pending.push_back(i);
    ++groups[state.group].pendingTotal;
  }

  std::vector<std::size_t> out;
  out.reserve(requests.size());
  std::size_t remaining = requests.size();
  while (remaining > 0) {
    GroupState* bestGroup = nullptr;
    for (GroupState& g : groups) {
      if (g.pendingTotal == 0) continue;
      if (bestGroup == nullptr || g.key < bestGroup->key) bestGroup = &g;
    }
    UserState* bestUser = nullptr;
    for (const std::size_t u : bestGroup->members) {
      UserState& s = users[u];
      if (s.next >= s.pending.size()) continue;
      if (bestUser == nullptr || s.key < bestUser->key) bestUser = &s;
    }
    out.push_back(bestUser->pending[bestUser->next++]);
    bestUser->key *= 2.0;
    bestGroup->key *= 2.0;
    --bestGroup->pendingTotal;
    --remaining;
  }
  return out;
}

std::vector<Match> Matchmaker::negotiateNaive(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> resources,
    const Accountant& accountant, Time now, NegotiationStats* stats) const {
  const auto& attrs = config_.protocol.match;
  std::vector<ResourceSlot> slots =
      makeSlots(resources, config_.currentRankAttr);
  NegotiationStats local;
  local.requestsConsidered = requests.size();
  local.resourcesConsidered = resources.size();

  std::vector<Match> out;
  auto phaseStart = std::chrono::steady_clock::now();
  const std::vector<std::size_t> order =
      serviceOrder(requests, accountant, now);
  local.serviceOrderSeconds = secondsSince(phaseStart);
  phaseStart = std::chrono::steady_clock::now();
  for (std::size_t reqIdx : order) {
    const classad::ClassAdPtr& request = requests[reqIdx];
    if (!request) continue;
    const Best best = scanAllSlots(
        *request, slots, config_.bilateral, attrs,
        local.candidateEvaluations, config_.scanThreads,
        config_.parallelScanThreshold);
    if (!best.found) continue;
    ResourceSlot& slot = slots[best.index];
    slot.taken = true;
    Match match = buildMatch(request, slot, best.requestRank,
                             best.resourceRank, best.preempting,
                             config_.protocol);
    if (match.preempting) ++local.preemptions;
    ++local.matches;
    out.push_back(std::move(match));
  }
  local.scanSeconds = secondsSince(phaseStart);
  if (stats) *stats = local;
  return out;
}

std::vector<Match> Matchmaker::negotiateAggregated(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> resources,
    const Accountant& accountant, Time now, NegotiationStats* stats) const {
  const auto& attrs = config_.protocol.match;
  const AggregationConfig aggConfig;
  std::vector<ResourceSlot> slots =
      makeSlots(resources, config_.currentRankAttr);
  std::vector<AdGroup> groups = groupAds(resources, aggConfig);
  NegotiationStats local;
  local.requestsConsidered = requests.size();
  local.resourcesConsidered = resources.size();
  local.aggregateGroups = groups.size();

  // Unmatched members remaining per group (each resource belongs to
  // exactly one group).
  std::vector<std::size_t> remaining(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    remaining[g] = groups[g].members.size();
  }
  // Group index of each resource, for bookkeeping on fallback matches.
  std::vector<std::size_t> groupOf(slots.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::size_t m : groups[g].members) groupOf[m] = g;
  }

  auto emit = [&](const classad::ClassAdPtr& request, std::size_t slotIdx,
                  double reqRank, double resRank, bool preempting,
                  std::vector<Match>& out) {
    ResourceSlot& slot = slots[slotIdx];
    slot.taken = true;
    --remaining[groupOf[slotIdx]];
    Match match = buildMatch(request, slot, reqRank, resRank, preempting,
                             config_.protocol);
    if (match.preempting) ++local.preemptions;
    ++local.matches;
    out.push_back(std::move(match));
  };

  std::vector<Match> out;
  auto phaseStart = std::chrono::steady_clock::now();
  const std::vector<std::size_t> order =
      serviceOrder(requests, accountant, now);
  local.serviceOrderSeconds = secondsSince(phaseStart);
  phaseStart = std::chrono::steady_clock::now();
  for (std::size_t reqIdx : order) {
    const classad::ClassAdPtr& request = requests[reqIdx];
    if (!request) continue;

    // Soundness fallback: a request whose policy can tell group members
    // apart (references an identity attribute) is matched naively.
    if (referencesIdentityAttributes(*request, attrs, aggConfig)) {
      const Best best = scanAllSlots(
          *request, slots, config_.bilateral, attrs,
          local.candidateEvaluations, config_.scanThreads,
          config_.parallelScanThreshold);
      if (best.found) {
        emit(request, best.index, best.requestRank, best.resourceRank,
             best.preempting, out);
      }
      continue;
    }

    // Phase 1: evaluate each group's REPRESENTATIVE (one evaluation per
    // group instead of one per resource) and order groups by rank.
    struct GroupCandidate {
      std::size_t group;
      double requestRank;
      double resourceRank;
    };
    std::vector<GroupCandidate> candidates;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (remaining[g] == 0) continue;
      const classad::ClassAd& rep = *groups[g].representative;
      ++local.candidateEvaluations;
      const classad::MatchAnalysis m =
          analyzeCandidate(*request, rep, config_.bilateral, attrs);
      if (!m.matched) continue;
      candidates.push_back({g, m.requestRank, m.resourceRank});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const GroupCandidate& a, const GroupCandidate& b) {
                if (a.requestRank != b.requestRank) {
                  return a.requestRank > b.requestRank;
                }
                if (a.resourceRank != b.resourceRank) {
                  return a.resourceRank > b.resourceRank;
                }
                return a.group < b.group;
              });

    // Phase 2: inside the best group, VERIFY against the actual member
    // (the match-is-a-hint discipline). A member that fails verification
    // for THIS request stays available for later requests. Fall through
    // groups until a member verifies.
    bool served = false;
    for (const GroupCandidate& cand : candidates) {
      const AdGroup& group = groups[cand.group];
      for (const std::size_t memberIdx : group.members) {
        const ResourceSlot& slot = slots[memberIdx];
        if (slot.taken || !slot.ad) continue;
        ++local.candidateEvaluations;
        const classad::MatchAnalysis m =
            analyzeCandidate(*request, *slot.ad, config_.bilateral, attrs);
        if (!m.matched ||
            (slot.claimed && !(m.resourceRank > slot.currentRank))) {
          continue;
        }
        emit(request, memberIdx, m.requestRank, m.resourceRank, slot.claimed,
             out);
        served = true;
        break;
      }
      if (served) break;
    }
  }
  local.scanSeconds = secondsSince(phaseStart);
  if (stats) *stats = local;
  return out;
}

}  // namespace matchmaking
