#include "matchmaker/claiming.h"

namespace matchmaking {

ClaimResponse evaluateClaim(const classad::ClassAd& currentResourceAd,
                            Ticket outstandingTicket,
                            const ClaimRequest& request,
                            const ClaimPolicy& policy) {
  if (policy.verifyTicket) {
    if (outstandingTicket == kNoTicket) {
      return {false, "no outstanding ticket (resource not offered)"};
    }
    if (request.ticket != outstandingTicket) {
      return {false, "ticket mismatch"};
    }
  }
  if (request.requestAd == nullptr) {
    return {false, "claim carried no request ad"};
  }
  if (policy.reverifyConstraints) {
    // "the request matches the RA's constraints with respect to the
    // updated state of the request and resource" — both directions, since
    // the customer's needs may also have changed.
    const auto resourceSide = classad::evaluateConstraint(
        currentResourceAd, *request.requestAd, policy.attrs);
    if (!classad::permitsMatch(resourceSide)) {
      return {false, std::string("resource constraint ") +
                         std::string(classad::toString(resourceSide)) +
                         " against current request"};
    }
    const auto requestSide = classad::evaluateConstraint(
        *request.requestAd, currentResourceAd, policy.attrs);
    if (!classad::permitsMatch(requestSide)) {
      return {false, std::string("request constraint ") +
                         std::string(classad::toString(requestSide)) +
                         " against current resource"};
    }
  }
  return {true, ""};
}

}  // namespace matchmaking
