#include "matchmaker/ad_store.h"

namespace matchmaking {

bool AdStore::update(std::string_view key, classad::ClassAdPtr ad, Time now,
                     std::uint64_t sequence, std::optional<Time> lifetime) {
  const Time life = lifetime.value_or(defaultLifetime_);
  auto it = ads_.find(std::string(key));
  if (it != ads_.end()) {
    if (sequence <= it->second.sequence) return false;  // stale duplicate
    it->second.ad = ad;
    it->second.receivedAt = now;
    it->second.expiresAt = now + life;
    it->second.sequence = sequence;
    if (pool_.has_value()) pool_->upsert(key, std::move(ad), sequence);
    return true;
  }
  StoredAd stored;
  stored.key = std::string(key);
  stored.ad = ad;
  stored.receivedAt = now;
  stored.expiresAt = now + life;
  stored.sequence = sequence;
  ads_.emplace(stored.key, std::move(stored));
  if (pool_.has_value()) pool_->upsert(key, std::move(ad), sequence);
  return true;
}

bool AdStore::invalidate(std::string_view key) {
  const bool erased = ads_.erase(std::string(key)) > 0;
  if (erased && pool_.has_value()) pool_->erase(key);
  return erased;
}

std::size_t AdStore::expire(Time now) {
  std::size_t removed = 0;
  for (auto it = ads_.begin(); it != ads_.end();) {
    if (it->second.expiresAt < now) {
      if (pool_.has_value()) pool_->erase(it->first);
      it = ads_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<classad::ClassAdPtr> AdStore::snapshot() const {
  std::vector<classad::ClassAdPtr> out;
  out.reserve(ads_.size());
  for (const auto& [key, stored] : ads_) out.push_back(stored.ad);
  return out;
}

std::vector<const StoredAd*> AdStore::entries() const {
  std::vector<const StoredAd*> out;
  out.reserve(ads_.size());
  for (const auto& [key, stored] : ads_) out.push_back(&stored);
  return out;
}

const StoredAd* AdStore::find(std::string_view key) const {
  auto it = ads_.find(std::string(key));
  return it == ads_.end() ? nullptr : &it->second;
}

}  // namespace matchmaking
