// priority.h - Past-usage accounting for the fair matching policy.
//
// Section 4: "The matchmaking algorithm also uses past resource usage
// information to enforce a fair matching policy." We implement the
// accountant deployed Condor uses: each principal has a real-valued usage
// figure that tracks the resources it has consumed and decays
// exponentially with a configurable half-life, so a user who hogged the
// pool yesterday gradually regains standing. Lower effective priority
// value = better standing = served earlier in the negotiation cycle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "matchmaker/ad_store.h"  // Time

namespace matchmaking {

class Accountant {
 public:
  struct Config {
    /// Half-life of accumulated usage, seconds. Smaller forgets faster.
    Time usageHalflife = 86400.0;
    /// Floor of the priority value; a user with no recorded usage sits
    /// here (matching Condor's minimum user priority of 0.5).
    double minimumPriority = 0.5;
    /// Per-user multiplicative factor (administrative weighting); factors
    /// above 1.0 worsen a user's standing proportionally.
    double defaultFactor = 1.0;
  };

  Accountant() = default;
  explicit Accountant(Config config) : config_(config) {}

  /// Records `resourceSeconds` of usage by `user` ending at time `now`
  /// (e.g. one machine held for 60s = 60 resource-seconds).
  void recordUsage(std::string_view user, double resourceSeconds, Time now);

  /// Effective user priority at `now`: decayed usage (in resource-count
  /// units, i.e. "machines continuously held"), scaled by the user's
  /// factor, floored at minimumPriority. LOWER IS BETTER.
  double effectivePriority(std::string_view user, Time now) const;

  /// Decayed raw usage in resource-seconds at `now`.
  double usage(std::string_view user, Time now) const;

  void setFactor(std::string_view user, double factor);

  /// Users with recorded usage, worst standing first (for reports).
  std::vector<std::pair<std::string, double>> standings(Time now) const;

  // --- accounting groups (hierarchical fair share) -----------------------
  //
  // Users may be assigned to named groups ("physics", "chemistry", ...).
  // Usage then accrues to BOTH the user and the group, and a group-aware
  // negotiator (MatchmakerConfig::groupFairShare) shares the pool first
  // BETWEEN groups by group standing, then WITHIN each group by user
  // standing — so a lab with ten submitters gets the same aggregate share
  // as a lab with one. Ungrouped users behave exactly as before.

  /// Assigns `user` to `group` ("" removes the assignment). Existing
  /// decayed usage stays with the user; group usage accrues from now on.
  void setGroup(std::string_view user, std::string_view group);

  /// The user's group, or "" if ungrouped.
  const std::string& groupOf(std::string_view user) const;

  /// Decayed aggregate usage of a group, resource-seconds.
  double groupUsage(std::string_view group, Time now) const;

  /// Group standing, same normalization and floor as user priority.
  /// LOWER IS BETTER.
  double effectiveGroupPriority(std::string_view group, Time now) const;

  const Config& config() const noexcept { return config_; }

 private:
  struct Entry {
    double usage = 0.0;  // resource-seconds, decayed as of `asOf`
    Time asOf = 0.0;
    double factor = 1.0;
  };

  double decayedUsage(const Entry& e, Time now) const;

  Config config_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, Entry> groupEntries_;
  std::unordered_map<std::string, std::string> groupOf_;
};

}  // namespace matchmaking
