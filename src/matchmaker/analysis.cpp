#include "matchmaker/analysis.h"

#include "classad/analysis/absint.h"
#include "classad/analysis/schema.h"
#include "classad/expr.h"
#include "classad/prepared.h"
#include "matchmaker/engine/engine.h"

namespace matchmaking {

std::vector<classad::ExprPtr> splitConjuncts(const classad::ExprPtr& expr) {
  return classad::analysis::splitConjuncts(expr);
}

Diagnosis diagnose(const classad::ClassAd& request,
                   std::span<const classad::ClassAdPtr> pool,
                   const classad::MatchAttributes& attrs) {
  Diagnosis d;
  // Same precedence rule as matching itself (Constraint, then the alias)
  // — the diagnoser must explain THE expression the matchmaker evaluates.
  const classad::ExprPtr* constraint =
      classad::findConstraintExpr(request, attrs);

  std::vector<classad::ExprPtr> conjuncts;
  if (constraint != nullptr) conjuncts = splitConjuncts(*constraint);
  d.conjuncts.reserve(conjuncts.size());
  for (const classad::ExprPtr& c : conjuncts) {
    ConjunctReport r;
    r.text = c->toString();
    d.conjuncts.push_back(std::move(r));
  }

  // Static pass first: fold the pool into a schema, lint the request
  // against it, and try to decide each conjunct without touching the pool.
  namespace ca = classad::analysis;
  const ca::Schema schema = ca::Schema::fromAds(pool);
  ca::LintOptions lintOpts;
  lintOpts.otherSchema = &schema;
  lintOpts.constraintAttrs = {attrs.constraint, attrs.constraintAlias};
  d.lint = ca::lintAd(request, lintOpts);

  ca::AnalysisEnv env;
  env.self = &request;
  env.otherSchema = schema.empty() ? nullptr : &schema;
  const std::size_t poolSize = [&pool] {
    std::size_t n = 0;
    for (const classad::ClassAdPtr& r : pool) n += r != nullptr ? 1 : 0;
    return n;
  }();
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    const ca::ConjunctVerdict verdict =
        ca::classifyConjunct(ca::abstractEval(*conjuncts[i], env));
    d.conjuncts[i].staticVerdict = verdict;
    if (verdict == ca::ConjunctVerdict::Unknown || poolSize == 0) continue;
    // Decided with no pool evaluation: the verdict holds for EVERY pool
    // ad, so the tally is uniform.
    d.conjuncts[i].decidedStatically = true;
    switch (verdict) {
      case ca::ConjunctVerdict::AlwaysTrue:
        d.conjuncts[i].satisfied = poolSize;
        break;
      case ca::ConjunctVerdict::AlwaysUndefined:
        d.conjuncts[i].undefined = poolSize;
        break;
      case ca::ConjunctVerdict::AlwaysError:
        d.conjuncts[i].error = poolSize;
        break;
      case ca::ConjunctVerdict::NeverTrue:
        d.conjuncts[i].violated = poolSize;
        break;
      case ca::ConjunctVerdict::Unknown:
        break;
    }
  }

  // Dynamic pass over the pool, through the same prepared-ad evaluation
  // path the MatchEngine uses: the request's constraint and rank are
  // flattened once, each resource once, instead of per pair.
  engine::PoolOptions poolOptions;
  poolOptions.attrs = attrs;
  const engine::PreparedPool prepared =
      engine::PreparedPool::fromAds(pool, poolOptions);
  const classad::PreparedAd preparedRequest =
      classad::PreparedAd::prepare(classad::makeShared(request), attrs);
  for (const engine::Slot& slot : prepared.slots()) {
    if (!slot.live) continue;
    ++d.poolSize;
    const classad::MatchAnalysis m =
        classad::analyzeMatch(preparedRequest, slot.prepared);
    if (classad::permitsMatch(m.requestSide)) ++d.requestSideOk;
    if (classad::permitsMatch(m.resourceSide)) ++d.resourceSideOk;
    if (m.matched) ++d.matches;
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (d.conjuncts[i].decidedStatically) continue;
      const classad::Value v =
          request.evaluate(*conjuncts[i], slot.ad().get());
      if (v.isBooleanTrue()) {
        ++d.conjuncts[i].satisfied;
      } else if (v.isBoolean()) {
        ++d.conjuncts[i].violated;
      } else if (v.isUndefined()) {
        ++d.conjuncts[i].undefined;
      } else {
        ++d.conjuncts[i].error;
      }
    }
  }
  return d;
}

std::string Diagnosis::summary() const {
  std::string out;
  out += "Pool size: " + std::to_string(poolSize) + "\n";
  out += "Resources satisfying the request's constraint: " +
         std::to_string(requestSideOk) + "\n";
  out += "Resources willing to serve this request:       " +
         std::to_string(resourceSideOk) + "\n";
  out += "Two-sided matches available now:               " +
         std::to_string(matches) + "\n";
  if (!conjuncts.empty()) {
    out += "Request constraint, conjunct by conjunct:\n";
    for (const ConjunctReport& c : conjuncts) {
      out += "  [" + std::to_string(c.satisfied) + " ok / " +
             std::to_string(c.violated) + " fail / " +
             std::to_string(c.undefined) + " undef / " +
             std::to_string(c.error) + " err]  " + c.text;
      if (c.decidedStatically) {
        out += "   <-- static: " +
               std::string(classad::analysis::toString(c.staticVerdict));
      }
      if (c.unsatisfiable(poolSize)) {
        out += "   <-- NO resource in the pool satisfies this";
      }
      out += "\n";
    }
  }
  if (!lint.empty()) {
    out += "Static analysis findings:\n";
    for (const auto& f : lint.findings) {
      out += "  " + f.toString() + "\n";
    }
  }
  if (requestUnsatisfiable()) {
    out += "VERDICT: the request's constraint can never be satisfied by the "
           "current pool.\n";
  } else if (rejectedByOwners()) {
    out += "VERDICT: suitable resources exist, but their owner policies "
           "exclude this request.\n";
  } else if (matches > 0) {
    out += "VERDICT: the request is matchable now.\n";
  }
  return out;
}

std::vector<std::size_t> findUnsatisfiableRequests(
    std::span<const classad::ClassAdPtr> requests,
    std::span<const classad::ClassAdPtr> pool,
    const classad::MatchAttributes& attrs) {
  std::vector<std::size_t> out;
  if (pool.empty()) return out;  // nothing to be unsatisfiable against
  // One indexed pool for the whole sweep: each request's statically
  // derived guards select the candidate superset, so a request that can
  // only ever match a handful of resources probes those instead of the
  // whole pool. Guards are necessary conditions, so a request whose
  // candidate set is empty is unsatisfiable without any evaluation.
  engine::PoolOptions poolOptions;
  poolOptions.attrs = attrs;
  poolOptions.buildIndex = true;
  const engine::PreparedPool prepared =
      engine::PreparedPool::fromAds(pool, poolOptions);
  const std::vector<engine::Slot>& slots = prepared.slots();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i]) continue;
    const classad::PreparedAd request =
        classad::PreparedAd::prepare(requests[i], attrs);
    const engine::GuardSet guards = engine::deriveGuards(request);
    if (guards.neverTrue) {  // statically impossible, pool irrelevant
      out.push_back(i);
      continue;
    }
    bool satisfiable = false;
    for (const std::uint32_t id :
         engine::selectCandidates(guards, prepared, /*useIndex=*/true)) {
      if (classad::permitsMatch(
              classad::evaluateConstraint(request, *slots[id].ad()))) {
        satisfiable = true;
        break;
      }
    }
    if (!satisfiable) out.push_back(i);
  }
  return out;
}

}  // namespace matchmaking
