// aggregation.h - ClassAd aggregation for group matching (Section 5).
//
// "Lists of classads representing resources and customers exhibit a high
// degree of regularity, which is manifest in two ways: structural
// regularity and value regularity. The former occurs when entities tend to
// publish attributes with the same names, and the latter occurs when groups
// of entities publish attributes with similar values. We are currently
// investigating techniques for exploiting this regularity, and
// automatically aggregating classads so that matches may be performed in
// groups. Group matching may be used to both boost matchmaking throughput
// and service co-allocation requests."
//
// The grouping is a pure optimization hint: every representative-level
// match is re-verified against the actual member before being issued (see
// Matchmaker::negotiateAggregated), so aggregation never changes the set of
// legal matches — only the number of candidate evaluations needed to find
// them (benchmarked in bench_e7_aggregation).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "classad/classad.h"

namespace matchmaking {

/// A group of ads that are identical up to identity attributes.
struct AdGroup {
  std::string key;                  ///< canonical text of the residual ad
  std::vector<std::size_t> members; ///< indices into the input span
  classad::ClassAdPtr representative;  ///< full ad of the first member
};

struct AggregationConfig {
  /// Attributes ignored when fingerprinting (identity and fast-churning
  /// state that policies conventionally do not gate on). Two ads equal
  /// after dropping these land in the same group.
  std::vector<std::string> identityAttributes = {
      "Name", "ContactAddress", "AuthorizationTicket", "Machine",
  };
};

/// Partitions `ads` into groups by structural + value equality of their
/// non-identity attributes. Groups preserve first-appearance order;
/// members within a group preserve input order. Null ads are skipped.
std::vector<AdGroup> groupAds(std::span<const classad::ClassAdPtr> ads,
                              const AggregationConfig& config = {});

/// Degree of regularity of an ad population: members in groups of size >1
/// divided by total (1.0 = perfectly regular, 0.0 = all distinct).
double regularity(std::span<const classad::ClassAdPtr> ads,
                  const AggregationConfig& config = {});

}  // namespace matchmaking
