// ad_store.h - The matchmaker's advertisement store.
//
// Section 4: "RAs and CAs periodically send classads to a Condor pool
// manager". Ads are soft state: each advertisement carries a lifetime and
// is refreshed periodically; an ad that is not refreshed expires and drops
// out of matchmaking (this is what makes the matchmaker stateless and
// crash-recoverable — Section 3's "the matchmaker is a stateless service,
// which simplifies recovery in case of failure").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classad/classad.h"
#include "matchmaker/engine/engine.h"

namespace matchmaking {

/// Simulation/wall time in seconds. The matchmaker itself has no clock; the
/// caller supplies the current time (the DES substrate in src/sim drives it).
using Time = double;

/// One stored advertisement.
struct StoredAd {
  std::string key;         ///< advertiser identity (contact address)
  classad::ClassAdPtr ad;  ///< the advertisement
  Time receivedAt = 0;     ///< when the current version arrived
  Time expiresAt = 0;      ///< receivedAt + lifetime
  std::uint64_t sequence = 0;  ///< monotone per-key update counter
};

/// A keyed store of soft-state advertisements with expiry. Updates replace
/// (same key, higher sequence); stale duplicates (lower-or-equal sequence)
/// are ignored, which makes the advertising protocol idempotent over a
/// network that may reorder or duplicate messages.
class AdStore {
 public:
  explicit AdStore(Time defaultLifetime = 300.0)
      : defaultLifetime_(defaultLifetime) {}

  /// A store with an attached prepared pool (engine/engine.h): every
  /// update/invalidate/expire is mirrored into the pool, so ads are
  /// prepared (and indexed / guarded, per `poolOptions`) incrementally as
  /// they arrive — the negotiation cycle then starts from the pool with
  /// zero per-cycle preparation.
  AdStore(Time defaultLifetime, engine::PoolOptions poolOptions)
      : defaultLifetime_(defaultLifetime),
        pool_(engine::PreparedPool(std::move(poolOptions))) {}

  /// Inserts or refreshes the ad for `key`. Returns false iff the update
  /// was stale (sequence not newer than the stored one).
  bool update(std::string_view key, classad::ClassAdPtr ad, Time now,
              std::uint64_t sequence,
              std::optional<Time> lifetime = std::nullopt);

  /// Explicit invalidation (the advertiser retracting its ad, e.g. an RA
  /// whose machine shut down cleanly). Returns false if unknown.
  bool invalidate(std::string_view key);

  /// Drops all ads whose lifetime elapsed before `now`; returns the number
  /// removed.
  std::size_t expire(Time now);

  /// All live ads (unexpired as of the last expire() call).
  std::vector<classad::ClassAdPtr> snapshot() const;

  /// Live ads together with their bookkeeping.
  std::vector<const StoredAd*> entries() const;

  const StoredAd* find(std::string_view key) const;

  std::size_t size() const noexcept { return ads_.size(); }
  bool empty() const noexcept { return ads_.empty(); }
  void clear() {
    ads_.clear();
    if (pool_.has_value()) pool_->clear();
  }

  /// The attached prepared pool, kept in lockstep with the store; nullptr
  /// when the store was constructed without pool options.
  const engine::PreparedPool* pool() const noexcept {
    return pool_.has_value() ? &*pool_ : nullptr;
  }

 private:
  Time defaultLifetime_;
  std::unordered_map<std::string, StoredAd> ads_;
  std::optional<engine::PreparedPool> pool_;
};

}  // namespace matchmaking
