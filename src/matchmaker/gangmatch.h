// gangmatch.h - Co-allocation via gang matching.
//
// Section 3.1: classads "can be arbitrarily nested, leading to a natural
// language for expressing resource aggregates or co-allocation requests";
// Section 5: "Group matching may be used to both boost matchmaking
// throughput and service co-allocation requests." This module implements
// the co-allocation half: a gang request is a classad whose `Requests`
// attribute is a list of nested request ads ("legs"), e.g.
//
//   [ Type = "Gang"; Owner = "raman"; ContactAddress = "ca://raman";
//     Requests = {
//       [ Label = "compute"; Memory = 64;
//         Constraint = other.Type == "Machine" &&
//                      other.Memory >= self.Memory;
//         Rank = other.Mips ],
//       [ Label = "tape";
//         Constraint = other.Type == "TapeDrive" &&
//                      other.Format == "DLT" ],
//     } ]
//
// A gang match assigns a DISTINCT resource to every leg such that each
// (leg, resource) pair matches bilaterally — all or nothing, the essence
// of co-allocation. Legs inherit the gang's identity attributes (Owner,
// ContactAddress, Type fallback "Job") so provider policies keyed on the
// customer keep working.
//
// The search is backtracking over legs in declaration order, trying each
// leg's candidates best-rank-first, with a configurable per-leg branching
// cap. It is exact for feasibility when the cap covers all candidates,
// and greedy-optimal per leg otherwise (documented trade-off: full
// optimal weighted matching is assignment-problem territory the paper
// does not ask for).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "classad/match.h"
#include "matchmaker/engine/engine.h"
#include "matchmaker/protocol.h"

namespace matchmaking {

/// One assigned leg of a gang match.
struct GangLeg {
  classad::ClassAdPtr legAd;      ///< the materialized leg request ad
  classad::ClassAdPtr resource;   ///< the resource assigned to it
  std::size_t resourceIndex = 0;  ///< index into the input span
  double legRank = 0.0;           ///< leg's Rank of the resource
  Ticket ticket = kNoTicket;      ///< resource's ticket, if advertised
};

struct GangMatch {
  std::vector<GangLeg> legs;  ///< one per request leg, in order
  double totalRank = 0.0;     ///< sum of leg ranks
};

struct GangMatchConfig {
  classad::MatchAttributes attrs;
  /// Attributes copied from the gang ad into each leg (unless the leg
  /// already defines them).
  std::vector<std::string> inheritedAttributes = {"Owner", "ContactAddress"};
  /// Candidates tried per leg before the search gives up on that branch
  /// (0 = unlimited; exponential worst case).
  std::size_t branchingCap = 16;
  /// Ticket attribute (as in the advertising protocol).
  std::string ticketAttr = "AuthorizationTicket";
};

class GangMatcher {
 public:
  explicit GangMatcher(GangMatchConfig config = {})
      : config_(std::move(config)) {}

  /// True iff `ad` is a gang request (has a `Requests` list of records).
  static bool isGangRequest(const classad::ClassAd& ad);

  /// Extracts and materializes the legs of a gang request (inheriting
  /// identity attributes). Empty if `ad` is not a gang request.
  std::vector<classad::ClassAdPtr> legsOf(const classad::ClassAd& gang) const;

  /// Finds an all-or-nothing assignment of distinct resources to the
  /// gang's legs; nullopt if no complete gang can be formed. `taken`
  /// (optional, same length as resources) marks resources already claimed
  /// this cycle; matched indices are marked taken on success.
  /// Implemented over a throwaway prepared pool (slot ids == span
  /// indices); the pool overload below is the hot path.
  std::optional<GangMatch> match(
      const classad::ClassAd& gang,
      std::span<const classad::ClassAdPtr> resources,
      std::vector<bool>* taken = nullptr) const;

  /// The same search over an incrementally maintained pool (the engine's
  /// hot path): each leg is prepared once, its guards select candidates
  /// through the pool's index, and GangLeg::resourceIndex is the pool
  /// slot id. `taken` is the slot-indexed set shared with
  /// Matchmaker::negotiate's pairwise pass.
  std::optional<GangMatch> match(const classad::ClassAd& gang,
                                 const engine::PreparedPool& resources,
                                 std::vector<char>* taken = nullptr) const;

 private:
  GangMatchConfig config_;
};

}  // namespace matchmaking
