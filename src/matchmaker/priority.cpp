#include "matchmaker/priority.h"

#include <algorithm>
#include <cmath>

namespace matchmaking {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double Accountant::decayedUsage(const Entry& e, Time now) const {
  if (now <= e.asOf) return e.usage;
  const double lambda = kLn2 / config_.usageHalflife;
  return e.usage * std::exp(-lambda * (now - e.asOf));
}

void Accountant::recordUsage(std::string_view user, double resourceSeconds,
                             Time now) {
  auto [it, inserted] = entries_.try_emplace(std::string(user));
  Entry& e = it->second;
  if (inserted) e.factor = config_.defaultFactor;
  e.usage = decayedUsage(e, now) + resourceSeconds;
  e.asOf = now;
  const std::string& group = groupOf(user);
  if (!group.empty()) {
    Entry& g = groupEntries_[group];
    g.usage = decayedUsage(g, now) + resourceSeconds;
    g.asOf = now;
  }
}

double Accountant::usage(std::string_view user, Time now) const {
  auto it = entries_.find(std::string(user));
  if (it == entries_.end()) return 0.0;
  return decayedUsage(it->second, now);
}

double Accountant::effectivePriority(std::string_view user, Time now) const {
  auto it = entries_.find(std::string(user));
  if (it == entries_.end()) return config_.minimumPriority;
  const Entry& e = it->second;
  // Normalize decayed resource-seconds into "machines continuously held":
  // holding N machines forever converges to usage N * halflife / ln 2, so
  // the steady-state priority of such a user is N (times their factor).
  const double held =
      decayedUsage(e, now) * kLn2 / config_.usageHalflife;
  return std::max(config_.minimumPriority, held * e.factor);
}

void Accountant::setFactor(std::string_view user, double factor) {
  Entry& e = entries_[std::string(user)];
  e.factor = factor;
}

void Accountant::setGroup(std::string_view user, std::string_view group) {
  if (group.empty()) {
    groupOf_.erase(std::string(user));
  } else {
    groupOf_[std::string(user)] = std::string(group);
  }
}

const std::string& Accountant::groupOf(std::string_view user) const {
  static const std::string kNone;
  auto it = groupOf_.find(std::string(user));
  return it == groupOf_.end() ? kNone : it->second;
}

double Accountant::groupUsage(std::string_view group, Time now) const {
  auto it = groupEntries_.find(std::string(group));
  if (it == groupEntries_.end()) return 0.0;
  return decayedUsage(it->second, now);
}

double Accountant::effectiveGroupPriority(std::string_view group,
                                          Time now) const {
  auto it = groupEntries_.find(std::string(group));
  if (it == groupEntries_.end()) return config_.minimumPriority;
  const double held =
      decayedUsage(it->second, now) * kLn2 / config_.usageHalflife;
  return std::max(config_.minimumPriority, held);
}

std::vector<std::pair<std::string, double>> Accountant::standings(
    Time now) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const auto& [user, entry] : entries_) {
    out.emplace_back(user, effectivePriority(user, now));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace matchmaking
