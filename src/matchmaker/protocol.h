// protocol.h - Message types of the matchmaking and claiming protocols
// (framework components 4 and 5), and the authorization tickets that travel
// through them.
//
// Section 3.2 / Figure 3: the matchmaker "invokes a matchmaking protocol to
// notify the two parties that were matched (Step 3) and sends them the
// matching ads"; the customer "then contacts the server directly, using a
// claiming protocol to establish a working relationship (Step 4)".
// Section 4: "The manager also gives the CA the authorization ticket
// supplied by the RA. The CA then performs the claiming protocol by
// contacting the RA and sending the authorization ticket."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "classad/classad.h"
#include "obs/trace.h"

namespace matchmaking {

/// A claim capability minted by a resource agent and handed to the matched
/// customer via the matchmaker. Stands in for the paper's cryptographic
/// session key: what matters to the protocol is the hand-off pattern, not
/// the cipher (see DESIGN.md, substitutions).
using Ticket = std::uint64_t;

constexpr Ticket kNoTicket = 0;

/// Renders/parses tickets for embedding in classads as strings (64-bit
/// values do not all fit in the classad integer range safely once other
/// tools treat them as doubles, so ads carry them as hex strings).
std::string ticketToString(Ticket t);
std::optional<Ticket> ticketFromString(std::string_view s);

/// A claim identity namespaced by its origin pool. With federation
/// (src/federation), resource ads flock between pools whose RAs mint
/// tickets independently — the bare 64-bit ticket is only unique within
/// one pool's seeding discipline. The pair (originPool, ticket) is
/// globally unique as long as pool names are; it renders as
/// "pool:hexticket" ("" pool renders as the bare hex, so single-pool
/// deployments and their logs are unchanged).
struct ClaimId {
  std::string originPool;
  Ticket ticket = kNoTicket;

  bool operator==(const ClaimId&) const = default;
};

std::string claimIdToString(const ClaimId& id);
std::optional<ClaimId> claimIdFromString(std::string_view s);

/// Salts a freshly drawn ticket with the pool identity so RAs in
/// different pools can never mint colliding ticket streams, even when
/// their deterministic seeds coincide (machines with equal names exist
/// in both pools — common with generated fleets). An empty pool name is
/// the identity: single-pool behaviour is bit-for-bit unchanged.
Ticket namespaceTicket(Ticket raw, std::string_view pool);

/// Step 1, Figure 3: an advertisement en route to the matchmaker.
struct Advertisement {
  classad::ClassAdPtr ad;
  std::uint64_t sequence = 0;  ///< advertiser's monotone update counter
  bool isRequest = false;      ///< customer (true) or resource (false)
  /// Store key under which the matchmaker files this ad. A CA advertising
  /// several queued jobs uses one key per job ("ca://user#17") while all
  /// of them share the CA's contact address. Empty = use the contact.
  std::string key;
};

/// Step 3, Figure 3: sent by the matchmaker to BOTH matched parties. Each
/// party receives the other's ad; the customer additionally receives the
/// resource's authorization ticket.
struct MatchNotification {
  classad::ClassAdPtr myAd;     ///< the recipient's ad as matched (possibly stale)
  classad::ClassAdPtr peerAd;   ///< the other party's ad
  std::string peerContact;      ///< where to run the claiming protocol
  Ticket ticket = kNoTicket;    ///< only meaningful for the customer copy
  /// Causal tracing context (docs/OBSERVABILITY.md): the request's trace
  /// and the matchmaker's notify span. Invalid (all-zero) = tracing off.
  obs::TraceContext trace;
};

/// Step 4, Figure 3: the customer's claim request, sent directly to the
/// resource (the matchmaker is not involved: end-to-end verification).
struct ClaimRequest {
  classad::ClassAdPtr requestAd;  ///< the customer's CURRENT ad
  Ticket ticket = kNoTicket;      ///< must equal the RA's outstanding ticket
  std::string customerContact;
  obs::TraceContext trace;  ///< forwarded from the MatchNotification
};

/// The resource's answer. On rejection, `reason` says which check failed —
/// the weak-consistency design makes rejection a normal outcome, not an
/// error ("claiming allows the provider and customer to verify their
/// constraints with respect to their current state").
struct ClaimResponse {
  bool accepted = false;
  std::string reason;
  /// Lease granted on the claim, in seconds. The customer must renew
  /// within this window (heartbeats) or the resource tears the claim
  /// down unilaterally. 0 = no lease (the pre-lease protocol): the
  /// claim lives until an explicit release, however long that takes.
  double leaseDuration = 0.0;
  obs::TraceContext trace;  ///< the RA's claim-verdict span
};

/// Relinquish/eviction notice ending a claim (either direction): the CA
/// releasing a resource it no longer needs, or the RA evicting/completing
/// the customer's work. Carries enough for the peer to account the
/// outcome ("possibly negotiate further terms ... cooperate to perform the
/// desired service" — the claim-level protocol is between the principals
/// and opaque to the matchmaker).
struct ClaimRelease {
  Ticket ticket = kNoTicket;
  std::string reason;
  std::uint64_t jobId = 0;
  double cpuSecondsUsed = 0.0;  ///< work performed during this claim
  bool completed = false;       ///< job ran to completion
  obs::TraceContext trace;
};

/// Lease renewal, exchanged directly between the claim principals (the
/// matchmaker never sees one: leases are end-to-end state, §3.2). The
/// customer sends ack=false beats; the resource answers with ack=true
/// echoing the sequence number so the customer can measure RTT and
/// detect a dead peer by consecutive unacked beats.
struct Heartbeat {
  Ticket ticket = kNoTicket;
  std::uint64_t jobId = 0;
  std::uint64_t sequence = 0;
  bool ack = false;
  obs::TraceContext trace;  ///< the claim's trace, for lease.renew spans
};

/// The resource's verdict that a lease no longer exists: sent in reply
/// to a heartbeat carrying an unknown or stale ticket, and understood
/// by the customer as "requeue the job now" without waiting out the
/// remaining miss budget.
struct LeaseExpired {
  Ticket ticket = kNoTicket;
  std::uint64_t jobId = 0;
  std::string reason;
  obs::TraceContext trace;
};

}  // namespace matchmaking
