#include "matchmaker/gangmatch.h"

#include <algorithm>

namespace matchmaking {

namespace {
constexpr const char* kRequestsAttr = "Requests";
}

bool GangMatcher::isGangRequest(const classad::ClassAd& ad) {
  const classad::ExprPtr* requests = ad.lookup(kRequestsAttr);
  if (requests == nullptr) return false;
  const classad::Value v = ad.evaluateAttr(kRequestsAttr);
  if (!v.isList() || v.asList()->empty()) return false;
  for (const classad::Value& elem : *v.asList()) {
    if (!elem.isRecord()) return false;
  }
  return true;
}

std::vector<classad::ClassAdPtr> GangMatcher::legsOf(
    const classad::ClassAd& gang) const {
  std::vector<classad::ClassAdPtr> legs;
  const classad::Value v = gang.evaluateAttr(kRequestsAttr);
  if (!v.isList()) return legs;
  for (const classad::Value& elem : *v.asList()) {
    if (!elem.isRecord()) return {};
    classad::ClassAd leg = *elem.asRecord();
    if (!leg.contains("Type")) leg.set("Type", "Job");
    for (const std::string& name : config_.inheritedAttributes) {
      if (!leg.contains(name)) {
        if (const classad::ExprPtr* bound = gang.lookup(name)) {
          leg.insert(name, *bound);
        }
      }
    }
    legs.push_back(classad::makeShared(std::move(leg)));
  }
  return legs;
}

namespace {

struct Candidate {
  std::size_t resourceIndex;
  double legRank;
  double resourceRank;
};

/// Depth-first all-or-nothing assignment. `chosen` holds resource indices
/// per completed leg.
bool assign(std::size_t legIdx,
            const std::vector<std::vector<Candidate>>& candidates,
            std::vector<bool>& used, std::vector<std::size_t>& chosen,
            std::size_t branchingCap) {
  if (legIdx == candidates.size()) return true;
  std::size_t tried = 0;
  for (const Candidate& cand : candidates[legIdx]) {
    if (used[cand.resourceIndex]) continue;
    if (branchingCap != 0 && tried++ >= branchingCap) break;
    used[cand.resourceIndex] = true;
    chosen[legIdx] = cand.resourceIndex;
    if (assign(legIdx + 1, candidates, used, chosen, branchingCap)) {
      return true;
    }
    used[cand.resourceIndex] = false;
  }
  return false;
}

}  // namespace

std::optional<GangMatch> GangMatcher::match(
    const classad::ClassAd& gang,
    std::span<const classad::ClassAdPtr> resources,
    std::vector<bool>* taken) const {
  engine::PoolOptions options;
  options.attrs = config_.attrs;
  options.buildIndex = true;
  const engine::PreparedPool pool =
      engine::PreparedPool::fromAds(resources, options);
  // Slot ids equal span indices, so the taken sets line up one-to-one.
  std::vector<char> slotTaken;
  if (taken != nullptr) slotTaken.assign(taken->begin(), taken->end());
  const std::optional<GangMatch> result =
      match(gang, pool, taken != nullptr ? &slotTaken : nullptr);
  if (taken != nullptr && result.has_value()) {
    for (std::size_t i = 0; i < taken->size(); ++i) {
      (*taken)[i] = slotTaken[i] != 0;
    }
  }
  return result;
}

std::optional<GangMatch> GangMatcher::match(const classad::ClassAd& gang,
                                            const engine::PreparedPool& resources,
                                            std::vector<char>* taken) const {
  const std::vector<classad::ClassAdPtr> legs = legsOf(gang);
  if (legs.empty()) return std::nullopt;
  const std::vector<engine::Slot>& slots = resources.slots();

  // Per-leg candidate lists, best-rank-first (leg rank, then resource
  // rank, then slot id for determinism). Each leg is prepared once; its
  // guards select a candidate superset through the pool's index before
  // the full bilateral evaluation.
  std::vector<std::vector<Candidate>> candidates(legs.size());
  for (std::size_t l = 0; l < legs.size(); ++l) {
    const classad::PreparedAd leg =
        classad::PreparedAd::prepare(legs[l], config_.attrs);
    const engine::GuardSet guards = engine::deriveGuards(leg);
    if (guards.neverTrue) return std::nullopt;  // leg unsatisfiable
    const std::vector<std::uint32_t> ids =
        engine::selectCandidates(guards, resources, /*useIndex=*/true);
    for (const std::uint32_t r : ids) {
      if (taken != nullptr && (*taken)[r] != 0) continue;
      const classad::MatchAnalysis m =
          classad::analyzeMatch(leg, slots[r].prepared);
      if (!m.matched) continue;
      candidates[l].push_back({r, m.requestRank, m.resourceRank});
    }
    if (candidates[l].empty()) return std::nullopt;  // leg unsatisfiable
    std::sort(candidates[l].begin(), candidates[l].end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.legRank != b.legRank) return a.legRank > b.legRank;
                if (a.resourceRank != b.resourceRank) {
                  return a.resourceRank > b.resourceRank;
                }
                return a.resourceIndex < b.resourceIndex;
              });
  }

  // Search scarcest-first ordering would prune better, but declaration
  // order keeps the semantics predictable for users; the branching cap
  // bounds the worst case.
  std::vector<bool> used(slots.size(), false);
  if (taken != nullptr) {
    for (std::size_t i = 0; i < used.size() && i < taken->size(); ++i) {
      used[i] = (*taken)[i] != 0;
    }
  }
  std::vector<std::size_t> chosen(legs.size());
  if (!assign(0, candidates, used, chosen, config_.branchingCap)) {
    return std::nullopt;
  }

  GangMatch out;
  out.legs.reserve(legs.size());
  for (std::size_t l = 0; l < legs.size(); ++l) {
    GangLeg leg;
    leg.legAd = legs[l];
    leg.resourceIndex = chosen[l];
    leg.resource = slots[chosen[l]].ad();
    for (const Candidate& cand : candidates[l]) {
      if (cand.resourceIndex == chosen[l]) {
        leg.legRank = cand.legRank;
        break;
      }
    }
    if (const auto t = leg.resource->getString(config_.ticketAttr)) {
      leg.ticket = ticketFromString(*t).value_or(kNoTicket);
    }
    out.totalRank += leg.legRank;
    out.legs.push_back(std::move(leg));
    if (taken != nullptr) (*taken)[chosen[l]] = 1;
  }
  return out;
}

}  // namespace matchmaking
