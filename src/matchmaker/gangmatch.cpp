#include "matchmaker/gangmatch.h"

#include <algorithm>

namespace matchmaking {

namespace {
constexpr const char* kRequestsAttr = "Requests";
}

bool GangMatcher::isGangRequest(const classad::ClassAd& ad) {
  const classad::ExprPtr* requests = ad.lookup(kRequestsAttr);
  if (requests == nullptr) return false;
  const classad::Value v = ad.evaluateAttr(kRequestsAttr);
  if (!v.isList() || v.asList()->empty()) return false;
  for (const classad::Value& elem : *v.asList()) {
    if (!elem.isRecord()) return false;
  }
  return true;
}

std::vector<classad::ClassAdPtr> GangMatcher::legsOf(
    const classad::ClassAd& gang) const {
  std::vector<classad::ClassAdPtr> legs;
  const classad::Value v = gang.evaluateAttr(kRequestsAttr);
  if (!v.isList()) return legs;
  for (const classad::Value& elem : *v.asList()) {
    if (!elem.isRecord()) return {};
    classad::ClassAd leg = *elem.asRecord();
    if (!leg.contains("Type")) leg.set("Type", "Job");
    for (const std::string& name : config_.inheritedAttributes) {
      if (!leg.contains(name)) {
        if (const classad::ExprPtr* bound = gang.lookup(name)) {
          leg.insert(name, *bound);
        }
      }
    }
    legs.push_back(classad::makeShared(std::move(leg)));
  }
  return legs;
}

namespace {

struct Candidate {
  std::size_t resourceIndex;
  double legRank;
  double resourceRank;
};

/// Depth-first all-or-nothing assignment. `chosen` holds resource indices
/// per completed leg.
bool assign(std::size_t legIdx,
            const std::vector<std::vector<Candidate>>& candidates,
            std::vector<bool>& used, std::vector<std::size_t>& chosen,
            std::size_t branchingCap) {
  if (legIdx == candidates.size()) return true;
  std::size_t tried = 0;
  for (const Candidate& cand : candidates[legIdx]) {
    if (used[cand.resourceIndex]) continue;
    if (branchingCap != 0 && tried++ >= branchingCap) break;
    used[cand.resourceIndex] = true;
    chosen[legIdx] = cand.resourceIndex;
    if (assign(legIdx + 1, candidates, used, chosen, branchingCap)) {
      return true;
    }
    used[cand.resourceIndex] = false;
  }
  return false;
}

}  // namespace

std::optional<GangMatch> GangMatcher::match(
    const classad::ClassAd& gang,
    std::span<const classad::ClassAdPtr> resources,
    std::vector<bool>* taken) const {
  const std::vector<classad::ClassAdPtr> legs = legsOf(gang);
  if (legs.empty()) return std::nullopt;

  // Per-leg candidate lists, best-rank-first (leg rank, then resource
  // rank, then index for determinism).
  std::vector<std::vector<Candidate>> candidates(legs.size());
  for (std::size_t l = 0; l < legs.size(); ++l) {
    for (std::size_t r = 0; r < resources.size(); ++r) {
      if (!resources[r]) continue;
      if (taken != nullptr && (*taken)[r]) continue;
      const classad::MatchAnalysis m =
          classad::analyzeMatch(*legs[l], *resources[r], config_.attrs);
      if (!m.matched) continue;
      candidates[l].push_back({r, m.requestRank, m.resourceRank});
    }
    if (candidates[l].empty()) return std::nullopt;  // leg unsatisfiable
    std::sort(candidates[l].begin(), candidates[l].end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.legRank != b.legRank) return a.legRank > b.legRank;
                if (a.resourceRank != b.resourceRank) {
                  return a.resourceRank > b.resourceRank;
                }
                return a.resourceIndex < b.resourceIndex;
              });
  }

  // Search scarcest-first ordering would prune better, but declaration
  // order keeps the semantics predictable for users; the branching cap
  // bounds the worst case.
  std::vector<bool> used(resources.size(), false);
  if (taken != nullptr) used = *taken;
  std::vector<std::size_t> chosen(legs.size());
  if (!assign(0, candidates, used, chosen, config_.branchingCap)) {
    return std::nullopt;
  }

  GangMatch out;
  out.legs.reserve(legs.size());
  for (std::size_t l = 0; l < legs.size(); ++l) {
    GangLeg leg;
    leg.legAd = legs[l];
    leg.resourceIndex = chosen[l];
    leg.resource = resources[chosen[l]];
    for (const Candidate& cand : candidates[l]) {
      if (cand.resourceIndex == chosen[l]) {
        leg.legRank = cand.legRank;
        break;
      }
    }
    if (const auto t = leg.resource->getString(config_.ticketAttr)) {
      leg.ticket = ticketFromString(*t).value_or(kNoTicket);
    }
    out.totalRank += leg.legRank;
    out.legs.push_back(std::move(leg));
    if (taken != nullptr) (*taken)[chosen[l]] = true;
  }
  return out;
}

}  // namespace matchmaking
