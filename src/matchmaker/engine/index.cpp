#include "matchmaker/engine/index.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "classad/value.h"

namespace matchmaking::engine {

namespace {

using classad::analysis::Interval;

using NumberPosting = std::pair<double, std::uint32_t>;

std::vector<NumberPosting>::const_iterator numberRangeBegin(
    const std::vector<NumberPosting>& postings, const Interval& r) {
  if (r.lo == -Interval::kInf) return postings.begin();
  if (r.loOpen) {
    return std::upper_bound(
        postings.begin(), postings.end(), r.lo,
        [](double v, const NumberPosting& p) { return v < p.first; });
  }
  return std::lower_bound(
      postings.begin(), postings.end(), r.lo,
      [](const NumberPosting& p, double v) { return p.first < v; });
}

std::vector<NumberPosting>::const_iterator numberRangeEnd(
    const std::vector<NumberPosting>& postings, const Interval& r) {
  if (r.hi == Interval::kInf) return postings.end();
  if (r.hiOpen) {
    return std::lower_bound(
        postings.begin(), postings.end(), r.hi,
        [](const NumberPosting& p, double v) { return p.first < v; });
  }
  return std::upper_bound(
      postings.begin(), postings.end(), r.hi,
      [](double v, const NumberPosting& p) { return v < p.first; });
}

}  // namespace

std::size_t Bitset::count() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t word : words_) {
    n += static_cast<std::size_t>(std::popcount(word));
  }
  return n;
}

void CandidateIndex::add(std::uint32_t slot, const classad::PreparedAd& ad) {
  for (const std::string& name : ad.candidateDependentAttrs()) {
    byAttr_[name].otherDep.push_back(slot);
    ++postings_;
  }
  for (const classad::PreparedAd::OwnValue& own : ad.ownValues()) {
    const classad::Value& v = own.value;
    if (v.isString()) {
      byAttr_[own.name]
          .byString[classad::toLowerCopy(v.asString())]
          .push_back(slot);
      ++postings_;
      continue;
    }
    double x = 0.0;
    if (v.isBoolean()) {
      x = v.asBoolean() ? 1.0 : 0.0;
    } else if (v.isNumber()) {
      x = v.toReal();
      // NaN satisfies no comparison (compareValues: Error), so an
      // unindexed NaN is excluded exactly as evaluation would.
      if (std::isnan(x)) continue;
    } else {
      continue;  // lists / records: strict comparisons never true
    }
    Postings& p = byAttr_[own.name];
    if (!p.byNumber.empty() && x < p.byNumber.back().first) {
      p.numberSorted = false;
    }
    p.byNumber.emplace_back(x, slot);
    ++postings_;
  }
}

void CandidateIndex::clear() {
  byAttr_.clear();
  postings_ = 0;
}

void CandidateIndex::applyGuard(const Guard& guard, Bitset* mask) const {
  const auto it = byAttr_.find(guard.attr);
  // No slot defines the attribute at all: a strict guard cannot be
  // satisfied by any of them, so the (empty) mask is exactly right.
  if (it == byAttr_.end()) return;
  const Postings& p = it->second;
  for (const std::uint32_t s : p.otherDep) mask->set(s);

  const GuardDomain& d = guard.domain;
  if (d.stringAllowed) {
    if (d.anyString) {
      for (const auto& [value, slots] : p.byString) {
        for (const std::uint32_t s : slots) mask->set(s);
      }
    } else {
      for (const std::string& v : d.strings) {
        if (const auto bucket = p.byString.find(v);
            bucket != p.byString.end()) {
          for (const std::uint32_t s : bucket->second) mask->set(s);
        }
      }
    }
  }
  if (d.numberAllowed && !d.number.empty() && !p.byNumber.empty()) {
    if (!p.numberSorted) {
      std::sort(p.byNumber.begin(), p.byNumber.end());
      p.numberSorted = true;
    }
    const auto first = numberRangeBegin(p.byNumber, d.number);
    const auto last = numberRangeEnd(p.byNumber, d.number);
    for (auto iter = first; iter != last; ++iter) mask->set(iter->second);
  }
}

bool CandidateIndex::select(const GuardSet& guards, Bitset* out) const {
  if (guards.guards.empty()) return false;
  for (const Guard& g : guards.guards) {
    Bitset mask(out->size());
    applyGuard(g, &mask);
    out->andWith(mask);
  }
  return true;
}

}  // namespace matchmaking::engine
