#include "matchmaker/engine/engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "matchmaker/gangmatch.h"

namespace matchmaking::engine {

PreparedPool PreparedPool::fromAds(std::span<const classad::ClassAdPtr> ads,
                                   PoolOptions options) {
  PreparedPool pool(std::move(options));
  pool.slots_.reserve(ads.size());
  std::uint64_t sequence = 0;
  for (const classad::ClassAdPtr& ad : ads) {
    pool.appendSlot(std::string(), ad, ++sequence);
  }
  return pool;
}

std::uint32_t PreparedPool::appendSlot(std::string key, classad::ClassAdPtr ad,
                                       std::uint64_t sequence) {
  const auto id = static_cast<std::uint32_t>(slots_.size());
  Slot slot;
  slot.key = std::move(key);
  slot.sequence = sequence;
  slot.prepared = classad::PreparedAd::prepare(std::move(ad), options_.attrs);
  if (slot.prepared.valid()) {
    slot.live = true;
    const classad::ClassAd& owned = *slot.prepared.ad();
    if (const auto rank = owned.getNumber(options_.currentRankAttr)) {
      slot.claimed = true;
      slot.currentRank = *rank;
    }
    if (options_.deriveGuards) {
      slot.guards = deriveGuards(slot.prepared);
      guardsElided_ += slot.guards.elided;
    }
    if (options_.detectGangs) slot.isGang = GangMatcher::isGangRequest(owned);
  }
  slots_.push_back(std::move(slot));
  if (slots_.back().live) {
    ++live_;
    if (options_.buildIndex) index_.add(id, slots_.back().prepared);
  }
  return id;
}

std::uint32_t PreparedPool::upsert(std::string_view key, classad::ClassAdPtr ad,
                                   std::uint64_t sequence) {
  std::string k(key);
  if (const auto it = byKey_.find(k); it != byKey_.end()) {
    Slot& old = slots_[it->second];
    if (old.live) {
      old.live = false;
      --live_;
    }
  }
  const std::uint32_t id = appendSlot(k, std::move(ad), sequence);
  byKey_[k] = id;
  maybeCompact();
  return byKey_.at(k);
}

bool PreparedPool::erase(std::string_view key) {
  const auto it = byKey_.find(std::string(key));
  if (it == byKey_.end()) return false;
  Slot& slot = slots_[it->second];
  if (slot.live) {
    slot.live = false;
    --live_;
  }
  byKey_.erase(it);
  maybeCompact();
  return true;
}

void PreparedPool::clear() {
  slots_.clear();
  byKey_.clear();
  index_.clear();
  live_ = 0;
}

const Slot* PreparedPool::find(std::string_view key) const {
  const auto it = byKey_.find(std::string(key));
  if (it == byKey_.end()) return nullptr;
  return &slots_[it->second];
}

Bitset PreparedPool::liveMask() const {
  Bitset mask(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) mask.set(i);
  }
  return mask;
}

void PreparedPool::maybeCompact() {
  const std::size_t dead = deadCount();
  if (dead > 32 && dead > live_ / 2) compact();
}

void PreparedPool::compact() {
  if (deadCount() == 0) return;
  std::vector<Slot> survivors;
  survivors.reserve(live_);
  for (Slot& slot : slots_) {
    if (slot.live) survivors.push_back(std::move(slot));
  }
  slots_ = std::move(survivors);
  byKey_.clear();
  index_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].key.empty()) byKey_[slots_[i].key] = i;
    if (options_.buildIndex) index_.add(i, slots_[i].prepared);
  }
  ++rebuilds_;
}

std::vector<std::uint32_t> selectCandidates(const GuardSet& guards,
                                            const PreparedPool& pool,
                                            bool useIndex, ScanStats* stats) {
  Bitset admitted = pool.liveMask();
  bool indexed = false;
  if (useIndex && pool.hasIndex()) {
    indexed = pool.index().select(guards, &admitted);
  }
  std::vector<std::uint32_t> ids;
  ids.reserve(pool.liveCount());
  admitted.forEach(
      [&ids](std::size_t i) { ids.push_back(static_cast<std::uint32_t>(i)); });
  if (stats != nullptr) {
    if (indexed) {
      ++stats->indexedSelections;
      stats->pruned += pool.liveCount() - ids.size();
    } else {
      ++stats->fullScans;
    }
  }
  return ids;
}

classad::MatchAnalysis MatchEngine::analyzePair(
    const classad::PreparedAd& request,
    const classad::PreparedAd& resource) const {
  if (config_.bilateral) return classad::analyzeMatch(request, resource);
  classad::MatchAnalysis one;
  one.requestSide = classad::evaluateConstraint(request, *resource.ad());
  one.resourceSide = classad::ConstraintResult::Missing;
  one.matched = classad::permitsMatch(one.requestSide);
  if (one.matched) {
    one.requestRank = classad::evaluateRank(request, *resource.ad());
    one.resourceRank = classad::evaluateRank(resource, *request.ad());
  }
  return one;
}

BestCandidate MatchEngine::scanIds(const classad::PreparedAd& request,
                                   const PreparedPool& resources,
                                   std::span<const std::uint32_t> ids,
                                   const std::vector<char>& taken,
                                   std::size_t& evaluations) const {
  BestCandidate best;
  const std::vector<Slot>& slots = resources.slots();
  for (const std::uint32_t id : ids) {
    if (!taken.empty() && taken[id] != 0) continue;
    const Slot& slot = slots[id];
    ++evaluations;
    const classad::MatchAnalysis m = analyzePair(request, slot.prepared);
    if (!m.matched) continue;
    // Preemption gate: a claimed resource only accepts customers it ranks
    // strictly above its current one.
    if (slot.claimed && !(m.resourceRank > slot.currentRank)) continue;
    if (best.improvedBy(m.requestRank, m.resourceRank)) {
      best.slot = id;
      best.requestRank = m.requestRank;
      best.resourceRank = m.resourceRank;
      best.preempting = slot.claimed;
      best.found = true;
    }
  }
  return best;
}

BestCandidate MatchEngine::bestFor(const classad::PreparedAd& request,
                                   const GuardSet& guards,
                                   const PreparedPool& resources,
                                   const std::vector<char>& taken,
                                   ScanStats* stats) const {
  BestCandidate best;
  if (!request.valid()) return best;
  if (guards.neverTrue) {
    if (stats != nullptr) ++stats->staticSkips;
    return best;
  }
  const std::vector<std::uint32_t> ids =
      selectCandidates(guards, resources, config_.useIndex, stats);

  std::size_t evaluations = 0;
  const std::size_t threshold =
      std::max<std::size_t>(std::size_t{1}, config_.parallelScanThreshold);
  const std::size_t workers =
      std::min<std::size_t>(std::max(1U, config_.scanThreads),
                            (ids.size() + threshold - 1) / threshold);
  if (workers <= 1) {
    best = scanIds(request, resources, ids, taken, evaluations);
  } else {
    // Deterministic parallel scan: each worker owns a contiguous range of
    // the ascending candidate ids and keeps its FIRST best; merging the
    // per-range winners in ascending order reproduces the serial scan's
    // first-best-wins tie-breaking exactly (expression trees are
    // immutable, so concurrent evaluation needs no synchronization).
    const std::size_t chunk = (ids.size() + workers - 1) / workers;
    std::vector<BestCandidate> winners(workers);
    std::vector<std::size_t> counts(workers, 0);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(ids.size(), lo + chunk);
      threads.emplace_back([&, w, lo, hi] {
        winners[w] = scanIds(request, resources,
                             std::span(ids).subspan(lo, hi - lo), taken,
                             counts[w]);
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t w = 0; w < workers; ++w) {
      evaluations += counts[w];
      const BestCandidate& r = winners[w];
      if (r.found && best.improvedBy(r.requestRank, r.resourceRank)) {
        best = r;
      }
    }
  }
  if (stats != nullptr) stats->evaluated += evaluations;
  return best;
}

std::vector<classad::ClassAdPtr> filterAds(
    std::span<const classad::ClassAdPtr> ads, const classad::Query& query,
    std::span<const std::string> projection) {
  std::vector<classad::ClassAdPtr> out;
  for (const classad::ClassAdPtr& ad : ads) {
    if (ad == nullptr || !query.matches(*ad)) continue;
    if (projection.empty()) {
      out.push_back(ad);
      continue;
    }
    classad::ClassAd projected;
    for (const std::string& name : projection) {
      if (const auto* expr = ad->lookup(name)) projected.insert(name, *expr);
    }
    out.push_back(classad::makeShared(std::move(projected)));
  }
  return out;
}

}  // namespace matchmaking::engine
