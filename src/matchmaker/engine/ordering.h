// ordering.h - THE Section 3.2 candidate ordering, in one place.
//
// "Rank expressions are used as goodness metrics to identify the more
// desirable among the compatible matches": a candidate is better when the
// REQUEST ranks it strictly higher, ties broken by the RESOURCE's rank of
// the request, remaining ties broken by slot id (first wins) so every
// consumer is deterministic. The MatchEngine's bestFor scan, the
// aggregation representative sort, and every negotiation policy
// (src/matchmaker/policy) share these definitions — the ordering cannot
// drift between consumers because there is only one.
#pragma once

#include <cstdint>

namespace matchmaking::engine {

/// True iff a candidate with ranks (newReq, newRes) beats the incumbent
/// (bestReq, bestRes) under the Section 3.2 ordering. Equal ranks do NOT
/// improve: the earlier candidate keeps winning, which is what makes the
/// serial scan, the chunked parallel scan, and the sorted policies agree.
constexpr bool rankOrderImproves(double newReq, double newRes, double bestReq,
                                 double bestRes) noexcept {
  if (newReq != bestReq) return newReq > bestReq;
  return newRes > bestRes;
}

/// One scored candidate, as the policies and the aggregation pass carry
/// it around between scoring and selection.
struct RankedCandidate {
  double requestRank = 0.0;
  double resourceRank = 0.0;
  std::uint32_t slot = 0;  ///< resource slot id (ascending = arrival order)
};

/// Strict weak ordering that sorts candidates best-first: higher request
/// rank, then higher resource rank, then LOWER slot id — sorting with it
/// and taking the front is exactly what the bestFor scan computes.
struct RankOrderBestFirst {
  constexpr bool operator()(const RankedCandidate& a,
                            const RankedCandidate& b) const noexcept {
    if (a.requestRank != b.requestRank) return a.requestRank > b.requestRank;
    if (a.resourceRank != b.resourceRank) {
      return a.resourceRank > b.resourceRank;
    }
    return a.slot < b.slot;
  }
};

}  // namespace matchmaking::engine
