// engine.h - The MatchEngine: the ONE negotiation hot path.
//
// Section 3.2's matchmaking algorithm used to be implemented twice (the
// simulator's PoolManager and the live matchmakerd each ran their own
// O(requests x resources) scan) and re-resolved Constraint/Requirements
// per pair. This module unifies all of it:
//
//   PreparedPool  - keyed soft-state slots of PreparedAds (constraint +
//                   rank flattened once per ad revision), with optional
//                   per-request guard derivation (engine/guards.h) and an
//                   optional incremental candidate index (engine/index.h).
//                   Slots are immutable once created: an update appends a
//                   fresh slot and tombstones the old one, so index
//                   postings never dangle; compaction rebuilds when the
//                   dead fraction grows.
//   MatchEngine   - the per-request candidate scan: static neverTrue
//                   skip, index-assisted candidate selection, then the
//                   full (bilateral or one-sided) evaluation over the
//                   survivors with the Section 3.2 rank ordering and the
//                   preemption gate. Deterministic serial and parallel
//                   paths, bit-identical to the naive full scan (the
//                   selection is a proven superset; see guards.h and
//                   docs/ENGINE.md).
//
// Consumers: Matchmaker::negotiate (sim + live negotiation cycles),
// GangMatcher (per-leg candidate lists), matchmaking::diagnose, and the
// Query protocol's one-way filter.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classad/match.h"
#include "classad/prepared.h"
#include "classad/query.h"
#include "matchmaker/engine/guards.h"
#include "matchmaker/engine/index.h"
#include "matchmaker/engine/ordering.h"

namespace matchmaking::engine {

struct PoolOptions {
  classad::MatchAttributes attrs;
  /// Resource-side: ads carrying this numeric attribute are "claimed"
  /// and only preemptible by strictly higher resource rank.
  std::string currentRankAttr = "CurrentRank";
  /// Maintain the candidate index over this pool's slots (resource
  /// pools).
  bool buildIndex = false;
  /// Derive admission guards from each ad's constraint (request pools).
  bool deriveGuards = false;
  /// Classify gang (co-allocation) requests at insert time so the
  /// negotiation cycle can split them without re-inspecting ads.
  bool detectGangs = false;
};

/// One prepared advertisement in a pool. Everything the hot path needs
/// is computed exactly once, when the ad (revision) arrives.
struct Slot {
  std::string key;
  std::uint64_t sequence = 0;
  classad::PreparedAd prepared;
  GuardSet guards;               ///< when options.deriveGuards
  bool claimed = false;          ///< advertised a CurrentRank (busy)
  double currentRank = 0.0;      ///< rank of its current customer
  bool isGang = false;           ///< when options.detectGangs
  bool live = false;             ///< false = tombstone awaiting compaction

  const classad::ClassAdPtr& ad() const noexcept { return prepared.ad(); }
};

/// A keyed pool of prepared ads with append-only slot ids. Mirrors the
/// AdStore's contents (AdStore forwards update/invalidate/expire), or is
/// built ad hoc from a span for the stateless negotiate() entry point.
class PreparedPool {
 public:
  PreparedPool() = default;
  explicit PreparedPool(PoolOptions options) : options_(std::move(options)) {}

  /// Builds a throwaway pool whose slot ids equal the span indices
  /// (null ads become dead slots, preserving alignment).
  static PreparedPool fromAds(std::span<const classad::ClassAdPtr> ads,
                              PoolOptions options);

  /// Inserts or replaces the ad for `key` (the previous revision's slot
  /// is tombstoned). Returns the new slot id — valid until the next
  /// mutation (compaction renumbers).
  std::uint32_t upsert(std::string_view key, classad::ClassAdPtr ad,
                       std::uint64_t sequence);
  bool erase(std::string_view key);
  void clear();

  const PoolOptions& options() const noexcept { return options_; }
  const std::vector<Slot>& slots() const noexcept { return slots_; }
  const Slot* find(std::string_view key) const;
  std::size_t liveCount() const noexcept { return live_; }
  std::size_t deadCount() const noexcept { return slots_.size() - live_; }
  Bitset liveMask() const;

  bool hasIndex() const noexcept { return options_.buildIndex; }
  const CandidateIndex& index() const noexcept { return index_; }
  /// Times the index was rebuilt from scratch (compactions).
  std::size_t rebuilds() const noexcept { return rebuilds_; }
  /// Cumulative conjuncts elided as redundant across every guard
  /// derivation this pool has performed (the MatchGuardsElided counter).
  std::size_t guardsElided() const noexcept { return guardsElided_; }

  /// Drops tombstones, renumbering slots (relative order preserved) and
  /// rebuilding the index. Called automatically when tombstones pile up.
  void compact();

 private:
  std::uint32_t appendSlot(std::string key, classad::ClassAdPtr ad,
                           std::uint64_t sequence);
  void maybeCompact();

  PoolOptions options_;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, std::uint32_t> byKey_;
  CandidateIndex index_;
  std::size_t live_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t guardsElided_ = 0;
};

/// Scan instrumentation, accumulated across the requests of one cycle.
struct ScanStats {
  std::size_t evaluated = 0;   ///< full pair evaluations performed
  std::size_t pruned = 0;      ///< live candidates the index skipped
  std::size_t indexedSelections = 0;  ///< scans answered via the index
  std::size_t fullScans = 0;          ///< scans that fell back to O(n)
  std::size_t staticSkips = 0;  ///< requests skipped as never-true
};

/// Winner of one request's candidate scan, under Section 3.2's ordering
/// (engine/ordering.h): highest request rank, then highest resource rank,
/// then first in slot order (deterministic).
struct BestCandidate {
  std::uint32_t slot = 0;
  double requestRank = -std::numeric_limits<double>::infinity();
  double resourceRank = -std::numeric_limits<double>::infinity();
  bool preempting = false;
  bool found = false;

  bool improvedBy(double reqRank, double resRank) const noexcept {
    if (!found) return true;
    return rankOrderImproves(reqRank, resRank, requestRank, resourceRank);
  }
};

/// Candidate slot ids (ascending) admitted by `guards` over the pool's
/// live slots: an index-assisted superset selection when possible, all
/// live slots otherwise. `neverTrue` guard sets must be handled by the
/// caller (this function selects, it does not decide).
std::vector<std::uint32_t> selectCandidates(const GuardSet& guards,
                                            const PreparedPool& pool,
                                            bool useIndex,
                                            ScanStats* stats = nullptr);

struct EngineConfig {
  /// Bilateral matching (the paper's design); false = the E4 one-sided
  /// ablation (resource constraints ignored, both ranks still evaluated).
  bool bilateral = true;
  /// Index-assisted candidate selection; false = always full scan.
  bool useIndex = true;
  /// Worker threads for the per-request scan (1 = serial); results are
  /// bit-identical to the serial scan.
  unsigned scanThreads = 1;
  /// Candidate sets smaller than this are scanned serially.
  std::size_t parallelScanThreshold = 512;
};

class MatchEngine {
 public:
  explicit MatchEngine(EngineConfig config = {}) : config_(config) {}

  const EngineConfig& config() const noexcept { return config_; }

  /// Two-sided (or one-sided, per config) analysis of one pair — the
  /// engine's unit of work.
  classad::MatchAnalysis analyzePair(const classad::PreparedAd& request,
                                     const classad::PreparedAd& resource) const;

  /// Finds the best open resource for `request`: neverTrue static skip,
  /// candidate selection, then full evaluation with the preemption gate.
  /// `taken` (slot-indexed, may be empty = none taken) marks resources
  /// already matched this cycle.
  BestCandidate bestFor(const classad::PreparedAd& request,
                        const GuardSet& guards, const PreparedPool& resources,
                        const std::vector<char>& taken,
                        ScanStats* stats = nullptr) const;

 private:
  BestCandidate scanIds(const classad::PreparedAd& request,
                        const PreparedPool& resources,
                        std::span<const std::uint32_t> ids,
                        const std::vector<char>& taken,
                        std::size_t& evaluations) const;

  EngineConfig config_;
};

/// One-way filter + projection over a pool snapshot — the Query
/// protocol's scan, shared by matchmakerd and the query tools. Ads
/// matching `query` are returned as-is, or projected to `projection`
/// when non-empty; null ads are skipped.
std::vector<classad::ClassAdPtr> filterAds(
    std::span<const classad::ClassAdPtr> ads, const classad::Query& query,
    std::span<const std::string> projection);

}  // namespace matchmaking::engine
