#include "matchmaker/engine/guards.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <optional>
#include <utility>

#include "classad/analysis/absint.h"
#include "classad/analysis/implies.h"
#include "classad/analysis/lint.h"
#include "classad/expr.h"
#include "classad/value.h"

namespace matchmaking::engine {

namespace {

using classad::AttrRefExpr;
using classad::BinaryExpr;
using classad::BinOp;
using classad::ClassAd;
using classad::Expr;
using classad::ExprPtr;
using classad::FuncCallExpr;
using classad::ListExpr;
using classad::LiteralExpr;
using classad::RefScope;
using classad::toLowerCopy;
using classad::UnaryExpr;
using classad::UnOp;
using classad::Value;
using classad::ValueType;
using classad::analysis::abstractEval;
using classad::analysis::AbstractValue;
using classad::analysis::AnalysisEnv;
using classad::analysis::Interval;
using classad::analysis::TypeSet;

/// The reference resolves in the CANDIDATE at match time: an explicit
/// `other.X`, or a bare name absent from `self` (bare references fall
/// through to the candidate only when self lacks the name — a name bound
/// to `undefined` in self does NOT fall through).
const AttrRefExpr* asCandidateRef(const Expr& e, const ClassAd& self) {
  const auto* ref = dynamic_cast<const AttrRefExpr*>(&e);
  if (ref == nullptr) return nullptr;
  if (ref->scope() == RefScope::Other) return ref;
  if (ref->scope() == RefScope::Default &&
      self.lookup(ref->loweredName()) == nullptr) {
    return ref;
  }
  return nullptr;
}

/// Numbers the non-candidate side may take, with reachable booleans
/// folded in as 0/1 (comparisons promote booleans, §3.2).
Interval numericReach(const AbstractValue& d) {
  Interval r = d.mayBeNumber() ? d.range() : Interval::none();
  if (d.types().has(ValueType::Boolean)) {
    if (d.mayBeTrue()) r = r.hull(Interval::point(1.0));
    if (d.mayBeFalse()) r = r.hull(Interval::point(0.0));
  }
  return r;
}

struct StringReach {
  bool possible = false;  ///< may the non-candidate side be a string
  bool finite = false;    ///< `values` enumerates every possibility
  std::vector<std::string> values;  ///< lowered, sorted, unique
};

/// The abstract domain stores strings in original case with exact
/// membership; `==` compares case-insensitively, so the guard lowers the
/// reachable set itself (a lowered match is necessary for equality).
StringReach stringReach(const AbstractValue& d) {
  StringReach out;
  if (!d.mayBeString()) return out;
  out.possible = true;
  const auto& strs = d.strings();
  if (!strs.has_value()) return out;  // any string reachable
  out.finite = true;
  out.values.reserve(strs->size());
  for (const std::string& s : *strs) {
    out.values.push_back(toLowerCopy(s));
  }
  std::sort(out.values.begin(), out.values.end());
  out.values.erase(std::unique(out.values.begin(), out.values.end()),
                   out.values.end());
  return out;
}

BinOp mirrorOp(BinOp op) noexcept {
  switch (op) {
    case BinOp::Less: return BinOp::Greater;
    case BinOp::LessEq: return BinOp::GreaterEq;
    case BinOp::Greater: return BinOp::Less;
    case BinOp::GreaterEq: return BinOp::LessEq;
    default: return op;  // ==, !=, is are symmetric
  }
}

/// Values the candidate attribute must hold for `attr op d` to possibly
/// be true. Every case relies on the operator being decided by
/// compareValues: a strict comparison against a mismatched type, a
/// non-scalar, undefined, error, or NaN is never `true`.
std::optional<GuardDomain> comparisonDomain(BinOp op, const AbstractValue& d) {
  const Interval reach = numericReach(d);
  const StringReach str = stringReach(d);
  GuardDomain g;
  switch (op) {
    case BinOp::Equal:
      g.numberAllowed = !reach.empty();
      g.number = reach;
      g.stringAllowed = str.possible;
      g.anyString = str.possible && !str.finite;
      g.strings = str.values;
      return g;
    case BinOp::NotEqual:
      // v != r needs only SOME comparable r; the interval cannot express
      // "anything but r", so the value side stays unconstrained.
      g.numberAllowed = !reach.empty();
      g.stringAllowed = str.possible;
      return g;
    case BinOp::Less:
      g.numberAllowed = !reach.empty();
      g.number = Interval::atMost(reach.hi, true);
      g.stringAllowed = str.possible;  // strings order lexically
      return g;
    case BinOp::LessEq:
      g.numberAllowed = !reach.empty();
      g.number = Interval::atMost(reach.hi, reach.hiOpen);
      g.stringAllowed = str.possible;
      return g;
    case BinOp::Greater:
      g.numberAllowed = !reach.empty();
      g.number = Interval::atLeast(reach.lo, true);
      g.stringAllowed = str.possible;
      return g;
    case BinOp::GreaterEq:
      g.numberAllowed = !reach.empty();
      g.number = Interval::atLeast(reach.lo, reach.loOpen);
      g.stringAllowed = str.possible;
      return g;
    case BinOp::Is: {
      // `is` is NON-strict: `other.X is undefined` is true exactly when
      // the candidate lacks X, which postings over present values cannot
      // express. Guard only when the other side is certainly an
      // indexable scalar; identity implies equality, so the (lowered)
      // equality domain is a sound superset.
      const TypeSet scalars = TypeSet::of(ValueType::Boolean)
                                  .unite(TypeSet::of(ValueType::Integer))
                                  .unite(TypeSet::of(ValueType::Real))
                                  .unite(TypeSet::of(ValueType::String));
      if (d.types().empty() || !d.types().subsetOf(scalars)) {
        return std::nullopt;
      }
      g.numberAllowed = !reach.empty();
      g.number = reach;
      g.stringAllowed = str.possible;
      g.anyString = str.possible && !str.finite;
      g.strings = str.values;
      return g;
    }
    default:
      return std::nullopt;  // isnt admits missing attributes; no guard
  }
}

/// A bare candidate reference used as a conjunct is true only when the
/// attribute IS boolean true (indexed at 1.0); negated, boolean false.
GuardDomain booleanPointDomain(bool wanted) {
  GuardDomain g;
  g.number = Interval::point(wanted ? 1.0 : 0.0);
  g.stringAllowed = false;
  g.anyString = false;
  return g;
}

/// member(other.X, <literal list>): X must equal SOME element. Lists
/// reach here two ways — a residual ListExpr of literals, or (after
/// flattening a self-reference like Figure 1's ResearchGroup) a single
/// list-valued literal. Bails on any element a per-element `==` could
/// not decide (non-scalar, error, NaN); undefined elements merely skip.
std::optional<GuardDomain> memberDomain(const Expr& listArg) {
  std::vector<Value> elems;
  if (const auto* list = dynamic_cast<const ListExpr*>(&listArg)) {
    elems.reserve(list->elements().size());
    for (const ExprPtr& e : list->elements()) {
      const auto* lit = dynamic_cast<const LiteralExpr*>(e.get());
      if (lit == nullptr) return std::nullopt;
      elems.push_back(lit->value());
    }
  } else if (const auto* lit = dynamic_cast<const LiteralExpr*>(&listArg);
             lit != nullptr && lit->value().isList()) {
    elems = *lit->value().asList();
  } else {
    return std::nullopt;
  }

  GuardDomain g;
  g.numberAllowed = false;
  g.number = Interval::none();
  g.stringAllowed = false;
  g.anyString = false;
  for (const Value& v : elems) {
    if (v.isUndefined()) continue;  // equals nothing; adds no values
    if (v.isBoolean()) {
      g.numberAllowed = true;
      g.number = g.number.hull(Interval::point(v.asBoolean() ? 1.0 : 0.0));
    } else if (v.isNumber()) {
      const double x = v.toReal();
      if (std::isnan(x)) return std::nullopt;
      g.numberAllowed = true;
      g.number = g.number.hull(Interval::point(x));
    } else if (v.isString()) {
      g.stringAllowed = true;
      g.strings.push_back(toLowerCopy(v.asString()));
    } else {
      return std::nullopt;  // error / nested list / record element
    }
  }
  std::sort(g.strings.begin(), g.strings.end());
  g.strings.erase(std::unique(g.strings.begin(), g.strings.end()),
                  g.strings.end());
  return g;
}

void addGuard(std::vector<Guard>& out, const std::string& attr,
              GuardDomain domain) {
  for (Guard& existing : out) {
    if (existing.attr == attr) {
      existing.domain.intersectWith(domain);
      return;
    }
  }
  out.push_back({attr, std::move(domain)});
}

/// Emits the guards one conjunct implies (possibly none; possibly one
/// per side when both operands are candidate references).
void appendGuards(const Expr& conjunct, const ClassAd& self,
                  const AnalysisEnv& env, std::vector<Guard>& out) {
  if (const AttrRefExpr* ref = asCandidateRef(conjunct, self)) {
    addGuard(out, ref->loweredName(), booleanPointDomain(true));
    return;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&conjunct)) {
    if (unary->op() == UnOp::Not) {
      if (const AttrRefExpr* ref = asCandidateRef(*unary->operand(), self)) {
        addGuard(out, ref->loweredName(), booleanPointDomain(false));
      }
    }
    return;
  }
  if (const auto* bin = dynamic_cast<const BinaryExpr*>(&conjunct)) {
    const AttrRefExpr* lhs = asCandidateRef(*bin->lhs(), self);
    const AttrRefExpr* rhs = asCandidateRef(*bin->rhs(), self);
    // abstractEval treats candidate references as unconstrained (no
    // schema), so guarding each referenced side independently is sound
    // even for candidate-vs-candidate comparisons.
    if (lhs != nullptr) {
      if (auto g = comparisonDomain(bin->op(), abstractEval(*bin->rhs(), env))) {
        addGuard(out, lhs->loweredName(), std::move(*g));
      }
    }
    if (rhs != nullptr) {
      if (auto g = comparisonDomain(mirrorOp(bin->op()),
                                    abstractEval(*bin->lhs(), env))) {
        addGuard(out, rhs->loweredName(), std::move(*g));
      }
    }
    return;
  }
  if (const auto* call = dynamic_cast<const FuncCallExpr*>(&conjunct)) {
    if (toLowerCopy(call->name()) != "member" || call->args().size() != 2) {
      return;
    }
    const AttrRefExpr* ref = asCandidateRef(*call->args()[0], self);
    if (ref == nullptr) return;
    if (auto g = memberDomain(*call->args()[1])) {
      addGuard(out, ref->loweredName(), std::move(*g));
    }
  }
}

}  // namespace

bool GuardDomain::admitsLoweredString(const std::string& lowered) const {
  if (!stringAllowed) return false;
  if (anyString) return true;
  return std::binary_search(strings.begin(), strings.end(), lowered);
}

void GuardDomain::intersectWith(const GuardDomain& o) {
  numberAllowed = numberAllowed && o.numberAllowed;
  number = number.meet(o.number);
  if (number.empty()) numberAllowed = false;
  stringAllowed = stringAllowed && o.stringAllowed;
  if (!stringAllowed) {
    anyString = false;
    strings.clear();
    return;
  }
  if (anyString) {
    anyString = o.anyString;
    strings = o.strings;
  } else if (!o.anyString) {
    std::vector<std::string> merged;
    std::set_intersection(strings.begin(), strings.end(), o.strings.begin(),
                          o.strings.end(), std::back_inserter(merged));
    strings = std::move(merged);
  }
  if (!anyString && strings.empty()) {
    stringAllowed = false;
    strings.clear();
  }
}

GuardSet deriveGuards(const classad::PreparedAd& request) {
  GuardSet set;
  if (!request.valid() || !request.hasConstraint()) return set;
  const ClassAd& self = *request.ad();
  AnalysisEnv env;
  env.self = &self;
  const std::vector<ExprPtr> conjuncts =
      classad::analysis::splitConjuncts(request.constraint());
  for (const ExprPtr& conjunct : conjuncts) {
    const AbstractValue av = abstractEval(*conjunct, env);
    if (!av.mayBeTrue()) {
      // One conjunct can never be true, so neither can the whole
      // constraint: the engine skips this request without any scan.
      set.neverTrue = true;
      set.guards.clear();
      return set;
    }
  }
  // Per-conjunct guard contributions, computed up front so the elision
  // pass below can prefer keeping the conjuncts that feed the index.
  std::vector<std::vector<Guard>> contrib(conjuncts.size());
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    appendGuards(*conjuncts[i], self, env, contrib[i]);
  }

  // Conjuncts the prover shows are implied by their kept siblings
  // contribute nothing to the match: skip their guards and count them.
  // Guardless conjuncts are tried first — when a redundant pair has a
  // guardable and a non-guardable spelling, the guardable one survives,
  // so elision never weakens the candidate superset the index prunes to.
  // Runs once per ad revision, with witness search disabled.
  constexpr std::size_t kMaxElisionConjuncts = 16;
  std::vector<bool> elided(conjuncts.size(), false);
  if (conjuncts.size() > 1 && conjuncts.size() <= kMaxElisionConjuncts) {
    std::vector<std::size_t> order;
    order.reserve(conjuncts.size());
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (contrib[i].empty()) order.push_back(i);
    }
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (!contrib[i].empty()) order.push_back(i);
    }
    classad::analysis::ImpliesOptions opts;
    opts.maxWitnessTrials = 0;
    static const ExprPtr kTrue = LiteralExpr::make(Value::boolean(true));
    for (const std::size_t i : order) {
      ExprPtr premise;
      for (std::size_t j = 0; j < conjuncts.size(); ++j) {
        if (j == i || elided[j]) continue;
        premise = premise == nullptr
                      ? conjuncts[j]
                      : BinaryExpr::make(BinOp::And, premise, conjuncts[j]);
      }
      if (premise == nullptr) premise = kTrue;
      if (classad::analysis::implies(&self, premise, &self, conjuncts[i],
                                     opts)
              .proven()) {
        elided[i] = true;
      }
    }
  }

  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (elided[i]) {
      ++set.elided;
      continue;
    }
    for (Guard& g : contrib[i]) {
      addGuard(set.guards, g.attr, std::move(g.domain));
    }
  }
  return set;
}

}  // namespace matchmaking::engine
