// index.h - The candidate index: postings over pre-evaluated attributes.
//
// "Turning cluster management into data management" (PAPERS.md): a
// negotiation cycle is a join between request and resource ads, and the
// guard set derived from a request's constraint (engine/guards.h) is a
// conjunctive selection predicate over candidate attributes. This index
// answers that selection without touching the ads:
//
//   - STRING values bucket exactly, keyed by lowered text (`==` is
//     case-insensitive), e.g. Arch/OpSys;
//   - NUMERIC and boolean values (booleans as 0/1) go into per-attribute
//     sorted postings answering interval guards with two binary
//     searches, e.g. Memory/Disk;
//   - attributes whose defining expression observes the candidate
//     (`other.*`) have unknowable per-ad values, so their slots are
//     admitted unconditionally for any guard on that attribute;
//   - exceptional / non-scalar values are NOT indexed: a strict
//     comparison against them is never true, so omitting them excludes
//     exactly the right slots.
//
// The result of select() is a SUPERSET of the slots that can match (see
// the soundness argument in guards.h / docs/ENGINE.md); the engine then
// runs the full symmetric evaluation over the survivors, so results are
// bit-identical with the index on or off.
//
// Postings are append-only; deletions are handled by the caller ANDing
// with a liveness mask, and pool compaction rebuilds from scratch. Not
// thread-safe: mutation and selection belong to the negotiation thread
// (scan workers only ever evaluate already-selected candidates).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "classad/prepared.h"
#include "matchmaker/engine/guards.h"

namespace matchmaking::engine {

/// Dense bitset over slot ids; the currency of candidate selection.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }
  std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// In-place intersection (sizes must agree).
  void andWith(const Bitset& o) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  }

  std::size_t count() const noexcept;

  /// Calls fn(i) for every set bit, ascending — the deterministic
  /// candidate order the scan relies on.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn((w << 6) + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Append-only postings over one pool's slots.
class CandidateIndex {
 public:
  /// Indexes `ad`'s pre-evaluated values under slot id `slot` (ids must
  /// arrive in ascending order so postings stay sorted).
  void add(std::uint32_t slot, const classad::PreparedAd& ad);
  void clear();

  /// Intersects `out` (pre-seeded with the admissible base, e.g. the
  /// live mask) with the slots each guard admits. Returns false when no
  /// guard was applicable (caller falls back to the full scan, leaving
  /// `out` untouched); neverTrue guard sets must be handled by the
  /// caller before selecting.
  bool select(const GuardSet& guards, Bitset* out) const;

  std::size_t attrCount() const noexcept { return byAttr_.size(); }
  /// Total posting entries — the index's memory footprint measure.
  std::size_t postingCount() const noexcept { return postings_; }

 private:
  struct Postings {
    /// Slots whose value for this attribute depends on the candidate:
    /// admitted for every guard (their match-time value is unknowable).
    std::vector<std::uint32_t> otherDep;
    /// Lowered string value -> slots advertising it.
    std::unordered_map<std::string, std::vector<std::uint32_t>> byString;
    /// (value, slot), sorted on demand; booleans land here as 0/1.
    mutable std::vector<std::pair<double, std::uint32_t>> byNumber;
    mutable bool numberSorted = true;
  };

  void applyGuard(const Guard& guard, Bitset* mask) const;

  std::unordered_map<std::string, Postings> byAttr_;
  std::size_t postings_ = 0;
};

}  // namespace matchmaking::engine
