// guards.h - Static admission guards derived from a request's constraint.
//
// A guard is a NECESSARY condition on one candidate attribute: "this
// constraint can only be true against candidates whose `Memory` lies in
// [64, +inf)" or "whose `Arch` is one of {intel, sparc}". Guards are
// derived once per request revision by running the PR 3 abstract
// interpreter over each conjunct of the flattened constraint (the
// abstract value of the non-candidate side bounds what the candidate
// attribute must compare against), and the candidate index
// (engine/index.h) intersects them into a candidate superset.
//
// Soundness argument (docs/ENGINE.md spells it out in full): a guard is
// emitted only for conjunct shapes where Section 3.2's STRICT operators
// decide the match — a strict comparison against `undefined`, `error`, a
// list, a record, a NaN, or a mixed type is never `true`, and a conjunct
// that is not `true` makes the whole && false-or-worse (splitConjuncts
// only returns conjuncts with that property). So a candidate whose
// attribute is missing, exceptional, non-scalar, or outside the abstract
// bound cannot satisfy the constraint, and pruning it cannot change the
// match set. Conjuncts that fit no shape simply emit no guard: the engine
// prunes less but never differently (the equivalence property test in
// tests/matchmaker/engine/ checks bit-identical results vs naive scans).
#pragma once

#include <string>
#include <vector>

#include "classad/analysis/domain.h"
#include "classad/prepared.h"

namespace matchmaking::engine {

/// The set of scalar values a candidate attribute may hold without
/// refuting one conjunct: a numeric interval (booleans count as 0/1, the
/// promotion rule of §3.2 arithmetic) and/or a finite set of LOWERED
/// strings (`==` compares case-insensitively). Default-constructed, it
/// admits every scalar.
struct GuardDomain {
  bool numberAllowed = true;
  classad::analysis::Interval number = classad::analysis::Interval::all();
  bool stringAllowed = true;
  /// When false, only `strings` (lowered, sorted, unique) are admitted.
  bool anyString = true;
  std::vector<std::string> strings;

  bool admitsNumber(double v) const noexcept {
    return numberAllowed && number.contains(v);
  }
  bool admitsLoweredString(const std::string& lowered) const;
  /// Narrows to the intersection with `o` (conjuncts compose by AND).
  void intersectWith(const GuardDomain& o);
  bool admitsNothing() const noexcept {
    return !(numberAllowed && !number.empty()) &&
           !(stringAllowed && (anyString || !strings.empty()));
  }
};

/// A necessary condition on one candidate attribute (lowered name).
struct Guard {
  std::string attr;
  GuardDomain domain;
};

struct GuardSet {
  /// The constraint can never evaluate to true (some conjunct's abstract
  /// value excludes boolean true): no candidate matches, period.
  bool neverTrue = false;
  /// One entry per guarded attribute; a candidate must satisfy ALL.
  std::vector<Guard> guards;
  /// Conjuncts the implication prover proved redundant against their
  /// siblings: their guards were skipped. Dropping a guard only widens
  /// the candidate superset (never changes the final match — the full
  /// constraint is still evaluated), and a redundant conjunct's guard
  /// adds no pruning the surviving conjuncts' guards don't already do.
  std::size_t elided = 0;

  bool empty() const noexcept { return !neverTrue && guards.empty(); }
};

/// Derives guards from `request`'s flattened constraint. A request with
/// no constraint (or one whose conjuncts fit no guardable shape) yields
/// an empty set — the engine then falls back to the full scan.
GuardSet deriveGuards(const classad::PreparedAd& request);

}  // namespace matchmaking::engine
