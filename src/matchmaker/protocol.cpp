#include "matchmaker/protocol.h"

#include <charconv>

namespace matchmaking {

std::string ticketToString(Ticket t) {
  char buf[19];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), t, 16);
  return std::string(buf, end);
}

std::optional<Ticket> ticketFromString(std::string_view s) {
  // Tickets arrive inside classads from untrusted peers; parse strictly.
  // A 64-bit value is at most 16 hex digits, so anything longer is
  // either an overflow or garbage — cap the length up front rather than
  // relying on from_chars' result_out_of_range, and reject the +/-
  // signs, "0x" prefixes, and leading whitespace that lenient parsers
  // wave through.
  if (s.empty() || s.size() > 16) return std::nullopt;
  for (char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return std::nullopt;
  }
  Ticket t = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), t, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return t;
}

std::string claimIdToString(const ClaimId& id) {
  if (id.originPool.empty()) return ticketToString(id.ticket);
  return id.originPool + ":" + ticketToString(id.ticket);
}

std::optional<ClaimId> claimIdFromString(std::string_view s) {
  ClaimId id;
  // The pool name may itself contain ':'; the ticket never does, so the
  // LAST colon splits. No colon = a bare single-pool ticket.
  const std::size_t colon = s.rfind(':');
  std::string_view ticketPart = s;
  if (colon != std::string_view::npos) {
    if (colon == 0) return std::nullopt;  // ":abc" — empty pool is bare form
    id.originPool = std::string(s.substr(0, colon));
    ticketPart = s.substr(colon + 1);
  }
  const std::optional<Ticket> ticket = ticketFromString(ticketPart);
  if (!ticket.has_value()) return std::nullopt;
  id.ticket = *ticket;
  return id;
}

Ticket namespaceTicket(Ticket raw, std::string_view pool) {
  if (pool.empty()) return raw;
  // FNV-1a over the pool name; cheap, stable across builds, and spread
  // over all 64 bits so XOR perturbs the whole ticket.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : pool) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return raw ^ h;
}

}  // namespace matchmaking
