#include "matchmaker/protocol.h"

#include <charconv>

namespace matchmaking {

std::string ticketToString(Ticket t) {
  char buf[19];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), t, 16);
  return std::string(buf, end);
}

std::optional<Ticket> ticketFromString(std::string_view s) {
  // Tickets arrive inside classads from untrusted peers; parse strictly.
  // A 64-bit value is at most 16 hex digits, so anything longer is
  // either an overflow or garbage — cap the length up front rather than
  // relying on from_chars' result_out_of_range, and reject the +/-
  // signs, "0x" prefixes, and leading whitespace that lenient parsers
  // wave through.
  if (s.empty() || s.size() > 16) return std::nullopt;
  for (char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return std::nullopt;
  }
  Ticket t = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), t, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return t;
}

}  // namespace matchmaking
