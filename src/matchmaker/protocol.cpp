#include "matchmaker/protocol.h"

#include <charconv>

namespace matchmaking {

std::string ticketToString(Ticket t) {
  char buf[19];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), t, 16);
  return std::string(buf, end);
}

std::optional<Ticket> ticketFromString(std::string_view s) {
  if (s.empty()) return std::nullopt;
  Ticket t = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), t, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return t;
}

}  // namespace matchmaking
