// advertising.h - The advertising protocol (framework component 2).
//
// Section 3: "the advertising protocol ... defines basic conventions
// regarding what a matchmaker expects to find in a classad if the ad is to
// be included in the matchmaking process". Section 4 instantiates it for
// Condor: "every classad should include expressions named Constraint and
// Rank ... The protocol also requires the advertising parties to include
// contact addresses with their ads, and allows an RA to include an
// authorization ticket with its ad."
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "classad/classad.h"
#include "classad/match.h"

namespace matchmaking {

/// Well-known attribute names given meaning by the advertising protocol.
struct ProtocolAttributes {
  classad::MatchAttributes match;          // Constraint / Requirements, Rank
  std::string type = "Type";               // "Machine" / "Job" / ...
  std::string contact = "ContactAddress";  // where to reach the advertiser
  std::string owner = "Owner";             // principal, for fair matching
  std::string ticket = "AuthorizationTicket";  // RA-minted claim capability
  std::string name = "Name";               // advertiser display name
};

/// Result of validating an incoming advertisement.
struct ValidationResult {
  bool accepted = false;
  std::vector<std::string> problems;  // empty iff accepted

  static ValidationResult ok() { return {true, {}}; }
};

/// Validates ads against the advertising protocol before admission to the
/// store. Per Section 3, an ad that does not conform is simply not
/// "included in the matchmaking process" — validation failures are not
/// fatal to the advertiser, they just make it invisible.
class AdvertisingProtocol {
 public:
  explicit AdvertisingProtocol(ProtocolAttributes attrs = {})
      : attrs_(std::move(attrs)) {}

  const ProtocolAttributes& attributes() const noexcept { return attrs_; }

  /// Checks the conventions common to all advertisers: a Type, a contact
  /// address, and a well-formed Constraint (an ad may omit Constraint
  /// entirely — it then imposes no requirements — but a Constraint bound
  /// to a parse-level `error` literal is rejected).
  ValidationResult validate(const classad::ClassAd& ad) const;

  /// Additional requirements for customer (request) ads: an Owner, so the
  /// fair matching policy of Section 4 can account usage to a principal.
  ValidationResult validateRequest(const classad::ClassAd& ad) const;

  /// Additional conventions for resource ads (an RA "may" attach a
  /// ticket; nothing extra is mandatory).
  ValidationResult validateResource(const classad::ClassAd& ad) const;

  /// Extracts the advertiser's store key (its contact address).
  std::string keyOf(const classad::ClassAd& ad) const;

 private:
  ProtocolAttributes attrs_;
};

}  // namespace matchmaking
