// matchmaker.h - The matchmaking algorithm (framework component 3): the
// negotiation cycle of Section 4.
//
// "Periodically, the pool manager enters a negotiation cycle. This phase
// invokes the matchmaking algorithm, which determines which CAs require
// matchmaking services, obtains requests from these CAs, and matches them
// with compatible RA ads. ... Rank expressions are used as goodness metrics
// to identify the more desirable among the compatible matches. The
// matchmaking algorithm also uses past resource usage information to
// enforce a fair matching policy."
//
// The Matchmaker is deliberately STATELESS across cycles (Section 3): it
// holds configuration only; every negotiate() call works purely from the
// ads handed to it and the accountant. Killing and recreating it loses
// nothing — the property benchmarked in bench_e2_failure_recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "classad/match.h"
#include "matchmaker/advertising.h"
#include "matchmaker/engine/engine.h"
#include "matchmaker/policy/policy.h"
#include "matchmaker/priority.h"
#include "matchmaker/protocol.h"

namespace matchmaking {

struct MatchmakerConfig {
  ProtocolAttributes protocol;
  /// Bilateral matching (the paper's design). When false — the E4
  /// ablation, emulating conventional one-sided allocators — the
  /// resource's constraint is ignored during matching.
  bool bilateral = true;
  /// Exploit ad regularity by group matching (Section 5 future work, E7).
  bool useAggregation = false;
  /// Order customers by the accountant's effective priority; when false,
  /// requests are served in submission order regardless of past usage.
  bool fairShare = true;
  /// Hierarchical fair share: when users carry accounting-group
  /// assignments (Accountant::setGroup), share the pool first BETWEEN
  /// groups by group standing, then WITHIN groups by user standing, so a
  /// group's aggregate share is independent of its headcount. Ungrouped
  /// users behave exactly as under flat fair share.
  bool groupFairShare = true;
  /// Support resource-rank preemption: a resource ad carrying a numeric
  /// `CurrentRank` (the resource's Rank of its current customer) is only
  /// matched to requests it ranks strictly higher — Section 4's "although
  /// the workstation is currently busy, it is still interested in hearing
  /// from higher priority customers".
  std::string currentRankAttr = "CurrentRank";
  /// Worker threads for the per-request candidate scan (the negotiation
  /// cycle's hot loop; expressions are immutable, so evaluation is
  /// embarrassingly parallel across resources). 1 = serial. Results are
  /// bit-identical to the serial scan: chunk-local winners merge in index
  /// order with the same first-best-wins tie-breaking.
  unsigned scanThreads = 1;
  /// Pools smaller than this are always scanned serially (thread startup
  /// would dominate).
  std::size_t parallelScanThreshold = 512;
  /// Index-assisted candidate selection (engine/index.h): derive static
  /// admission guards from each request's constraint and consult the
  /// resource pool's candidate index before the full evaluation scan.
  /// Results are bit-identical with this on or off (the selection is a
  /// proven superset of the matchable slots); off forces the pure linear
  /// scan, which is what bench_e1_scalability's "linear" columns measure.
  bool useCandidateIndex = true;
  /// The per-cycle request<->resource decision procedure
  /// (src/matchmaker/policy, docs/POLICY.md): the paper's greedy
  /// priority-order scan (default, bit-identical to the pre-policy
  /// path), whole-cycle optimal assignment, or an auction market.
  /// Aggregation (useAggregation) only applies under the greedy policy;
  /// batch policies already see the whole cycle at once.
  policy::PolicyKind negotiationPolicy = policy::PolicyKind::kGreedy;
};

/// One match produced by a negotiation cycle: a mutual introduction, not an
/// allocation ("a match is to be construed as a hint").
struct Match {
  classad::ClassAdPtr request;
  classad::ClassAdPtr resource;
  std::string requestContact;
  std::string resourceContact;
  std::string user;           ///< request owner (for usage accounting)
  Ticket ticket = kNoTicket;  ///< from the resource ad, if it carried one
  double requestRank = 0.0;
  double resourceRank = 0.0;
  bool preempting = false;  ///< resource was claimed; this match outranks it
  /// Slot id of the matched resource in the resource pool (== span index
  /// for the span-based negotiate()); lets callers share one taken-set
  /// between the pairwise pass and the gang matcher without rescanning.
  std::uint32_t resourceSlot = 0;
};

/// Instrumentation of one cycle.
struct NegotiationStats {
  std::size_t requestsConsidered = 0;
  std::size_t resourcesConsidered = 0;
  std::size_t matches = 0;
  std::size_t preemptions = 0;
  /// Two-sided candidate evaluations performed (the matchmaking
  /// algorithm's unit of work; E7 measures how aggregation reduces it).
  std::size_t candidateEvaluations = 0;
  std::size_t aggregateGroups = 0;  ///< 0 when aggregation is off
  /// Live candidates the index ruled out before any evaluation (the
  /// engine's prune count; 0 when useCandidateIndex is off).
  std::size_t candidatesPruned = 0;
  /// Per-request scans answered via the candidate index vs. ones that
  /// fell back to the full linear scan (no guardable conjunct).
  std::size_t indexedSelections = 0;
  std::size_t fullScans = 0;
  /// Requests skipped without any scan: static analysis proved their
  /// constraint can never evaluate to true.
  std::size_t staticSkips = 0;
  /// Wall-clock phase timings of this cycle (observability plane): the
  /// fair-share service ordering and the candidate scan + rank pass. The
  /// caller (PoolManager) adds its own ad-scan and notify phases around
  /// negotiate() and publishes all four into its metrics registry.
  double serviceOrderSeconds = 0.0;
  double scanSeconds = 0.0;
  /// Negotiation-policy instrumentation (src/matchmaker/policy): the
  /// policy's whole decide() call (== scanSeconds for the pairwise
  /// pass), the summed request Rank over the issued matches, and — for
  /// the auction policy — the bids the market needed to clear.
  double policySolveSeconds = 0.0;
  double aggregateRank = 0.0;
  std::size_t auctionRounds = 0;
};

class Matchmaker {
 public:
  explicit Matchmaker(MatchmakerConfig config = {})
      : config_(std::move(config)) {}

  const MatchmakerConfig& config() const noexcept { return config_; }

  /// Runs one negotiation cycle: matches each request ad to at most one
  /// resource ad and each resource to at most one request (plus
  /// preemption of lower-ranked current customers, see config). Requests
  /// are served in order of their owner's effective priority at `now`
  /// (better standing first), with a geometric in-cycle penalty per grant
  /// so one user cannot drain the pool in a single cycle.
  ///
  /// The returned matches are hints: the parties run the claiming
  /// protocol themselves. negotiate() does not mutate the accountant —
  /// usage is charged when claims are actually served.
  std::vector<Match> negotiate(std::span<const classad::ClassAdPtr> requests,
                               std::span<const classad::ClassAdPtr> resources,
                               const Accountant& accountant, Time now,
                               NegotiationStats* stats = nullptr) const;

  /// The same cycle over pre-prepared pools — the hot entry point used by
  /// the PoolManager / matchmakerd, whose AdStores keep pools incrementally
  /// up to date so no per-cycle preparation happens at all. Gang request
  /// slots (options().detectGangs) are skipped here; `taken` (optional,
  /// resized to the resource slot count) marks and returns the resource
  /// slots consumed, so the caller can hand the leftovers to the
  /// GangMatcher. The span overload above is exactly this on throwaway
  /// pools built with fromAds().
  std::vector<Match> negotiate(const engine::PreparedPool& requests,
                               const engine::PreparedPool& resources,
                               const Accountant& accountant, Time now,
                               NegotiationStats* stats = nullptr,
                               std::vector<char>* taken = nullptr) const;

  /// Convenience single-pair test used by tools and tests.
  bool matches(const classad::ClassAd& request,
               const classad::ClassAd& resource) const;

  /// One-shot best match for a single foreign request against a prepared
  /// resource pool — the federation plane's referral evaluator. The
  /// request is prepared (guards derived, static skip applied) and run
  /// through the same engine-backed cycle as a local negotiation, but
  /// with a history-free accountant: a referred request is a guest, and
  /// its origin pool's fair-share standing is not this pool's business.
  std::optional<Match> bestMatchFor(const classad::ClassAdPtr& request,
                                    const engine::PreparedPool& resources,
                                    Time now,
                                    NegotiationStats* stats = nullptr) const;

 private:
  /// The pairwise pass: fair-share service order, then the configured
  /// NegotiationPolicy decides the cycle's pairs (greedy reproduces the
  /// historical inline scan bit-identically; see docs/POLICY.md).
  std::vector<Match> negotiateWithPolicy(const engine::PreparedPool& requests,
                                         const engine::PreparedPool& resources,
                                         const Accountant& accountant, Time now,
                                         NegotiationStats* stats,
                                         std::vector<char>* taken) const;
  std::vector<Match> negotiateAggregated(const engine::PreparedPool& requests,
                                         const engine::PreparedPool& resources,
                                         const Accountant& accountant, Time now,
                                         NegotiationStats* stats,
                                         std::vector<char>* taken) const;

  /// Request indices in service order (fair-share or submission order).
  std::vector<std::size_t> serviceOrder(
      std::span<const classad::ClassAdPtr> requests,
      const Accountant& accountant, Time now) const;

  MatchmakerConfig config_;
};

/// Pool options matching `config` for each side of a negotiation. Stateful
/// callers (PoolManager) attach these to their AdStores so ads are prepared
/// incrementally as they arrive instead of once per cycle; the request side
/// derives guards, the resource side maintains the candidate index (both
/// gated on config.useCandidateIndex).
engine::PoolOptions requestPoolOptions(const MatchmakerConfig& config);
engine::PoolOptions resourcePoolOptions(const MatchmakerConfig& config);

}  // namespace matchmaking
