// claiming.h - Provider-side claim verification (framework component 5).
//
// Section 4: "The RA accepts the resource request only if the ticket
// matches the one that it gave the pool manager, and the request matches
// the RA's constraints with respect to the updated state of the request and
// resource, which may have changed since the last advertisement."
//
// This module is pure policy: given the provider's CURRENT ad, its
// outstanding ticket, and an incoming ClaimRequest, decide. The transport
// and the state machine around it live with the agents (src/sim).
#pragma once

#include <string>

#include "classad/classad.h"
#include "classad/match.h"
#include "matchmaker/protocol.h"

namespace matchmaking {

/// Options for the claim-time checks; the E3 ablation switches
/// re-verification off to quantify what the weak-consistency design buys.
struct ClaimPolicy {
  bool verifyTicket = true;
  /// Re-evaluate both sides' constraints against current state (the
  /// paper's design). With this off, a claim is accepted on the strength
  /// of the possibly-stale match alone.
  bool reverifyConstraints = true;
  classad::MatchAttributes attrs;
};

/// Evaluates a claim request against the provider's current ad and
/// outstanding ticket. `currentResourceAd` must reflect the resource's
/// state NOW, not the advertised snapshot.
ClaimResponse evaluateClaim(const classad::ClassAd& currentResourceAd,
                            Ticket outstandingTicket,
                            const ClaimRequest& request,
                            const ClaimPolicy& policy = {});

}  // namespace matchmaking
