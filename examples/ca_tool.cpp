// ca_tool - A command-line swiss-army knife for classad files, in the
// spirit of the condor_* tools. Ads are read from files containing one or
// more `[ ... ]` ads (or from literal ad text passed inline).
//
//   ca_tool eval  <ad> <expr>            evaluate an expression against an ad
//   ca_tool match <requestAd> <poolFile> rank the pool for a request
//   ca_tool diagnose <requestAd> <poolFile>   why-doesn't-it-match report
//   ca_tool status <poolFile> [constraint] [--sort attr] [--totals attr]
//   ca_tool flatten <ad> <attribute>     show the residual constraint
//   ca_tool json <ad>                    render an ad as pretty JSON
//   ca_tool fromjson <file-or-json>      convert JSON back to classad text
//
// <ad> arguments may be a filename or literal ad text starting with '['.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "classad/flatten.h"
#include "classad/json.h"
#include "classad/match.h"
#include "classad/parser.h"
#include "classad/query.h"
#include "matchmaker/analysis.h"

namespace {

using classad::ClassAd;
using classad::ClassAdPtr;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Filename, or literal ad text if it starts with '['.
std::string adText(const std::string& arg) {
  if (!arg.empty() && arg[0] == '[') return arg;
  return slurp(arg);
}

ClassAd loadAd(const std::string& arg) {
  return ClassAd::parse(adText(arg));
}

std::vector<ClassAdPtr> loadPool(const std::string& arg) {
  std::vector<ClassAdPtr> out;
  for (ClassAd& ad : classad::parseAdStream(adText(arg))) {
    out.push_back(classad::makeShared(std::move(ad)));
  }
  return out;
}

int cmdEval(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: ca_tool eval <ad> <expr>\n");
    return 2;
  }
  const ClassAd ad = loadAd(argv[0]);
  const classad::Value v = ad.evaluate(argv[1]);
  std::printf("%s\n", v.toLiteralString().c_str());
  if (v.isError() && !v.errorReason().empty()) {
    std::fprintf(stderr, "error: %s\n", v.errorReason().c_str());
  }
  return 0;
}

int cmdMatch(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: ca_tool match <requestAd> <poolFile>\n");
    return 2;
  }
  const ClassAd request = loadAd(argv[0]);
  const auto pool = loadPool(argv[1]);
  struct Row {
    ClassAdPtr ad;
    classad::MatchAnalysis analysis;
  };
  std::vector<Row> matched;
  for (const ClassAdPtr& resource : pool) {
    const auto analysis = classad::analyzeMatch(request, *resource);
    if (analysis.matched) matched.push_back({resource, analysis});
  }
  std::sort(matched.begin(), matched.end(), [](const Row& a, const Row& b) {
    if (a.analysis.requestRank != b.analysis.requestRank) {
      return a.analysis.requestRank > b.analysis.requestRank;
    }
    return a.analysis.resourceRank > b.analysis.resourceRank;
  });
  std::printf("%zu of %zu ads match; best first:\n", matched.size(),
              pool.size());
  for (const Row& row : matched) {
    std::printf("  rank %10.3f  (theirs %7.3f)  %s\n",
                row.analysis.requestRank, row.analysis.resourceRank,
                row.ad->getString("Name")
                    .value_or(row.ad->unparse().substr(0, 60))
                    .c_str());
  }
  return matched.empty() ? 1 : 0;
}

int cmdDiagnose(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: ca_tool diagnose <requestAd> <poolFile>\n");
    return 2;
  }
  const ClassAd request = loadAd(argv[0]);
  const auto pool = loadPool(argv[1]);
  const matchmaking::Diagnosis d = matchmaking::diagnose(request, pool);
  std::printf("%s", d.summary().c_str());
  return d.matches > 0 ? 0 : 1;
}

int cmdStatus(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr,
                 "usage: ca_tool status <poolFile> [constraint] [--sort "
                 "attr] [--totals attr]\n");
    return 2;
  }
  auto pool = loadPool(argv[0]);
  std::string constraint;
  std::string sortAttr;
  std::string totalsAttr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sort") == 0 && i + 1 < argc) {
      sortAttr = argv[++i];
    } else if (std::strcmp(argv[i], "--totals") == 0 && i + 1 < argc) {
      totalsAttr = argv[++i];
    } else {
      constraint = argv[i];
    }
  }
  classad::Query query = constraint.empty()
                             ? classad::Query::all()
                             : classad::Query::fromConstraint(constraint);
  auto selected = query.select(pool);
  if (!sortAttr.empty()) selected = classad::sortBy(selected, sortAttr);
  if (!totalsAttr.empty()) {
    for (const auto& [value, count] : classad::summarize(selected,
                                                         totalsAttr)) {
      std::printf("%6zu  %s\n", count, value.c_str());
    }
    return 0;
  }
  classad::Query projection = classad::Query::all();
  if (!selected.empty()) {
    std::vector<std::string> columns;
    for (const auto& [name, expr] : *selected.front()) {
      columns.push_back(name);
      if (columns.size() == 6) break;  // keep the table readable
    }
    projection.project(std::move(columns));
  }
  std::printf("%s", classad::formatTable(projection, selected).c_str());
  return 0;
}

int cmdFlatten(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: ca_tool flatten <ad> <attribute>\n");
    return 2;
  }
  const ClassAd ad = loadAd(argv[0]);
  const classad::ExprPtr residual = classad::flattenAttribute(ad, argv[1]);
  if (!residual) {
    std::fprintf(stderr, "no attribute '%s' in ad\n", argv[1]);
    return 1;
  }
  std::printf("%s\n", residual->toString().c_str());
  return 0;
}

int cmdJson(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "usage: ca_tool json <ad>\n");
    return 2;
  }
  classad::JsonOptions pretty;
  pretty.pretty = true;
  std::printf("%s\n", classad::toJson(loadAd(argv[0]), pretty).c_str());
  return 0;
}

int cmdFromJson(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "usage: ca_tool fromjson <file-or-json>\n");
    return 2;
  }
  std::string text = argv[0];
  if (!text.empty() && text[0] != '{') text = slurp(text);
  const ClassAd ad = classad::adFromJson(text);
  std::printf("%s\n", ad.unparsePretty().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ca_tool <eval|match|diagnose|status|flatten|json|fromjson> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "eval") return cmdEval(argc - 2, argv + 2);
    if (cmd == "match") return cmdMatch(argc - 2, argv + 2);
    if (cmd == "diagnose") return cmdDiagnose(argc - 2, argv + 2);
    if (cmd == "status") return cmdStatus(argc - 2, argv + 2);
    if (cmd == "flatten") return cmdFlatten(argc - 2, argv + 2);
    if (cmd == "json") return cmdJson(argc - 2, argv + 2);
    if (cmd == "fromjson") return cmdFromJson(argc - 2, argv + 2);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  } catch (const classad::ParseError& e) {
    std::fprintf(stderr, "parse error: %s (line %d, column %d)\n", e.what(),
                 e.line(), e.column());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
