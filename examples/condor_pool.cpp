// condor_pool - The Section 4 story end to end: a heterogeneous,
// distributively-owned pool of 200 workstations serving five users through
// the matchmaking framework for a simulated working day.
//
//   $ ./condor_pool [machines] [hours]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"

int main(int argc, char** argv) {
  htcsim::ScenarioConfig config;
  config.seed = 20240707;
  config.machines.count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const double hours = argc > 2 ? std::atof(argv[2]) : 8.0;
  config.duration = hours * 3600.0;
  config.workload.users = {"raman", "miron", "tannenba", "alice", "rival"};
  config.workload.jobsPerUserPerHour = 25.0;

  std::printf("Condor-style pool: %zu machines, %zu users, %.1f hours\n",
              config.machines.count, config.workload.users.size(), hours);
  std::printf("policies: %.0f%% dedicated, %.0f%% classic-idle, %.0f%% "
              "Figure-1 (research/friends/night tiers)\n\n",
              100 * config.machines.fracAlwaysAvailable,
              100 * config.machines.fracClassicIdle,
              100 * config.machines.fracFigure1);

  htcsim::Scenario scenario(config);
  scenario.run();
  // Let the tail of running jobs drain for one more hour of cleanup.
  scenario.runUntil(config.duration + 3600.0);

  const htcsim::Metrics& m = scenario.metrics();
  std::printf("=== pool report ===\n");
  std::printf("jobs submitted            %zu\n", m.jobsSubmitted);
  std::printf("jobs completed            %zu\n", m.jobsCompleted);
  std::printf("throughput                %.1f jobs/hour\n",
              m.throughputPerHour(config.duration));
  std::printf("mean wait                 %.0f s\n", m.meanWaitTime());
  std::printf("mean turnaround           %.0f s\n", m.meanTurnaround());
  std::printf("pool utilization          %.1f%%\n",
              100 * m.utilization(config.duration + 3600.0,
                                  scenario.machineCount()));
  std::printf("negotiation cycles        %zu\n", m.negotiationCycles);
  std::printf("matches issued            %zu\n", m.matchesIssued);
  std::printf("claims accepted           %zu\n", m.claimsAccepted);
  std::printf("claims rejected (stale)   %zu\n", m.claimsRejected);
  std::printf("stale match notifications %zu\n", m.staleNotifications);
  std::printf("owner preemptions         %zu\n", m.preemptionsByOwner);
  std::printf("rank preemptions          %zu\n", m.preemptionsByRank);
  std::printf("goodput                   %.0f cpu-s (%.1f%% of all work)\n",
              m.goodputCpuSeconds, 100 * m.goodputFraction());
  std::printf("badput                    %.0f cpu-s\n", m.badputCpuSeconds);
  std::printf("\n=== usage by user (fair-share ledger) ===\n");
  for (const auto& [user, seconds] : m.usageByUser) {
    std::printf("  %-10s %10.0f machine-seconds  (priority %.2f)\n",
                user.c_str(), seconds,
                scenario.manager().accountant().effectivePriority(
                    user, config.duration));
  }
  std::printf("\nNote how 'rival' (untrusted everywhere under the Figure-1 "
              "policy)\nstill gets service from dedicated and classic-idle "
              "machines,\nwhile Figure-1 owners never serve it.\n");
  return m.jobsCompleted > 0 ? 0 : 1;
}
