# A small job queue: the request side of the example pool. These ads are
# both linted against pool.ads and folded into the schema machine ads are
# checked against, so every attribute a machine ad references
# (other.Owner, other.Type, other.ImageSize, other.Department) appears here.

[ Type = "Job";
  Owner = "raman";
  Cmd = "run_sim";
  Department = "CompSci";
  ContactAddress = "ca://raman.cs.wisc.edu";
  ImageSize = 28000;
  Constraint = other.Type == "Machine" && Arch == "INTEL" &&
               OpSys == "Solaris251" && Disk >= self.ImageSize;
  Rank = other.Mips ]

[ Type = "Job";
  Owner = "solomon";
  Cmd = "render_frames";
  Department = "CompSci";
  ContactAddress = "ca://solomon.cs.wisc.edu";
  ImageSize = 120000;
  Constraint = other.Type == "Machine" && other.Memory >= 128 &&
               other.Disk >= self.ImageSize;
  Rank = other.KFlops ]

[ Type = "Job";
  Owner = "livny";
  Cmd = "simulate_pool";
  Department = "CompSci";
  ContactAddress = "ca://livny.cs.wisc.edu";
  ImageSize = 64000;
  Constraint = other.Type == "Machine" &&
               (other.Arch == "ALPHA" || other.Memory >= 64) &&
               other.Disk >= self.ImageSize;
  Rank = other.Memory ]
