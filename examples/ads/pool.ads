# Machine classads in the style of Figure 2 of the paper: workstations
# advertising their resources, owner policies, and preferences. These are
# the pool mm_lint folds into a schema when checking job ads, and are
# themselves linted against the job ads in jobs.ads (ctest: lint_example_*).

[ Type = "Machine";
  Name = "leonardo";
  Activity = "Idle";
  Arch = "INTEL";
  OpSys = "Solaris251";
  Memory = 64;
  Disk = 3076076;
  Mips = 104;
  KFlops = 21893;
  KeyboardIdle = 1432;
  LoadAvg = 0.042;
  ContactAddress = "ra://leonardo.cs.wisc.edu";
  ResearchGroup = { "raman", "miron", "solomon" };
  Friends = { "tannenba", "wright" };
  Untrusted = { "rival", "riffraff" };
  Constraint = !member(other.Owner, Untrusted) && other.Type == "Job" &&
               other.ImageSize <= Disk;
  Rank = member(other.Owner, ResearchGroup) * 10 +
         member(other.Owner, Friends) ]

[ Type = "Machine";
  Name = "raphael";
  Activity = "Idle";
  Arch = "INTEL";
  OpSys = "Solaris251";
  Memory = 128;
  Disk = 8192000;
  Mips = 210;
  KFlops = 45120;
  KeyboardIdle = 4040;
  LoadAvg = 0.011;
  ContactAddress = "ra://raphael.cs.wisc.edu";
  ResearchGroup = { "solomon", "livny" };
  Friends = { "raman" };
  Untrusted = { "rival" };
  Constraint = !member(other.Owner, Untrusted) && other.Type == "Job" &&
               other.ImageSize <= Memory * 1024;
  Rank = member(other.Owner, ResearchGroup) * 10 ]

[ Type = "Machine";
  Name = "donatello";
  Activity = "Idle";
  Arch = "ALPHA";
  OpSys = "OSF1";
  Memory = 256;
  Disk = 16384000;
  Mips = 320;
  KFlops = 91005;
  KeyboardIdle = 920;
  LoadAvg = 0.210;
  ContactAddress = "ra://donatello.cs.wisc.edu";
  ResearchGroup = { "livny" };
  Friends = { };
  Untrusted = { };
  Constraint = other.Type == "Job" && other.ImageSize <= Disk;
  Rank = other.Department == self.Department;
  Department = "CompSci" ]
