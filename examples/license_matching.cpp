// license_matching - Matchmaking beyond machines.
//
// Section 3: the framework works "in an environment where a large number
// of dissimilar resources (such as workstations, tape drives, network
// links, application instances, and software licenses) transit between
// available and unavailable states". The matchmaker is a general service:
// nothing in it knows what a "machine" is. This example advertises
// software licenses and tape drives next to jobs that need them — no code
// changes, only different ads.
//
//   $ ./license_matching
#include <cstdio>
#include <vector>

#include "classad/classad.h"
#include "matchmaker/matchmaker.h"

using classad::ClassAd;
using classad::ClassAdPtr;
using classad::makeShared;

namespace {

ClassAdPtr licenseAd(const std::string& product, int seatsFree,
                     const std::string& licensedGroup) {
  ClassAd ad;
  ad.set("Type", "License");
  ad.set("Product", product);
  ad.set("SeatsFree", seatsFree);
  ad.set("Name", product + "-server");
  ad.set("ContactAddress", "lic://" + product);
  ad.set("LicensedGroup", std::vector<std::string>{licensedGroup});
  // The license server's own policy: only licensed groups, and keep one
  // seat in reserve for interactive use during the day.
  ad.setExpr("Constraint",
             "other.Type == \"Job\" && member(other.Group, LicensedGroup)"
             " && (SeatsFree > 1 || other.Interactive is true)");
  // Prefer short jobs so seats turn over.
  ad.setExpr("Rank", "other.ExpectedMinutes < 30 ? 1 : 0");
  return makeShared(std::move(ad));
}

ClassAdPtr tapeDriveAd(const std::string& name, const std::string& format) {
  ClassAd ad;
  ad.set("Type", "TapeDrive");
  ad.set("Name", name);
  ad.set("Format", format);
  ad.set("ContactAddress", "tape://" + name);
  ad.setExpr("Constraint", "other.Type == \"Job\" && other.TapeFormat == "
                           "self.Format");
  ad.set("Rank", 0);
  return makeShared(std::move(ad));
}

ClassAdPtr simulationJob(const std::string& owner, int minutes) {
  ClassAd ad;
  ad.set("Type", "Job");
  ad.set("Owner", owner);
  ad.set("JobId", 1);
  ad.set("Group", "physics");
  ad.set("ExpectedMinutes", minutes);
  ad.set("ContactAddress", "ca://" + owner);
  ad.setExpr("Constraint",
             "other.Type == \"License\" && other.Product == \"matlab\"");
  ad.setExpr("Rank", "other.SeatsFree");  // prefer less-contended servers
  return makeShared(std::move(ad));
}

ClassAdPtr archiveJob(const std::string& owner) {
  ClassAd ad;
  ad.set("Type", "Job");
  ad.set("Owner", owner);
  ad.set("JobId", 2);
  ad.set("TapeFormat", "DLT");
  ad.set("ContactAddress", "ca://" + owner);
  ad.setExpr("Constraint", "other.Type == \"TapeDrive\"");
  ad.set("Rank", 0);
  return makeShared(std::move(ad));
}

}  // namespace

int main() {
  const std::vector<ClassAdPtr> resources = {
      licenseAd("matlab", 5, "physics"),
      licenseAd("matlab", 1, "physics"),   // last seat reserved
      licenseAd("gaussian", 8, "chemistry"),
      tapeDriveAd("vault1", "DLT"),
      tapeDriveAd("vault2", "EXB8500"),
  };
  const std::vector<ClassAdPtr> requests = {
      simulationJob("raman", 20),
      archiveJob("miron"),
  };

  matchmaking::Matchmaker matchmaker;
  matchmaking::Accountant accountant;
  matchmaking::NegotiationStats stats;
  const auto matches =
      matchmaker.negotiate(requests, resources, accountant, 0.0, &stats);

  std::printf("%zu requests, %zu resources (licenses + tape drives), "
              "%zu matches\n\n",
              requests.size(), resources.size(), matches.size());
  for (const auto& m : matches) {
    std::printf("match: %-12s -> %-16s (request rank %.0f, resource rank "
                "%.0f)\n",
                m.user.c_str(),
                m.resource->getString("Name").value_or("?").c_str(),
                m.requestRank, m.resourceRank);
  }

  std::printf("\nWhy raman got the 5-seat server and not the 1-seat one:\n");
  std::printf("  the 1-seat server's policy reserves its last seat\n"
              "  (SeatsFree > 1 fails) - a provider-side constraint no\n"
              "  conventional job-control language can express.\n");
  std::printf("Why miron's archive job landed on vault1, not vault2:\n"
              "  bilateral format agreement (DLT == DLT).\n");
  return matches.size() == 2 ? 0 : 1;
}
