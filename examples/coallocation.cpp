// coallocation - Gang matching for resource aggregates (Sections 3.1 & 5).
//
// A parallel visualization job needs three things AT ONCE: two compute
// nodes (one big-memory head node, one worker) and a DLT tape drive for
// the input volume. Either it gets all three or it should get nothing —
// holding two while waiting for the third would deadlock against other
// gangs. The gang matcher expresses this as a classad whose Requests
// attribute nests one request ad per leg.
//
//   $ ./coallocation
#include <cstdio>
#include <vector>

#include "classad/classad.h"
#include "matchmaker/gangmatch.h"

using classad::ClassAd;
using classad::ClassAdPtr;
using classad::makeShared;

namespace {

ClassAdPtr machine(const std::string& name, int memoryMB, int mips) {
  ClassAd ad;
  ad.set("Type", "Machine");
  ad.set("Name", name);
  ad.set("ContactAddress", "ra://" + name);
  ad.set("Memory", memoryMB);
  ad.set("Mips", mips);
  ad.setExpr("Constraint", "other.Type == \"Job\"");
  ad.set("Rank", 0);
  return makeShared(std::move(ad));
}

ClassAdPtr drive(const std::string& name, const std::string& format) {
  ClassAd ad;
  ad.set("Type", "TapeDrive");
  ad.set("Name", name);
  ad.set("ContactAddress", "tape://" + name);
  ad.set("Format", format);
  ad.setExpr("Constraint", "other.Type == \"Job\"");
  ad.set("Rank", 0);
  return makeShared(std::move(ad));
}

}  // namespace

int main() {
  const std::vector<ClassAdPtr> resources = {
      machine("head-candidate", 256, 200), machine("worker1", 64, 350),
      machine("worker2", 64, 150),         machine("tiny", 32, 400),
      drive("vault1", "DLT"),              drive("vault2", "EXB8500"),
  };

  ClassAd gang;
  gang.set("Type", "Gang");
  gang.set("Owner", "raman");
  gang.set("ContactAddress", "ca://raman");
  gang.setExpr("Requests", R"({
    [ Label = "head";
      Memory = 256;
      Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
      Rank = other.Mips ],
    [ Label = "worker";
      Memory = 64;
      Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
      Rank = other.Mips ],
    [ Label = "tape";
      Constraint = other.Type == "TapeDrive" && other.Format == "DLT" ]
  })");

  std::printf("gang request:\n%s\n\n", gang.unparsePretty().c_str());

  matchmaking::GangMatcher matcher;
  const auto result = matcher.match(gang, resources);
  if (!result) {
    std::printf("no complete gang available\n");
    return 1;
  }
  std::printf("gang placed (total rank %.0f):\n", result->totalRank);
  for (const auto& leg : result->legs) {
    std::printf("  %-7s -> %-15s (leg rank %.0f)\n",
                leg.legAd->getString("Label").value_or("?").c_str(),
                leg.resource->getString("Name").value_or("?").c_str(),
                leg.legRank);
  }

  // All-or-nothing in action: take the only DLT drive away and the WHOLE
  // gang fails, even though compute is plentiful.
  std::vector<ClassAdPtr> noTape(resources.begin(), resources.end() - 2);
  noTape.push_back(drive("vault2", "EXB8500"));
  std::printf("\nwithout a DLT drive: %s\n",
              matcher.match(gang, noTape) ? "placed (?!)"
                                          : "whole gang refused (correct: "
                                            "no partial allocation)");
  return 0;
}
