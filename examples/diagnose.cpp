// diagnose - The Section 5 diagnostic tool: "why doesn't my job match?"
//
// Builds a realistic pool, then analyzes three requests: a matchable one,
// one whose constraint no resource can ever satisfy (and WHICH conjunct is
// the culprit), and one that every owner's policy rejects. This is the
// paper's proposed remedy for "administrators and customers who may wonder
// why certain requests are unable to find resources".
//
//   $ ./diagnose
#include <cstdio>
#include <vector>

#include "matchmaker/analysis.h"
#include "sim/paper_ads.h"
#include "sim/rng.h"
#include "sim/workload.h"

using classad::ClassAd;
using classad::ClassAdPtr;

namespace {

/// Snapshot ads for a generated pool (as the RAs would advertise them,
/// minus the dynamic attributes, which diagnosis does not need).
std::vector<ClassAdPtr> poolSnapshot(std::size_t count) {
  htcsim::MachinePoolConfig config;
  config.count = count;
  htcsim::Rng rng(4242);
  std::vector<ClassAdPtr> ads;
  for (const htcsim::MachineSpec& spec :
       htcsim::generateMachines(config, rng)) {
    ClassAd ad;
    ad.set("Type", "Machine");
    ad.set("Name", spec.name);
    ad.set("Arch", spec.arch);
    ad.set("OpSys", spec.opSys);
    ad.set("Memory", spec.memoryMB);
    ad.set("Disk", spec.diskKB);
    ad.set("Mips", spec.mips);
    ad.set("KeyboardIdle", 3600);
    ad.set("LoadAvg", 0.05);
    ad.set("DayTime", 14 * 3600);
    if (spec.policy == htcsim::OwnerPolicy::Figure1) {
      ad.set("ResearchGroup", spec.researchGroup);
      ad.set("Friends", spec.friends);
      ad.set("Untrusted", spec.untrusted);
      ad.setExpr("Rank",
                 "member(other.Owner, ResearchGroup) * 10 + "
                 "member(other.Owner, Friends)");
      ad.setExpr("Constraint", htcsim::kFigure1IntendedConstraint);
    } else {
      ad.setExpr("Constraint", "other.Type == \"Job\"");
    }
    ads.push_back(classad::makeShared(std::move(ad)));
  }
  return ads;
}

void report(const char* title, const ClassAd& job,
            const std::vector<ClassAdPtr>& pool) {
  std::printf("=== %s ===\n", title);
  std::printf("request: %s\n\n", job.unparse().c_str());
  const matchmaking::Diagnosis d = matchmaking::diagnose(job, pool);
  std::printf("%s\n", d.summary().c_str());
}

}  // namespace

int main() {
  const auto pool = poolSnapshot(100);

  ClassAd fine;
  fine.set("Type", "Job");
  fine.set("Owner", "raman");
  fine.set("Memory", 31);
  fine.setExpr("Constraint",
               "other.Type == \"Machine\" && Arch == \"INTEL\" && "
               "other.Memory >= self.Memory");
  report("a healthy request", fine, pool);

  ClassAd impossible;
  impossible.set("Type", "Job");
  impossible.set("Owner", "raman");
  impossible.set("Memory", 31);
  impossible.setExpr(
      "Constraint",
      "other.Type == \"Machine\" && Arch == \"INTEL\" && "
      "OpSys == \"WINNT\" && other.Memory >= self.Memory");
  report("an impossible request (no WINNT in this pool)", impossible, pool);

  ClassAd typo;
  typo.set("Type", "Job");
  typo.set("Owner", "raman");
  typo.setExpr("Constraint", "other.Memoryy >= 32");  // note the typo
  report("a typo (undefined attribute, the silent killer)", typo, pool);

  ClassAd unpopular;
  unpopular.set("Type", "Job");
  unpopular.set("Owner", "rival");
  unpopular.setExpr("Constraint", "other.Type == \"Machine\"");
  report("an unpopular customer (owner policies at work)", unpopular, pool);

  // Pool-wide sweep, the administrator's view.
  std::vector<ClassAdPtr> requests = {
      classad::makeShared(std::move(fine)),
      classad::makeShared(std::move(impossible)),
      classad::makeShared(std::move(typo)),
  };
  const auto bad = matchmaking::findUnsatisfiableRequests(requests, pool);
  std::printf("=== administrator sweep ===\n");
  std::printf("%zu of %zu queued requests can never match this pool: ",
              bad.size(), requests.size());
  for (const std::size_t i : bad) std::printf("#%zu ", i);
  std::printf("\n");
  return bad.size() == 2 ? 0 : 1;
}
