// grid_federation - Flocking between autonomous pools (the paper's
// reference [3], "A Worldwide Flock of Condors: Load Sharing among
// Workstation Clusters").
//
// Two sites run their own pool managers: Madison (big, busy) and Bologna
// (small, mostly idle). Madison's customers flock: jobs starved locally
// for two minutes are also advertised to Bologna. Nothing else changes —
// remote matches are claimed through exactly the same protocol, because
// the matchmaking framework never cared which matchmaker made the
// introduction.
//
//   $ ./grid_federation
#include <cstdio>
#include <memory>
#include <vector>

#include "sim/customer_agent.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/pool_manager.h"
#include "sim/resource_agent.h"
#include "sim/workload.h"

using namespace htcsim;

namespace {

struct Site {
  Site(Simulator& sim, Network& net, Metrics& metrics, std::string name,
       std::size_t machines, std::uint64_t seed) {
    PoolManagerConfig config;
    config.address = "collector." + name;
    manager = std::make_unique<PoolManager>(sim, net, metrics, config);
    manager->start();
    Rng rng(seed);
    for (std::size_t i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.name = name + "-node" + std::to_string(i);
      spec.mips = static_cast<std::int64_t>(rng.range(100, 300));
      spec.memoryMB = 128;
      spec.policy = OwnerPolicy::AlwaysAvailable;
      spec.meanOwnerAbsence = 0.0;
      pool.push_back(
          std::make_unique<Machine>(sim, spec, rng.splitChild(i)));
      ResourceAgentConfig raConfig;
      raConfig.managerAddress = config.address;
      agents.push_back(std::make_unique<ResourceAgent>(
          sim, net, *pool.back(), metrics, rng.splitChild(1000 + i),
          raConfig));
      agents.back()->start();
    }
  }
  std::unique_ptr<PoolManager> manager;
  std::vector<std::unique_ptr<Machine>> pool;
  std::vector<std::unique_ptr<ResourceAgent>> agents;
};

}  // namespace

int main() {
  Simulator sim;
  Metrics metrics;
  Network net(sim, Rng(4242));

  Site madison(sim, net, metrics, "madison", 4, 1);
  Site bologna(sim, net, metrics, "bologna", 10, 2);

  // Madison's users flock to Bologna when starved for 120 s.
  CustomerAgentConfig caConfig;
  caConfig.managerAddress = "collector.madison";
  caConfig.flockManagers = {"collector.bologna"};
  caConfig.flockAfter = 120.0;
  CustomerAgent ca(sim, net, metrics, "raman", Rng(3), caConfig);
  ca.start();

  // 30 jobs of ~20 minutes each: far more than Madison's 4 nodes can
  // absorb quickly.
  Rng jobRng(7);
  for (int i = 0; i < 30; ++i) {
    Job job;
    job.id = static_cast<std::uint64_t>(i + 1);
    job.owner = "raman";
    job.totalWork = 1200.0;
    job.memoryMB = 64;
    ca.submit(job);
  }

  sim.runUntil(2 * 3600.0);

  std::size_t madisonBusy = 0, bolognaBusy = 0;
  for (const auto& ra : madison.agents) madisonBusy += ra->claimed();
  for (const auto& ra : bologna.agents) bolognaBusy += ra->claimed();

  std::printf("after 2 simulated hours:\n");
  std::printf("  jobs completed:        %zu / %zu\n", metrics.jobsCompleted,
              metrics.jobsSubmitted);
  std::printf("  mean wait:             %.0f s\n", metrics.meanWaitTime());
  std::printf("  madison nodes busy:    %zu / %zu\n", madisonBusy,
              madison.agents.size());
  std::printf("  bologna nodes busy:    %zu / %zu\n", bolognaBusy,
              bologna.agents.size());
  std::printf("\nWithout flocking the same workload would queue behind "
              "madison's\n4 nodes; with it, bologna's idle capacity "
              "absorbs the overflow.\n");
  return metrics.jobsCompleted > 10 ? 0 : 1;
}
