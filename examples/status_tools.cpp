// status_tools - condor_status / condor_q analogues over a live pool.
//
// Section 4: "One-way matching protocols are used to find all objects
// matching a given pattern. For example, there are tools to check on the
// status of job queues and browse existing resources." Runs a pool for an
// hour, then answers the queries an administrator would ask.
//
//   $ ./status_tools [constraint]
#include <cstdio>
#include <string>
#include <vector>

#include "classad/query.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  htcsim::ScenarioConfig config;
  config.seed = 11;
  config.duration = 3600.0;
  config.machines.count = 25;
  config.workload.users = {"raman", "tannenba", "alice"};
  config.workload.jobsPerUserPerHour = 30.0;
  htcsim::Scenario scenario(config);
  scenario.run();

  // Snapshot the pool the way the collector sees it: one ad per RA.
  std::vector<classad::ClassAdPtr> machineAds;
  for (const auto& ra : scenario.resourceAgents()) {
    machineAds.push_back(classad::makeShared(ra->buildAd()));
  }
  // And one ad per queued/running job, CA-side (condor_q's view).
  std::vector<classad::ClassAdPtr> jobAds;
  for (const auto& ca : scenario.customerAgents()) {
    for (const htcsim::Job& job : ca->jobs()) {
      if (job.done()) continue;
      classad::ClassAd ad = ca->buildRequestAd(job);
      ad.set("JobState", job.state == htcsim::JobState::Running
                             ? "Running"
                             : "Idle");
      jobAds.push_back(classad::makeShared(std::move(ad)));
    }
  }

  // condor_status: browse resources.
  std::printf("$ condor_status    (%zu machines)\n", machineAds.size());
  classad::Query status = classad::Query::all();
  status.project({"Name", "Arch", "OpSys", "Memory", "State", "LoadAvg"});
  std::printf("%s\n", classad::formatTable(status, machineAds).c_str());

  // condor_status -constraint: one-way matching with a user pattern.
  const std::string constraintText =
      argc > 1 ? argv[1]
               : "Arch == \"INTEL\" && State == \"Unclaimed\" && Memory >= 64";
  std::printf("$ condor_status -constraint '%s'\n", constraintText.c_str());
  classad::Query filtered = classad::Query::fromConstraint(constraintText);
  filtered.project({"Name", "Arch", "Memory", "State"});
  std::printf("%s\n", classad::formatTable(filtered, machineAds).c_str());

  // condor_q: browse the job queues.
  std::printf("$ condor_q    (%zu jobs still in the system)\n",
              jobAds.size());
  classad::Query queue = classad::Query::all();
  queue.project({"JobId", "Owner", "Cmd", "Memory", "JobState"});
  std::printf("%s\n", classad::formatTable(queue, jobAds).c_str());

  // Aggregate questions, query-engine style.
  const auto claimed =
      classad::Query::fromConstraint("State == \"Claimed\"").count(machineAds);
  const auto idleJobs =
      classad::Query::fromConstraint("JobState == \"Idle\"").count(jobAds);
  std::printf("summary: %zu/%zu machines claimed, %zu jobs idle\n\n", claimed,
              machineAds.size(), idleJobs);

  // condor_history: the pool's event log, which is itself a list of
  // classads — same query engine, no special code.
  const auto history = scenario.metrics().history.events();
  std::printf("$ condor_history --totals Event    (%zu records)\n",
              history.size());
  for (const auto& [event, count] : classad::summarize(history, "Event")) {
    std::printf("%6zu  %s\n", count, event.c_str());
  }
  const auto evictions = classad::Query::fromConstraint(
      "Event == \"evicted\" && Checkpointed is true");
  std::printf("checkpointed evictions: %zu\n", evictions.count(history));
  return 0;
}
