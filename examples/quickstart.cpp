// quickstart - The 5-minute tour of the classad matchmaking library.
//
// Builds the paper's Figure 1 (a workstation ad) and Figure 2 (a job ad),
// runs the two-sided match test, evaluates both Rank expressions, and
// walks the match through claim-time verification — the whole Section 3
// framework in one file.
//
//   $ ./quickstart
#include <cstdio>

#include "classad/match.h"
#include "matchmaker/claiming.h"
#include "sim/paper_ads.h"

int main() {
  using classad::ClassAd;

  // 1. Parse advertisements from their textual form (or build them with
  //    the ClassAd API — see the other examples).
  ClassAd machine = htcsim::makeFigure1Ad();  // Figure 1, verbatim
  ClassAd job = htcsim::makeFigure2Ad();      // Figure 2, verbatim

  std::printf("--- the provider (Figure 1) ---\n%s\n\n",
              machine.unparsePretty().c_str());
  std::printf("--- the customer (Figure 2) ---\n%s\n\n",
              job.unparsePretty().c_str());

  // 2. Two-sided matching: both Constraints must evaluate to true with
  //    `other` bound to the opposite ad.
  const classad::MatchAnalysis analysis = classad::analyzeMatch(job, machine);
  std::printf("job constraint vs machine:     %s\n",
              std::string(classad::toString(analysis.requestSide)).c_str());
  std::printf("machine constraint vs job:     %s\n",
              std::string(classad::toString(analysis.resourceSide)).c_str());
  std::printf("matched:                       %s\n",
              analysis.matched ? "yes" : "no");

  // 3. Rank: the customer prefers fast, roomy machines (Figure 2's
  //    KFlops/1E3 + other.Memory/32); the machine prefers its research
  //    group (Figure 1's member(...) tiers).
  std::printf("job's Rank of machine:         %.3f\n", analysis.requestRank);
  std::printf("machine's Rank of job:         %.0f\n", analysis.resourceRank);

  // 4. A match is a hint, not an allocation: the customer must claim the
  //    resource directly, presenting the provider's ticket, and the
  //    provider re-verifies everything against its CURRENT state.
  const matchmaking::Ticket ticket = 0xC0FFEE;
  matchmaking::ClaimRequest claim;
  claim.requestAd = classad::makeShared(job);
  claim.ticket = ticket;
  claim.customerContact = "ca://raman";
  const matchmaking::ClaimResponse ok =
      matchmaking::evaluateClaim(machine, ticket, claim);
  std::printf("claim with valid ticket:       %s\n",
              ok.accepted ? "accepted" : ("rejected: " + ok.reason).c_str());

  // 5. Weak consistency in action: by claim time the owner is back at
  //    the keyboard, so the same claim is now refused — the customer
  //    simply returns to matchmaking.
  ClassAd busyNow = machine;
  busyNow.set("KeyboardIdle", 3.0);
  busyNow.set("LoadAvg", 1.25);
  busyNow.set("DayTime", 12 * 3600.0);
  ClassAd strangerJob = job;
  strangerJob.set("Owner", "alice");  // not in the research group
  matchmaking::ClaimRequest stale;
  stale.requestAd = classad::makeShared(strangerJob);
  stale.ticket = ticket;
  const matchmaking::ClaimResponse refused =
      matchmaking::evaluateClaim(busyNow, ticket, stale);
  std::printf("stale claim after owner return: %s (%s)\n",
              refused.accepted ? "accepted" : "rejected",
              refused.reason.c_str());
  return analysis.matched && ok.accepted && !refused.accepted ? 0 : 1;
}
