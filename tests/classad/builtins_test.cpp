// The built-in function library, function by function, including the
// member() semantics Figure 1's policy depends on.
#include "classad/builtins.h"

#include <gtest/gtest.h>

#include "classad/classad.h"

namespace classad {
namespace {

Value evalConst(const std::string& text) {
  ClassAd empty;
  return empty.evaluate(text);
}

// --- member ---------------------------------------------------------------

struct MemberCase {
  const char* expr;
  const char* expect;  // "true" / "false" / "undefined" / "error"
};

class MemberTest : public ::testing::TestWithParam<MemberCase> {};

TEST_P(MemberTest, Semantics) {
  const Value v = evalConst(GetParam().expr);
  EXPECT_EQ(v.toLiteralString(), GetParam().expect) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MemberTest,
    ::testing::Values(
        MemberCase{"member(2, {1, 2, 3})", "true"},
        MemberCase{"member(4, {1, 2, 3})", "false"},
        MemberCase{"member(2.0, {1, 2, 3})", "true"},  // == promotion
        MemberCase{"member(\"raman\", {\"raman\", \"miron\"})", "true"},
        // Strings compare case-insensitively under ==.
        MemberCase{"member(\"RAMAN\", {\"raman\"})", "true"},
        MemberCase{"member(\"rival\", {\"raman\", \"miron\"})", "false"},
        MemberCase{"member(undefined, {1, 2})", "undefined"},
        MemberCase{"member(1, undefined)", "undefined"},
        MemberCase{"member(1, error)", "error"},
        MemberCase{"member(1, 5)", "error"},  // not a list
        MemberCase{"member(1, {})", "false"},
        // Mismatched-type elements are skipped, not errors.
        MemberCase{"member(1, {\"x\", 1})", "true"},
        MemberCase{"member(1, {\"x\"})", "false"},
        // An undefined element leaves a no-match outcome undefined...
        MemberCase{"member(1, {undefined, 2})", "undefined"},
        // ...but a definite hit wins.
        MemberCase{"member(1, {undefined, 1})", "true"}));

TEST(BuiltinsTest, IdenticalMemberIsCaseSensitive) {
  EXPECT_TRUE(evalConst("identicalMember(\"a\", {\"a\"})").isBooleanTrue());
  EXPECT_FALSE(evalConst("identicalMember(\"A\", {\"a\"})").asBoolean());
  EXPECT_TRUE(
      evalConst("identicalMember(undefined, {undefined})").isBooleanTrue());
}

// --- type predicates --------------------------------------------------------

TEST(BuiltinsTest, TypePredicatesObserveExceptional) {
  EXPECT_TRUE(evalConst("isUndefined(undefined)").isBooleanTrue());
  EXPECT_FALSE(evalConst("isUndefined(1)").asBoolean());
  EXPECT_TRUE(evalConst("isError(error)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isError(1/0)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isString(\"x\")").isBooleanTrue());
  EXPECT_TRUE(evalConst("isInteger(3)").isBooleanTrue());
  EXPECT_FALSE(evalConst("isInteger(3.0)").asBoolean());
  EXPECT_TRUE(evalConst("isReal(3.0)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isNumber(3)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isNumber(3.5)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isBoolean(true)").isBooleanTrue());
  EXPECT_TRUE(evalConst("isList({1})").isBooleanTrue());
  EXPECT_TRUE(evalConst("isClassAd([a=1])").isBooleanTrue());
}

// --- strings ----------------------------------------------------------------

TEST(BuiltinsTest, Strcat) {
  EXPECT_EQ(evalConst("strcat(\"a\", \"b\", \"c\")").asString(), "abc");
  EXPECT_EQ(evalConst("strcat(\"mem=\", 64)").asString(), "mem=64");
  EXPECT_TRUE(evalConst("strcat(\"a\", undefined)").isUndefined());
  EXPECT_TRUE(evalConst("strcat(\"a\", {1})").isError());
}

TEST(BuiltinsTest, Substr) {
  EXPECT_EQ(evalConst("substr(\"leonardo\", 0, 3)").asString(), "leo");
  EXPECT_EQ(evalConst("substr(\"leonardo\", 4)").asString(), "ardo");
  EXPECT_EQ(evalConst("substr(\"leonardo\", -4)").asString(), "ardo");
  EXPECT_EQ(evalConst("substr(\"abc\", 1, 100)").asString(), "bc");
  EXPECT_EQ(evalConst("substr(\"abc\", 10)").asString(), "");
  EXPECT_TRUE(evalConst("substr(1, 2)").isError());
}

TEST(BuiltinsTest, CaseConversion) {
  EXPECT_EQ(evalConst("toUpper(\"intel\")").asString(), "INTEL");
  EXPECT_EQ(evalConst("toLower(\"SOLARIS251\")").asString(), "solaris251");
}

TEST(BuiltinsTest, StrcmpFamily) {
  EXPECT_EQ(evalConst("strcmp(\"a\", \"b\")").asInteger(), -1);
  EXPECT_EQ(evalConst("strcmp(\"b\", \"a\")").asInteger(), 1);
  EXPECT_EQ(evalConst("strcmp(\"a\", \"a\")").asInteger(), 0);
  EXPECT_NE(evalConst("strcmp(\"A\", \"a\")").asInteger(), 0);
  EXPECT_EQ(evalConst("stricmp(\"A\", \"a\")").asInteger(), 0);
}

// --- numeric ----------------------------------------------------------------

TEST(BuiltinsTest, FloorCeilingRound) {
  EXPECT_EQ(evalConst("floor(2.7)").asInteger(), 2);
  EXPECT_EQ(evalConst("floor(-2.1)").asInteger(), -3);
  EXPECT_EQ(evalConst("ceiling(2.1)").asInteger(), 3);
  EXPECT_EQ(evalConst("round(2.5)").asInteger(), 3);
  EXPECT_EQ(evalConst("round(2.4)").asInteger(), 2);
  EXPECT_EQ(evalConst("floor(7)").asInteger(), 7);  // ints pass through
}

TEST(BuiltinsTest, AbsSqrtPow) {
  EXPECT_EQ(evalConst("abs(-5)").asInteger(), 5);
  EXPECT_DOUBLE_EQ(evalConst("abs(-2.5)").asReal(), 2.5);
  EXPECT_DOUBLE_EQ(evalConst("sqrt(16)").asReal(), 4.0);
  EXPECT_TRUE(evalConst("sqrt(-1)").isError());
  EXPECT_DOUBLE_EQ(evalConst("pow(2, 10)").asReal(), 1024.0);
}

TEST(BuiltinsTest, MinMaxSumAvgOverLists) {
  EXPECT_EQ(evalConst("min({3, 1, 2})").asInteger(), 1);
  EXPECT_EQ(evalConst("max({3, 1, 2})").asInteger(), 3);
  EXPECT_EQ(evalConst("sum({1, 2, 3})").asInteger(), 6);
  EXPECT_DOUBLE_EQ(evalConst("avg({1, 2, 3, 4})").asReal(), 2.5);
  EXPECT_EQ(evalConst("min(4, 7)").asInteger(), 4);  // variadic form
  EXPECT_TRUE(evalConst("min({})").isUndefined());
  EXPECT_TRUE(evalConst("sum({1, \"x\"})").isError());
}

// --- conversions -------------------------------------------------------------

TEST(BuiltinsTest, IntConversion) {
  EXPECT_EQ(evalConst("int(3.9)").asInteger(), 3);
  EXPECT_EQ(evalConst("int(\"42\")").asInteger(), 42);
  EXPECT_EQ(evalConst("int(true)").asInteger(), 1);
  EXPECT_TRUE(evalConst("int(\"x\")").isError());
  EXPECT_TRUE(evalConst("int(undefined)").isUndefined());
}

TEST(BuiltinsTest, RealConversion) {
  EXPECT_DOUBLE_EQ(evalConst("real(3)").asReal(), 3.0);
  EXPECT_DOUBLE_EQ(evalConst("real(\"2.5\")").asReal(), 2.5);
  EXPECT_TRUE(evalConst("real(\"INF\")").isReal());
}

TEST(BuiltinsTest, StringConversion) {
  EXPECT_EQ(evalConst("string(42)").asString(), "42");
  EXPECT_EQ(evalConst("string(true)").asString(), "true");
  EXPECT_EQ(evalConst("string(\"already\")").asString(), "already");
}

TEST(BuiltinsTest, BoolConversion) {
  EXPECT_TRUE(evalConst("bool(1)").isBooleanTrue());
  EXPECT_FALSE(evalConst("bool(0)").asBoolean());
  EXPECT_TRUE(evalConst("bool(\"TRUE\")").isBooleanTrue());
  EXPECT_TRUE(evalConst("bool(\"maybe\")").isError());
}

// --- misc ---------------------------------------------------------------------

TEST(BuiltinsTest, Size) {
  EXPECT_EQ(evalConst("size({1, 2, 3})").asInteger(), 3);
  EXPECT_EQ(evalConst("size(\"hello\")").asInteger(), 5);
  EXPECT_EQ(evalConst("size([a=1; b=2])").asInteger(), 2);
  EXPECT_TRUE(evalConst("size(5)").isError());
}

TEST(BuiltinsTest, IfThenElse) {
  EXPECT_EQ(evalConst("ifThenElse(true, 1, 2)").asInteger(), 1);
  EXPECT_EQ(evalConst("ifThenElse(false, 1, 2)").asInteger(), 2);
  EXPECT_TRUE(evalConst("ifThenElse(undefined, 1, 2)").isUndefined());
}

TEST(BuiltinsTest, UnknownFunctionIsError) {
  const Value v = evalConst("noSuchFunction(1)");
  ASSERT_TRUE(v.isError());
  EXPECT_NE(v.errorReason().find("noSuchFunction"), std::string::npos);
}

TEST(BuiltinsTest, WrongArityIsError) {
  EXPECT_TRUE(evalConst("member(1)").isError());
  EXPECT_TRUE(evalConst("size()").isError());
  EXPECT_TRUE(evalConst("floor(1, 2)").isError());
}

TEST(BuiltinsTest, NamesAreCaseInsensitive) {
  EXPECT_TRUE(evalConst("MEMBER(1, {1})").isBooleanTrue());
  EXPECT_TRUE(evalConst("Member(1, {1})").isBooleanTrue());
}

TEST(BuiltinsTest, BuiltinNamesListIsSortedAndNonEmpty) {
  const auto names = builtinNames();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace classad
