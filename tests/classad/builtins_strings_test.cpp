// String-list and regular-expression builtins (classic-Condor policy
// idioms: comma-separated lists in strings, regexp name matching).
#include <gtest/gtest.h>

#include "classad/classad.h"

namespace classad {
namespace {

Value evalConst(const std::string& text) {
  ClassAd empty;
  return empty.evaluate(text);
}

TEST(StringListTest, MemberBasic) {
  EXPECT_TRUE(
      evalConst("stringListMember(\"INTEL\", \"INTEL,SPARC\")")
          .isBooleanTrue());
  EXPECT_FALSE(
      evalConst("stringListMember(\"ALPHA\", \"INTEL,SPARC\")").asBoolean());
}

TEST(StringListTest, MemberIsCaseInsensitiveAndTrims) {
  EXPECT_TRUE(
      evalConst("stringListMember(\"intel\", \"INTEL , SPARC\")")
          .isBooleanTrue());
}

TEST(StringListTest, CustomDelimiters) {
  EXPECT_TRUE(
      evalConst("stringListMember(\"b\", \"a;b;c\", \";\")")
          .isBooleanTrue());
  EXPECT_EQ(evalConst("stringListSize(\"a;b;c\", \";\")").asInteger(), 3);
}

TEST(StringListTest, SizeCountsEntries) {
  EXPECT_EQ(evalConst("stringListSize(\"a,b,c\")").asInteger(), 3);
  EXPECT_EQ(evalConst("stringListSize(\"\")").asInteger(), 0);
  EXPECT_EQ(evalConst("stringListSize(\"solo\")").asInteger(), 1);
}

TEST(StringListTest, MemberPropagatesExceptional) {
  EXPECT_TRUE(
      evalConst("stringListMember(undefined, \"a,b\")").isUndefined());
  EXPECT_TRUE(evalConst("stringListMember(\"a\", 5)").isError());
}

TEST(StringListTest, SplitYieldsList) {
  const Value v = evalConst("split(\"a, b, c\")");
  ASSERT_TRUE(v.isList());
  ASSERT_EQ(v.asList()->size(), 3u);
  EXPECT_EQ((*v.asList())[1].asString(), "b");
  // split drops empty fragments (condor semantics).
  EXPECT_EQ(evalConst("size(split(\"a,,b\", \",\"))").asInteger(), 2);
}

TEST(StringListTest, JoinConcatenates) {
  EXPECT_EQ(evalConst("join(\"-\", {\"a\", \"b\", \"c\"})").asString(),
            "a-b-c");
  EXPECT_EQ(evalConst("join(\",\", {1, 2})").asString(), "1,2");
  EXPECT_EQ(evalConst("join(\",\", {})").asString(), "");
  EXPECT_TRUE(evalConst("join(\",\", {[a=1]})").isError());
}

TEST(StringListTest, JoinSplitRoundTrip) {
  EXPECT_EQ(
      evalConst("join(\",\", split(\"x, y, z\"))").asString(), "x,y,z");
}

TEST(RegexpTest, SearchSemantics) {
  EXPECT_TRUE(
      evalConst("regexp(\"cs\\\\.wisc\\\\.edu$\", \"leonardo.cs.wisc.edu\")")
          .isBooleanTrue());
  EXPECT_FALSE(
      evalConst("regexp(\"^cs\", \"leonardo.cs.wisc.edu\")").asBoolean());
}

TEST(RegexpTest, CaseInsensitiveOption) {
  EXPECT_FALSE(evalConst("regexp(\"intel\", \"INTEL\")").asBoolean());
  EXPECT_TRUE(
      evalConst("regexp(\"intel\", \"INTEL\", \"i\")").isBooleanTrue());
}

TEST(RegexpTest, FullMatchOption) {
  EXPECT_TRUE(
      evalConst("regexp(\"node[0-9]+\", \"node42\", \"f\")").isBooleanTrue());
  EXPECT_FALSE(
      evalConst("regexp(\"node[0-9]+\", \"node42x\", \"f\")").asBoolean());
  // Without 'f', search still hits.
  EXPECT_TRUE(
      evalConst("regexp(\"node[0-9]+\", \"node42x\")").isBooleanTrue());
}

TEST(RegexpTest, BadPatternIsError) {
  EXPECT_TRUE(evalConst("regexp(\"(unclosed\", \"x\")").isError());
  EXPECT_TRUE(evalConst("regexp(\"a\", \"b\", \"q\")").isError());
}

TEST(RegexpTest, PolicyIdiom) {
  // A realistic owner policy: only serve submitters from campus hosts.
  ClassAd machine;
  machine.setExpr("Constraint",
                  "regexp(\"\\\\.wisc\\\\.edu$\", other.SubmitHost)");
  ClassAd campus;
  campus.set("SubmitHost", "sol.cs.wisc.edu");
  ClassAd offsite;
  offsite.set("SubmitHost", "evil.example.com");
  EXPECT_TRUE(machine.evaluate("Constraint", &campus).isBooleanTrue());
  EXPECT_FALSE(machine.evaluate("Constraint", &offsite).isBooleanTrue());
}

}  // namespace
}  // namespace classad
