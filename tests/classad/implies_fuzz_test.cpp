// Seeded fuzzing of the implication prover: whatever parses must be
// provable-about without crashes, hangs, or sanitizer findings — and any
// verdict it emits on garbage input still honours the soundness contract
// (Refuted witnesses are re-checked concretely). Mirrors the mm_lint fuzz
// harness: a corpus of hostile shapes plus seeded random mutation rounds.
// The standalone fuzz binary (tools/implies_fuzz) reuses this corpus.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "classad/analysis/implies.h"
#include "classad/analysis/schema.h"
#include "classad/classad.h"
#include "sim/rng.h"

namespace classad::analysis {
namespace {

Schema fuzzSchema() {
  std::vector<ClassAd> pool;
  pool.push_back(ClassAd::parse(
      "[Arch = \"INTEL\"; Memory = 64; Disk = 3000; Load = 0.5]"));
  pool.push_back(ClassAd::parse("[Arch = \"ALPHA\"; Memory = 128]"));
  return Schema::fromAds(pool);
}

/// Drive every prover entry point on a pair of expression texts; verdicts
/// are free, crashes are not. Returns false if neither side parsed.
void proveWhatParses(const std::string& textA, const std::string& textB,
                     const Schema& schema) {
  const auto a = tryParseExpr(textA);
  const auto b = tryParseExpr(textB);
  if (!a || !b) return;
  const ClassAd self = ClassAd::parse("[MinMemory = 64]");

  for (const int mode : {0, 1, 2}) {
    ImpliesOptions opts;
    opts.maxWitnessTrials = 8;
    if (mode > 0) {
      opts.otherSchema = &schema;
      opts.exactSchemaValues = mode == 2;
    }
    const ImpliesResult r = implies(self, *a, *b, opts);
    if (r.refuted()) {
      ASSERT_TRUE(r.witness.has_value()) << textA << " => " << textB;
      EXPECT_TRUE(self.evaluate(**a, &*r.witness).isBooleanTrue())
          << textA << " => " << textB;
      EXPECT_FALSE(self.evaluate(**b, &*r.witness).isBooleanTrue())
          << textA << " => " << textB;
    }
    const ImpliesResult u = unsatisfiable(&self, *a, opts);
    if (u.refuted()) {
      ASSERT_TRUE(u.witness.has_value()) << textA;
      EXPECT_TRUE(self.evaluate(**a, &*u.witness).isBooleanTrue()) << textA;
    }
  }

  // Relaxation check over synthetic ads wrapping the fuzzed constraints.
  ClassAd oldAd;
  oldAd.insert("Requirements", *a);
  ClassAd newAd;
  newAd.insert("Requirements", *b);
  const RelaxationResult rel = isRelaxationOf(oldAd, newAd);
  if (rel.verdict == RelaxationVerdict::NotRelaxation ||
      rel.verdict == RelaxationVerdict::StrictRelaxation) {
    EXPECT_TRUE(rel.witness.has_value()) << textA << " -> " << textB;
  }
}

const char* kCorpus[] = {
    "other.Memory >= other.Memory >= 64",
    "member(other.Arch, {1, \"x\", undefined, error, {2}})",
    "member(other.Arch, other.Arch)",
    "!(!(!(other.X == 0)))",
    "other.X == 9007199254740993",          // beyond 2^53
    "other.X != -9007199254740993",
    "other.X == 0.0 || other.X == -0.0",
    "other.X == 1e308 * 10",                // folds to +inf/overflow
    "other.X == (0.0 / 0.0)",               // NaN literal
    "other.X is error",
    "other.X isnt error",
    "undefined && other.X > 0",
    "error || other.X > 0",
    "(other.X ? other.Y : other.Z)",
    "other.X == \"\"",
    "member(other.X, {})",
    "self.Foo == other.Foo",
    "MinMemory <= other.Memory && other.Memory <= MinMemory",
    "other.X < 5 && other.X < 5 && other.X < 5 && other.X < 5",
    "((((((((((other.X > 0))))))))))",
};

TEST(ImpliesFuzzTest, SeedCorpusNeverCrashes) {
  const Schema schema = fuzzSchema();
  for (const char* a : kCorpus) {
    for (const char* b : kCorpus) {
      proveWhatParses(a, b, schema);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(ImpliesFuzzTest, RandomMutationsNeverCrash) {
  const Schema schema = fuzzSchema();
  htcsim::Rng rng(20260808);
  const std::string alphabet = "()&|=<>!\".x5{},";
  for (int round = 0; round < 300; ++round) {
    std::string a = kCorpus[rng.below(std::size(kCorpus))];
    std::string b = kCorpus[rng.below(std::size(kCorpus))];
    std::string& victim = rng.chance(0.5) ? a : b;
    const int edits = 1 + static_cast<int>(rng.below(6));
    for (int e = 0; e < edits && !victim.empty(); ++e) {
      const std::size_t pos = rng.below(victim.size());
      switch (rng.below(3)) {
        case 0:
          victim[pos] = alphabet[rng.below(alphabet.size())];
          break;
        case 1:
          victim.erase(pos, 1);
          break;
        default:
          victim.insert(pos, 1, alphabet[rng.below(alphabet.size())]);
          break;
      }
    }
    proveWhatParses(a, b, schema);
    if (HasFatalFailure()) return;
  }
}

// Deeply nested input must hit the prover's depth/node budgets, not the
// stack guard.
TEST(ImpliesFuzzTest, DeepNestingHitsBudgetsNotTheStack) {
  std::string deep = "other.X > 0";
  for (int i = 0; i < 200; ++i) deep = "(" + deep + " && true)";
  const Schema schema = fuzzSchema();
  proveWhatParses(deep, "other.X >= 0", schema);
  proveWhatParses("other.X > 0", deep, schema);
}

}  // namespace
}  // namespace classad::analysis
