// Randomized property tests over the expression language. A seeded
// generator produces arbitrary ASTs (as text), and we check the
// invariants every component relies on:
//   1. evaluation is TOTAL: any parseable expression evaluates to some
//      Value without throwing, hanging, or crashing;
//   2. unparse/parse is a fixed point: parse(unparse(e)) unparses
//      identically (so ads survive any number of store/forward hops);
//   3. evaluation is deterministic: same expression, same ads, same value;
//   4. flattening preserves meaning against arbitrary candidate ads.
// Seeds are fixed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include "classad/classad.h"
#include "classad/flatten.h"
#include "sim/rng.h"

namespace classad {
namespace {

/// Generates random expression TEXT (valid surface syntax by
/// construction) with bounded depth.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  std::string expr(int depth = 0) {
    if (depth >= 4 || rng_.chance(0.3)) return atom();
    switch (rng_.below(8)) {
      case 0:
        return "(" + expr(depth + 1) + " " + binop() + " " +
               expr(depth + 1) + ")";
      case 1:
        return "(" + std::string(rng_.chance(0.5) ? "!" : "-") + "(" +
               expr(depth + 1) + "))";
      case 2:
        return "(" + expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
               expr(depth + 1) + ")";
      case 3: {
        std::string list = "{ ";
        const int n = static_cast<int>(rng_.below(3));
        for (int i = 0; i <= n; ++i) {
          if (i) list += ", ";
          list += expr(depth + 1);
        }
        return list + " }";
      }
      case 4:
        return func(depth);
      case 5:
        return "{ " + expr(depth + 1) + ", " + expr(depth + 1) + " }[" +
               expr(depth + 1) + "]";
      case 6:
        return "[ a = " + expr(depth + 1) + "; b = " + expr(depth + 1) +
               " ].a";
      default:
        return "(" + expr(depth + 1) + " " + binop() + " " +
               expr(depth + 1) + ")";
    }
  }

  std::string atom() {
    switch (rng_.below(9)) {
      case 0: return std::to_string(rng_.range(-100, 100));
      case 1: return std::to_string(rng_.range(0, 99)) + "." +
                     std::to_string(rng_.range(0, 99));
      case 2: return rng_.chance(0.5) ? "true" : "false";
      case 3: return "undefined";
      case 4: return "error";
      case 5: return "\"s" + std::to_string(rng_.below(4)) + "\"";
      case 6: return attrName();
      case 7: return "other." + attrName();
      default: return "self." + attrName();
    }
  }

  std::string attrName() {
    static const char* kNames[] = {"Memory", "Arch",  "LoadAvg",
                                   "Rank",   "Owner", "Mystery"};
    return kNames[rng_.below(6)];
  }

  std::string binop() {
    static const char* kOps[] = {"+",  "-",  "*",  "/",  "%",  "<",
                                 "<=", ">",  ">=", "==", "!=", "&&",
                                 "||", "is", "isnt"};
    return kOps[rng_.below(15)];
  }

  std::string func(int depth) {
    switch (rng_.below(6)) {
      case 0: return "member(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
      case 1: return "size(" + expr(depth + 1) + ")";
      case 2: return "int(" + expr(depth + 1) + ")";
      case 3: return "isUndefined(" + expr(depth + 1) + ")";
      case 4: return "strcat(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
      default: return "floor(" + expr(depth + 1) + ")";
    }
  }

 private:
  htcsim::Rng rng_;
};

ClassAd selfAd() {
  return ClassAd::parse(
      "[Memory = 64; Arch = \"INTEL\"; LoadAvg = 0.05;"
      " Rank = member(other.Owner, {\"raman\"}) * 10]");
}

std::vector<ClassAd> candidateAds() {
  std::vector<ClassAd> ads;
  ads.push_back(ClassAd::parse("[Owner = \"raman\"; Memory = 32]"));
  ads.push_back(ClassAd::parse("[]"));
  ads.push_back(ClassAd::parse(
      "[Owner = \"alice\"; Memory = 128; Arch = \"SPARC\"; Mystery = {1}]"));
  return ads;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, EvaluationIsTotalAndDeterministic) {
  ExprGen gen(GetParam());
  const ClassAd self = selfAd();
  const auto others = candidateAds();
  for (int i = 0; i < 200; ++i) {
    const std::string text = gen.expr();
    ExprPtr parsed;
    ASSERT_NO_THROW(parsed = parseExpr(text)) << text;
    for (const ClassAd& other : others) {
      Value v1, v2;
      ASSERT_NO_THROW(v1 = self.evaluate(*parsed, &other)) << text;
      ASSERT_NO_THROW(v2 = self.evaluate(*parsed, &other)) << text;
      EXPECT_TRUE(v1.isIdenticalTo(v2)) << "nondeterministic: " << text;
    }
  }
}

TEST_P(FuzzSeeds, UnparseParseIsFixedPoint) {
  ExprGen gen(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 200; ++i) {
    const std::string text = gen.expr();
    const ExprPtr parsed = parseExpr(text);
    const std::string once = parsed->toString();
    ExprPtr reparsed;
    ASSERT_NO_THROW(reparsed = parseExpr(once)) << once;
    EXPECT_EQ(once, reparsed->toString()) << "from: " << text;
  }
}

TEST_P(FuzzSeeds, ReparseEvaluatesIdentically) {
  ExprGen gen(GetParam() ^ 0x1234);
  const ClassAd self = selfAd();
  const auto others = candidateAds();
  for (int i = 0; i < 150; ++i) {
    const ExprPtr parsed = parseExpr(gen.expr());
    const ExprPtr reparsed = parseExpr(parsed->toString());
    for (const ClassAd& other : others) {
      const Value a = self.evaluate(*parsed, &other);
      const Value b = self.evaluate(*reparsed, &other);
      EXPECT_TRUE(a.isIdenticalTo(b))
          << parsed->toString() << ": " << a.toLiteralString() << " vs "
          << b.toLiteralString();
    }
  }
}

TEST_P(FuzzSeeds, FlattenPreservesMeaning) {
  ExprGen gen(GetParam() ^ 0x77777);
  const ClassAd self = selfAd();
  const auto others = candidateAds();
  for (int i = 0; i < 150; ++i) {
    const ExprPtr parsed = parseExpr(gen.expr());
    const ExprPtr residual = flatten(parsed, self);
    for (const ClassAd& other : others) {
      const Value a = self.evaluate(*parsed, &other);
      const Value b = self.evaluate(*residual, &other);
      EXPECT_TRUE(a.isIdenticalTo(b))
          << parsed->toString() << "  ~>  " << residual->toString() << " : "
          << a.toLiteralString() << " vs " << b.toLiteralString()
          << " against " << other.unparse();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace classad
