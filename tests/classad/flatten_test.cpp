// Partial evaluation (flattening): folding of definite subexpressions,
// residuals over `other`, inlining of self references, and the core
// soundness property — flattening never changes what a constraint means.
#include "classad/flatten.h"

#include <gtest/gtest.h>

#include "sim/paper_ads.h"

namespace classad {
namespace {

std::string flatText(const ClassAd& self, const std::string& expr) {
  return flatten(parseExpr(expr), self)->toString();
}

TEST(FlattenTest, GroundExpressionsFoldToLiterals) {
  ClassAd empty;
  EXPECT_EQ(flatText(empty, "2 + 3 * 4"), "14");
  EXPECT_EQ(flatText(empty, "\"a\" == \"A\""), "true");
  EXPECT_EQ(flatText(empty, "member(2, {1, 2})"), "true");
}

TEST(FlattenTest, SelfAttributesFold) {
  ClassAd self;
  self.set("Memory", 64);
  EXPECT_EQ(flatText(self, "Memory / 2"), "32");
  EXPECT_EQ(flatText(self, "self.Memory >= 32"), "true");
}

TEST(FlattenTest, OtherReferencesRemainResidual) {
  ClassAd self;
  self.set("Memory", 64);
  EXPECT_EQ(flatText(self, "other.Memory >= self.Memory"),
            "other.Memory >= 64");
}

TEST(FlattenTest, MissingSelfAttributeStaysResidual) {
  // It may resolve in `other` at match time (the fallthrough rule).
  ClassAd self;
  EXPECT_EQ(flatText(self, "Arch == \"INTEL\""), "Arch == \"INTEL\"");
}

TEST(FlattenTest, DefiniteTernarySelectsBranch) {
  ClassAd self;
  self.set("DayTime", 22 * 3600);
  EXPECT_EQ(flatText(self, "DayTime > 18*3600 ? other.A : other.B"),
            "other.A");
}

TEST(FlattenTest, ShortCircuitFolds) {
  ClassAd self;
  self.set("Enabled", false);
  EXPECT_EQ(flatText(self, "Enabled && other.Memory > 32"), "false");
  self.set("Enabled", true);
  EXPECT_EQ(flatText(self, "Enabled || other.Memory > 32"), "true");
}

TEST(FlattenTest, InlinesIndefiniteSelfReferences) {
  ClassAd self = ClassAd::parse(
      "[Threshold = Base * 2; Base = 16;"
      " C = other.Memory >= Threshold]");
  // Threshold is definite (32) and folds straight into the residual.
  EXPECT_EQ(flatten(*self.lookup("C"), self)->toString(),
            "other.Memory >= 32");
}

TEST(FlattenTest, InliningCanBeDisabled) {
  ClassAd self = ClassAd::parse("[R = member(other.Owner, {\"a\"});"
                                " C = R && other.X > 1]");
  FlattenOptions keepRefs;
  keepRefs.inlineSelfReferences = false;
  const std::string text =
      flatten(*self.lookup("C"), self, keepRefs)->toString();
  EXPECT_EQ(text, "R && other.X > 1");
}

TEST(FlattenTest, InliningExpandsPolicyReferences) {
  ClassAd self = ClassAd::parse("[R = member(other.Owner, {\"a\"});"
                                " C = R && other.X > 1]");
  const std::string text = flatten(*self.lookup("C"), self)->toString();
  EXPECT_EQ(text, "member(other.Owner, { \"a\" }) && other.X > 1");
}

TEST(FlattenTest, CycleLeavesReference) {
  ClassAd self = ClassAd::parse("[A = B && other.X; B = A && other.Y]");
  // Inlining A -> B -> A stops at the cycle; no hang, and the residual
  // still errors at runtime exactly like the original.
  const ExprPtr flat = flatten(*self.lookup("A"), self);
  ClassAd other;
  other.set("X", true);
  other.set("Y", true);
  EXPECT_TRUE(self.evaluate(*flat, &other).isError());
  EXPECT_TRUE(self.evaluateAttr("A", &other).isError());
}

TEST(FlattenTest, Figure1ConstraintFlattensToOwnerResidual) {
  // The machine knows everything except who the customer is: the entire
  // policy reduces to membership tests on other.Owner (plus constants).
  ClassAd machine = htcsim::makeFigure1AdIntended();
  machine.set("DayTime", 12 * 3600.0);    // noon
  machine.set("KeyboardIdle", 30 * 60.0); // idle workstation
  machine.set("LoadAvg", 0.05);
  const ExprPtr residual = flattenAttribute(machine, "Constraint");
  ASSERT_NE(residual, nullptr);
  const std::string text = residual->toString();
  // Only other.Owner references survive.
  std::vector<std::string> refs;
  collectAttrRefs(*residual, refs);
  for (const std::string& r : refs) {
    EXPECT_EQ(r, "owner") << text;
  }
}

TEST(FlattenTest, FlattenAttributeMissingReturnsNull) {
  ClassAd self;
  EXPECT_EQ(flattenAttribute(self, "NoSuch"), nullptr);
}

TEST(FlattenTest, IsGround) {
  EXPECT_TRUE(isGround(*parseExpr("1 + 2")));
  EXPECT_TRUE(isGround(*parseExpr("{1, \"x\"}")));
  EXPECT_FALSE(isGround(*parseExpr("Memory")));
  EXPECT_FALSE(isGround(*parseExpr("other.Memory + 1")));
  EXPECT_FALSE(isGround(*parseExpr("size(self)")));
}

// --- the soundness property, parameterized over expression/ad pairs ------

struct EquivCase {
  const char* expr;
};

class FlattenEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(FlattenEquivalence, ResidualEvaluatesIdentically) {
  ClassAd self = ClassAd::parse(
      "[Memory = 64; Arch = \"INTEL\"; LoadAvg = 0.05; KeyboardIdle = 1800;"
      " Untrusted = {\"rival\"}; Threshold = Memory / 2;"
      " Rank = member(other.Owner, {\"raman\"}) * 10]");
  const ExprPtr original = parseExpr(GetParam().expr);
  const ExprPtr residual = flatten(original, self);
  const ClassAd others[] = {
      ClassAd::parse("[Owner = \"raman\"; Memory = 32; Type = \"Job\"]"),
      ClassAd::parse("[Owner = \"rival\"; Memory = 128]"),
      ClassAd::parse("[]"),
      ClassAd::parse("[Owner = \"alice\"; Mips = 104]"),
  };
  for (const ClassAd& other : others) {
    const Value a = self.evaluate(*original, &other);
    const Value b = self.evaluate(*residual, &other);
    EXPECT_TRUE(a.isIdenticalTo(b))
        << GetParam().expr << " -> " << residual->toString() << " : "
        << a.toLiteralString() << " vs " << b.toLiteralString()
        << " against " << other.unparse();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FlattenEquivalence,
    ::testing::Values(
        EquivCase{"other.Memory >= self.Memory"},
        EquivCase{"Memory >= other.Memory"},
        EquivCase{"!member(other.Owner, Untrusted) && LoadAvg < 0.3"},
        EquivCase{"Rank >= 10 ? true : KeyboardIdle > 900"},
        EquivCase{"Rank + other.Memory / Threshold"},
        EquivCase{"other.Type == \"Job\" && Arch == \"INTEL\""},
        EquivCase{"other.Mips >= 10 || other.KFlops >= 1000"},
        EquivCase{"other.Memory is undefined || other.Memory < Threshold"},
        EquivCase{"{Memory, other.Memory}[1]"},
        EquivCase{"strcat(Arch, \"/\", other.Owner)"}));

}  // namespace
}  // namespace classad
