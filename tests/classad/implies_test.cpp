// The implication prover: per-atom containment, disjunct coverage,
// schema-scoped claims, witness extraction, relaxation verification, and
// redundant-conjunct elision.
#include <gtest/gtest.h>

#include "classad/analysis/implies.h"
#include "classad/analysis/schema.h"
#include "classad/classad.h"
#include "classad/expr.h"

namespace classad::analysis {
namespace {

const ClassAd kEmptySelf;

ImpliesResult prove(const std::string& a, const std::string& b,
                    const ImpliesOptions& opts = {}) {
  return implies(&kEmptySelf, parseExpr(a), &kEmptySelf, parseExpr(b), opts);
}

Schema machineSchema() {
  std::vector<ClassAd> pool;
  pool.push_back(ClassAd::parse(
      "[Type = \"Machine\"; Arch = \"INTEL\"; Memory = 64; Disk = 3000]"));
  pool.push_back(ClassAd::parse(
      "[Type = \"Machine\"; Arch = \"ALPHA\"; Memory = 128; Disk = 8000]"));
  return Schema::fromAds(pool);
}

/// A Refuted verdict must carry a witness that concretely satisfies the
/// premise and fails the consequent — re-check it here so every use in
/// this file asserts the constructive guarantee.
void expectRefutedWithWitness(const ImpliesResult& r, const std::string& a,
                              const std::string& b) {
  ASSERT_EQ(r.verdict, ImpliesVerdict::Refuted) << r.note;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(kEmptySelf.evaluate(*parseExpr(a), &*r.witness)
                  .isBooleanTrue());
  EXPECT_FALSE(kEmptySelf.evaluate(*parseExpr(b), &*r.witness)
                   .isBooleanTrue());
}

TEST(ImpliesTest, NumericIntervalSubsumption) {
  EXPECT_TRUE(prove("other.Memory >= 64", "other.Memory >= 32").proven());
  EXPECT_TRUE(prove("other.Memory > 64", "other.Memory >= 64").proven());
  EXPECT_TRUE(
      prove("other.Memory == 80", "other.Memory >= 64 && other.Memory <= 96")
          .proven());
  expectRefutedWithWitness(prove("other.Memory >= 32", "other.Memory >= 64"),
                           "other.Memory >= 32", "other.Memory >= 64");
}

TEST(ImpliesTest, StringAndMemberSubsumption) {
  EXPECT_TRUE(prove("other.Arch == \"INTEL\"",
                    "member(other.Arch, {\"intel\", \"sparc\"})")
                  .proven());
  EXPECT_TRUE(prove("member(other.Arch, {\"intel\", \"sparc\"})",
                    "member(other.Arch, {\"INTEL\", \"SPARC\", \"ALPHA\"})")
                  .proven());
  expectRefutedWithWitness(
      prove("member(other.Arch, {\"intel\", \"sparc\"})",
            "other.Arch == \"INTEL\""),
      "member(other.Arch, {\"intel\", \"sparc\"})", "other.Arch == \"INTEL\"");
}

TEST(ImpliesTest, DisjunctCoverage) {
  // The consequent's cubes must jointly cover the premise.
  EXPECT_TRUE(
      prove("other.Memory == 5", "other.Memory < 10 || other.Memory > 20")
          .proven());
  EXPECT_TRUE(
      prove("other.Memory > 0", "other.Memory < 10 || other.Memory >= 10")
          .proven());
  expectRefutedWithWitness(
      prove("other.Memory < 30", "other.Memory < 10 || other.Memory > 20"),
      "other.Memory < 30", "other.Memory < 10 || other.Memory > 20");
}

TEST(ImpliesTest, BooleanPromotionIsHonoured) {
  // Flag == 1 is satisfied by the INTEGER 1, on which a bare `other.Flag`
  // constraint is NOT satisfied (1 is not boolean true).
  expectRefutedWithWitness(prove("other.Flag == 1", "other.Flag"),
                           "other.Flag == 1", "other.Flag");
  // The converse is sound: boolean true promotes to 1.
  EXPECT_TRUE(prove("other.Flag", "other.Flag == 1").proven());
  EXPECT_TRUE(prove("other.Flag", "other.Flag == true").proven());
}

TEST(ImpliesTest, UndefinednessAtoms) {
  EXPECT_TRUE(
      prove("other.X == 5", "other.X isnt undefined").proven());
  // An absent attribute satisfies `is undefined` but no comparison.
  expectRefutedWithWitness(
      prove("other.X is undefined", "other.X >= 0 || other.X < 0"),
      "other.X is undefined", "other.X >= 0 || other.X < 0");
}

TEST(ImpliesTest, NegatedComparisons) {
  EXPECT_TRUE(prove("!(other.Memory < 64)", "other.Memory >= 32").proven());
  EXPECT_TRUE(prove("other.Memory >= 64", "!(other.Memory < 64)").proven());
}

TEST(ImpliesTest, VacuousAndTautologicalCases) {
  EXPECT_TRUE(
      prove("other.Memory > 10 && other.Memory < 5", "other.Arch == \"x\"")
          .proven());
  EXPECT_TRUE(prove("other.Disk > 100", "true").proven());
  EXPECT_TRUE(prove("other.Disk > 100", "1 < 2").proven());
}

TEST(ImpliesTest, SelfFrameFlattening) {
  // Self-side references fold to literals before atomization, so the two
  // sides agree regardless of spelling.
  const ClassAd self = ClassAd::parse("[MinMem = 64]");
  const ImpliesResult r =
      implies(self, parseExpr("other.Memory >= MinMem"),
              parseExpr("other.Memory >= 64"));
  EXPECT_TRUE(r.proven()) << r.note;
  const ImpliesResult back =
      implies(self, parseExpr("other.Memory >= 64"),
              parseExpr("other.Memory >= MinMem"));
  EXPECT_TRUE(back.proven()) << back.note;
}

TEST(ImpliesTest, UnsupportedShapesStayUnknownNotWrong) {
  // Candidate-vs-candidate relations have no atom; the prover must not
  // guess. (Unknown, or Refuted with a genuine witness, are both sound;
  // Proven would be a lie.)
  const ImpliesResult r = prove("other.A < other.B", "other.A <= other.B");
  EXPECT_NE(r.verdict, ImpliesVerdict::Proven);
}

TEST(ImpliesTest, SchemaScopedClaims) {
  const Schema schema = machineSchema();
  ImpliesOptions exact;
  exact.otherSchema = &schema;
  exact.exactSchemaValues = true;
  // Every machine has Memory in {64, 128}: within the schema the premise
  // Memory >= 32 pins Memory >= 64.
  EXPECT_TRUE(
      prove("other.Memory >= 32", "other.Memory >= 64", exact).proven());
  // Open-world (widened) mode must NOT prove it — tomorrow's machine may
  // have Memory = 48 — and any witness must respect the schema's types.
  ImpliesOptions widened;
  widened.otherSchema = &schema;
  const ImpliesResult r =
      prove("other.Memory >= 32", "other.Memory >= 64", widened);
  EXPECT_NE(r.verdict, ImpliesVerdict::Proven);
  if (r.refuted()) {
    const ExprPtr* mem = r.witness->lookup("memory");
    ASSERT_NE(mem, nullptr);
  }
}

TEST(ImpliesTest, UnsatisfiableConstraint) {
  const ImpliesResult unsat = unsatisfiable(
      &kEmptySelf, parseExpr("other.Memory > 10 && other.Memory < 5"));
  EXPECT_TRUE(unsat.proven()) << unsat.note;

  const ImpliesResult sat =
      unsatisfiable(&kEmptySelf, parseExpr("other.Memory > 10"));
  ASSERT_TRUE(sat.refuted()) << sat.note;
  ASSERT_TRUE(sat.witness.has_value());
  EXPECT_TRUE(kEmptySelf.evaluate(*parseExpr("other.Memory > 10"),
                                  &*sat.witness)
                  .isBooleanTrue());

  // Against a demand schema: no machine offers enough memory.
  const Schema schema = machineSchema();
  ImpliesOptions exact;
  exact.otherSchema = &schema;
  exact.exactSchemaValues = true;
  const ImpliesResult starved =
      unsatisfiable(&kEmptySelf, parseExpr("other.Memory >= 512"), exact);
  EXPECT_TRUE(starved.proven()) << starved.note;
}

TEST(ImpliesTest, RelaxationVerdicts) {
  const ClassAd oldAd =
      ClassAd::parse("[Requirements = other.Memory >= 64]");
  const ClassAd widerAd =
      ClassAd::parse("[Requirements = other.Memory >= 32]");
  const ClassAd sameAd =
      ClassAd::parse("[Requirements = !(other.Memory < 64)]");

  const RelaxationResult strict = isRelaxationOf(oldAd, widerAd);
  EXPECT_EQ(strict.verdict, RelaxationVerdict::StrictRelaxation)
      << strict.note;
  ASSERT_TRUE(strict.witness.has_value());

  const RelaxationResult narrowed = isRelaxationOf(widerAd, oldAd);
  EXPECT_EQ(narrowed.verdict, RelaxationVerdict::NotRelaxation)
      << narrowed.note;
  ASSERT_TRUE(narrowed.witness.has_value());

  const RelaxationResult equiv = isRelaxationOf(oldAd, sameAd);
  EXPECT_EQ(equiv.verdict, RelaxationVerdict::Equivalent) << equiv.note;
}

TEST(ImpliesTest, RedundantConjunctElision) {
  const std::vector<ExprPtr> conjuncts = {
      parseExpr("other.Memory >= 64"),
      parseExpr("other.Memory >= 32"),  // implied by the first
      parseExpr("other.Arch == \"INTEL\""),
  };
  const std::vector<bool> elided = redundantConjuncts(kEmptySelf, conjuncts);
  ASSERT_EQ(elided.size(), 3u);
  EXPECT_FALSE(elided[0]);
  EXPECT_TRUE(elided[1]);
  EXPECT_FALSE(elided[2]);

  // Mutually-implied duplicates: exactly one survives.
  const std::vector<ExprPtr> dupes = {
      parseExpr("other.Memory >= 64"),
      parseExpr("!(other.Memory < 64)"),
  };
  const std::vector<bool> oneGone = redundantConjuncts(kEmptySelf, dupes);
  EXPECT_NE(oneGone[0], oneGone[1]);
}

}  // namespace
}  // namespace classad::analysis
